"""TEST-style loop-distance baseline tests."""

from repro.baselines import profile_loop_distances
from repro.core.profile_data import DepKind


class TestDistances:
    def test_adjacent_iteration_dependence(self):
        profile = profile_loop_distances("""
        int a[32];
        int main() {
            a[0] = 1;
            for (int i = 1; i < 20; i++) {
                a[i] = a[i - 1] + 1;
            }
            print(a[19]);
            return 0;
        }
        """)
        (loop,) = [s for s in profile.loops.values() if s.iterations > 2]
        assert loop.overall_min_distance() == 1

    def test_strided_dependence_distance(self):
        profile = profile_loop_distances("""
        int a[64];
        int main() {
            for (int i = 0; i < 4; i++) a[i] = i;
            for (int i = 4; i < 40; i++) {
                a[i] = a[i - 4] + 1;
            }
            print(a[39]);
            return 0;
        }
        """)
        loops = sorted(profile.loops.values(),
                       key=lambda s: s.iterations, reverse=True)
        strided = loops[0]
        # The RAW a[i-4] -> a[i] chain has distance 4 in iterations.
        raw = {k: v for k, v in strided.min_distance.items()
               if k[2] is DepKind.RAW}
        assert 4 in raw.values()

    def test_independent_loop_reports_nothing(self):
        profile = profile_loop_distances("""
        int a[32];
        int main() {
            for (int i = 0; i < 20; i++) {
                a[i] = i * 3;
            }
            print(a[5]);
            return 0;
        }
        """)
        for stats in profile.loops.values():
            raw = {k: v for k, v in stats.min_distance.items()
                   if k[2] is DepKind.RAW
                   and not k[0] == k[1]}  # ignore self edges on counters
            # The only distances may come from the induction variable,
            # which TEST (hardware, register-level) also would not see;
            # the array itself must be clean.
            assert all(v >= 1 for v in raw.values())

    def test_iteration_counts(self):
        profile = profile_loop_distances("""
        int main() {
            int s = 0;
            for (int i = 0; i < 7; i++) s += i;
            print(s);
            return 0;
        }
        """)
        (loop,) = profile.loops.values()
        assert loop.iterations == 7

    def test_separate_activations_do_not_mix(self):
        """Distances never span two activations of the same loop (the
        write in call 1 and read in call 2 are not 'iterations apart')."""
        profile = profile_loop_distances("""
        int a[8];
        void touch(int round) {
            for (int i = 0; i < 8; i++) {
                if (round == 0) { a[i] = i; }
                else { int x = a[i]; x = x + 1; }
            }
        }
        int main() { touch(0); touch(1); return 0; }
        """)
        loop = next(s for s in profile.loops.values()
                    if s.iterations == 16)
        cross = {k: v for k, v in loop.min_distance.items()
                 if k[2] is DepKind.RAW and "a[" not in str(k)}
        # The a[i] write (activation 1) and read (activation 2) happen in
        # the same iteration index — distance would be 0 across
        # activations and must not be recorded at all.
        for (head, tail, kind), dist in loop.min_distance.items():
            assert dist >= 1


class TestGeneralityGap:
    """What the paper gains over TEST: non-loop constructs."""

    def test_procedure_candidates_invisible(self, gzip_like_source):
        profile = profile_loop_distances(gzip_like_source)
        # The TEST-style profile contains only loops; flush_block (the
        # paper's C9 candidate) has no entry at all.
        names = {s.name for s in profile.loops.values()}
        assert all(name.startswith("loop(")
                   or name.startswith("dowhile") for name in names)
        assert not any("flush_block" == n for n in names)
