"""Flat-baseline tests: the §III 'traditional profiling' strawman."""

from repro.baselines import profile_flat
from repro.core.profile_data import DepKind
from tests.baselines.test_context_profiler import CASES, four_case_source


class TestBasics:
    def test_raw_edge_recorded_with_min_tdep(self):
        profile = profile_flat("""
        int g;
        int main() {
            g = 1;
            int pad = 0;
            int a = g;
            print(a + pad);
            return 0;
        }
        """)
        raw = [e for e in profile.edges.values() if e.kind is DepKind.RAW]
        assert raw
        assert min(e.min_tdep for e in raw) >= 1

    def test_war_and_waw_recorded(self):
        profile = profile_flat("""
        int g;
        int main() {
            g = 1;
            int a = g;
            g = 2;
            print(a);
            return 0;
        }
        """)
        kinds = {e.kind for e in profile.edges.values()}
        assert DepKind.WAR in kinds
        assert DepKind.WAW in kinds

    def test_min_tdep_shrinks_with_repeats(self):
        profile = profile_flat("""
        int g;
        int sink;
        int main() {
            g = 5;
            int i;
            for (i = 0; i < 10; i++) { sink += g; }
            return 0;
        }
        """)
        raw = [e for e in profile.edges.values() if e.kind is DepKind.RAW]
        counts = {e.count for e in raw}
        assert max(counts) >= 10 or len(raw) > 1

    def test_frame_hygiene(self):
        profile = profile_flat("""
        int f(int n) { int local = n; return local * 2; }
        int sink;
        int main() {
            for (int i = 0; i < 6; i++) sink += f(i);
            return 0;
        }
        """)
        waw = [e for e in profile.edges_between("f", "f")
               if e.kind is DepKind.WAW]
        assert waw == []

    def test_edges_between_by_function(self):
        profile = profile_flat("""
        int g;
        void writer() { g = 7; }
        int reader() { return g; }
        int main() { writer(); return reader(); }
        """)
        edges = profile.edges_between("writer", "reader")
        assert any(e.kind is DepKind.RAW for e in edges)


class TestPaperArgument:
    """All four §III-B dependence placements collapse to one static
    signature under flat profiling — just as they do under context-
    sensitive profiling — while Alchemist separates all four (see
    TestContextPrecision in tests/core/test_profile_integration.py)."""

    def test_all_four_cases_have_identical_signatures(self):
        signatures = {}
        for name, (body_a, body_b) in CASES.items():
            profile = profile_flat(four_case_source(body_a, body_b))
            signatures[name] = profile.attribution_signature("A", "B")
        assert all(sig for sig in signatures.values())
        baseline = signatures["same_j"]
        for name, signature in signatures.items():
            assert signature == baseline, name

    def test_flat_cannot_see_loop_structure(self):
        """The flat profile of the cross_j case is a single A->B static
        edge; nothing in it distinguishes 'within one iteration' from
        'across iterations'."""
        body_a, body_b = CASES["cross_j"]
        profile = profile_flat(four_case_source(body_a, body_b))
        raw = [e for e in profile.edges_between("A", "B")
               if e.kind is DepKind.RAW]
        assert len({(e.head_pc, e.tail_pc) for e in raw}) == 1
