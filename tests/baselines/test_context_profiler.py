"""Context-sensitive baseline tests — including the paper's §III-B
indistinguishability argument."""

from repro.baselines import profile_with_contexts
from repro.core.profile_data import DepKind


def four_case_source(body_a: str, body_b: str) -> str:
    """The paper's F/A/B example with a configurable dependence."""
    return f"""
    int buf[64];
    void A(int round, int i, int j) {{ {body_a} }}
    int B(int round, int i, int j) {{ {body_b} }}
    int sink;
    int F(int round) {{
        int acc = 0;
        for (int i = 0; i < 3; i++) {{
            for (int j = 0; j < 3; j++) {{
                A(round, i, j);
                acc += B(round, i, j);
            }}
        }}
        return acc;
    }}
    int main() {{
        sink = F(0);
        sink += F(1);
        return 0;
    }}
    """


CASES = {
    "same_j": ("buf[j] = i;", "return buf[j];"),
    "cross_j": ("if (j < 2) buf[j + 1] = i;", "return buf[j];"),
    "cross_i": ("if (j == 0 && i < 2) buf[10 + i + 1] = i;",
                "return buf[10 + i];"),
    "cross_f": ("if (round == 0) buf[20 + i] = 1;",
                "return round == 1 ? buf[20 + i] : 0;"),
}


class TestBasics:
    def test_contexts_attributed(self):
        profile = profile_with_contexts("""
        int g;
        void leaf() { g = g + 1; }
        void mid() { leaf(); }
        int main() { mid(); mid(); return g; }
        """)
        raw = [e for e in profile.edges.values()
               if e.kind is DepKind.RAW and e.head_context]
        contexts = {e.head_context for e in raw}
        assert ("main", "mid", "leaf") in contexts

    def test_min_tdep_tracked(self):
        profile = profile_with_contexts("""
        int g;
        int main() {
            g = 1;
            int a = g;
            int b = g + a;
            print(b);
            return 0;
        }
        """)
        raw = [e for e in profile.edges.values() if e.kind is DepKind.RAW]
        assert raw and min(e.min_tdep for e in raw) >= 1

    def test_frame_hygiene(self):
        profile = profile_with_contexts("""
        int f(int n) { int local = n; return local * 2; }
        int sink;
        int main() {
            for (int i = 0; i < 6; i++) sink += f(i);
            return 0;
        }
        """)
        # No cross-call WAW on the reused stack slot for `local`.
        waw = [e for e in profile.edges.values()
               if e.kind is DepKind.WAW
               and e.head_context and e.head_context[-1] == "f"
               and e.tail_context and e.tail_context[-1] == "f"]
        assert waw == []


class TestPaperArgument:
    """§III-B: all four dependence placements produce the same calling
    contexts, so context sensitivity cannot locate the parallelism —
    while Alchemist's index tree distinguishes them (covered by
    TestContextPrecision in the core integration tests)."""

    def test_all_four_cases_have_identical_signatures(self):
        signatures = {}
        for name, (body_a, body_b) in CASES.items():
            profile = profile_with_contexts(four_case_source(body_a,
                                                             body_b))
            signatures[name] = profile.attribution_signature("A", "B")
        assert all(sig for sig in signatures.values())
        baseline = signatures["same_j"]
        for name, signature in signatures.items():
            assert signature == baseline, name

    def test_edges_exist_in_each_case(self):
        for name, (body_a, body_b) in CASES.items():
            profile = profile_with_contexts(four_case_source(body_a,
                                                             body_b))
            edges = profile.edges_between("A", "B")
            raw = [e for e in edges if e.kind is DepKind.RAW]
            assert raw, name
