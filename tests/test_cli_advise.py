"""CLI: the ``advise``/``bench-advise`` verbs and the ``speedup``
error-surface fixes (PR 5 satellites)."""

import json

import pytest

from repro.cli import main

SOURCE = """
int results[16];
int chain;
int work(int seed) {
    int acc = seed;
    for (int i = 0; i < 60; i++) acc = (acc * 31 + i) % 65521;
    return acc;
}
int main() {
    for (int f = 0; f < 12; f++) {
        results[f] = work(f);
    }
    for (int g = 0; g < 12; g++) {
        chain = (chain * 7 + results[g]) % 9973;
    }
    print(chain);
    return 0;
}
"""
LOOP_LINE = 10

PRIVATE_SOURCE = """
int counter;
int a[16];
int main() {
    for (int i = 0; i < 16; i++) {
        counter++;
        a[i] = counter * 2;
    }
    print(counter);
    return 0;
}
"""


@pytest.fixture
def minic_file(tmp_path):
    path = tmp_path / "advise.mc"
    path.write_text(SOURCE)
    return str(path)


@pytest.fixture
def private_file(tmp_path):
    path = tmp_path / "private.mc"
    path.write_text(PRIVATE_SOURCE)
    return str(path)


class TestAdviseVerb:
    def test_text_output_ranks_candidates(self, minic_file, capsys):
        assert main(["advise", minic_file]) == 0
        out = capsys.readouterr().out
        assert "What-if advisor" in out
        assert "best x" in out
        assert "skipped:" in out
        assert "violating RAW" in out  # the chained loop, with reason

    def test_json_schema(self, minic_file, capsys):
        assert main(["advise", minic_file, "--workers", "2,4",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["analysis"] == "whatif"
        assert payload["workers"] == [2, 4]
        assert payload["best"]["speedup"] > 1.0
        for entry in payload["candidates"]:
            assert set(entry["speedups"]) == {"2", "4"}

    def test_top_limits_candidates(self, minic_file, capsys):
        assert main(["advise", minic_file, "--top", "1",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["candidates"]) + len(payload["skipped"]) <= 1

    def test_jobs_results_identical(self, minic_file, capsys):
        assert main(["advise", minic_file, "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(["advise", minic_file, "--json", "--jobs",
                     "2"]) == 0
        fanned = json.loads(capsys.readouterr().out)
        assert serial == fanned

    @pytest.mark.parametrize("argv,fragment", [
        (["--workers", "4,4"], "duplicate"),
        (["--workers", "2,,4"], "empty entry"),
        (["--workers", "zero"], "not an integer"),
        (["--workers", "0"], ">= 1"),
        (["--top", "0"], "--top must be >= 1"),
        (["--jobs", "-1"], "--jobs must be >= 0"),
    ])
    def test_bad_flags_exit_2(self, minic_file, capsys, argv, fragment):
        assert main(["advise", minic_file] + argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert fragment in err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.mc")
        assert main(["advise", missing]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1


class TestSpeedupErrorSurface:
    def test_unknown_line_message_is_not_a_quoted_key(self, minic_file,
                                                      capsys):
        assert main(["speedup", minic_file, "--line", "9999"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: no construct at line 9999")
        assert not err.startswith("error: '")

    def test_unknown_private_global_named(self, private_file, capsys):
        assert main(["speedup", private_file, "--line", "5",
                     "--private", "missing"]) == 2
        err = capsys.readouterr().err
        assert "no global variable named 'missing'" in err
        assert "counter" in err

    def test_private_names_are_stripped(self, private_file, capsys):
        """`--private "counter"` and `--private " counter "` must be
        the same request (whitespace used to silently produce a
        never-matching variable name)."""
        assert main(["speedup", private_file, "--line", "5",
                     "--private", " counter "]) == 0
        spaced = capsys.readouterr().out
        assert main(["speedup", private_file, "--line", "5",
                     "--private", "counter"]) == 0
        assert capsys.readouterr().out == spaced

    def test_private_duplicate_rejected(self, private_file, capsys):
        assert main(["speedup", private_file, "--line", "5",
                     "--private", "counter, counter"]) == 2
        assert "duplicate variable 'counter'" in capsys.readouterr().err

    def test_private_empty_entry_rejected(self, private_file, capsys):
        assert main(["speedup", private_file, "--line", "5",
                     "--private", "counter,,"]) == 2
        assert "empty variable name" in capsys.readouterr().err

    def test_zero_instance_construct_exits_2(self, tmp_path, capsys):
        path = tmp_path / "dead.mc"
        path.write_text("""
        int helper(int x) { return x * 2; }
        int main() {
            for (int i = 0; i < 3; i = i + 1) {
                if (i > 100) { helper(i); }
            }
            return 0;
        }
        """)
        assert main(["speedup", str(path), "--line", "5"]) == 2
        err = capsys.readouterr().err
        assert "no instances" in err
        assert "x1.00" not in err


class TestBenchAdviseVerb:
    def test_writes_verified_artifact(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_advisor.json")
        assert main(["bench-advise", "--workloads", "gzip",
                     "--scale", "0.1", "--workers", "2,4",
                     "--out", out]) == 0
        printed = capsys.readouterr().out
        assert "verified" in printed
        with open(out) as handle:
            data = json.load(handle)
        assert data["summary"]["all_verified"] is True
        (row,) = data["rows"]
        assert row["name"] == "gzip"
        assert row["predicted"] == row["simulated"]
        assert row["paper_target"]["speedups"]

    def test_unknown_workload_exits_2(self, capsys):
        assert main(["bench-advise", "--workloads", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_bad_workers_exit_2(self, capsys):
        assert main(["bench-advise", "--workloads", "gzip",
                     "--workers", "4,4"]) == 2
        assert "duplicate" in capsys.readouterr().err
