"""Shared helpers for the test suite."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.alchemist import Alchemist, ProfileOptions
from repro.ir.lowering import compile_source
from repro.lang import ast_nodes as ast
from repro.runtime.interpreter import run_source


def run(source: str, **kwargs):
    """Run MiniC source; returns (exit_value, interpreter)."""
    return run_source(source, **kwargs)


def outputs(source: str) -> list[tuple[int, ...]]:
    """Run MiniC source and return its print() output."""
    _, interp = run_source(source)
    return interp.output


def profile(source: str, **options):
    """Profile MiniC source; returns the report."""
    return Alchemist(ProfileOptions(**options)).profile(source)


def compile_ir(source: str):
    return compile_source(source)


def ast_shape(node):
    """Structural AST summary ignoring source positions, for round-trip
    comparisons. Single-statement blocks collapse to the statement: the
    pretty-printer may brace a bare statement (dangling else), which is
    semantically identical."""
    if isinstance(node, ast.Block) and len(node.stmts) == 1:
        return ast_shape(node.stmts[0])
    if isinstance(node, ast.Node):
        fields = []
        for f in dataclasses.fields(node):
            if f.name in ("line", "col"):
                continue
            fields.append((f.name, ast_shape(getattr(node, f.name))))
        return (type(node).__name__, tuple(fields))
    if isinstance(node, list):
        return tuple(ast_shape(item) for item in node)
    return node


@pytest.fixture
def gzip_like_source() -> str:
    """Miniature of the paper's Fig. 2 gzip structure."""
    return """
int window[256];
int flag_buf[64];
int outbuf[512];
int outcnt;
int last_flags;
int bi_buf;
int bi_valid;
int input_len;

int flush_block(int buf[], int len) {
    flag_buf[last_flags] = 1;
    input_len += len;
    int k = 0;
    do {
        int flag = flag_buf[k % 8];
        if (flag) {
            if (bi_valid > 4) {
                outbuf[outcnt++] = bi_buf & 255;
                bi_buf = buf[k % len];
                bi_valid += 2;
            }
        }
        bi_valid++;
        k++;
    } while (k < len);
    last_flags = 0;
    outbuf[outcnt++] = bi_buf & 255;
    return len;
}

int main() {
    int processed = 0;
    int i = 0;
    while (i < 96) {
        window[i % 256] = i * 7 % 251;
        if (i % 32 == 31) {
            processed += flush_block(window, 32);
        }
        flag_buf[i % 64] = i & 1;
        last_flags++;
        i++;
    }
    int check = 0;
    int c = 0;
    while (c < 256) { check += window[c]; c++; }
    processed += flush_block(window, 16);
    outbuf[outcnt++] = (processed + check) & 255;
    print(processed, outcnt);
    return 0;
}
"""
