"""Heap allocator semantics: malloc/free, recycling, liveness errors.

Includes hypothesis properties over random alloc/free interleavings —
the allocator invariants (no overlap, zero-fill, containment queries)
must hold for every sequence.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.lowering import compile_source
from repro.runtime.errors import MiniCRuntimeError
from repro.runtime.memory import Memory
from tests.conftest import run


def empty_memory() -> Memory:
    program = compile_source("int g; int main() { return 0; }")
    return Memory(program)


class TestMallocFreeSemantics:
    def test_malloc_returns_zeroed_block(self):
        value, _ = run("""
        int main() {
            int *p = malloc(8);
            int total = 0;
            int i;
            for (i = 0; i < 8; i++) { total += p[i]; }
            free(p);
            return total;
        }
        """)
        assert value == 0

    def test_recycled_block_is_zeroed(self):
        value, _ = run("""
        int main() {
            int *p = malloc(4);
            p[0] = 77; p[3] = 99;
            free(p);
            int *q = malloc(4);
            return q[0] + q[3];
        }
        """)
        assert value == 0

    def test_same_size_block_is_recycled(self):
        _, interp = run("""
        int main() {
            int *p = malloc(4);
            int first = p;
            free(p);
            int *q = malloc(4);
            assert(q == first);
            return 0;
        }
        """)
        assert interp.memory.heap_allocs == 2

    def test_different_size_not_recycled(self):
        value, _ = run("""
        int main() {
            int *p = malloc(4);
            int first = p;
            free(p);
            int *q = malloc(5);
            return q != first;
        }
        """)
        assert value == 1

    def test_blocks_are_disjoint(self):
        value, _ = run("""
        int main() {
            int *a = malloc(3);
            int *b = malloc(3);
            a[0] = 1; a[1] = 2; a[2] = 3;
            b[0] = 9; b[1] = 9; b[2] = 9;
            return a[0] + a[1] + a[2];
        }
        """)
        assert value == 6

    def test_heap_counts_tracked(self):
        _, interp = run("""
        int main() {
            int *a = malloc(2);
            int *b = malloc(2);
            free(a);
            return 0;
        }
        """)
        assert interp.memory.heap_allocs == 2
        assert interp.memory.heap_frees == 1
        assert interp.memory.live_heap_words() == 2


class TestHeapErrors:
    def test_double_free(self):
        with pytest.raises(MiniCRuntimeError):
            run("int main() { int *p = malloc(2); free(p); free(p); "
                "return 0; }")

    def test_free_of_interior_pointer(self):
        with pytest.raises(MiniCRuntimeError):
            run("int main() { int *p = malloc(4); free(p + 1); return 0; }")

    def test_free_of_stack_address(self):
        with pytest.raises(MiniCRuntimeError):
            run("int main() { int x; free(&x); return 0; }")

    def test_use_after_free(self):
        with pytest.raises(MiniCRuntimeError):
            run("int main() { int *p = malloc(2); free(p); return p[0]; }")

    def test_store_after_free(self):
        with pytest.raises(MiniCRuntimeError):
            run("int main() { int *p = malloc(2); free(p); p[1] = 3; "
                "return 0; }")

    def test_out_of_block_read(self):
        # One block, read past its end into never-allocated heap space.
        with pytest.raises(MiniCRuntimeError):
            run("int main() { int *p = malloc(2); return p[5]; }")

    def test_malloc_zero_is_error(self):
        with pytest.raises(MiniCRuntimeError):
            run("int main() { int *p = malloc(0); return 0; }")

    def test_malloc_negative_is_error(self):
        with pytest.raises(MiniCRuntimeError):
            run("int main() { int *p = malloc(-3); return 0; }")

    def test_stack_overflow_reported(self):
        with pytest.raises(MiniCRuntimeError, match="stack overflow"):
            run("""
            int deep(int n) { return deep(n + 1); }
            int main() { return deep(0); }
            """)


class TestMemoryUnit:
    def test_heap_base_above_stack_region(self):
        memory = empty_memory()
        assert memory.heap_base == memory.program.globals_size + \
            memory.stack_limit

    def test_check_addr_globals(self):
        memory = empty_memory()
        assert not memory.check_addr(0)  # NULL is reserved
        assert memory.check_addr(1)  # the first global

    def test_check_addr_dead_stack(self):
        memory = empty_memory()
        assert not memory.check_addr(memory.stack_top + 10)

    def test_check_addr_negative(self):
        memory = empty_memory()
        assert not memory.check_addr(-1)

    def test_check_addr_unallocated_heap(self):
        memory = empty_memory()
        assert not memory.check_addr(memory.heap_base + 5)

    def test_block_containment(self):
        memory = empty_memory()
        base = memory.heap_alloc(10)
        assert memory.heap_block_containing(base) == (base, 10)
        assert memory.heap_block_containing(base + 9) == (base, 10)
        assert memory.heap_block_containing(base + 10) is None

    def test_heap_names_are_sequential(self):
        memory = empty_memory()
        a = memory.heap_alloc(2)
        b = memory.heap_alloc(2)
        assert memory.allocations[a][1] == "heap#1"
        assert memory.allocations[b][1] == "heap#2"

    def test_addr_to_name_heap_element(self):
        memory = empty_memory()
        base = memory.heap_alloc(4)
        assert memory.addr_to_name(base + 2) == "heap#1[2]"

    def test_addr_to_name_single_word_block(self):
        memory = empty_memory()
        base = memory.heap_alloc(1)
        assert memory.addr_to_name(base) == "heap#1"

    def test_addr_to_name_freed_heap(self):
        memory = empty_memory()
        base = memory.heap_alloc(2)
        memory.heap_free(base)
        assert memory.addr_to_name(base).startswith("heap+")


@st.composite
def alloc_free_script(draw):
    """A random interleaving of allocations (positive sizes) and frees
    (by index into the allocations made so far)."""
    ops = draw(st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(1, 32)),
            st.tuples(st.just("free"), st.integers(0, 200)),
        ),
        min_size=1, max_size=60))
    return ops


class TestAllocatorProperties:
    @given(alloc_free_script())
    @settings(max_examples=60, deadline=None)
    def test_live_blocks_never_overlap(self, script):
        memory = empty_memory()
        live: dict[int, int] = {}
        order: list[int] = []
        for op, arg in script:
            if op == "alloc":
                base = memory.heap_alloc(arg)
                assert base >= memory.heap_base
                for other, size in live.items():
                    assert base + arg <= other or other + size <= base, \
                        "overlapping live blocks"
                live[base] = arg
                order.append(base)
            elif order:
                base = order.pop(arg % len(order))
                lo, hi = memory.heap_free(base)
                assert (lo, hi) == (base, base + live.pop(base))

    @given(alloc_free_script())
    @settings(max_examples=60, deadline=None)
    def test_containment_matches_live_set(self, script):
        memory = empty_memory()
        live: dict[int, int] = {}
        order: list[int] = []
        for op, arg in script:
            if op == "alloc":
                base = memory.heap_alloc(arg)
                live[base] = arg
                order.append(base)
            elif order:
                base = order.pop(arg % len(order))
                memory.heap_free(base)
                del live[base]
        for base, size in live.items():
            assert memory.heap_block_containing(base) == (base, size)
            assert memory.check_addr(base + size - 1)
        # One-past-the-end of the top block is dead unless another block
        # starts there.
        if live:
            top = max(live)
            end = top + live[top]
            assert memory.heap_block_containing(end) is None or \
                end in live

    @given(st.lists(st.integers(1, 16), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_alloc_free_alloc_recycles_exact_size(self, sizes):
        memory = empty_memory()
        bases = [memory.heap_alloc(size) for size in sizes]
        for base in bases:
            memory.heap_free(base)
        # Re-allocating the same sizes must not grow the heap.
        top_before = memory.heap_top
        for size in sizes:
            memory.heap_alloc(size)
        assert memory.heap_top == top_before
