"""Execution semantics of pointers: C-equivalent behaviour end to end."""

import pytest

from repro.runtime.errors import MiniCRuntimeError
from tests.conftest import outputs, run


class TestBasicPointers:
    def test_addr_of_and_deref_scalar(self):
        value, _ = run("""
        int main() {
            int x = 5;
            int *p = &x;
            *p = *p + 2;
            return x;
        }
        """)
        assert value == 7

    def test_pointer_to_global(self):
        value, _ = run("""
        int g = 10;
        int main() {
            int *p = &g;
            *p *= 3;
            return g;
        }
        """)
        assert value == 30

    def test_pointer_indexing_reads_like_array(self):
        value, _ = run("""
        int a[4];
        int main() {
            int i;
            for (i = 0; i < 4; i++) { a[i] = i * i; }
            int *p = a;
            return p[0] + p[1] + p[2] + p[3];
        }
        """)
        assert value == 0 + 1 + 4 + 9

    def test_pointer_arithmetic_matches_indexing(self):
        value, _ = run("""
        int a[6];
        int main() {
            int i;
            for (i = 0; i < 6; i++) { a[i] = i + 100; }
            int *p = &a[2];
            assert(*(p + 1) == p[1]);
            assert(*(p - 1) == a[1]);
            return *(p + 3);
        }
        """)
        assert value == 105

    def test_swap_through_pointers(self):
        assert outputs("""
        void swap(int *x, int *y) {
            int tmp = *x;
            *x = *y;
            *y = tmp;
        }
        int main() {
            int a = 1;
            int b = 2;
            swap(&a, &b);
            print(a, b);
            return 0;
        }
        """) == [(2, 1)]

    def test_interior_pointer_into_array_param(self):
        # The gzip pattern: flush_block(&window[k], ...).
        value, _ = run("""
        int window[16];
        int f(int buf[], int n) {
            int total = 0;
            int i;
            for (i = 0; i < n; i++) { total += buf[i]; }
            return total;
        }
        int main() {
            int i;
            for (i = 0; i < 16; i++) { window[i] = i; }
            return f(&window[4], 4);
        }
        """)
        assert value == 4 + 5 + 6 + 7

    def test_pointer_param_accepts_array_name(self):
        value, _ = run("""
        int sum3(int *p) { return p[0] + p[1] + p[2]; }
        int buf[3];
        int main() {
            buf[0] = 1; buf[1] = 2; buf[2] = 4;
            return sum3(buf);
        }
        """)
        assert value == 7

    def test_array_param_accepts_pointer_value(self):
        value, _ = run("""
        int first(int a[]) { return a[0]; }
        int main() {
            int *p = malloc(2);
            p[0] = 42;
            int v = first(p);
            free(p);
            return v;
        }
        """)
        assert value == 42

    def test_pointer_reassignment_walks_array(self):
        value, _ = run("""
        int a[5];
        int main() {
            int i;
            for (i = 0; i < 5; i++) { a[i] = i; }
            int *p = a;
            int total = 0;
            while (p != &a[5 - 1] + 1) {
                total += *p;
                p = p + 1;
            }
            return total;
        }
        """)
        assert value == 10

    def test_double_indirection(self):
        value, _ = run("""
        int main() {
            int x = 9;
            int *p = &x;
            int **q = &p;
            **q = 11;
            return x;
        }
        """)
        assert value == 11

    def test_pointer_comparison_and_null(self):
        value, _ = run("""
        int main() {
            int *p = 0;
            if (p == 0) { p = malloc(1); }
            *p = 5;
            int v = *p;
            free(p);
            return v;
        }
        """)
        assert value == 5

    def test_function_returning_pointer(self):
        value, _ = run("""
        int *make_pair(int a, int b) {
            int *p = malloc(2);
            p[0] = a;
            p[1] = b;
            return p;
        }
        int main() {
            int *pair = make_pair(3, 4);
            int v = pair[0] * pair[1];
            free(pair);
            return v;
        }
        """)
        assert value == 12


class TestPointerErrors:
    def test_deref_null_is_error(self):
        with pytest.raises(MiniCRuntimeError):
            run("int main() { int *p = 0; return *p; }")

    def test_deref_dead_stack_is_error(self):
        with pytest.raises(MiniCRuntimeError):
            run("""
            int *escape() {
                int local = 3;
                return &local;
            }
            int main() {
                int *p = escape();
                return *p;
            }
            """)

    def test_wild_store_is_error(self):
        with pytest.raises(MiniCRuntimeError):
            run("int main() { int *p = 99999999; *p = 1; return 0; }")

    def test_scalar_cannot_be_indexed(self):
        from repro.lang.errors import SemanticError
        with pytest.raises(SemanticError):
            run("int main() { int x; return x[0]; }")

    def test_pointer_variable_can_be_indexed(self):
        value, _ = run("""
        int a[2];
        int main() {
            a[1] = 8;
            int *p = a;
            return p[1];
        }
        """)
        assert value == 8
