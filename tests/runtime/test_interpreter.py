"""Interpreter semantics tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.errors import MiniCRuntimeError, StepLimitExceeded
from repro.runtime.interpreter import c_div, run_source
from tests.conftest import outputs


def result(expr: str, prelude: str = "") -> int:
    source = f"{prelude}\nint main() {{ return {expr}; }}"
    value, _ = run_source(source)
    return value


def printed(source: str):
    return outputs(source)


class TestArithmetic:
    def test_basics(self):
        assert result("2 + 3 * 4") == 14
        assert result("(2 + 3) * 4") == 20
        assert result("10 - 7") == 3

    def test_division_truncates_toward_zero(self):
        assert result("7 / 2") == 3
        assert result("-7 / 2") == -3
        assert result("7 / -2") == -3
        assert result("-7 / -2") == 3

    def test_remainder_matches_c(self):
        assert result("7 % 3") == 1
        assert result("-7 % 3") == -1
        assert result("7 % -3") == 1
        assert result("-7 % -3") == -1

    def test_division_by_zero_traps(self):
        with pytest.raises(MiniCRuntimeError):
            result("1 / 0")
        with pytest.raises(MiniCRuntimeError):
            result("1 % 0")

    def test_64bit_wraparound(self):
        big = (1 << 62)
        assert result(f"{big} + {big} + {big} + {big}") == 0
        assert result(f"{big} * 4") == 0
        assert result(f"({big} * 2 - 1) + 1") == -(1 << 63)

    def test_shifts(self):
        assert result("1 << 10") == 1024
        assert result("-8 >> 1") == -4  # arithmetic shift
        assert result("1 << 64") == 1  # count masked to 0..63

    def test_bitwise(self):
        assert result("12 & 10") == 8
        assert result("12 | 10") == 14
        assert result("12 ^ 10") == 6
        assert result("~0") == -1

    def test_comparisons_produce_01(self):
        assert result("3 < 4") == 1
        assert result("4 <= 3") == 0
        assert result("4 == 4") == 1
        assert result("4 != 4") == 0

    def test_unary(self):
        assert result("-(3)") == -3
        assert result("!5") == 0
        assert result("!0") == 1

    @given(st.integers(-2**40, 2**40), st.integers(-2**20, 2**20))
    def test_c_division_identity(self, a, b):
        if b == 0:
            return
        q = c_div(a, b)
        r = a - q * b
        assert q * b + r == a
        assert abs(r) < abs(b)
        # C99: remainder has the sign of the dividend (or is zero).
        assert r == 0 or (r > 0) == (a > 0)


class TestControlFlow:
    def test_if_else(self):
        assert printed("""
        int main() {
            int x = 5;
            if (x > 3) print(1); else print(2);
            if (x > 9) print(3); else print(4);
            return 0;
        }
        """) == [(1,), (4,)]

    def test_while_and_do_while(self):
        assert printed("""
        int main() {
            int i = 0; int n = 0;
            while (i < 3) { i++; n += 10; }
            do { n++; } while (0);
            print(i, n);
            return 0;
        }
        """) == [(3, 31)]

    def test_do_while_runs_at_least_once(self):
        value, _ = run_source(
            "int main() { int x = 0; do { x = 7; } while (0); return x; }")
        assert value == 7

    def test_for_with_break_continue(self):
        assert printed("""
        int main() {
            int s = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2 == 0) continue;
                if (i > 8) break;
                s += i;
            }
            print(s);
            return 0;
        }
        """) == [(1 + 3 + 5 + 7,)]

    def test_nested_loop_break_only_inner(self):
        assert printed("""
        int main() {
            int count = 0;
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 10; j++) {
                    if (j == 2) break;
                    count++;
                }
            }
            print(count);
            return 0;
        }
        """) == [(6,)]

    def test_short_circuit_skips_side_effects(self):
        assert printed("""
        int calls;
        int bump() { calls++; return 1; }
        int main() {
            int a = 0;
            if (a && bump()) { }
            if (a || bump()) { }
            print(calls);
            return 0;
        }
        """) == [(1,)]

    def test_ternary(self):
        value, _ = run_source(
            "int main() { int a = 5; return a > 3 ? 10 : 20; }")
        assert value == 10

    def test_early_return_in_loop(self):
        value, _ = run_source("""
        int find(int limit) {
            for (int i = 0; i < limit; i++) {
                if (i * i > 50) return i;
            }
            return -1;
        }
        int main() { return find(100); }
        """)
        assert value == 8


class TestFunctionsAndMemory:
    def test_recursion(self):
        value, _ = run_source("""
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(12); }
        """)
        assert value == 144

    def test_deep_recursion_beyond_python_stack(self):
        value, _ = run_source("""
        int depth(int n) {
            if (n == 0) return 0;
            return 1 + depth(n - 1);
        }
        int main() { return depth(5000) % 256; }
        """)
        assert value == 5000 % 256

    def test_mutual_recursion(self):
        # Signatures are collected before bodies are lowered, so mutual
        # recursion needs no forward declarations.
        value, _ = run_source("""
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
        int main() { return is_even(10) * 10 + is_odd(7); }
        """)
        assert value == 11

    def test_array_passed_by_reference(self):
        assert printed("""
        int buf[5];
        void fill(int a[], int n) {
            for (int i = 0; i < n; i++) a[i] = i * i;
        }
        int sum(int a[], int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += a[i];
            return s;
        }
        int main() {
            fill(buf, 5);
            print(sum(buf, 5));
            return 0;
        }
        """) == [(0 + 1 + 4 + 9 + 16,)]

    def test_local_array_passed_through_two_levels(self):
        assert printed("""
        void bump(int a[]) { a[2] += 5; }
        void relay(int a[]) { bump(a); }
        int main() {
            int local[4];
            local[2] = 10;
            relay(local);
            print(local[2]);
            return 0;
        }
        """) == [(15,)]

    def test_aliasing_through_params(self):
        # Two parameter names bound to the same array: writes through one
        # are visible through the other (the paper's aliasing concern).
        assert printed("""
        int buf[3];
        int probe(int a[], int b[]) { a[0] = 41; b[0]++; return b[0]; }
        int main() { print(probe(buf, buf)); return 0; }
        """) == [(42,)]

    def test_locals_are_zero_initialized(self):
        value, _ = run_source(
            "int main() { int x; int a[3]; return x + a[0] + a[2]; }")
        assert value == 0

    def test_globals_init_and_persistence(self):
        assert printed("""
        int counter = 100;
        void tick() { counter++; }
        int main() { tick(); tick(); print(counter); return 0; }
        """) == [(102,)]

    def test_out_of_bounds_read_traps(self):
        with pytest.raises(MiniCRuntimeError):
            run_source("int buf[3]; int main() { return buf[3]; }")

    def test_out_of_bounds_negative_traps(self):
        with pytest.raises(MiniCRuntimeError):
            run_source("int buf[3]; int main() { int i = -1; "
                       "return buf[i]; }")

    def test_bounds_checked_through_reference(self):
        with pytest.raises(MiniCRuntimeError):
            run_source("""
            int get(int a[], int i) { return a[i]; }
            int main() { int local[2]; return get(local, 5); }
            """)

    def test_assert_builtin(self):
        run_source("int main() { assert(1 == 1); return 0; }")
        with pytest.raises(MiniCRuntimeError):
            run_source("int main() { assert(0); return 0; }")

    def test_step_limit(self):
        with pytest.raises(StepLimitExceeded):
            run_source("int main() { while (1) { } return 0; }",
                       max_steps=10_000)

    def test_increment_semantics(self):
        assert printed("""
        int main() {
            int i = 5;
            print(i++, i);
            print(++i, i);
            print(i--, --i);
            return 0;
        }
        """) == [(5, 6), (7, 7), (7, 5)]

    def test_postincrement_as_array_index(self):
        # The gzip idiom: outbuf[outcnt++] = value.
        assert printed("""
        int buf[4];
        int n;
        int main() {
            buf[n++] = 10;
            buf[n++] = 20;
            print(n, buf[0], buf[1]);
            return 0;
        }
        """) == [(2, 10, 20)]

    def test_compound_assign_evaluates_index_once(self):
        assert printed("""
        int buf[8];
        int idx;
        int next() { return idx++; }
        int main() {
            buf[next()] += 5;
            print(idx, buf[0]);
            return 0;
        }
        """) == [(1, 5)]


class TestDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 50), st.integers(1, 13))
    def test_lcg_checksum_matches_python(self, n, seed):
        source = f"""
        int main() {{
            int state = {seed};
            int acc = 0;
            for (int i = 0; i < {n}; i++) {{
                state = (state * 1103515245 + 12345) % 2147483648;
                acc = (acc + state) % 1000000007;
            }}
            print(acc);
            return 0;
        }}
        """
        state, acc = seed, 0
        for _ in range(n):
            state = (state * 1103515245 + 12345) % 2147483648
            acc = (acc + state) % 1000000007
        assert printed(source) == [(acc,)]
