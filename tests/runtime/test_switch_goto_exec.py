"""Execution semantics of `switch` (C fall-through rules) and `goto`."""

import pytest

from repro.lang.errors import SemanticError
from tests.conftest import outputs, run


class TestSwitchExecution:
    def test_selects_matching_case(self):
        value, _ = run("""
        int pick(int x) {
            switch (x) {
                case 1: return 10;
                case 2: return 20;
                case 3: return 30;
            }
            return -1;
        }
        int main() { return pick(2); }
        """)
        assert value == 20

    def test_no_match_no_default_skips(self):
        value, _ = run("""
        int main() {
            int y = 7;
            switch (99) { case 1: y = 1; }
            return y;
        }
        """)
        assert value == 7

    def test_default_taken_when_no_match(self):
        value, _ = run("""
        int main() {
            switch (42) {
                case 1: return 1;
                default: return 99;
            }
        }
        """)
        assert value == 99

    def test_fall_through(self):
        value, _ = run("""
        int main() {
            int total = 0;
            switch (2) {
                case 1: total += 1;
                case 2: total += 2;
                case 3: total += 4;
                default: total += 8;
            }
            return total;
        }
        """)
        assert value == 2 + 4 + 8

    def test_break_stops_fall_through(self):
        value, _ = run("""
        int main() {
            int total = 0;
            switch (1) {
                case 1: total += 1; break;
                case 2: total += 2;
            }
            return total;
        }
        """)
        assert value == 1

    def test_default_in_middle_fall_through(self):
        # C semantics: default in the middle falls through to case 5.
        value, _ = run("""
        int main() {
            int total = 0;
            switch (77) {
                case 1: total += 1;
                default: total += 2;
                case 5: total += 4;
            }
            return total;
        }
        """)
        assert value == 6

    def test_empty_cases_share_body(self):
        value, _ = run("""
        int classify(int c) {
            switch (c) {
                case 0:
                case 1:
                case 2: return 100;
                case 3: return 200;
            }
            return 300;
        }
        int main() {
            return classify(0) + classify(1) + classify(3) + classify(9);
        }
        """)
        assert value == 100 + 100 + 200 + 300

    def test_break_in_switch_inside_loop_stays_in_loop(self):
        value, _ = run("""
        int main() {
            int i;
            int total = 0;
            for (i = 0; i < 4; i++) {
                switch (i % 2) {
                    case 0: total += 10; break;
                    case 1: total += 1; break;
                }
            }
            return total;
        }
        """)
        assert value == 22

    def test_continue_inside_switch_targets_loop(self):
        value, _ = run("""
        int main() {
            int i;
            int total = 0;
            for (i = 0; i < 5; i++) {
                switch (i) {
                    case 2: continue;
                    default: break;
                }
                total += i;
            }
            return total;
        }
        """)
        assert value == 0 + 1 + 3 + 4

    def test_scrutinee_evaluated_once(self):
        assert outputs("""
        int calls;
        int effect() { calls++; return 2; }
        int main() {
            switch (effect()) {
                case 1: break;
                case 2: break;
                case 3: break;
            }
            print(calls);
            return 0;
        }
        """) == [(1,)]

    def test_nested_switch(self):
        value, _ = run("""
        int main() {
            switch (1) {
                case 1:
                    switch (2) {
                        case 2: return 22;
                        default: return 20;
                    }
                case 3: return 3;
            }
            return 0;
        }
        """)
        assert value == 22

    def test_constant_case_expressions(self):
        value, _ = run("""
        int main() {
            switch (12) {
                case 4 * 3: return 1;
                default: return 0;
            }
        }
        """)
        assert value == 1

    def test_duplicate_case_values_rejected(self):
        with pytest.raises(SemanticError):
            run("int main() { switch (1) { case 2: return 1; "
                "case 1 + 1: return 2; } return 0; }")

    def test_non_constant_case_rejected(self):
        with pytest.raises(SemanticError):
            run("int main() { int x = 1; switch (1) "
                "{ case x: return 1; } return 0; }")

    def test_break_outside_loop_or_switch_rejected(self):
        with pytest.raises(SemanticError):
            run("int main() { break; return 0; }")

    def test_continue_inside_switch_only_rejected(self):
        with pytest.raises(SemanticError):
            run("int main() { switch (1) { case 1: continue; } return 0; }")


class TestGotoExecution:
    def test_forward_goto_skips(self):
        value, _ = run("""
        int main() {
            int x = 1;
            goto out;
            x = 99;
            out:
            return x;
        }
        """)
        assert value == 1

    def test_backward_goto_loops(self):
        value, _ = run("""
        int main() {
            int i = 0;
            int total = 0;
            top:
            total += i;
            i++;
            if (i < 5) { goto top; }
            return total;
        }
        """)
        assert value == 10

    def test_goto_out_of_nested_loops(self):
        value, _ = run("""
        int main() {
            int i;
            int j;
            int hits = 0;
            for (i = 0; i < 10; i++) {
                for (j = 0; j < 10; j++) {
                    hits++;
                    if (i * 10 + j == 23) { goto done; }
                }
            }
            done:
            return hits;
        }
        """)
        assert value == 24

    def test_goto_cleanup_pattern(self):
        # The classic C error-handling idiom.
        value, _ = run("""
        int process(int fail) {
            int *buf = malloc(4);
            int result = 0;
            if (fail) { result = -1; goto cleanup; }
            buf[0] = 5;
            result = buf[0];
            cleanup:
            free(buf);
            return result;
        }
        int main() {
            return process(0) + process(1);
        }
        """)
        assert value == 4

    def test_undefined_label_rejected(self):
        with pytest.raises(SemanticError):
            run("int main() { goto nowhere; return 0; }")

    def test_duplicate_label_rejected(self):
        with pytest.raises(SemanticError):
            run("int main() { x: return 0; x: return 1; }")

    def test_labels_are_function_scoped(self):
        value, _ = run("""
        int f() { goto end; end: return 1; }
        int g() { goto end; end: return 2; }
        int main() { return f() + g(); }
        """)
        assert value == 3
