"""Lexer unit tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenType


def types(source):
    return [t.type for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].type is TokenType.EOF

    def test_integer_literal(self):
        assert values("42") == [42]

    def test_hex_literal(self):
        assert values("0xff 0X10") == [255, 16]

    def test_char_literal(self):
        assert values("'a' '\\n' '\\0' '\\\\'") == [97, 10, 0, 92]

    def test_identifier_and_keyword(self):
        toks = tokenize("while whilex _x x1")
        assert toks[0].type is TokenType.KW_WHILE
        assert toks[1].type is TokenType.IDENT
        assert toks[1].value == "whilex"
        assert toks[2].value == "_x"
        assert toks[3].value == "x1"

    def test_all_keywords(self):
        source = ("int void if else while do for break continue return "
                  "switch case default goto")
        expected = [
            TokenType.KW_INT, TokenType.KW_VOID, TokenType.KW_IF,
            TokenType.KW_ELSE, TokenType.KW_WHILE, TokenType.KW_DO,
            TokenType.KW_FOR, TokenType.KW_BREAK, TokenType.KW_CONTINUE,
            TokenType.KW_RETURN, TokenType.KW_SWITCH, TokenType.KW_CASE,
            TokenType.KW_DEFAULT, TokenType.KW_GOTO, TokenType.EOF,
        ]
        assert types(source) == expected

    def test_keyword_prefixed_identifiers_are_identifiers(self):
        source = "switcher gotcha defaulted cases"
        assert types(source) == [TokenType.IDENT] * 4 + [TokenType.EOF]


class TestOperators:
    def test_maximal_munch(self):
        assert types("<<=")[:-1] == [TokenType.LSHIFT_ASSIGN]
        assert types("<<")[:-1] == [TokenType.LSHIFT]
        assert types("<=")[:-1] == [TokenType.LE]
        assert types("< =")[:-1] == [TokenType.LT, TokenType.ASSIGN]

    def test_increment_vs_plus(self):
        assert types("++ + +=")[:-1] == [
            TokenType.PLUS_PLUS, TokenType.PLUS, TokenType.PLUS_ASSIGN]

    def test_logical_vs_bitwise(self):
        assert types("&& & || |")[:-1] == [
            TokenType.AND_AND, TokenType.AMP, TokenType.OR_OR,
            TokenType.PIPE]

    def test_compound_assignments(self):
        source = "+= -= *= /= %= &= |= ^= <<= >>="
        kinds = types(source)[:-1]
        assert len(kinds) == 10
        assert len(set(kinds)) == 10


class TestTrivia:
    def test_line_comment(self):
        assert values("1 // comment 2\n3") == [1, 3]

    def test_block_comment(self):
        assert values("1 /* 2\n2 */ 3") == [1, 3]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("1 /* never ends")

    def test_positions(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_string_literal_rejected(self):
        with pytest.raises(LexError):
            tokenize('"hello"')

    def test_identifier_cannot_start_with_digit(self):
        with pytest.raises(LexError):
            tokenize("1abc")

    def test_bad_escape(self):
        with pytest.raises(LexError):
            tokenize("'\\q'")

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            tokenize("'a")

    def test_empty_hex(self):
        with pytest.raises(LexError):
            tokenize("0x")


class TestProperties:
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_decimal_round_trip(self, value):
        assert values(str(value)) == [value]

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_hex_round_trip(self, value):
        assert values(hex(value)) == [value]

    @given(st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,12}", fullmatch=True))
    def test_identifiers_survive(self, name):
        toks = tokenize(name)
        assert toks[0].value == name or toks[0].type is not TokenType.IDENT

    @given(st.lists(st.sampled_from(
        ["+", "-", "*", "/", "%", "<", ">", "(", ")", "x", "42", ";"]),
        max_size=30))
    def test_token_stream_always_terminated(self, pieces):
        toks = tokenize(" ".join(pieces))
        assert toks[-1].type is TokenType.EOF
        assert len(toks) == len(pieces) + 1
