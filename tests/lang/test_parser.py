"""Parser unit tests."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse_program


def parse_main_body(stmts: str) -> list[ast.Stmt]:
    program = parse_program("int main() {" + stmts + "}")
    return program.function("main").body.stmts


def parse_expr(text: str) -> ast.Expr:
    (stmt,) = parse_main_body(text + ";")
    assert isinstance(stmt, ast.ExprStmt)
    return stmt.expr


class TestTopLevel:
    def test_global_scalar(self):
        program = parse_program("int g; int main() { return 0; }")
        assert program.globals[0].name == "g"
        assert program.globals[0].size is None

    def test_global_array_and_init(self):
        program = parse_program(
            "int a[10]; int b = 5; int main() { return 0; }")
        assert program.globals[0].size.value == 10
        assert program.globals[1].init.value == 5

    def test_function_params(self):
        program = parse_program("void f(int a, int buf[]) {} "
                                "int main() { return 0; }")
        fn = program.function("f")
        assert [p.name for p in fn.params] == ["a", "buf"]
        assert [p.is_array for p in fn.params] == [False, True]
        assert not fn.returns_value

    def test_void_parameter_list(self):
        program = parse_program("int f(void) { return 1; } "
                                "int main() { return 0; }")
        assert program.function("f").params == []

    def test_missing_declaration(self):
        with pytest.raises(ParseError):
            parse_program("42;")


class TestStatements:
    def test_if_else(self):
        (stmt,) = parse_main_body("if (1) { } else { }")
        assert isinstance(stmt, ast.If)
        assert stmt.els is not None

    def test_dangling_else_binds_inner(self):
        (stmt,) = parse_main_body("if (1) if (2) return; else return;")
        assert stmt.els is None
        assert isinstance(stmt.then, ast.If)
        assert stmt.then.els is not None

    def test_while(self):
        (stmt,) = parse_main_body("while (x) x = x - 1;")
        assert isinstance(stmt, ast.While)

    def test_do_while(self):
        (stmt,) = parse_main_body("do x++; while (x < 10);")
        assert isinstance(stmt, ast.DoWhile)

    def test_for_full(self):
        (stmt,) = parse_main_body("for (int i = 0; i < 10; i++) { }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDeclStmt)
        assert stmt.cond is not None
        assert stmt.step is not None

    def test_for_empty_clauses(self):
        (stmt,) = parse_main_body("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_for_expression_init(self):
        (stmt,) = parse_main_body("for (i = 0; i < 3; i++) ;")
        assert isinstance(stmt.init, ast.ExprStmt)

    def test_break_continue_return(self):
        stmts = parse_main_body("break; continue; return 3; return;")
        assert isinstance(stmts[0], ast.Break)
        assert isinstance(stmts[1], ast.Continue)
        assert stmts[2].value.value == 3
        assert stmts[3].value is None

    def test_local_array_decl(self):
        (stmt,) = parse_main_body("int buf[4];")
        assert isinstance(stmt, ast.VarDeclStmt)
        assert stmt.size.value == 4

    def test_empty_statement(self):
        (stmt,) = parse_main_body(";")
        assert isinstance(stmt, ast.Block)
        assert stmt.stmts == []

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse_program("int main() { if (1) {")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.rhs.op == "*"

    def test_precedence_shift_below_add(self):
        expr = parse_expr("1 << 2 + 3")
        assert expr.op == "<<"
        assert expr.rhs.op == "+"

    def test_precedence_bitwise_ladder(self):
        expr = parse_expr("1 | 2 ^ 3 & 4")
        assert expr.op == "|"
        assert expr.rhs.op == "^"
        assert expr.rhs.rhs.op == "&"

    def test_comparison_below_bitand(self):
        # C's historic precedence: & binds tighter than == in MiniC? No —
        # MiniC follows C: == binds tighter than &.
        expr = parse_expr("a & b == c")
        assert expr.op == "&"
        assert expr.rhs.op == "=="

    def test_logical_short_circuit_nodes(self):
        expr = parse_expr("a && b || c")
        assert isinstance(expr, ast.LogicalOp)
        assert expr.op == "||"
        assert expr.lhs.op == "&&"

    def test_assignment_right_associative(self):
        expr = parse_expr("a = b = 1")
        assert isinstance(expr, ast.Assign)
        assert isinstance(expr.value, ast.Assign)

    def test_compound_assignment(self):
        expr = parse_expr("a += 2")
        assert expr.op == "+"

    def test_assignment_target_checked(self):
        with pytest.raises(ParseError):
            parse_expr("1 = 2")

    def test_ternary(self):
        expr = parse_expr("a ? b : c ? d : e")
        assert isinstance(expr, ast.CondExpr)
        assert isinstance(expr.els, ast.CondExpr)

    def test_unary_chain(self):
        expr = parse_expr("-~!x")
        assert expr.op == "-"
        assert expr.operand.op == "~"
        assert expr.operand.operand.op == "!"

    def test_unary_plus_is_identity(self):
        expr = parse_expr("+x")
        assert isinstance(expr, ast.VarRef)

    def test_postfix_increment(self):
        expr = parse_expr("x++")
        assert isinstance(expr, ast.IncDec)
        assert not expr.is_prefix

    def test_prefix_decrement(self):
        expr = parse_expr("--x")
        assert expr.op == "--"
        assert expr.is_prefix

    def test_increment_needs_lvalue(self):
        with pytest.raises(ParseError):
            parse_expr("(a + b)++")

    def test_call_and_index(self):
        expr = parse_expr("f(a, b[i], 3)")
        assert isinstance(expr, ast.Call)
        assert isinstance(expr.args[1], ast.Index)

    def test_parenthesized(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.lhs.op == "+"

    def test_missing_expression(self):
        with pytest.raises(ParseError):
            parse_expr("1 +")
