"""Parsing tests for pointer syntax: declarations, `*`/`&`, lvalues."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse_program
from tests.conftest import ast_shape


def first_stmt(source: str) -> ast.Stmt:
    program = parse_program(source)
    return program.function("main").body.stmts[0]


class TestPointerDeclarations:
    def test_local_pointer(self):
        stmt = first_stmt("int main() { int *p; return 0; }")
        assert isinstance(stmt, ast.VarDeclStmt)
        assert stmt.is_pointer
        assert stmt.size is None

    def test_local_pointer_with_init(self):
        stmt = first_stmt("int g; int main() { int *p = &g; return 0; }")
        assert stmt.is_pointer
        assert isinstance(stmt.init, ast.AddrOf)

    def test_double_star_collapses(self):
        stmt = first_stmt("int main() { int **p; return 0; }")
        assert stmt.is_pointer

    def test_space_between_star_and_name(self):
        stmt = first_stmt("int main() { int * p; return 0; }")
        assert stmt.is_pointer

    def test_global_pointer(self):
        program = parse_program("int *gp; int main() { return 0; }")
        assert program.globals[0].is_pointer

    def test_pointer_parameter(self):
        program = parse_program(
            "void f(int *p) { } int main() { return 0; }")
        param = program.function("f").params[0]
        assert param.is_pointer
        assert not param.is_array

    def test_array_parameter_still_parses(self):
        program = parse_program(
            "void f(int a[]) { } int main() { return 0; }")
        param = program.function("f").params[0]
        assert param.is_array
        assert not param.is_pointer

    def test_pointer_return_type(self):
        program = parse_program("int *f() { return 0; } "
                                "int main() { return 0; }")
        assert program.function("f").returns_value

    def test_array_of_pointers_rejected(self):
        with pytest.raises(ParseError):
            parse_program("int main() { int *a[4]; return 0; }")

    def test_global_array_of_pointers_rejected(self):
        with pytest.raises(ParseError):
            parse_program("int *a[4]; int main() { return 0; }")

    def test_pointer_array_param_rejected(self):
        with pytest.raises(ParseError):
            parse_program("void f(int *a[]) { } int main() { return 0; }")


class TestDerefAndAddrOf:
    def test_deref_expression(self):
        stmt = first_stmt("int main() { int *p; return *p; }")
        # second statement is the return
        program = parse_program("int main() { int *p; return *p; }")
        ret = program.function("main").body.stmts[1]
        assert isinstance(ret.value, ast.Deref)

    def test_deref_binds_tighter_than_binary_star(self):
        program = parse_program("int main() { int *p; return *p * *p; }")
        ret = program.function("main").body.stmts[1]
        assert isinstance(ret.value, ast.BinOp)
        assert ret.value.op == "*"
        assert isinstance(ret.value.lhs, ast.Deref)
        assert isinstance(ret.value.rhs, ast.Deref)

    def test_addr_of_variable(self):
        program = parse_program("int g; int main() { return &g != 0; }")
        ret = program.function("main").body.stmts[0]
        assert isinstance(ret.value.lhs, ast.AddrOf)

    def test_addr_of_array_element(self):
        program = parse_program(
            "int a[4]; int main() { int *p = &a[2]; return 0; }")
        decl = program.function("main").body.stmts[0]
        assert isinstance(decl.init, ast.AddrOf)
        assert isinstance(decl.init.operand, ast.Index)

    def test_addr_of_deref_allowed(self):
        program = parse_program(
            "int main() { int *p; int *q = &*p; return 0; }")
        decl = program.function("main").body.stmts[1]
        assert isinstance(decl.init, ast.AddrOf)

    def test_addr_of_literal_rejected(self):
        with pytest.raises(ParseError):
            parse_program("int main() { return &5; }")

    def test_addr_of_call_rejected(self):
        with pytest.raises(ParseError):
            parse_program("int f() { return 0; } "
                          "int main() { return &f(); }")

    def test_deref_is_assignable(self):
        stmt = first_stmt("int main() { int *p; *p = 3; return 0; }")
        program = parse_program("int main() { int *p; *p = 3; return 0; }")
        assign = program.function("main").body.stmts[1].expr
        assert isinstance(assign, ast.Assign)
        assert isinstance(assign.target, ast.Deref)

    def test_deref_compound_assign(self):
        program = parse_program("int main() { int *p; *p += 3; return 0; }")
        assign = program.function("main").body.stmts[1].expr
        assert assign.op == "+"
        assert isinstance(assign.target, ast.Deref)

    def test_deref_incdec(self):
        program = parse_program("int main() { int *p; (*p)++; return 0; }")
        incdec = program.function("main").body.stmts[1].expr
        assert isinstance(incdec, ast.IncDec)
        assert isinstance(incdec.target, ast.Deref)

    def test_deref_of_parenthesized_arith(self):
        program = parse_program(
            "int main() { int *p; return *(p + 1); }")
        ret = program.function("main").body.stmts[1]
        assert isinstance(ret.value, ast.Deref)
        assert isinstance(ret.value.operand, ast.BinOp)

    def test_binary_amp_still_parses(self):
        program = parse_program("int main() { return 6 & 3; }")
        ret = program.function("main").body.stmts[0]
        assert isinstance(ret.value, ast.BinOp)
        assert ret.value.op == "&"


class TestPointerPrettyRoundTrip:
    def roundtrip(self, source: str) -> None:
        from repro.lang.pretty import pretty_print
        first = parse_program(source)
        second = parse_program(pretty_print(first))
        assert ast_shape(first) == ast_shape(second)

    def test_pointer_decls(self):
        self.roundtrip("int *gp; int main() { int *p = gp; return 0; }")

    def test_param_and_deref(self):
        self.roundtrip("void f(int *p) { *p = 1; } "
                       "int main() { int x; f(&x); return x; }")

    def test_addr_of_element(self):
        self.roundtrip("int a[8]; int main() { int *p = &a[3]; "
                       "return *(p + 1); }")

    def test_malloc_free(self):
        self.roundtrip("int main() { int *p = malloc(4); p[0] = 1; "
                       "free(p); return 0; }")
