"""Parsing tests for `switch`, `goto`, and statement labels."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_print
from tests.conftest import ast_shape


def main_stmts(source: str) -> list[ast.Stmt]:
    return parse_program(source).function("main").body.stmts


class TestSwitchParsing:
    def test_basic_switch(self):
        stmts = main_stmts("""
        int main() {
            int x = 2;
            switch (x) {
                case 1: return 10;
                case 2: return 20;
                default: return 0;
            }
        }
        """)
        switch = stmts[1]
        assert isinstance(switch, ast.Switch)
        assert len(switch.cases) == 3
        assert switch.cases[0].value is not None
        assert switch.cases[2].value is None

    def test_fall_through_stmts_attach_to_case(self):
        stmts = main_stmts("""
        int main() {
            int x = 1;
            int y = 0;
            switch (x) {
                case 1:
                    y = 1;
                    y = 2;
                case 2:
                    y = 3;
            }
            return y;
        }
        """)
        switch = stmts[2]
        assert len(switch.cases[0].stmts) == 2
        assert len(switch.cases[1].stmts) == 1

    def test_empty_switch(self):
        stmts = main_stmts("int main() { switch (1) { } return 0; }")
        assert isinstance(stmts[0], ast.Switch)
        assert stmts[0].cases == []

    def test_case_with_no_statements(self):
        stmts = main_stmts("""
        int main() {
            switch (1) { case 1: case 2: return 1; }
            return 0;
        }
        """)
        switch = stmts[0]
        assert switch.cases[0].stmts == []
        assert len(switch.cases[1].stmts) == 1

    def test_duplicate_default_rejected(self):
        with pytest.raises(ParseError):
            parse_program("""
            int main() {
                switch (1) { default: return 1; default: return 2; }
            }
            """)

    def test_statement_before_first_case_rejected(self):
        with pytest.raises(ParseError):
            parse_program("int main() { switch (1) { return 1; } }")

    def test_default_in_middle(self):
        stmts = main_stmts("""
        int main() {
            switch (3) { case 1: return 1; default: return 9;
                         case 2: return 2; }
        }
        """)
        assert stmts[0].cases[1].value is None


class TestGotoParsing:
    def test_goto_and_label(self):
        stmts = main_stmts("""
        int main() {
            goto done;
            done:
            return 0;
        }
        """)
        assert isinstance(stmts[0], ast.Goto)
        assert stmts[0].name == "done"
        assert isinstance(stmts[1], ast.Label)
        assert stmts[1].name == "done"

    def test_label_not_confused_with_ternary(self):
        stmts = main_stmts("int main() { int x = 1 ? 2 : 3; return x; }")
        assert isinstance(stmts[0], ast.VarDeclStmt)

    def test_label_inside_loop(self):
        stmts = main_stmts("""
        int main() {
            int i = 0;
            while (i < 3) { top: i++; }
            return i;
        }
        """)
        assert isinstance(stmts[1], ast.While)

    def test_goto_requires_identifier(self):
        with pytest.raises(ParseError):
            parse_program("int main() { goto 5; }")

    def test_goto_requires_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("int main() { goto out return 0; out: return 1; }")


class TestSwitchGotoPrettyRoundTrip:
    def roundtrip(self, source: str) -> None:
        first = parse_program(source)
        second = parse_program(pretty_print(first))
        assert ast_shape(first) == ast_shape(second)

    def test_switch(self):
        self.roundtrip("""
        int main() {
            int x = 2;
            int y = 0;
            switch (x + 1) {
                case 1: y = 1; break;
                case 2: y = 2;
                default: y = 9; break;
            }
            return y;
        }
        """)

    def test_goto(self):
        self.roundtrip("""
        int main() {
            int i = 0;
            again:
            i++;
            if (i < 5) { goto again; }
            return i;
        }
        """)

    def test_nested_switch(self):
        self.roundtrip("""
        int main() {
            switch (1) {
                case 1:
                    switch (2) { case 2: return 22; }
                case 3: return 3;
            }
            return 0;
        }
        """)
