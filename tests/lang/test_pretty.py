"""Pretty-printer round-trip tests, including a property-based AST fuzz."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast_nodes as ast
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_print
from tests.conftest import ast_shape

L = {"line": 1, "col": 1}


def roundtrip(source: str) -> None:
    first = parse_program(source)
    printed = pretty_print(first)
    second = parse_program(printed)
    assert ast_shape(first) == ast_shape(second), printed


class TestRoundTripExamples:
    def test_simple(self):
        roundtrip("int main() { return 0; }")

    def test_globals(self):
        roundtrip("int g; int a[4]; int c = 12; int main() { return g; }")

    def test_control_flow(self):
        roundtrip("""
        int main() {
            int x = 0;
            for (int i = 0; i < 10; i++) {
                if (i % 2) { x += i; } else { x -= 1; }
                while (x > 100) { x /= 2; }
                do { x++; } while (x < 0);
            }
            return x;
        }
        """)

    def test_dangling_else_disambiguated(self):
        roundtrip("""
        int main() {
            int a = 1;
            if (a) if (a > 1) a = 2; else a = 3;
            return a;
        }
        """)

    def test_expressions(self):
        roundtrip("""
        int f(int a, int b) { return a ? b : a && b || !a; }
        int main() {
            int x = 1;
            x <<= 2; x >>= 1; x |= 7; x &= 14; x ^= 5; x %= 11;
            x = -f(x++, --x) + ~x;
            return x;
        }
        """)

    def test_arrays_and_calls(self):
        roundtrip("""
        int buf[8];
        void fill(int a[], int n) {
            for (int i = 0; i < n; i++) a[i] = i * i;
        }
        int main() { fill(buf, 8); return buf[7]; }
        """)

    def test_empty_for_and_break(self):
        roundtrip("""
        int main() {
            int i = 0;
            for (;;) { i++; if (i > 4) break; else continue; }
            return i;
        }
        """)


# -- property-based fuzz --------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "x", "y"])


def _exprs(depth: int):
    leaf = st.one_of(
        st.integers(min_value=0, max_value=999).map(
            lambda v: ast.IntLit(value=v, **L)),
        _names.map(lambda n: ast.VarRef(name=n, **L)),
    )
    if depth <= 0:
        return leaf
    sub = _exprs(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(["+", "-", "*", "&", "|", "^", "<",
                                   "==", "<<"]), sub, sub).map(
            lambda t: ast.BinOp(op=t[0], lhs=t[1], rhs=t[2], **L)),
        st.tuples(st.sampled_from(["&&", "||"]), sub, sub).map(
            lambda t: ast.LogicalOp(op=t[0], lhs=t[1], rhs=t[2], **L)),
        st.tuples(st.sampled_from(["-", "~", "!"]), sub).map(
            lambda t: ast.UnOp(op=t[0], operand=t[1], **L)),
        st.tuples(sub, sub, sub).map(
            lambda t: ast.CondExpr(cond=t[0], then=t[1], els=t[2], **L)),
        st.tuples(_names, sub).map(
            lambda t: ast.Assign(target=ast.VarRef(name=t[0], **L),
                                 value=t[1], op=None, **L)),
        st.tuples(_names, sub, st.sampled_from(["+", "*", "^"])).map(
            lambda t: ast.Assign(target=ast.VarRef(name=t[0], **L),
                                 value=t[1], op=t[2], **L)),
        st.tuples(_names, st.sampled_from(["++", "--"]),
                  st.booleans()).map(
            lambda t: ast.IncDec(target=ast.VarRef(name=t[0], **L),
                                 op=t[1], is_prefix=t[2], **L)),
        sub.map(lambda e: ast.Deref(operand=e, **L)),
        _names.map(lambda n: ast.AddrOf(
            operand=ast.VarRef(name=n, **L), **L)),
        st.tuples(_names, sub).map(
            lambda t: ast.AddrOf(
                operand=ast.Index(name=t[0], index=t[1], **L), **L)),
        st.tuples(_names, sub).map(
            lambda t: ast.Index(name=t[0], index=t[1], **L)),
        st.tuples(sub, sub).map(
            lambda t: ast.Assign(target=ast.Deref(operand=t[0], **L),
                                 value=t[1], op=None, **L)),
    )


_labels = st.sampled_from(["l1", "l2", "out"])


def _switch(expr, stmts):
    """A switch with unique case values and at most one default arm
    (the parser rejects duplicate defaults)."""
    arm = st.lists(stmts, max_size=2)
    return st.tuples(
        expr,
        st.lists(st.tuples(st.integers(0, 9), arm), max_size=3,
                 unique_by=lambda t: t[0]),
        st.none() | arm,
    ).map(lambda t: ast.Switch(
        scrutinee=t[0],
        cases=[ast.SwitchCase(value=ast.IntLit(value=v, **L),
                              stmts=body, **L) for v, body in t[1]]
              + ([ast.SwitchCase(value=None, stmts=t[2], **L)]
                 if t[2] is not None else []),
        **L))


def _stmts(depth: int):
    expr = _exprs(1)
    leaf = st.one_of(
        expr.map(lambda e: ast.ExprStmt(expr=e, **L)),
        st.just(ast.Return(value=ast.IntLit(value=0, **L), **L)),
        _labels.map(lambda n: ast.Goto(name=n, **L)),
        _labels.map(lambda n: ast.Label(name=n, **L)),
    )
    if depth <= 0:
        return leaf
    sub = st.lists(_stmts(depth - 1), max_size=3).map(
        lambda body: ast.Block(stmts=body, **L))
    return st.one_of(
        leaf,
        st.tuples(expr, sub, st.none() | sub).map(
            lambda t: ast.If(cond=t[0], then=t[1], els=t[2], **L)),
        st.tuples(expr, sub).map(
            lambda t: ast.While(cond=t[0], body=t[1], **L)),
        st.tuples(sub, expr).map(
            lambda t: ast.DoWhile(body=t[0], cond=t[1], **L)),
        st.tuples(expr, expr, sub).map(
            lambda t: ast.For(init=None, cond=t[0], step=t[1],
                              body=t[2], **L)),
        _switch(expr, _stmts(depth - 1)),
    )


_programs = st.lists(_stmts(2), max_size=5).map(lambda body: ast.Program(
    globals=[ast.GlobalDecl(name=n, size=None, init=None, **L)
             for n in ["a", "b", "c"]]
            + [ast.GlobalDecl(name=n, size=None, init=None,
                              is_pointer=True, **L) for n in ["x", "y"]],
    functions=[ast.FuncDecl(name="main", params=[],
                            body=ast.Block(stmts=body, **L),
                            returns_value=True, **L)],
    **L))


class TestRoundTripProperty:
    @settings(max_examples=120, deadline=None)
    @given(_programs)
    def test_parse_pretty_parse_is_identity(self, program):
        printed = pretty_print(program)
        reparsed = parse_program(printed)
        assert ast_shape(reparsed) == ast_shape(program), printed

    @settings(max_examples=60, deadline=None)
    @given(_programs)
    def test_pretty_is_stable(self, program):
        once = pretty_print(program)
        twice = pretty_print(parse_program(once))
        assert once == twice
