"""The what-if advisor analysis: sweep semantics, parity, and the
estimate_speedup differential contract over the bundled workloads."""

from __future__ import annotations

import json

import pytest

from repro.analyses.whatif import parse_worker_counts
from repro.api import Session
from repro.ir.lowering import compile_source
from repro.parallel.estimator import estimate_speedup
from repro.workloads import TABLE3_ORDER, get

SCALE = 0.2

#: Loop with independent iterations + a blocked loop + a helper: every
#: verdict appears, and predicted speedups are non-trivial.
MIXED = """
int results[16];
int chain;
int work(int seed) {
    int acc = seed;
    for (int i = 0; i < 60; i++) acc = (acc * 31 + i) % 65521;
    return acc;
}
int main() {
    for (int f = 0; f < 12; f++) {
        results[f] = work(f);
    }
    for (int g = 0; g < 12; g++) {
        chain = (chain * 7 + results[g]) % 9973;
    }
    print(chain);
    return 0;
}
"""

TRIVIAL = "int main() { return 0; }"


def _advise(source, tmp_path, **kwargs):
    with Session(cache_dir=str(tmp_path)) as session:
        return session.advise(source, **kwargs)


class TestWorkerCountParsing:
    def test_parses_and_strips(self):
        assert parse_worker_counts(" 2, 4 ,8") == (2, 4, 8)

    @pytest.mark.parametrize("bad,match", [
        ("", "at least one"),
        ("2,,4", "empty entry"),
        ("2,x", "not an integer"),
        ("0,4", ">= 1"),
        ("4,4", "duplicate"),
    ])
    def test_rejects(self, bad, match):
        with pytest.raises(ValueError, match=match):
            parse_worker_counts(bad)


class TestSweepSemantics:
    def test_schema_and_ranking(self, tmp_path):
        result = _advise(MIXED, tmp_path, workers=(2, 4))
        data = result.data
        assert data["workers"] == [2, 4]
        assert data["total_instructions"] > 0
        assert data["candidates"], "MIXED has a parallelizable loop"
        for entry in data["candidates"]:
            assert set(entry["speedups"]) == {"2", "4"}
            for point in entry["speedups"].values():
                assert point["t_par"] <= point["t_seq"]
            assert entry["best"]["speedup"] == max(
                p["speedup"] for p in entry["speedups"].values())
        speeds = [c["best"]["speedup"] for c in data["candidates"]]
        assert speeds == sorted(speeds, reverse=True)
        assert data["best"]["name"] == data["candidates"][0]["name"]

    def test_blocked_constructs_skipped_with_reason(self, tmp_path):
        data = _advise(MIXED, tmp_path).data
        blocked = [e for e in data["skipped"]
                   if e["verdict"] == "blocked"]
        assert blocked, "the chain loop must be blocked"
        assert any("violating RAW" in e["reason"] for e in blocked)
        blocked_names = {e["name"] for e in blocked}
        assert blocked_names.isdisjoint(
            {c["name"] for c in data["candidates"]})

    def test_main_is_skipped_not_ranked(self, tmp_path):
        data = _advise(MIXED, tmp_path).data
        assert all(c["name"] != "main" for c in data["candidates"])
        main_entries = [e for e in data["skipped"]
                        if e["name"] == "main"]
        assert main_entries and "entry procedure" in \
            main_entries[0]["reason"]

    def test_zero_candidate_program(self, tmp_path):
        result = _advise(TRIVIAL, tmp_path)
        data = result.data
        assert data["candidates"] == []
        assert data["best"] is None
        assert "no simulatable candidates" in result.to_text()
        json.loads(result.to_json())  # stays serializable

    def test_result_is_json_clean(self, tmp_path):
        payload = json.loads(_advise(MIXED, tmp_path).to_json())
        assert payload["analysis"] == "whatif"
        # Mode-dependent fields must never leak into the data.
        flat = json.dumps(payload)
        assert "trace_path" not in flat and "wall_seconds" not in flat


class TestParityAndModes:
    def test_live_equals_replay(self, tmp_path):
        with Session(cache_dir=str(tmp_path)) as session:
            live = session.advise(MIXED, mode="live")
            replayed = session.advise(MIXED, mode="replay")
        assert live.to_dict() == replayed.to_dict()

    def test_replay_does_not_reexecute(self, tmp_path):
        """The advisor's hot path: one recording, replays only."""
        with Session(cache_dir=str(tmp_path)) as session:
            session.advise(MIXED)
            session.advise(MIXED, workers=(3, 5))
            assert session.stats.live_runs == 0
            assert session.stats.records == 1
            assert session.stats.record_hits >= 1

    def test_extraction_jobs_match_serial(self, tmp_path):
        with Session(cache_dir=str(tmp_path)) as session:
            serial = session.advise(MIXED, jobs=1)
            fanned = session.advise(MIXED, jobs=2)
        assert serial.to_dict() == fanned.to_dict()

    def test_sampled_trace_is_labelled(self, tmp_path):
        from repro.core.alchemist import ProfileOptions

        options = ProfileOptions(sample="interval:10")
        with Session(options, cache_dir=str(tmp_path)) as session:
            result = session.advise(MIXED)
        assert result.data["sampled"] == "interval:10"
        assert "sampled trace" in result.to_text()

    def test_bad_options_rejected_through_session(self, tmp_path):
        from repro.analyses import AnalysisError

        with Session(cache_dir=str(tmp_path)) as session:
            with pytest.raises(AnalysisError, match="duplicate count"):
                session.advise(MIXED, workers=(4, 4))
            with pytest.raises(AnalysisError, match="top must be"):
                session.advise(MIXED, top=0)


@pytest.mark.parametrize("workload", TABLE3_ORDER)
class TestWorkloadSmoke:
    """Acceptance: every Table III workload advises from its replayed
    trace, and each ranked prediction equals a direct
    ``estimate_speedup`` simulation of the same construct with the
    same privatization list."""

    def test_advise_matches_estimate_speedup(self, workload, tmp_path):
        source = get(workload, SCALE).source
        with Session(cache_dir=str(tmp_path)) as session:
            result = session.advise(source, filename=workload,
                                    workers=(4,))
            assert session.stats.live_runs == 0  # replay-only hot path
        data = result.data
        assert data["candidates"] or data["skipped"]
        program = compile_source(source, workload)
        for entry in data["candidates"][:2]:
            direct = estimate_speedup(
                program=program, pc=entry["pc"], workers=4,
                private_vars=tuple(entry["privatized_globals"]))
            assert entry["speedups"]["4"]["speedup"] == \
                pytest.approx(round(direct.speedup, 4))
            assert entry["speedups"]["4"]["t_par"] == direct.t_par
            assert entry["speedups"]["4"]["t_seq"] == direct.t_seq


class TestBatchIntegration:
    def test_whatif_rides_the_batch_driver(self, tmp_path):
        from repro.trace.batch import record_replay_many

        report = record_replay_many(
            ["gzip"], str(tmp_path / "traces"),
            analyses=("whatif",), workers=1, scale=0.1,
            options={"whatif": {"workers": "2,4", "top": 3}})
        assert not report.failures()
        payload = report.replays[0].payload["whatif"]
        assert payload["workers"] == [2, 4]
        assert len(payload["candidates"]) <= 3

    def test_extraction_jobs_inside_pool_workers(self, tmp_path):
        """whatif with jobs>1 inside a daemonic batch worker must fall
        back to serial extraction, not crash on a nested Pool."""
        from repro.trace.batch import record_replay_many

        report = record_replay_many(
            ["gzip", "aes"], str(tmp_path / "traces"),
            analyses=("whatif",), workers=2, scale=0.1,
            options={"whatif": {"jobs": 2}})
        assert not report.failures()
        for result in report.replays:
            assert result.payload["whatif"]["workers"] == [2, 4, 8, 16]


class TestLiveBudget:
    def test_live_mode_respects_a_tight_step_budget(self, tmp_path):
        """The extraction re-run is bounded by the profiled stream's
        length, so a session budget that barely fits the program must
        not trip StepLimitExceeded in the second pass."""
        from repro.core.alchemist import ProfileOptions
        from repro.runtime.interpreter import Interpreter
        from repro.runtime.tracing import NullTracer

        program = compile_source(MIXED)
        interp = Interpreter(program, NullTracer())
        interp.run()
        options = ProfileOptions(max_steps=interp.time + 1)
        with Session(options, cache_dir=str(tmp_path)) as session:
            live = session.advise(MIXED, mode="live")
        with Session(cache_dir=str(tmp_path)) as session:
            replayed = session.advise(MIXED)
        assert live.to_dict() == replayed.to_dict()
