"""Session facade: digest-keyed caching (record at most once), fan-out
over one replay pass, live mode, and option plumbing."""

from __future__ import annotations

import os

import pytest

from repro.analyses import (Analysis, AnalysisError, AnalysisResult,
                            register, unregister)
from repro.api import Session, analyze
from repro.core.alchemist import Alchemist, ProfileOptions

SOURCE = """
int acc;
int main() {
    for (int i = 0; i < 40; i++) {
        acc += i % 7;
    }
    print(acc);
    return 0;
}
"""

OTHER_SOURCE = SOURCE.replace("i < 40", "i < 12")


class TestRecordOnce:
    def test_fanout_records_exactly_once(self, tmp_path):
        with Session(cache_dir=str(tmp_path)) as session:
            report = session.analyze(SOURCE, ["dep", "locality", "hot"])
            assert set(report.results) == {"dep", "locality", "hot"}
            assert session.stats.records == 1
            assert session.stats.live_runs == 0
            assert session.stats.replay_passes == 1

    def test_new_question_reuses_the_recording(self, tmp_path):
        with Session(cache_dir=str(tmp_path)) as session:
            session.analyze(SOURCE, ["dep"])
            session.analyze(SOURCE, ["locality", "counts"])
            assert session.stats.records == 1
            assert session.stats.record_hits == 1
            assert session.stats.replay_passes == 2

    def test_distinct_sources_record_separately(self, tmp_path):
        with Session(cache_dir=str(tmp_path)) as session:
            session.analyze(SOURCE, ["dep"])
            session.analyze(OTHER_SOURCE, ["dep"])
            assert session.stats.records == 2

    def test_compile_cached_by_digest(self, tmp_path):
        with Session(cache_dir=str(tmp_path)) as session:
            session.analyze(SOURCE, ["dep"])
            session.analyze(SOURCE, ["locality"])
            assert session.stats.compiles == 1
            assert session.stats.compile_hits >= 1

    def test_new_filename_recompiles_but_shares_the_trace(self, tmp_path):
        with Session(cache_dir=str(tmp_path)) as session:
            a = session.analyze(SOURCE, ["dep"], filename="a.mc")
            b = session.analyze(SOURCE, ["dep"], filename="b.mc")
            # One recording serves both names...
            assert session.stats.records == 1
        # ...but each report attributes to its own file.
        assert a["dep"].payload.program.filename == "a.mc"
        assert b["dep"].payload.program.filename == "b.mc"

    def test_trace_files_land_in_cache_dir(self, tmp_path):
        with Session(cache_dir=str(tmp_path)) as session:
            report = session.analyze(SOURCE, ["dep"])
            assert report.trace_path is not None
            assert os.path.dirname(report.trace_path) == str(tmp_path)
            assert os.path.exists(report.trace_path)

    def test_private_tmpdir_removed_on_close(self):
        session = Session()
        report = session.analyze(SOURCE, ["dep"])
        assert os.path.exists(report.trace_path)
        session.close()
        assert not os.path.exists(report.trace_path)


class TestModes:
    def test_live_mode_never_records(self, tmp_path):
        with Session(cache_dir=str(tmp_path)) as session:
            report = session.analyze(SOURCE, ["dep", "counts"],
                                     mode="live")
            assert session.stats.records == 0
            assert session.stats.live_runs == 1
            assert report.trace_path is None
            assert set(report.modes.values()) == {"live"}

    def test_one_live_run_feeds_every_analysis(self, tmp_path):
        with Session(cache_dir=str(tmp_path)) as session:
            session.analyze(SOURCE, ["dep", "locality", "hot", "counts"],
                            mode="live")
            assert session.stats.live_runs == 1

    def test_unknown_mode_rejected(self):
        with Session() as session:
            with pytest.raises(AnalysisError, match="unknown mode"):
                session.analyze(SOURCE, ["dep"], mode="psychic")

    def test_requires_live_forces_execution_in_auto(self, tmp_path,
                                                    monkeypatch):
        from repro.runtime.interpreter import Interpreter

        executions = []
        original_run = Interpreter.run
        monkeypatch.setattr(
            Interpreter, "run",
            lambda self: (executions.append(1), original_run(self))[1])

        @register
        class NeedsLive(Analysis):
            name = "needs-live-test"
            requires_live = True

            def finish(self, ctx):
                return AnalysisResult(self.name, {"mode": ctx.mode}, "x")

        try:
            with Session(cache_dir=str(tmp_path)) as session:
                report = session.analyze(SOURCE,
                                         ["needs-live-test", "counts"])
                assert report.modes["needs-live-test"] == "live"
                assert report.modes["counts"] == "replay"
                assert session.stats.live_runs == 1
                assert session.stats.records == 1
                # Mixed cold-cache request: ONE execution both records
                # the trace and feeds the live analysis (teed writer).
                assert len(executions) == 1
        finally:
            unregister("needs-live-test")

    def test_requires_live_rejected_in_replay_mode(self):
        @register
        class NeedsLive(Analysis):
            name = "needs-live-test"
            requires_live = True

            def finish(self, ctx):
                return AnalysisResult(self.name, {}, "x")

        try:
            with Session() as session:
                with pytest.raises(AnalysisError, match="requires live"):
                    session.analyze(SOURCE, ["needs-live-test"],
                                    mode="replay")
        finally:
            unregister("needs-live-test")


class TestReportShape:
    def test_results_follow_request_order(self, tmp_path):
        with Session(cache_dir=str(tmp_path)) as session:
            report = session.analyze(SOURCE, ["hot", "dep", "counts"])
        assert list(report.results) == ["hot", "dep", "counts"]

    def test_to_dict_top_level_keys(self, tmp_path):
        with Session(cache_dir=str(tmp_path)) as session:
            report = session.analyze(SOURCE, ["dep", "locality"],
                                     filename="prog.mc")
        data = report.to_dict()
        assert {"file", "digest", "mode", "analyses"} <= set(data)
        assert data["file"] == "prog.mc"
        assert set(data["analyses"]) == {"dep", "locality"}
        assert data["analyses"]["dep"]["constructs"]

    def test_getitem_and_iter(self, tmp_path):
        with Session(cache_dir=str(tmp_path)) as session:
            report = session.analyze(SOURCE, ["dep", "counts"])
        assert report["counts"].data["reads"] > 0
        assert [r.analysis for r in report] == ["dep", "counts"]

    def test_to_text_labels_each_analysis(self, tmp_path):
        with Session(cache_dir=str(tmp_path)) as session:
            report = session.analyze(SOURCE, ["dep", "locality"])
        text = report.to_text()
        assert "== dep (replay) ==" in text
        assert "== locality (replay) ==" in text


class TestOptionPlumbing:
    def test_session_profile_options_reach_dep(self, tmp_path):
        options = ProfileOptions(pool_size=128, track_war_waw=False)
        with Session(options, cache_dir=str(tmp_path)) as session:
            report = session.analyze(SOURCE, ["dep"])
        profile_report = report["dep"].payload
        # RAW-only ablation: no WAR/WAW events were profiled.
        assert profile_report.stats.war_events == 0
        assert profile_report.stats.waw_events == 0

    def test_explicit_options_override_session_defaults(self, tmp_path):
        options = ProfileOptions(track_war_waw=False)
        with Session(options, cache_dir=str(tmp_path)) as session:
            report = session.analyze(
                SOURCE, ["dep"],
                options={"dep": {"track_war_waw": True}})
        assert report["dep"].payload.stats.waw_events > 0

    def test_hot_top_option(self, tmp_path):
        with Session(cache_dir=str(tmp_path)) as session:
            report = session.analyze(SOURCE, ["hot"],
                                     options={"hot": {"top": 2}})
        assert len(report["hot"].payload) <= 2

    def test_options_for_unrequested_analysis_rejected(self):
        with Session() as session:
            with pytest.raises(AnalysisError, match="not requested"):
                # Typo'd key ("hots") must not be silently dropped.
                session.analyze(SOURCE, ["hot"],
                                options={"hots": {"top": 5}})


class TestAgreementWithLegacyEntryPoints:
    def test_dep_payload_matches_alchemist_profile(self, tmp_path):
        live = Alchemist().profile(SOURCE)
        with Session(cache_dir=str(tmp_path)) as session:
            replayed = session.analyze(SOURCE, ["dep"])["dep"].payload
        assert live.exit_value == replayed.exit_value
        assert live.stats.instructions == replayed.stats.instructions
        live_edges = {pc: sorted((h, t, k.value) for h, t, k in p.edges)
                      for pc, p in live.store.profiles.items()}
        rep_edges = {pc: sorted((h, t, k.value) for h, t, k in p.edges)
                     for pc, p in replayed.store.profiles.items()}
        assert live_edges == rep_edges

    def test_oneshot_analyze_helper(self):
        report = analyze(SOURCE, ["counts"])
        assert report["counts"].data["reads"] > 0
        # The session tmpdir is gone; no dangling path is handed out.
        assert report.trace_path is None

    def test_measure_baseline_reaches_live_dep(self, tmp_path):
        options = ProfileOptions(measure_baseline=True)
        with Session(options, cache_dir=str(tmp_path)) as session:
            report = session.analyze(SOURCE, ["dep"], mode="live")
        stats = report["dep"].payload.stats
        assert stats.baseline_seconds is not None
        assert stats.baseline_seconds > 0

    def test_counts_payload_mutation_does_not_corrupt_report(self,
                                                             tmp_path):
        with Session(cache_dir=str(tmp_path)) as session:
            report = session.analyze(SOURCE, ["counts"])
        result = report["counts"]
        reads = result.to_dict()["reads"]
        result.payload["reads"] = -1
        assert result.to_dict()["reads"] == reads

    def test_acceptance_bundled_workload_records_once(self, tmp_path):
        """Acceptance criterion: dep+locality+hot over a bundled
        workload = one recording, three reports."""
        from repro.workloads import get

        workload = get("gzip", 0.25)
        with Session(cache_dir=str(tmp_path)) as session:
            report = session.analyze(workload.source,
                                     ["dep", "locality", "hot"])
            assert session.stats.records == 1
            assert session.stats.live_runs == 0
        assert set(report.results) == {"dep", "locality", "hot"}
        assert all(r.to_dict() for r in report)


class TestSessionParallelReplay:
    def test_jobs_option_runs_parallel_with_identical_results(self):
        from repro.core.alchemist import ProfileOptions
        from repro.workloads import get

        source = get("gzip", 0.2).source
        with Session() as serial_session:
            serial = serial_session.analyze(
                source, ["dep", "locality", "hot"])
        options = ProfileOptions(jobs=3, checkpoints=800)
        with Session(options) as parallel_session:
            parallel = parallel_session.analyze(
                source, ["dep", "locality", "hot"])
            assert parallel_session.stats.parallel_passes == 1
        for name in ("dep", "locality", "hot"):
            assert parallel.modes[name] == "parallel"
            assert parallel[name].to_dict() == serial[name].to_dict()

    def test_jobs_zero_means_auto(self):
        from repro.core.alchemist import ProfileOptions

        options = ProfileOptions(jobs=0, checkpoints=200)
        with Session(options) as session:
            report = session.analyze(SOURCE, ["counts"])
        # Tiny program: parallel may or may not engage depending on
        # seam density, but results must be the ordinary ones.
        assert report["counts"].data["reads"] > 0

    def test_negative_jobs_rejected(self):
        from repro.core.alchemist import ProfileOptions

        with pytest.raises(ValueError):
            ProfileOptions(jobs=-1)
        with pytest.raises(ValueError):
            ProfileOptions(checkpoints=-5)
