"""The unified analysis registry: registration rules, option schemas,
and — the keystone — live-vs-replay parity for *every* registered
analysis, parametrized over the registry so future plugins are covered
automatically."""

from __future__ import annotations

import pytest

from repro.analyses import (Analysis, AnalysisError, AnalysisResult,
                            analysis_names, get_analysis, make_analyses,
                            register, registry, unregister)
from repro.api import Session

#: Functions + nested loops + heap recycling: stresses every hook the
#: builtin analyses consume, including address-name reconstruction.
PARITY_SOURCE = """
int table[64];
int total;

int stir(int v) {
    total = (total * 17 + v) % 9973;
    return total;
}

int main() {
    for (int round = 0; round < 4; round++) {
        int *block = malloc(8);
        for (int i = 0; i < 32; i++) {
            block[i % 8] = table[(i + 5) % 64] + round;
            table[i % 64] = stir(block[i % 8]);
        }
        free(block);
    }
    print(total);
    return 0;
}
"""


class TestRegistration:
    def test_builtins_registered(self):
        assert {"dep", "locality", "hot", "counts", "flat",
                "context"} <= set(analysis_names())

    def test_duplicate_name_rejected(self):
        with pytest.raises(AnalysisError, match="duplicate analysis"):
            @register
            class Duplicate(Analysis):
                name = "dep"

    def test_missing_name_rejected(self):
        with pytest.raises(AnalysisError, match="non-empty 'name'"):
            @register
            class Nameless(Analysis):
                pass

    def test_non_analysis_rejected(self):
        with pytest.raises(AnalysisError, match="Analysis subclass"):
            register(dict)

    def test_register_then_unregister(self):
        @register
        class Scratch(Analysis):
            name = "scratch-registry-test"

            def finish(self, ctx):
                return AnalysisResult(self.name, {}, "")

        try:
            assert get_analysis("scratch-registry-test") is Scratch
            assert "scratch-registry-test" in registry()
        finally:
            unregister("scratch-registry-test")
        assert "scratch-registry-test" not in analysis_names()

    def test_registry_view_is_read_only(self):
        with pytest.raises(TypeError):
            registry()["evil"] = Analysis

    def test_reserved_data_key_rejected(self):
        with pytest.raises(AnalysisError, match="reserved"):
            AnalysisResult(analysis="x", data={"analysis": "evil"},
                           text="")

    def test_failed_consumers_assignment_keeps_the_builtin(self):
        """A bad CONSUMERS[...] write must not evict what was there."""
        from repro.trace.replay import CONSUMERS

        with pytest.raises(AnalysisError, match="Analysis subclass"):
            CONSUMERS["dep"] = dict
        assert "dep" in registry()
        assert get_analysis("dep") is CONSUMERS["dep"]

    def test_legacy_result_protocol_still_replays(self, tmp_path):
        """A pre-registry consumer (old ``result()``/``describe()``
        protocol, reads ``ctx.footer``) must still run end to end."""
        from repro.trace import record_source, replay_trace
        from repro.trace.replay import CONSUMERS, TraceConsumer

        class OldStyle(TraceConsumer):
            name = "old-style-test"

            def __init__(self):
                self.reads = 0

            def on_read(self, addr, pc, timestamp):
                self.reads += 1

            def result(self, ctx):
                return {"reads": self.reads,
                        "exit": ctx.footer.exit_value}

            def describe(self, outcome):
                return f"old-style: {outcome['reads']} reads"

        path = tmp_path / "legacy.trace"
        record_source("int main() { int x = 1; return x; }", path)
        CONSUMERS["old-style-test"] = OldStyle
        try:
            outcome = replay_trace(str(path), ("old-style-test",))
            payload = outcome.results["old-style-test"]
            assert payload["reads"] > 0
            assert payload["exit"] == 1
            assert "old-style:" in outcome.describe()
        finally:
            del CONSUMERS["old-style-test"]

    def test_deprecated_consumers_mapping_still_registers(self):
        """Pre-registry code did ``CONSUMERS[name] = cls``; the shim
        must forward that into the registry (dict overwrite allowed)."""
        from repro.trace.replay import CONSUMERS

        class Legacy(Analysis):
            name = "legacy-consumer-test"

            def finish(self, ctx):
                return AnalysisResult(self.name, {}, "")

        try:
            CONSUMERS["legacy-consumer-test"] = Legacy
            assert "legacy-consumer-test" in CONSUMERS
            assert CONSUMERS["legacy-consumer-test"] is Legacy
            assert get_analysis("legacy-consumer-test") is Legacy
            CONSUMERS["legacy-consumer-test"] = Legacy  # overwrite ok
            assert "dep" in CONSUMERS and len(CONSUMERS) >= 6
        finally:
            del CONSUMERS["legacy-consumer-test"]
        assert "legacy-consumer-test" not in CONSUMERS
        with pytest.raises(KeyError):
            CONSUMERS["legacy-consumer-test"]


class TestHookCoverage:
    def test_replay_dispatch_covers_every_tracer_hook(self):
        """A hook added to Tracer must reach both engines — otherwise
        live and replay silently diverge for analyses using it."""
        from repro.runtime.tracing import TRACER_HOOKS
        from repro.trace.replay import DISPATCHED_HOOKS

        assert set(DISPATCHED_HOOKS) == set(TRACER_HOOKS)


class TestLookup:
    def test_unknown_analysis_lists_every_valid_name(self):
        with pytest.raises(AnalysisError) as excinfo:
            get_analysis("nope")
        message = str(excinfo.value)
        assert "unknown analysis 'nope'" in message
        for name in analysis_names():
            assert name in message

    def test_empty_spec_rejected(self):
        with pytest.raises(AnalysisError, match="no analyses"):
            make_analyses("")

    def test_duplicate_request_rejected(self):
        with pytest.raises(AnalysisError, match="twice"):
            make_analyses("dep,dep")

    def test_spec_parsing_string_and_iterable(self):
        from_string = make_analyses("dep, locality")
        from_list = make_analyses(["dep", "locality"])
        assert [a.name for a in from_string] == ["dep", "locality"]
        assert [a.name for a in from_list] == ["dep", "locality"]


class TestOptions:
    def test_options_reach_the_instance(self):
        (hot,) = make_analyses("hot", {"hot": {"top": 3}})
        assert hot.top == 3

    def test_string_values_coerced(self):
        (hot,) = make_analyses("hot", {"hot": {"top": "7"}})
        assert hot.top == 7
        (dep,) = make_analyses("dep", {"dep": {"track_war_waw": "false"}})
        assert dep.track_war_waw is False

    def test_unknown_option_lists_valid_ones(self):
        with pytest.raises(AnalysisError, match="pool_size"):
            make_analyses("dep", {"dep": {"bogus": 1}})

    def test_uncoercible_value_rejected(self):
        with pytest.raises(AnalysisError, match="expects int"):
            make_analyses("hot", {"hot": {"top": "many"}})

    def test_schemas_are_described(self):
        dep = get_analysis("dep")
        assert dep.description
        assert "pool_size" in dep.option_names()


@pytest.mark.parametrize("name", sorted(analysis_names()))
class TestLiveReplayParity:
    """Acceptance criterion: every registered analysis produces
    identical ``to_dict()`` output live and from a recorded trace."""

    def test_to_dict_parity(self, name, tmp_path):
        cls = get_analysis(name)
        if cls.requires_live:
            pytest.skip(f"{name} cannot run from a trace")
        with Session(cache_dir=str(tmp_path)) as session:
            live = session.analyze(PARITY_SOURCE, [name],
                                   mode="live")[name]
            replayed = session.analyze(PARITY_SOURCE, [name],
                                       mode="replay")[name]
        assert live.to_dict() == replayed.to_dict()
        assert live.analysis == replayed.analysis == name
        # The rendered views must agree too (they derive from data).
        assert live.to_json() == replayed.to_json()

    def test_result_shape(self, name, tmp_path):
        cls = get_analysis(name)
        if cls.requires_live:
            pytest.skip(f"{name} cannot run from a trace")
        with Session(cache_dir=str(tmp_path)) as session:
            result = session.analyze(PARITY_SOURCE, [name])[name]
        assert isinstance(result, AnalysisResult)
        assert result.to_dict()["analysis"] == name
        assert isinstance(result.to_text(), str) and result.to_text()
        import json

        assert json.loads(result.to_json())["analysis"] == name
