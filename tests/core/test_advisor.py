"""Advisor tests: verdicts and suggested transformations."""

import pytest

from repro.core.advisor import Advisor, Verdict
from tests.conftest import profile


def recommend(source, top=10, min_size=0.005):
    report = profile(source)
    return report, Advisor(report, min_size).recommend(top)


class TestVerdicts:
    def test_independent_loop_ready(self):
        _, recs = recommend("""
        int out[16];
        int work(int s) {
            int acc = s;
            for (int i = 0; i < 60; i++) acc = (acc * 31 + i) % 65521;
            return acc;
        }
        int main() {
            for (int f = 0; f < 8; f++) out[f] = work(f);
            print(out[7]);
            return 0;
        }
        """)
        loop = next(r for r in recs if r.view.static.is_loop
                    and r.view.fn_name == "main")
        assert loop.verdict is Verdict.READY

    def test_chained_loop_blocked(self):
        _, recs = recommend("""
        int state;
        int work(int s) {
            int acc = s;
            for (int i = 0; i < 60; i++) acc = (acc * 31 + i) % 65521;
            return acc;
        }
        int main() {
            for (int f = 0; f < 8; f++) state = work(state);
            print(state);
            return 0;
        }
        """)
        loop = next(r for r in recs if r.view.static.is_loop
                    and r.view.fn_name == "main")
        assert loop.verdict is Verdict.BLOCKED
        assert loop.blocking_raw

    def test_war_waw_only_suggests_privatization(self):
        _, recs = recommend("""
        int out[16];
        int scratch[8];
        int work(int s) {
            for (int i = 0; i < 8; i++) scratch[i] = s * i;
            int acc = 0;
            for (int i = 0; i < 8; i++) acc += scratch[i];
            for (int i = 0; i < 40; i++) acc = (acc * 31 + i) % 65521;
            return acc;
        }
        int main() {
            for (int f = 0; f < 8; f++) out[f] = work(f);
            print(out[3]);
            return 0;
        }
        """)
        loop = next(r for r in recs if r.view.static.is_loop
                    and r.view.fn_name == "main")
        assert loop.verdict is Verdict.TRANSFORM
        assert "scratch" in loop.privatize

    def test_ready_sorts_before_blocked(self):
        _, recs = recommend("""
        int out[16];
        int chain;
        int work(int s) {
            int acc = s;
            for (int i = 0; i < 50; i++) acc = (acc * 31 + i) % 65521;
            return acc;
        }
        int main() {
            for (int f = 0; f < 8; f++) out[f] = work(f);
            for (int f = 0; f < 8; f++) chain = work(chain + f);
            print(chain + out[0]);
            return 0;
        }
        """)
        orders = [r.verdict.order() for r in recs]
        assert orders == sorted(orders)

    def test_min_size_filter(self):
        report, recs = recommend("""
        int main() {
            int x = 0;
            if (x == 0) { x = 1; }
            for (int i = 0; i < 500; i++) x = (x * 3 + i) % 1009;
            print(x);
            return 0;
        }
        """, min_size=0.2)
        assert all(r.view.size_fraction() >= 0.2 for r in recs)

    def test_describe_mentions_actions(self):
        _, recs = recommend("""
        int out[16];
        int work(int s) {
            int acc = s;
            for (int i = 0; i < 60; i++) acc = (acc * 31 + i) % 65521;
            return acc;
        }
        int main() {
            for (int f = 0; f < 8; f++) out[f] = work(f);
            print(out[7]);
            return 0;
        }
        """)
        text = "\n".join(r.describe() for r in recs)
        assert "READY" in text
