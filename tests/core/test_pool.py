"""Construct pool tests (paper Table I: lazy retirement)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pool import ConstructPool


class TestRetirement:
    def test_fresh_nodes_are_immediately_reusable(self):
        pool = ConstructPool(2)
        a = pool.acquire(timestamp=10)
        b = pool.acquire(timestamp=10)
        assert a is not b
        assert pool.stats.reuses == 2
        assert pool.stats.grows == 0

    def test_recently_completed_node_is_not_recycled(self):
        pool = ConstructPool(1)
        node = pool.acquire(1)
        node.t_enter, node.t_exit = 1, 100  # duration 99
        pool.release(node)
        # At t=150, dead for 50 < 99: must not be reused.
        other = pool.acquire(150)
        assert other is not node
        assert pool.stats.grows == 1

    def test_node_recycles_after_its_own_duration(self):
        pool = ConstructPool(1)
        node = pool.acquire(1)
        node.t_enter, node.t_exit = 1, 100
        pool.release(node)
        again = pool.acquire(199)  # dead for 99 >= duration 99
        assert again is node

    def test_scan_skips_unretireable_head(self):
        pool = ConstructPool(2)
        long_lived = pool.acquire(0)
        long_lived.t_enter, long_lived.t_exit = 0, 1000
        short = pool.acquire(0)
        short.t_enter, short.t_exit = 999, 1000
        # Order in the free list: long_lived (head), then short.
        pool.release(long_lived)
        pool.release(short)
        got = pool.acquire(1005)  # long not retireable, short is
        assert got is short
        assert pool.stats.max_scan >= 2

    def test_release_appends_at_tail_lazy_retiring(self):
        pool = ConstructPool(3)
        nodes = [pool.acquire(0) for _ in range(3)]
        for i, node in enumerate(nodes):
            node.t_enter, node.t_exit = 0, 0  # duration 0: retire anytime
            pool.release(node)
        # FIFO: the first released is reused first.
        assert pool.acquire(1) is nodes[0]
        assert pool.acquire(1) is nodes[1]

    def test_free_count(self):
        pool = ConstructPool(5)
        assert pool.free_count() == 5
        node = pool.acquire(0)
        assert pool.free_count() == 4
        pool.release(node)
        assert pool.free_count() == 5


class TestPoolProperty:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(1, 50)),
                    min_size=1, max_size=60))
    def test_never_recycles_within_duration(self, ops):
        """A node dead for less than its duration is never handed out —
        the invariant behind the paper's Theorem 1."""
        pool = ConstructPool(4)
        clock = 0
        live = []
        for op, delta in ops:
            clock += delta
            if op < 2:  # acquire and complete a construct of length delta
                node = pool.acquire(clock)
                node.t_enter = clock
                node.t_exit = 0
                live.append(node)
            elif live:
                node = live.pop()
                node.t_exit = clock
                pool.release(node)
        # Any node still in the free list that is handed out now must be
        # retireable at the current clock.
        clock += 1
        node = pool.acquire(clock)
        assert clock - node.t_exit >= node.t_exit - node.t_enter
