"""Source-annotation tests: the paper's §II guidance, line by line."""

import pytest

from repro.core.advisor import Verdict
from repro.core.alchemist import Alchemist
from repro.core.annotate import annotate, annotate_text

GZIP_MINI = """int window[64];
int flag_buf[64];
int outcnt;
int last_flags;
int outbuf[128];

int flush_block(int buf[], int len) {
    flag_buf[last_flags] = 1;
    int k = 0;
    int bits = 0;
    while (k < len) {
        bits = (bits * 31 + buf[k]) % 251;
        outbuf[outcnt] = bits;
        outcnt++;
        k++;
    }
    last_flags = 0;
    return len;
}

int main() {
    int processed = 0;
    int i = 0;
    while (i < 48) {
        window[i % 64] = i * 7 % 251;
        if (i % 16 == 15) {
            processed += flush_block(window, 16);
        }
        flag_buf[i % 16] = i & 1;
        last_flags++;
        i++;
    }
    print(processed, outcnt);
    return 0;
}
"""

SERIAL_CHAIN = """int state;
int history[64];
int step(int x) {
    state = (state * 31 + x) % 10007;
    return state;
}
int main() {
    int i;
    for (i = 0; i < 40; i++) {
        history[i] = step(i);
    }
    return state;
}
"""


def line_of(source: str, marker: str) -> int:
    return next(i for i, text in enumerate(source.splitlines(), start=1)
                if marker in text)


@pytest.fixture(scope="module")
def gzip_report():
    return Alchemist().profile(GZIP_MINI)


class TestGzipGuidance:
    def test_spawn_marker_at_construct_head(self, gzip_report):
        line = line_of(GZIP_MINI, "int flush_block")
        annotated = annotate(gzip_report, GZIP_MINI, line=line)
        assert line in annotated.marks
        assert any("SPAWN" in tag for tag in annotated.marks[line].tags)

    def test_join_at_return_value_read(self, gzip_report):
        """The paper's `line 29 -> line 9, Tdep=1` return-value edge:
        the call site needs a join."""
        line = line_of(GZIP_MINI, "int flush_block")
        annotated = annotate(gzip_report, GZIP_MINI, line=line)
        call_line = line_of(GZIP_MINI, "processed += flush_block")
        assert call_line in annotated.marks
        tags = annotated.marks[call_line].tags
        assert any("JOIN" in t and "retval" in t for t in tags)

    def test_privatize_last_flags(self, gzip_report):
        """The paper's §II transformation: hoist/privatize last_flags."""
        line = line_of(GZIP_MINI, "int flush_block")
        annotated = annotate(gzip_report, GZIP_MINI, line=line)
        all_tags = [t for marks in annotated.marks.values()
                    for t in marks.tags]
        assert any("PRIVATIZE last_flags" in t for t in all_tags)

    def test_rendered_listing_shows_marked_lines(self, gzip_report):
        line = line_of(GZIP_MINI, "int flush_block")
        text = annotate(gzip_report, GZIP_MINI, line=line).render()
        assert "SPAWN" in text
        assert "^^^" in text
        assert "verdict:" in text

    def test_render_elides_unmarked_regions(self, gzip_report):
        line = line_of(GZIP_MINI, "int flush_block")
        text = annotate(gzip_report, GZIP_MINI, line=line).render(
            context=0)
        assert "..." in text

    def test_unknown_line_raises(self, gzip_report):
        with pytest.raises(ValueError):
            annotate(gzip_report, GZIP_MINI, line=2)  # a declaration

    def test_needs_line_or_view(self, gzip_report):
        with pytest.raises(ValueError):
            annotate(gzip_report, GZIP_MINI)


class TestBlockedGuidance:
    def test_serial_chain_is_blocked(self):
        """A loop whose iterations chain through `state` must be marked
        DO NOT SPAWN with BLOCKED reads."""
        line = line_of(SERIAL_CHAIN, "for (i = 0; i < 40")
        text = annotate_text(SERIAL_CHAIN, line=line)
        assert "DO NOT SPAWN" in text
        assert "BLOCKED" in text
        assert "state" in text

    def test_blocked_marker_on_conflicting_read(self):
        report = Alchemist().profile(SERIAL_CHAIN)
        line = line_of(SERIAL_CHAIN, "for (i = 0; i < 40")
        annotated = annotate(report, SERIAL_CHAIN, line=line)
        assert annotated.recommendation.verdict is Verdict.BLOCKED
        read_line = line_of(SERIAL_CHAIN, "state = (state")
        assert any("BLOCKED" in t
                   for t in annotated.marks[read_line].tags)


class TestConvenience:
    def test_annotate_text_one_call(self):
        line = line_of(GZIP_MINI, "int flush_block")
        text = annotate_text(GZIP_MINI, line=line)
        assert "flush_block" in text

    def test_annotate_text_reuses_report(self):
        report = Alchemist().profile(GZIP_MINI)
        line = line_of(GZIP_MINI, "int flush_block")
        text = annotate_text(GZIP_MINI, line=line, report=report)
        assert "SPAWN" in text
