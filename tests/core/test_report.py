"""ProfileReport query-surface tests."""

import pytest

from repro.core.profile_data import DepKind
from tests.conftest import profile

SOURCE = """
int data[32];
int total;

int produce(int seed) {
    int acc = seed;
    for (int i = 0; i < 30; i++) {
        acc = (acc * 31 + i) % 65521;
    }
    return acc;
}

int main() {
    for (int f = 0; f < 8; f++) {
        data[f] = produce(f);
    }
    for (int f = 0; f < 8; f++) {
        total += data[f];
    }
    print(total);
    return 0;
}
"""


@pytest.fixture(scope="module")
def report():
    return profile(SOURCE)


class TestQueries:
    def test_constructs_sorted_by_duration(self, report):
        views = report.constructs()
        durations = [v.total_duration for v in views]
        assert durations == sorted(durations, reverse=True)

    def test_top_constructs_filters(self, report):
        from repro.analysis.constructs import ConstructKind
        loops = report.top_constructs(10, kind=ConstructKind.LOOP)
        assert loops and all(v.static.is_loop for v in loops)

    def test_view_by_pc(self, report):
        first = report.constructs()[0]
        assert report.view(first.pc) is first

    def test_views_at_line_prefers_loop(self, report):
        produce_loop_line = SOURCE.splitlines().index(
            "    for (int i = 0; i < 30; i++) {") + 1
        views = report.views_at_line(produce_loop_line)
        assert views[0].static.is_loop

    def test_size_fractions_bounded(self, report):
        for view in report.constructs():
            assert 0.0 <= view.size_fraction() <= 1.0

    def test_total_violating_consistent(self, report):
        total = report.total_violating(DepKind.RAW)
        assert total == sum(v.violating_count(DepKind.RAW)
                            for v in report.constructs())

    def test_location_conflicts_unknown_line(self, report):
        with pytest.raises(KeyError):
            report.location_conflicts(99999)

    def test_to_text_contains_headline(self, report):
        text = report.to_text(top=3)
        assert "Profile:" in text
        assert "Method main" in text

    def test_describe_run(self, report):
        text = report.describe_run()
        assert "instructions=" in text
        assert "pool_capacity=" in text


class TestFig6Series:
    def test_labels_and_ordering(self, report):
        rows = report.fig6_series(top=5)
        assert [r.label for r in rows] == [f"C{i}" for i in
                                           range(1, len(rows) + 1)]
        sizes = [r.norm_size for r in rows]
        assert sizes == sorted(sizes, reverse=True)

    def test_main_excluded_by_default(self, report):
        rows = report.fig6_series(top=10)
        assert all(r.view.name != "main" for r in rows)
        with_main = report.fig6_series(top=10, include_main=True)
        assert any(r.view.name == "main" for r in with_main)

    def test_exclusion(self, report):
        rows = report.fig6_series(top=3)
        excluded = {rows[0].view.pc}
        filtered = report.fig6_series(top=3, exclude=excluded)
        assert all(r.view.pc != rows[0].view.pc for r in filtered)


class TestNestedSingletons:
    def test_singleton_callee_detected(self, report):
        # produce() is called once per iteration of the first loop.
        first_loop = next(v for v in report.constructs()
                          if v.static.is_loop)
        nested = report.nested_singletons(first_loop.pc)
        names = {report.view(pc).name for pc in nested}
        assert "produce" in names

    def test_unrelated_constructs_not_swallowed(self, report):
        first_loop = next(v for v in report.constructs()
                          if v.static.is_loop)
        nested = report.nested_singletons(first_loop.pc)
        names = {report.view(pc).name for pc in nested}
        # The summation loop runs once total, not once per instance.
        assert not any("main:" in n and "loop" in n for n in names)


class TestInternalVsContinuation:
    def test_classification(self, report):
        sum_loop = [v for v in report.constructs()
                    if v.static.is_loop and v.fn_name == "main"][-1]
        # total += data[f]: the chain on `total` is internal.
        internal_vars = {e.var_hint for e in
                         sum_loop.violating_internal(DepKind.RAW)}
        assert "total" in internal_vars
        fill_loop = next(v for v in report.constructs()
                         if v.static.is_loop and v.fn_name == "main")
        cont = fill_loop.violating_continuation(DepKind.RAW)
        assert all(not fill_loop._tail_inside(e) for e in cont)
