"""Execution indexing tests, including the paper's Fig. 4 examples.

The paper's index of an execution point is the path from the root of the
index tree to the point. We capture it by recording the indexing stack at
writes to a designated ``probe`` global.
"""

from repro.analysis.constructs import ConstructTable
from repro.core.tracer import AlchemistTracer
from repro.ir.lowering import compile_source
from repro.runtime.interpreter import Interpreter


class IndexRecorder(AlchemistTracer):
    """Records the execution index at every write to global ``probe``."""

    def __init__(self, table, program):
        super().__init__(table)
        self.probe_addr = program.global_var("probe").offset
        self.indices: list[tuple[int, list[str]]] = []
        self.push_count = 0
        self.pop_count = 0
        self._orig_push = self.stack._push
        self._orig_pop = self.stack._pop
        self.stack._push = self._counting_push
        self.stack._pop = self._counting_pop

    def _counting_push(self, static, timestamp):
        self.push_count += 1
        return self._orig_push(static, timestamp)

    def _counting_pop(self, timestamp):
        self.pop_count += 1
        return self._orig_pop(timestamp)

    def on_write(self, addr, pc, timestamp):
        if addr == self.probe_addr:
            value = self.memory.read(addr) if self.memory else None
            self.indices.append((value, list(self.stack.index_of_top())))
        super().on_write(addr, pc, timestamp)


def record(source: str):
    program = compile_source(source)
    table = ConstructTable(program)
    tracer = IndexRecorder(table, program)
    Interpreter(program, tracer).run()
    return tracer


class TestFig4Examples:
    def test_a_procedure_nesting(self):
        """Fig. 4(a): statement inside B called from A has index [A, B]."""
        tracer = record("""
        int probe;
        void B() { probe = 2; }
        void A() { probe = 1; B(); }
        int main() { A(); return 0; }
        """)
        by_value = {v: idx for v, idx in tracer.indices}
        assert by_value[1] == ["main", "A"]
        assert by_value[2] == ["main", "A", "B"]

    def test_b_conditional_nesting(self):
        """Fig. 4(b): nested ifs produce nested index entries; the
        predicate itself is nested in the enclosing construct."""
        tracer = record("""
        int probe;
        void C(int a, int b) {
            if (a) {
                probe = 3;
                if (b)
                    probe = 4;
            }
        }
        int main() { C(1, 1); C(1, 0); C(0, 1); return 0; }
        """)
        indices = tracer.indices
        # First call: probe=3 inside outer if, probe=4 inside both.
        assert indices[0][0] == 3
        assert len(indices[0][1]) == 3  # [main, C, if]
        assert indices[1][0] == 4
        assert len(indices[1][1]) == 4  # [main, C, if, if]
        # Second call: only probe=3.
        assert indices[2][0] == 3 and len(indices) == 3

    def test_c_loop_iterations_are_siblings(self):
        """Fig. 4(c): the second instance of the inner statement has
        index [D, 2, 4]; iterations never nest."""
        tracer = record("""
        int probe;
        void D() {
            int i = 0;
            while (i < 2) {
                probe = 5;
                int j = 0;
                while (j < 2) {
                    probe = 4;
                    j++;
                }
                i++;
            }
        }
        int main() { D(); return 0; }
        """)
        for value, index in tracer.indices:
            if value == 5:
                assert len(index) == 3  # [main, D, outer-iteration]
            else:
                assert len(index) == 4  # [main, D, outer, inner]
        # Depth never grows with iteration count: all instances of the
        # same statement have identical index length.
        lengths = {v: {len(ix)} for v, ix in tracer.indices}
        assert all(len(s) == 1 for s in lengths.values())


class TestStackDiscipline:
    def test_balanced_push_pop(self):
        tracer = record("""
        int probe;
        int work(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 3 == 0) continue;
                if (i > 12) break;
                s += i;
                probe = s;
            }
            do { s--; } while (s > 40 && s % 2 == 0);
            return s;
        }
        int main() {
            int total = 0;
            for (int k = 0; k < 4; k++) total += work(k * 5);
            probe = total;
            return 0;
        }
        """)
        assert tracer.push_count == tracer.pop_count
        assert tracer.stack.depth() == 0

    def test_balanced_with_early_returns(self):
        tracer = record("""
        int probe;
        int f(int n) {
            while (1) {
                if (n > 5) return n;
                n++;
                probe = n;
            }
        }
        int main() { probe = f(0); return 0; }
        """)
        assert tracer.push_count == tracer.pop_count
        assert tracer.stack.depth() == 0

    def test_multibranch_loop_condition_does_not_leak(self):
        """`while (a && b)` compiles to two predicates; the stack must not
        grow with iteration count (the generalized rule 4 sweep)."""
        tracer = record("""
        int probe;
        int main() {
            int a = 1000;
            int b = 2000;
            while (a > 0 && b > 0) { a--; b -= 2; probe = a; }
            return a + b;
        }
        """)
        assert tracer.push_count == tracer.pop_count
        assert tracer.stack.max_depth <= 5

    def test_break_past_open_if_does_not_leak(self):
        tracer = record("""
        int probe;
        int main() {
            int leaked = 0;
            for (int round = 0; round < 50; round++) {
                for (int i = 0; i < 20; i++) {
                    if (i % 2 == 0) continue;
                    if (i == 7) break;
                    probe = i;
                }
                leaked++;
            }
            return leaked;
        }
        """)
        assert tracer.push_count == tracer.pop_count
        assert tracer.stack.max_depth <= 6

    def test_loop_instance_counts_match_iterations(self):
        tracer = record("""
        int probe;
        int main() {
            for (int i = 0; i < 7; i++) { probe = i; }
            int j = 0;
            while (j < 5) { j++; }
            do { j--; } while (j > 2);
            return j;
        }
        """)
        store = tracer.store
        by_name = {p.static.name: p for p in store.profiles.values()}
        loops = {name: p.instances for name, p in by_name.items()
                 if p.static.is_loop}
        # for: 7 iterations; while: 5. The do-while body runs 3 times but
        # its construct spans condition-to-condition (the paper's rule 4
        # pushes at the predicate, which bottom-tested loops reach at the
        # END of each body pass), giving N-1 = 2 instances.
        assert sorted(loops.values()) == [2, 5, 7]

    def test_untaken_if_creates_no_instance(self):
        tracer = record("""
        int probe;
        int main() {
            int x = 0;
            if (x) { probe = 1; }
            probe = 2;
            return 0;
        }
        """)
        conds = [p for p in tracer.store.profiles.values()
                 if p.static.kind.value == "cond"]
        assert conds == []

    def test_recursion_counts_outermost_only(self):
        tracer = record("""
        int probe;
        int fact(int n) {
            if (n <= 1) return 1;
            return n * fact(n - 1);
        }
        int main() { probe = fact(6); probe = fact(3); return 0; }
        """)
        fact = next(p for p in tracer.store.profiles.values()
                    if p.static.name == "fact")
        # Two top-level calls; inner recursive instances do not aggregate.
        assert fact.instances == 2
        total = tracer.final_time
        assert fact.total_duration < total
