"""Profiling algorithm unit tests (paper Table II)."""

from repro.analysis.constructs import ConstructKind, StaticConstruct
from repro.core.node import ConstructNode
from repro.core.profile_data import DepKind, ProfileStore
from repro.core.profiler import DependenceProfiler


def static(pc, kind=ConstructKind.LOOP, name=None):
    return StaticConstruct(pc=pc, kind=kind, fn_name="f", line=pc, col=1,
                           name=name or f"c{pc}")


def completed(pc, t_enter, t_exit, parent=None):
    node = ConstructNode()
    node.static = static(pc)
    node.t_enter, node.t_exit = t_enter, t_exit
    node.parent = parent
    return node


def active(pc, t_enter, parent=None):
    node = completed(pc, t_enter, 0, parent)
    return node


class TestTableIIWalkthrough:
    """The worked example of §III-B: dependence between 5@t6 (index
    [D,2,4]) and 2@t8 with constructs b4r (6..7), b2 (2..8), bD active."""

    def test_updates_completed_ancestors_only(self):
        store = ProfileStore()
        profiler = DependenceProfiler(store)
        b_d = active(1, 1)
        b_2 = completed(2, 2, 8, parent=b_d)
        b_4r = completed(4, 6, 7, parent=b_2)
        updated = profiler.profile_edge(
            head_pc=5, head_node=b_4r, head_time=6,
            tail_pc=2, tail_time=8, kind=DepKind.RAW, name_of=lambda: "x")
        assert updated == 2
        assert (5, 2, DepKind.RAW) in store.profiles[4].edges
        assert (5, 2, DepKind.RAW) in store.profiles[2].edges
        assert 1 not in store.profiles  # bD is active: intra-construct
        assert store.profiles[4].edges[(5, 2, DepKind.RAW)].min_tdep == 2

    def test_intra_construct_dependence_ignored(self):
        store = ProfileStore()
        profiler = DependenceProfiler(store)
        inner = active(4, 6, parent=active(1, 1))
        updated = profiler.profile_edge(5, inner, 7, 2, 9, DepKind.RAW,
                                        lambda: "x")
        assert updated == 0
        assert store.profiles == {}


class TestMinTdep:
    def test_minimum_is_kept(self):
        store = ProfileStore()
        profiler = DependenceProfiler(store)
        node = completed(4, 0, 100)
        profiler.profile_edge(5, node, 10, 2, 60, DepKind.RAW, lambda: "x")
        profiler.profile_edge(5, node, 50, 2, 55, DepKind.RAW, lambda: "x")
        profiler.profile_edge(5, node, 20, 2, 90, DepKind.RAW, lambda: "x")
        edge = store.profiles[4].edges[(5, 2, DepKind.RAW)]
        assert edge.min_tdep == 5
        assert edge.count == 3

    def test_kinds_are_separate_edges(self):
        store = ProfileStore()
        profiler = DependenceProfiler(store)
        node = completed(4, 0, 100)
        profiler.profile_edge(5, node, 10, 2, 60, DepKind.RAW, lambda: "x")
        profiler.profile_edge(5, node, 10, 2, 70, DepKind.WAW, lambda: "x")
        assert len(store.profiles[4].edges) == 2

    def test_name_resolved_once(self):
        store = ProfileStore()
        profiler = DependenceProfiler(store)
        node = completed(4, 0, 100)
        calls = []

        def resolver():
            calls.append(1)
            return "y"

        profiler.profile_edge(5, node, 10, 2, 60, DepKind.RAW, resolver)
        profiler.profile_edge(5, node, 20, 2, 80, DepKind.RAW, resolver)
        assert len(calls) == 1
        assert store.profiles[4].edges[(5, 2, DepKind.RAW)].var_hint == "y"


class TestRecycledNodes:
    def test_stale_head_node_stops_walk(self):
        """A recycled node fails Tenter <= Th <= Texit, so a dependence
        whose head context was recycled updates nothing (its Tdep is
        necessarily > Tdur — the Theorem 1 argument)."""
        store = ProfileStore()
        profiler = DependenceProfiler(store)
        node = completed(4, 0, 10)
        # Recycle: the node is reused for a construct entered later.
        node.static = static(9)
        node.t_enter, node.t_exit = 50, 0
        updated = profiler.profile_edge(5, node, 8, 2, 60, DepKind.RAW,
                                        lambda: "x")
        assert updated == 0

    def test_recycled_parent_stops_walk_midway(self):
        store = ProfileStore()
        profiler = DependenceProfiler(store)
        stale_parent = completed(2, 100, 0)  # reused: entered after Th
        child = completed(4, 5, 9, parent=stale_parent)
        updated = profiler.profile_edge(5, child, 6, 2, 12, DepKind.RAW,
                                        lambda: "x")
        assert updated == 1
        assert 4 in store.profiles
        assert 2 not in store.profiles


class TestStoreAggregation:
    def test_duration_and_instances(self):
        store = ProfileStore()
        s = static(7)
        for t_enter, t_exit in [(0, 10), (20, 50), (60, 65)]:
            store.on_construct_enter(s)
            node = ConstructNode()
            node.static = s
            node.t_enter, node.t_exit = t_enter, t_exit
            store.on_construct_complete(node)
        profile = store.profiles[7]
        assert profile.instances == 3
        assert profile.total_duration == 10 + 30 + 5
        assert profile.max_duration == 30
        assert store.dynamic_instances == 3

    def test_nested_recursion_not_double_counted(self):
        store = ProfileStore()
        s = static(7)
        # Outer enters, inner enters, inner exits, outer exits.
        store.on_construct_enter(s)
        store.on_construct_enter(s)
        inner = ConstructNode()
        inner.static = s
        inner.t_enter, inner.t_exit = 5, 10
        store.on_construct_complete(inner)
        outer = ConstructNode()
        outer.static = s
        outer.t_enter, outer.t_exit = 0, 20
        store.on_construct_complete(outer)
        profile = store.profiles[7]
        assert profile.instances == 1
        assert profile.total_duration == 20
