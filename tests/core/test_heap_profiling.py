"""Profiling through the heap and across irregular control flow.

These tests close the loop from the new language features back to the
paper's algorithms: dependences through malloc'd blocks are profiled
like any other (the aliasing case the paper motivates), freed blocks
must not fabricate dependences when their addresses are recycled, and
the indexing stack must stay balanced through `switch` and `goto`.
"""

from repro.core.profile_data import DepKind
from tests.conftest import profile


def edges(report, construct_name, kind=None):
    """All profiled edges of the named construct (optionally one kind)."""
    for prof in report.store.profiles.values():
        if prof.static.name != construct_name:
            continue
        for (head, tail, dep_kind), stats in prof.edges.items():
            if kind is None or dep_kind is kind:
                yield (head, tail, dep_kind), stats
    return


class TestHeapDependences:
    def test_raw_through_heap_block(self):
        report = profile("""
        int result;
        void fill(int *p, int n) {
            int i;
            for (i = 0; i < n; i++) { p[i] = i; }
        }
        int total(int *p, int n) {
            int t = 0;
            int i;
            for (i = 0; i < n; i++) { t += p[i]; }
            return t;
        }
        int main() {
            int *block = malloc(8);
            fill(block, 8);
            result = total(block, 8);
            free(block);
            return result;
        }
        """)
        fill_edges = list(edges(report, "fill", DepKind.RAW))
        names = {stats.var_hint for _, stats in fill_edges}
        assert any(name.startswith("heap#") for name in names), names

    def test_freed_block_reuse_fabricates_no_dependence(self):
        # Two rounds through same-size blocks: the second malloc recycles
        # the first block's addresses. Round 2 never reads round 1's
        # data, so no RAW edge may connect the two `use` calls through
        # heap addresses.
        report = profile("""
        int sink;
        void use(int *p) {
            p[0] = p[0] + 1;
            sink += p[0];
        }
        int main() {
            int *a = malloc(4);
            use(a);
            free(a);
            int *b = malloc(4);
            use(b);
            free(b);
            return sink;
        }
        """)
        heap_raw = [
            (key, stats)
            for key, stats in edges(report, "main", DepKind.RAW)
            if stats.var_hint.startswith("heap#")
        ]
        # All heap RAW edges must be within one block's lifetime: the
        # write at line 4 to the read at lines 4/5 — never a cross-
        # lifetime edge, which would show as an edge whose min Tdep spans
        # the free/malloc pair. Within-lifetime edges here have Tdep of a
        # few instructions.
        for _, stats in heap_raw:
            assert stats.min_tdep < 40, (stats.var_hint, stats.min_tdep)

    def test_war_waw_through_heap(self):
        # The paper only profiles dependences that *cross* a completed
        # construct's boundary, so the conflicting accesses live in a
        # called procedure; its continuation re-reads and re-writes the
        # same heap word.
        report = profile("""
        int sink;
        int *gp;
        void produce() {
            gp[0] = 1;          // W
            sink = gp[0];       // R
        }
        int main() {
            gp = malloc(2);
            produce();
            gp[0] = 2;          // WAR with produce's read, WAW with write
            sink += gp[0];
            free(gp);
            return sink;
        }
        """)
        produce_edges = list(edges(report, "produce"))
        kinds = {key[2] for key, stats in produce_edges
                 if stats.var_hint.startswith("heap#")}
        assert DepKind.WAR in kinds, produce_edges
        assert DepKind.WAW in kinds, produce_edges

    def test_pointer_variable_dependences_distinct_from_data(self):
        # Rewiring a pointer is a dependence on the pointer's own cell
        # (a global here), distinct from dependences on pointed-to data.
        report = profile("""
        int sink;
        int *shared;
        void setup() {
            shared = malloc(2);
            shared[0] = 5;
        }
        int main() {
            setup();
            sink = shared[0];
            free(shared);
            return sink;
        }
        """)
        names = {stats.var_hint
                 for _, stats in edges(report, "setup", DepKind.RAW)}
        assert "shared" in names, names
        assert any(n.startswith("heap#") for n in names), names


class TestIndexingAcrossIrregularFlow:
    def test_switch_appears_as_construct(self):
        report = profile("""
        int out;
        int main() {
            int i;
            for (i = 0; i < 6; i++) {
                switch (i % 3) {
                    case 0: out += 1; break;
                    case 1: out += 2; break;
                    default: out += 3;
                }
            }
            return out;
        }
        """)
        names = [p.static.name for p in report.store.profiles.values()]
        assert any("switch" in name for name in names), names

    def test_goto_loop_profiles_and_balances(self):
        # A goto-built loop: the run completes with a balanced stack and
        # profiles the hand-rolled loop's conditional.
        report = profile("""
        int acc[4];
        int main() {
            int i = 0;
            top:
            acc[i % 4] += i;
            i++;
            if (i < 12) { goto top; }
            return acc[0];
        }
        """)
        assert report.exit_value == 0 + 4 + 8
        names = [p.static.name for p in report.store.profiles.values()]
        assert any(name.startswith("if") or name.startswith("loop")
                   for name in names)

    def test_goto_out_of_nested_loops_balances(self):
        report = profile("""
        int grid[16];
        int main() {
            int i;
            int j;
            int hits = 0;
            for (i = 0; i < 4; i++) {
                for (j = 0; j < 4; j++) {
                    grid[i * 4 + j] = hits;
                    hits++;
                    if (hits == 7) { goto done; }
                }
            }
            done:
            return hits;
        }
        """)
        assert report.exit_value == 7
        # Both loops were profiled despite the abrupt exit.
        loops = [p for p in report.store.profiles.values()
                 if p.static.is_loop]
        assert len(loops) == 2

    def test_goto_cleanup_with_heap(self):
        report = profile("""
        int status;
        int work(int fail) {
            int *buf = malloc(4);
            int r = 0;
            if (fail) { r = -1; goto cleanup; }
            buf[0] = 10;
            r = buf[0];
            cleanup:
            free(buf);
            return r;
        }
        int main() {
            status = work(0) + work(1);
            return status;
        }
        """)
        assert report.exit_value == 9
        procs = [p for p in report.store.profiles.values()
                 if p.static.name == "work"]
        assert procs and procs[0].instances == 2

    def test_switch_fall_through_instances(self):
        # Fall-through must not unbalance the indexing stack: every
        # tested case is a construct whose instance count matches the
        # times its branch actually entered its body-or-next-test edge.
        report = profile("""
        int out;
        int main() {
            int i;
            for (i = 0; i < 9; i++) {
                switch (i % 3) {
                    case 0: out += 1;
                    case 1: out += 2; break;
                    case 2: out += 4;
                }
            }
            return out;
        }
        """)
        assert report.exit_value == 3 * (1 + 2) + 3 * 2 + 3 * 4
