"""End-to-end fuzz: random programs through the whole stack.

The AST fuzzer from the pretty-printer tests generates arbitrary
combinations of loops, conditionals, switches, gotos, pointer
dereferences and assignments. Every generated program must *compile*
(lowering, CFG construction, dominance, construct table never crash),
and any program that runs to completion — wild pointer dereferences
and infinite loops are legitimate runtime outcomes, not failures —
must leave the profiler in a consistent state: balanced indexing
stack, zeroed nesting counters, allocator fully drained.
"""

from hypothesis import given, settings

from repro.analysis.constructs import ConstructTable
from repro.core.tracer import AlchemistTracer
from repro.ir.lowering import lower_program
from repro.lang.errors import SemanticError
from repro.lang.pretty import pretty_print
from repro.runtime.errors import MiniCRuntimeError, StepLimitExceeded
from repro.runtime.interpreter import Interpreter
from tests.lang.test_pretty import _programs

#: Generated programs may loop forever; cap them tightly.
STEP_CAP = 20_000


def compile_ast(program_ast):
    """Lower via the pretty-printed source so positions are realistic."""
    from repro.lang.parser import parse_program
    source = pretty_print(program_ast)
    return lower_program(parse_program(source))


class TestRandomPrograms:
    @given(_programs)
    @settings(max_examples=80, deadline=None)
    def test_every_generated_program_compiles(self, program_ast):
        try:
            program = compile_ast(program_ast)
        except SemanticError:
            # Duplicate labels / goto to undefined labels are legal
            # fuzzer outputs and legitimate compile-time rejections.
            return
        table = ConstructTable(program)
        assert table.static_count() >= 1
        # Every branch's construct has a region containing its own block.
        for construct in table.by_pc.values():
            if construct.block_id is not None:
                assert construct.block_id in construct.region

    @given(_programs)
    @settings(max_examples=60, deadline=None)
    def test_profiler_state_consistent_after_any_outcome(self,
                                                         program_ast):
        try:
            program = compile_ast(program_ast)
        except SemanticError:
            return
        table = ConstructTable(program)
        tracer = AlchemistTracer(table)
        interp = Interpreter(program, tracer, max_steps=STEP_CAP)
        try:
            interp.run()
        except (MiniCRuntimeError, StepLimitExceeded):
            # Wild pointers and endless loops are acceptable runtime
            # outcomes for random programs; state checks below only
            # apply to completed runs.
            return
        assert tracer.stack.depth() == 0
        nonzero = {pc: d for pc, d in tracer.store._nesting.items() if d}
        assert nonzero == {}
        assert tracer.pool.live_count() == 0

    @given(_programs)
    @settings(max_examples=40, deadline=None)
    def test_rerun_is_deterministic(self, program_ast):
        try:
            program = compile_ast(program_ast)
        except SemanticError:
            return

        def run_once():
            interp = Interpreter(program, max_steps=STEP_CAP)
            try:
                value = interp.run()
            except (MiniCRuntimeError, StepLimitExceeded) as exc:
                return ("error", type(exc).__name__, interp.time)
            return ("ok", value, interp.time, tuple(interp.output))

        assert run_once() == run_once()
