"""Cross-cutting runtime invariants, checked on every bundled workload.

These are the properties the paper's correctness rests on, asserted on
realistic executions rather than unit fixtures:

* the indexing stack is balanced — every pushed construct is popped by
  procedure exit or its post-dominator, across loops, switches, gotos,
  early returns, and recursion;
* recursion nesting counters return to zero, so Ttotal is aggregated
  exactly once per outermost instance (§III-B "Recursion");
* allocator accounting is conservative: every acquire is a fresh
  allocation (the GC-backed NodeAllocator never recycles, so profiles
  are a pure function of the event stream), the peak-live capacity
  never exceeds the allocation count, and every acquired node is
  released by the end of the run;
* profiled durations are sane: no construct outlasts the run, and the
  procedure profile of main covers the whole execution.
"""

import pytest

from repro.analysis.constructs import ConstructTable
from repro.core.tracer import AlchemistTracer
from repro.ir import compile_source
from repro.runtime.errors import MiniCRuntimeError, StepLimitExceeded
from repro.runtime.interpreter import Interpreter
from repro.workloads import EXTRA_ORDER, TABLE3_ORDER, get
from tests.conftest import profile

ALL_WORKLOADS = TABLE3_ORDER + EXTRA_ORDER


def traced_run(source: str):
    program = compile_source(source)
    table = ConstructTable(program)
    tracer = AlchemistTracer(table)
    interp = Interpreter(program, tracer)
    interp.run()
    return program, tracer, interp


@pytest.fixture(scope="module", params=ALL_WORKLOADS)
def workload_run(request):
    workload = get(request.param, 0.5)
    return request.param, traced_run(workload.source)


class TestIndexingInvariants:
    def test_stack_balanced_at_exit(self, workload_run):
        name, (_, tracer, _) = workload_run
        assert tracer.stack.depth() == 0, name

    def test_nesting_counters_return_to_zero(self, workload_run):
        name, (_, tracer, _) = workload_run
        nonzero = {pc: depth for pc, depth
                   in tracer.store._nesting.items() if depth != 0}
        assert nonzero == {}, (name, nonzero)

    def test_dynamic_instances_match_completions(self, workload_run):
        """Every entered construct completed (balance again, counted on
        the store side this time)."""
        name, (_, tracer, _) = workload_run
        completed = sum(p.instances for p in tracer.store.profiles.values())
        # Nested recursion aggregates only outermost instances, so
        # completed <= dynamic_instances, with equality iff no recursion.
        assert 0 < completed <= tracer.store.dynamic_instances, name


class TestDurationInvariants:
    def test_no_construct_outlasts_the_run(self, workload_run):
        name, (_, tracer, interp) = workload_run
        for prof in tracer.store.profiles.values():
            assert prof.max_duration <= interp.time, (name,
                                                      prof.static.name)

    def test_main_covers_the_run(self, workload_run):
        name, (_, tracer, interp) = workload_run
        main_prof = next(p for p in tracer.store.profiles.values()
                         if p.static.name == "main")
        assert main_prof.instances == 1
        # main's duration is the run minus at most the final bookkeeping.
        assert main_prof.max_duration >= interp.time - 4

    def test_loop_durations_do_not_exceed_parent_function(self,
                                                          workload_run):
        name, (_, tracer, _) = workload_run
        by_fn = {}
        for prof in tracer.store.profiles.values():
            if prof.static.kind.value == "procedure":
                by_fn[prof.static.name] = prof.total_duration
        for prof in tracer.store.profiles.values():
            if prof.static.is_loop and prof.static.fn_name in by_fn:
                assert (prof.total_duration
                        <= by_fn[prof.static.fn_name]), (name,
                                                         prof.static.name)


class TestPoolInvariants:
    def test_every_acquire_is_a_fresh_allocation(self, workload_run):
        name, (_, tracer, _) = workload_run
        stats = tracer.pool.stats
        # The GC-backed allocator never recycles: reuse would overwrite
        # Tenter/Texit of nodes shadow memory still references, making
        # the profile depend on allocation pressure instead of on the
        # event stream alone.
        assert stats.acquires == stats.grows, name
        assert stats.reuses == 0, name
        assert 0 < stats.capacity <= stats.acquires, name

    def test_allocator_drains_back_on_completion(self, workload_run):
        """After the run the indexing stack is empty, so every acquired
        node has been released (and is reclaimable once the shadow and
        index tree drop it)."""
        name, (_, tracer, _) = workload_run
        assert tracer.pool.live_count() == 0, name


class TestFailureInjection:
    def test_runtime_error_propagates_through_profiler(self):
        with pytest.raises(MiniCRuntimeError):
            profile("int main() { int *p = 0; return *p; }")

    def test_assert_failure_propagates(self):
        with pytest.raises(MiniCRuntimeError):
            profile("int main() { assert(0); return 0; }")

    def test_step_limit_respected_under_profiling(self):
        from repro.core.alchemist import Alchemist, ProfileOptions
        alch = Alchemist(ProfileOptions(max_steps=5000))
        with pytest.raises(StepLimitExceeded):
            alch.profile("int main() { while (1) { } return 0; }")

    def test_division_by_zero_carries_location(self):
        with pytest.raises(MiniCRuntimeError) as excinfo:
            profile("int main() { int z = 0; return 5 / z; }")
        assert excinfo.value.line > 0
