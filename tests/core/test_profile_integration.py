"""End-to-end profiling tests.

These encode the paper's worked examples: the gzip Fig. 2/3 profile
shape, and the §III-B four-case context example showing why execution
indexing beats context sensitivity.
"""

import pytest

from repro.core.profile_data import DepKind
from tests.conftest import profile


def view_named(report, name):
    for v in report.constructs():
        if v.name == name:
            return v
    raise AssertionError(f"no construct named {name}: "
                         f"{[v.name for v in report.constructs()]}")


def loop_in(report, fn_name):
    loops = sorted((v for v in report.constructs()
                    if v.static.is_loop and v.fn_name == fn_name),
                   key=lambda v: -v.total_duration)
    assert loops, f"no loop profiled in {fn_name}"
    return loops


class TestGzipShape:
    """Fig. 2 and Fig. 3 on the miniature gzip fixture."""

    @pytest.fixture(autouse=True)
    def _report(self, gzip_like_source):
        self.report = profile(gzip_like_source)

    def test_main_is_largest_and_runs_once(self):
        top = self.report.constructs()[0]
        assert top.name == "main"
        assert top.instances == 1
        assert top.total_duration == self.report.stats.instructions

    def test_zip_loop_iterates_96_times(self):
        main_loop = loop_in(self.report, "main")[0]
        assert main_loop.instances == 96

    def test_flush_block_called_four_times(self):
        fb = view_named(self.report, "flush_block")
        assert fb.instances == 4

    def test_return_value_dependence_has_tdep_one(self):
        """Paper: 'RAW: line 29 -> line 9, Tdep=1' — the return value."""
        fb = view_named(self.report, "flush_block")
        retval_edges = [e for e in fb.edges(DepKind.RAW)
                        if e.var_hint.startswith("retval(")]
        assert retval_edges
        assert min(e.min_tdep for e in retval_edges) == 1

    def test_outcnt_dependence_after_call(self):
        """Paper: 'RAW: line 28 -> line 10, Tdep=3' — outcnt written at
        the end of flush_block, read right after the call."""
        fb = view_named(self.report, "flush_block")
        outcnt = [e for e in fb.edges(DepKind.RAW) if e.var_hint == "outcnt"]
        assert outcnt
        assert min(e.min_tdep for e in outcnt) <= 20

    def test_input_len_self_dependence_is_not_violating(self):
        """Paper: 'RAW: line 14 -> line 14, Tdep=4541215' — the distance
        between calls dwarfs the construct duration."""
        fb = view_named(self.report, "flush_block")
        loc = self.report.program.loc_of
        self_edges = [e for e in fb.edges(DepKind.RAW)
                      if e.var_hint == "input_len"
                      and loc(e.head_pc)[0] == loc(e.tail_pc)[0]]
        assert self_edges
        assert all(e.min_tdep > fb.tdur for e in self_edges)

    def test_waw_on_outcnt(self):
        """Fig. 3: 'WAW: line 28 -> line 10' on outcnt."""
        fb = view_named(self.report, "flush_block")
        assert any(e.var_hint == "outcnt" for e in fb.edges(DepKind.WAW))

    def test_war_on_flag_buf(self):
        """Fig. 3: 'WAR: line 17 -> line 7' — flag_buf read inside
        flush_block, rewritten later by the zip loop."""
        fb = view_named(self.report, "flush_block")
        war_vars = {e.var_hint.split("[")[0]
                    for e in fb.edges(DepKind.WAR)}
        assert "flag_buf" in war_vars

    def test_waw_on_last_flags(self):
        """Fig. 3's last_flags conflict: the reset inside flush_block and
        the increment in the zip loop collide (here as a WAW edge; the
        read the paper pairs it with is cleared by flush_block's own
        reset in this miniature)."""
        fb = view_named(self.report, "flush_block")
        waw_vars = {e.var_hint for e in fb.edges(DepKind.WAW)}
        assert "last_flags" in waw_vars

    def test_disjoint_outbuf_writes_no_waw(self):
        """Paper: 'there are no WAW dependences detected between writes
        to outbuf as they write to disjoint locations'."""
        fb = view_named(self.report, "flush_block")
        waw_vars = {e.var_hint.split("[")[0]
                    for e in fb.edges(DepKind.WAW)}
        assert "outbuf" not in waw_vars

    def test_node_turnover_is_reclaimable(self):
        # GC-backed allocation: nodes are never recycled (reuses == 0 by
        # construction); instead the peak-live footprint stays far below
        # the allocation count, showing completed instances do die and
        # become reclaimable.
        stats = self.report.stats.pool
        assert stats.reuses == 0
        assert stats.capacity < stats.acquires

    def test_exit_and_output(self):
        assert self.report.exit_value == 0
        assert len(self.report.output) == 1


class TestContextPrecision:
    """§III-B: four dependence placements, one calling context. Context-
    sensitive profiling cannot tell them apart; the index tree can."""

    def _profile(self, body_a, body_b):
        source = f"""
        int buf[64];
        void A(int round, int i, int j) {{ {body_a} }}
        int B(int round, int i, int j) {{ {body_b} }}
        int sink;
        int F(int round) {{
            int acc = 0;
            for (int i = 0; i < 3; i++) {{
                for (int j = 0; j < 3; j++) {{
                    A(round, i, j);
                    acc += B(round, i, j);
                }}
            }}
            return acc;
        }}
        int main() {{
            sink = F(0);
            sink += F(1);
            return 0;
        }}
        """
        report = profile(source)
        loops = sorted((v for v in report.constructs()
                        if v.static.is_loop and v.fn_name == "F"),
                       key=lambda v: -v.total_duration)
        outer, inner = loops[0], loops[1]
        f_proc = view_named(report, "F")
        a_proc = view_named(report, "A")

        def has_buf_raw(v):
            return any(e.var_hint.startswith("buf")
                       for e in v.edges(DepKind.RAW))

        return {
            "A": has_buf_raw(a_proc),
            "inner": has_buf_raw(inner),
            "outer": has_buf_raw(outer),
            "F": has_buf_raw(f_proc),
        }

    def test_case1_same_j_iteration(self):
        got = self._profile("buf[j] = i;", "return buf[j];")
        assert got["A"] is True       # crosses A's boundary
        assert got["inner"] is False  # within one j-iteration
        assert got["outer"] is False
        assert got["F"] is False

    def test_case2_crosses_j_loop_only(self):
        # A writes slot j+1, read by B in the NEXT j iteration.
        got = self._profile("if (j < 2) buf[j + 1] = i;",
                            "return buf[j];")
        assert got["inner"] is True
        assert got["outer"] is False
        assert got["F"] is False

    def test_case3_crosses_i_loop_only(self):
        # A writes a slot keyed by i+1, read by B in the next i iteration.
        got = self._profile("if (j == 0 && i < 2) buf[10 + i + 1] = i;",
                            "return buf[10 + i];")
        assert got["outer"] is True
        assert got["F"] is False

    def test_case4_crosses_calls_to_f(self):
        # Written during round 0, read during round 1.
        got = self._profile("if (round == 0) buf[20 + i] = 1;",
                            "return round == 1 ? buf[20 + i] : 0;")
        assert got["F"] is True


class TestLoopCarriedVsLocal:
    def test_loop_carried_dependence_attributed_to_loop(self):
        report = profile("""
        int a[32];
        int main() {
            a[0] = 1;
            for (int i = 1; i < 20; i++) {
                a[i] = a[i - 1] + 1;
            }
            print(a[19]);
            return 0;
        }
        """)
        loop = next(v for v in report.constructs() if v.static.is_loop)
        carried = [e for e in loop.edges(DepKind.RAW)
                   if e.var_hint.startswith("a[")]
        assert carried
        # Adjacent iterations: tiny distance, violating.
        assert any(e.min_tdep <= loop.tdur for e in carried)

    def test_independent_iterations_have_no_loop_raw(self):
        report = profile("""
        int a[32];
        int main() {
            for (int i = 0; i < 20; i++) {
                a[i] = i * i;
            }
            print(a[3]);
            return 0;
        }
        """)
        loop = next(v for v in report.constructs() if v.static.is_loop)
        # The only RAW edges on `a` reach the continuation (the print
        # after the loop) with distances far beyond one iteration; no
        # iteration-to-iteration dependence exists.
        buf_edges = [e for e in loop.edges(DepKind.RAW)
                     if e.var_hint.startswith("a[")]
        assert all(e.min_tdep > loop.tdur for e in buf_edges)

    def test_scalar_accumulator_is_loop_carried(self):
        report = profile("""
        int total;
        int main() {
            for (int i = 0; i < 10; i++) {
                total += i;
            }
            print(total);
            return 0;
        }
        """)
        loop = next(v for v in report.constructs() if v.static.is_loop)
        assert any(e.var_hint == "total" for e in loop.edges(DepKind.RAW))


class TestFrameReuseHygiene:
    def test_no_false_deps_across_reused_frames(self):
        """Locals of successive calls occupy the same addresses; freeing
        the frame must prevent cross-call RAW/WAW edges on them."""
        report = profile("""
        int f(int n) {
            int local = n * 2;
            return local + 1;
        }
        int sink;
        int main() {
            for (int i = 0; i < 10; i++) sink += f(i);
            return 0;
        }
        """)
        f_view = next(v for v in report.constructs() if v.name == "f")
        local_edges = [e for e in f_view.profile.edges.values()
                       if "local" in e.var_hint]
        assert local_edges == []

    def test_retval_cell_does_not_leak_waw(self):
        report = profile("""
        int g(int n) { return n; }
        int sink;
        int main() {
            for (int i = 0; i < 8; i++) sink += g(i);
            return 0;
        }
        """)
        g_view = next(v for v in report.constructs() if v.name == "g")
        retval_waw = [e for e in g_view.edges(DepKind.WAW)
                      if e.var_hint.startswith("retval")]
        assert retval_waw == []


class TestOptions:
    def test_war_waw_tracking_can_be_disabled(self, gzip_like_source):
        report = profile(gzip_like_source, track_war_waw=False)
        assert report.stats.war_events == 0
        assert report.stats.waw_events == 0
        assert report.stats.raw_events > 0

    def test_profile_is_deterministic(self, gzip_like_source):
        first = profile(gzip_like_source)
        second = profile(gzip_like_source)
        assert first.stats.instructions == second.stats.instructions
        assert first.stats.dynamic_instances == second.stats.dynamic_instances
        fb1 = view_named(first, "flush_block")
        fb2 = view_named(second, "flush_block")
        edges1 = {(k, e.min_tdep) for k, e in fb1.profile.edges.items()}
        edges2 = {(k, e.min_tdep) for k, e in fb2.profile.edges.items()}
        assert edges1 == edges2
