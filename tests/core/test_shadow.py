"""Shadow memory unit tests."""

from repro.core.node import ConstructNode
from repro.core.shadow import ShadowMemory


def node():
    return ConstructNode()


class TestDetection:
    def test_raw_from_last_write(self):
        shadow = ShadowMemory()
        writer = node()
        assert shadow.on_read(7, pc=1, node=node(), timestamp=5) is None
        shadow.on_write(7, pc=2, node=writer, timestamp=10)
        head = shadow.on_read(7, pc=3, node=node(), timestamp=14)
        assert head == (2, writer, 10)

    def test_raw_reflects_most_recent_write(self):
        shadow = ShadowMemory()
        first, second = node(), node()
        shadow.on_write(7, 1, first, 10)
        shadow.on_write(7, 2, second, 20)
        head = shadow.on_read(7, 3, node(), 25)
        assert head == (2, second, 20)

    def test_waw_links_consecutive_writes(self):
        shadow = ShadowMemory()
        first, second = node(), node()
        shadow.on_write(7, 1, first, 10)
        waw, wars = shadow.on_write(7, 2, second, 20)
        assert waw == (1, first, 10)
        assert wars == {}

    def test_war_from_reads_since_last_write(self):
        shadow = ShadowMemory()
        r1, r2 = node(), node()
        shadow.on_read(7, 11, r1, 5)
        shadow.on_read(7, 12, r2, 6)
        waw, wars = shadow.on_write(7, 2, node(), 9)
        assert waw is None
        assert set(wars) == {11, 12}
        assert wars[12] == (r2, 6)

    def test_write_clears_read_set(self):
        shadow = ShadowMemory()
        shadow.on_read(7, 11, node(), 5)
        shadow.on_write(7, 1, node(), 6)
        _, wars = shadow.on_write(7, 2, node(), 7)
        assert wars == {}  # the read paired with the first write only

    def test_repeated_read_same_pc_keeps_latest(self):
        shadow = ShadowMemory()
        a, b = node(), node()
        shadow.on_read(7, 11, a, 5)
        shadow.on_read(7, 11, b, 9)
        _, wars = shadow.on_write(7, 2, node(), 12)
        assert wars[11] == (b, 9)  # latest read -> minimal WAR Tdep

    def test_addresses_are_independent(self):
        shadow = ShadowMemory()
        shadow.on_write(7, 1, node(), 10)
        assert shadow.on_read(8, 2, node(), 11) is None


class TestClearing:
    def test_clear_range_forgets_writes(self):
        shadow = ShadowMemory()
        shadow.on_write(100, 1, node(), 10)
        shadow.on_write(101, 1, node(), 11)
        shadow.clear_range(100, 102)
        assert shadow.on_read(100, 2, node(), 20) is None
        assert shadow.on_read(101, 2, node(), 20) is None

    def test_clear_range_is_exact(self):
        shadow = ShadowMemory()
        shadow.on_write(99, 1, node(), 10)
        shadow.on_write(100, 1, node(), 10)
        shadow.clear_range(100, 101)
        assert shadow.on_read(99, 2, node(), 20) is not None
        assert shadow.on_read(100, 2, node(), 20) is None

    def test_clear_large_range_over_sparse_entries(self):
        shadow = ShadowMemory()
        shadow.on_write(5, 1, node(), 1)
        shadow.on_write(500_000, 1, node(), 2)
        shadow.clear_range(0, 1_000_000)
        assert shadow.tracked_addresses() == 0

    def test_tracked_addresses(self):
        shadow = ShadowMemory()
        for addr in range(10):
            shadow.on_write(addr, 1, node(), addr + 1)
        assert shadow.tracked_addresses() == 10
