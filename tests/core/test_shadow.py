"""Shadow memory unit tests."""

from repro.core.node import ConstructNode
from repro.core.shadow import ShadowMemory


def node():
    return ConstructNode()


class TestDetection:
    def test_raw_from_last_write(self):
        shadow = ShadowMemory()
        writer = node()
        assert shadow.on_read(7, pc=1, node=node(), timestamp=5) is None
        shadow.on_write(7, pc=2, node=writer, timestamp=10)
        head = shadow.on_read(7, pc=3, node=node(), timestamp=14)
        assert head == (2, writer, 10)

    def test_raw_reflects_most_recent_write(self):
        shadow = ShadowMemory()
        first, second = node(), node()
        shadow.on_write(7, 1, first, 10)
        shadow.on_write(7, 2, second, 20)
        head = shadow.on_read(7, 3, node(), 25)
        assert head == (2, second, 20)

    def test_waw_links_consecutive_writes(self):
        shadow = ShadowMemory()
        first, second = node(), node()
        shadow.on_write(7, 1, first, 10)
        waw, wars = shadow.on_write(7, 2, second, 20)
        assert waw == (1, first, 10)
        assert wars == {}

    def test_war_from_reads_since_last_write(self):
        shadow = ShadowMemory()
        r1, r2 = node(), node()
        shadow.on_read(7, 11, r1, 5)
        shadow.on_read(7, 12, r2, 6)
        waw, wars = shadow.on_write(7, 2, node(), 9)
        assert waw is None
        assert set(wars) == {11, 12}
        assert wars[12] == (r2, 6)

    def test_write_clears_read_set(self):
        shadow = ShadowMemory()
        shadow.on_read(7, 11, node(), 5)
        shadow.on_write(7, 1, node(), 6)
        _, wars = shadow.on_write(7, 2, node(), 7)
        assert wars == {}  # the read paired with the first write only

    def test_repeated_read_same_pc_keeps_latest(self):
        shadow = ShadowMemory()
        a, b = node(), node()
        shadow.on_read(7, 11, a, 5)
        shadow.on_read(7, 11, b, 9)
        _, wars = shadow.on_write(7, 2, node(), 12)
        assert wars[11] == (b, 9)  # latest read -> minimal WAR Tdep

    def test_addresses_are_independent(self):
        shadow = ShadowMemory()
        shadow.on_write(7, 1, node(), 10)
        assert shadow.on_read(8, 2, node(), 11) is None


class TestClearing:
    def test_clear_range_forgets_writes(self):
        shadow = ShadowMemory()
        shadow.on_write(100, 1, node(), 10)
        shadow.on_write(101, 1, node(), 11)
        shadow.clear_range(100, 102)
        assert shadow.on_read(100, 2, node(), 20) is None
        assert shadow.on_read(101, 2, node(), 20) is None

    def test_clear_range_is_exact(self):
        shadow = ShadowMemory()
        shadow.on_write(99, 1, node(), 10)
        shadow.on_write(100, 1, node(), 10)
        shadow.clear_range(100, 101)
        assert shadow.on_read(99, 2, node(), 20) is not None
        assert shadow.on_read(100, 2, node(), 20) is None

    def test_clear_large_range_over_sparse_entries(self):
        shadow = ShadowMemory()
        shadow.on_write(5, 1, node(), 1)
        shadow.on_write(500_000, 1, node(), 2)
        shadow.clear_range(0, 1_000_000)
        assert shadow.tracked_addresses() == 0

    def test_tracked_addresses(self):
        shadow = ShadowMemory()
        for addr in range(10):
            shadow.on_write(addr, 1, node(), addr + 1)
        assert shadow.tracked_addresses() == 10


class TestBucketIndex:
    """The per-range address index behind O(frame accesses) teardown."""

    def test_index_stays_in_sync(self):
        shadow = ShadowMemory()
        for addr in (3, 64, 65, 130, 700):
            shadow.on_write(addr, 1, node(), 1)
        shadow.on_read(131, 2, node(), 2)
        assert shadow.tracked_addresses() == 6
        # Clear one boundary bucket's worth plus a partial neighbour.
        shadow.clear_range(64, 132)
        assert shadow.tracked_addresses() == 2
        assert shadow.last_write(3) is not None
        assert shadow.last_write(700) is not None
        assert shadow.last_write(65) is None
        # Buckets hold no stale addresses: re-clearing is a no-op.
        shadow.clear_range(0, 1024)
        assert shadow.tracked_addresses() == 0
        assert not shadow._buckets

    def test_fully_covered_buckets_dropped_wholesale(self):
        shadow = ShadowMemory()
        for addr in range(128, 256):
            shadow.on_write(addr, 1, node(), 1)
        shadow.clear_range(128, 256)
        assert shadow.tracked_addresses() == 0
        assert not shadow._buckets

    def test_empty_and_inverted_ranges_are_noops(self):
        shadow = ShadowMemory()
        shadow.on_write(10, 1, node(), 1)
        shadow.clear_range(10, 10)
        shadow.clear_range(20, 10)
        assert shadow.tracked_addresses() == 1

    def test_huge_range_over_small_shadow(self):
        """A giant free must cost tracked-buckets, not range words."""
        shadow = ShadowMemory()
        shadow.on_write(1, 1, node(), 1)
        shadow.on_write(10_000_000, 1, node(), 1)
        import time
        start = time.perf_counter()
        shadow.clear_range(0, 1 << 40)
        elapsed = time.perf_counter() - start
        assert shadow.tracked_addresses() == 0
        assert elapsed < 0.1

    def test_random_equivalence_with_model(self):
        """Differential test against a plain-dict model."""
        import random

        rng = random.Random(99)
        shadow = ShadowMemory()
        model = {}
        for step in range(2000):
            op = rng.random()
            if op < 0.6:
                addr = rng.randrange(4096)
                shadow.on_write(addr, 1, node(), step)
                model[addr] = step
            else:
                lo = rng.randrange(4096)
                hi = lo + rng.randrange(512)
                shadow.clear_range(lo, hi)
                for addr in [a for a in model if lo <= a < hi]:
                    del model[addr]
            if step % 250 == 0:
                assert shadow.tracked_addresses() == len(model)
        assert shadow.tracked_addresses() == len(model)
        for addr in model:
            assert shadow.last_write(addr) is not None
