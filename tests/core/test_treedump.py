"""Index-tree recorder tests — the paper's Fig. 4 examples, literally."""

import pytest

from repro.core.treedump import record_index_tree


class TestFig4Examples:
    def test_example_a_procedure_nesting(self):
        """Fig. 4(a): B nested in A nested in (here) main; the index of
        a point inside B is [main, A, B]."""
        tree, _ = record_index_tree("""
        int g;
        void B() { g = 2; }
        void A() { g = 1; B(); }
        int main() { A(); return 0; }
        """)
        assert tree.index_of_first("B") == ["main", "A", "B"]
        a_nodes = tree.instances_of("A")
        assert len(a_nodes) == 1
        assert [c.name for c in a_nodes[0].children] == ["B"]

    def test_example_b_conditional_nesting(self):
        """Fig. 4(b): construct 4 is nested within construct 2, both in
        C — and the predicate itself belongs to the *enclosing*
        construct, not to the one it leads."""
        tree, _ = record_index_tree("""
        int g;
        void C(int p, int q) {
            if (p) {
                g = 3;
                if (q) { g = 4; }
            }
        }
        int main() { C(1, 1); return 0; }
        """)
        c_nodes = tree.instances_of("C")
        assert len(c_nodes) == 1
        outer_ifs = [c for c in c_nodes[0].children
                     if c.name.startswith("if")]
        assert len(outer_ifs) == 1
        inner_ifs = [c for c in outer_ifs[0].children
                     if c.name.startswith("if")]
        assert len(inner_ifs) == 1
        index = tree.index_of_first(inner_ifs[0].name)
        assert index[0] == "main" and index[1] == "C"

    def test_example_c_loop_iterations_are_siblings(self):
        """Fig. 4(c): the two iterations of the inner loop are siblings
        nested in one iteration of the outer loop; iterations of the
        outer loop are siblings nested in D."""
        tree, _ = record_index_tree("""
        int g;
        void D() {
            int i;
            int j;
            for (i = 0; i < 2; i++) {
                g += i;
                for (j = 0; j < 2; j++) { g += j; }
            }
        }
        int main() { D(); return 0; }
        """)
        d_nodes = tree.instances_of("D")
        assert len(d_nodes) == 1
        outer_iters = [c for c in d_nodes[0].children
                       if c.name.startswith("loop")]
        assert len(outer_iters) == 2  # iterations are siblings under D
        inner_of_first = [c for c in outer_iters[0].children
                          if c.name.startswith("loop")]
        assert len(inner_of_first) == 2  # inner iterations are siblings
        # The index of a point in the inner loop is [main, D, outer, inner].
        index = tree.index_of_first(inner_of_first[0].name)
        assert index[:2] == ["main", "D"]
        assert len(index) == 4


class TestTreeShape:
    def test_recursion_nests(self):
        tree, _ = record_index_tree("""
        int depth_sum;
        int f(int n) {
            depth_sum += n;
            if (n == 0) { return 0; }
            return f(n - 1);
        }
        int main() { return f(3); }
        """)
        f_nodes = tree.instances_of("f")
        assert len(f_nodes) == 4
        # Each activation is a child chain: f -> (if ->) f.
        top = f_nodes[0]
        descendants = [n for _, n in top.walk() if n.name == "f"]
        assert len(descendants) == 4  # itself + 3 nested activations

    def test_timestamps_nest(self):
        tree, _ = record_index_tree("""
        int g;
        void leaf() { g++; }
        int main() {
            int i;
            for (i = 0; i < 3; i++) { leaf(); }
            return 0;
        }
        """)
        for _, node in tree.root.walk():
            for child in node.children:
                assert node.t_enter <= child.t_enter
                assert child.t_exit <= node.t_exit or node.t_exit == 0

    def test_goto_loop_is_classified_as_loop_with_sibling_iterations(self):
        """A backward goto forms a natural loop in the CFG, so the
        `if (i < 3) goto top;` predicate is a *loop* predicate: its
        iterations are recorded as siblings (rule 4), exactly as for a
        `while` — hand-rolled goto loops are parallelization candidates
        too."""
        tree, _ = record_index_tree("""
        int g;
        int main() {
            int i = 0;
            top:
            g += i;
            i++;
            if (i < 3) { goto top; }
            return g;
        }
        """)
        loops = [n for n in tree.root.children
                 if n.name.startswith("loop")]
        assert len(loops) == 2  # two taken back edges -> two iterations
        assert all(not n.children for n in loops)

    def test_render_contains_structure(self):
        tree, _ = record_index_tree("""
        int g;
        void work() { g++; }
        int main() { work(); work(); return 0; }
        """)
        text = tree.render()
        assert "main" in text
        assert text.count("work") == 2
        assert "|-" in text or "`-" in text

    def test_render_depth_limit(self):
        tree, _ = record_index_tree("""
        int g;
        void inner() { g++; }
        void outer() { inner(); }
        int main() { outer(); return 0; }
        """)
        shallow = tree.render(max_depth=1)
        assert "outer" in shallow
        assert "inner" not in shallow

    def test_truncation_budget(self):
        tree, _ = record_index_tree("""
        int g;
        int main() {
            int i;
            for (i = 0; i < 100; i++) { g += i; }
            return 0;
        }
        """, max_nodes=10)
        assert tree.truncated
        assert tree.node_count == 10
        assert "truncated" in tree.render()

    def test_profile_collected_alongside(self):
        tree, tracer = record_index_tree("""
        int g;
        void work() { g++; }
        int main() { work(); return g; }
        """)
        names = {p.static.name for p in tracer.store.profiles.values()}
        assert "work" in names

    def test_switch_cases_appear(self):
        tree, _ = record_index_tree("""
        int g;
        int main() {
            int i;
            for (i = 0; i < 3; i++) {
                switch (i) {
                    case 0: g += 1; break;
                    case 1: g += 2; break;
                    default: g += 3;
                }
            }
            return g;
        }
        """)
        switches = [n for _, n in tree.root.walk()
                    if n.name.startswith("switch")]
        assert switches
