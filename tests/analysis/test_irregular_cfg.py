"""Post-dominance and construct regions on irregular CFGs.

`switch` cascades and `goto` jumps produce exactly the block shapes
§III-A's post-dominance treatment exists for; these tests pin the
static side down (the dynamic side is covered by the indexing tests).
"""

from repro.analysis.constructs import ConstructKind, ConstructTable
from repro.analysis.dominance import post_dominators
from repro.analysis.loops import find_loops
from repro.ir import compile_source
from repro.ir.cfg import VIRTUAL_EXIT


def table_of(source: str) -> ConstructTable:
    return ConstructTable(compile_source(source))


class TestSwitchPostDominance:
    SOURCE = """
    int g;
    int main() {
        int y = 0;
        switch (g) {
            case 1: y = 1; break;
            case 2: y = 2; break;
            default: y = 9;
        }
        g = y;
        return y;
    }
    """

    def test_every_switch_test_postdominated_by_join(self):
        """All cascade tests share the switch join as the place their
        constructs end: each test's region must exclude the join."""
        table = table_of(self.SOURCE)
        tests = [c for c in table.by_pc.values() if c.hint == "switch"]
        assert len(tests) == 2
        for construct in tests:
            assert construct.ipostdom_block is not None
            assert construct.ipostdom_block not in construct.region

    def test_fall_through_region_contains_next_arm(self):
        source = """
        int g;
        int main() {
            int y = 0;
            switch (g) {
                case 1: y = 1;
                case 2: y = 2; break;
            }
            return y;
        }
        """
        table = table_of(source)
        tests = sorted((c for c in table.by_pc.values()
                        if c.hint == "switch"), key=lambda c: c.pc)
        # Case 1's body falls through into case 2's body, so the first
        # test's region must include the second arm's blocks — which
        # also lie in the second test's region.
        assert tests[1].region & tests[0].region


class TestGotoPostDominance:
    def test_forward_goto_merges_postdominator(self):
        source = """
        int g;
        int main() {
            if (g) { goto out; }
            g = 5;
            out:
            return g;
        }
        """
        table = table_of(source)
        cond = next(c for c in table.by_pc.values()
                    if c.kind is ConstructKind.COND)
        # Both arms reach `out`, so the conditional's construct closes
        # at the label block.
        assert cond.ipostdom_block is not None

    def test_backward_goto_forms_natural_loop(self):
        source = """
        int g;
        int main() {
            int i = 0;
            top:
            g += i;
            i++;
            if (i < 4) { goto top; }
            return g;
        }
        """
        program = compile_source(source)
        loops = find_loops(program.functions["main"])
        assert len(loops) == 1
        table = ConstructTable(program)
        assert any(c.kind is ConstructKind.LOOP
                   for c in table.by_pc.values())

    def test_goto_skipping_loop_exit_keeps_postdominators_sound(self):
        """Jumping out of a nested loop: every block still has a path
        to the virtual exit, and every branch's post-dominator (when it
        exists) is outside its region."""
        source = """
        int g;
        int main() {
            int i;
            int j;
            for (i = 0; i < 4; i++) {
                for (j = 0; j < 4; j++) {
                    g++;
                    if (g == 7) { goto done; }
                }
            }
            done:
            return g;
        }
        """
        program = compile_source(source)
        fn = program.functions["main"]
        ipdom = post_dominators(fn)
        block_ids = {b.id for b in fn.blocks}
        for block in fn.blocks:
            post = ipdom.get(block.id)
            assert post == VIRTUAL_EXIT or post in block_ids or post is None
        table = ConstructTable(program)
        for construct in table.by_pc.values():
            if construct.ipostdom_block is not None:
                assert construct.ipostdom_block not in construct.region


class TestAdvisorInterproceduralContainment:
    def test_callee_tail_counts_as_iteration_carried(self):
        """A RAW chain through a helper called only from the loop body
        is iteration-carried: the loop must be BLOCKED, not READY."""
        from repro.core.advisor import Advisor, Verdict
        from repro.core.alchemist import Alchemist

        report = Alchemist().profile("""
        int state;
        int history[32];
        int step(int x) {
            state = (state * 31 + x) % 10007;
            return state;
        }
        int main() {
            int i;
            for (i = 0; i < 20; i++) { history[i] = step(i); }
            return state;
        }
        """)
        loop = next(v for v in report.constructs()
                    if v.static.is_loop and v.fn_name == "main")
        rec = Advisor(report).assess(loop)
        assert rec.verdict is Verdict.BLOCKED
        assert any(e.var_hint == "state" for e in rec.blocking_raw)

    def test_shared_helper_tail_stays_continuation(self):
        """A helper also called from the continuation is NOT contained
        in the loop, so an edge into it remains a join hint."""
        from repro.core.advisor import Advisor, Verdict
        from repro.core.alchemist import Alchemist

        report = Alchemist().profile("""
        int acc;
        int results[16];
        void bump(int x) { acc += x; }
        int main() {
            int i;
            for (i = 0; i < 16; i++) { results[i] = i * i; }
            bump(results[3]);
            return acc;
        }
        """)
        loop = next(v for v in report.constructs()
                    if v.static.is_loop and v.fn_name == "main")
        rec = Advisor(report).assess(loop)
        assert rec.verdict is not Verdict.BLOCKED
