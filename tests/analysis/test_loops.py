"""Natural loop detection tests."""

from repro.analysis.loops import find_loops
from repro.ir import compile_source
from repro.ir import instructions as ins


def loops_of(source, fn="main"):
    program = compile_source(source)
    return program, find_loops(program.functions[fn])


class TestLoopShapes:
    def test_while_loop(self):
        program, loops = loops_of(
            "int main() { int i = 0; while (i < 3) i++; return i; }")
        (loop,) = loops
        header = program.blocks_by_id[loop.header]
        assert "while.head" in header.label
        assert loop.canonical_branch_pc == header.terminator.pc

    def test_for_loop_body_includes_step(self):
        program, loops = loops_of(
            "int main() { for (int i = 0; i < 3; i++) { } return 0; }")
        (loop,) = loops
        labels = {program.blocks_by_id[b].label for b in loop.body}
        assert any("for.step" in lbl for lbl in labels)
        assert any("for.body" in lbl for lbl in labels)
        assert any("for.head" in lbl for lbl in labels)

    def test_do_while_canonical_is_cond_block(self):
        program, loops = loops_of(
            "int main() { int i = 0; do { i++; } while (i < 3); return i; }")
        (loop,) = loops
        branch = program.instrs[loop.canonical_branch_pc]
        assert isinstance(branch, ins.Branch)
        assert branch.hint == "dowhile"
        # Header (back-edge target) is the body, not the cond block.
        assert "do.body" in program.blocks_by_id[loop.header].label

    def test_nested_loops(self):
        program, loops = loops_of("""
        int main() {
            int s = 0;
            for (int i = 0; i < 3; i++)
                for (int j = 0; j < 3; j++)
                    s += i * j;
            return s;
        }
        """)
        assert len(loops) == 2
        outer, inner = sorted(loops, key=lambda l: -len(l.body))
        assert set(inner.body) < set(outer.body)

    def test_no_loops(self):
        _, loops = loops_of("int main() { return 0; }")
        assert loops == []

    def test_while_with_logical_cond_single_loop(self):
        program, loops = loops_of("""
        int main() {
            int a = 10;
            int b = 20;
            while (a > 0 && b > 0) { a--; b -= 2; }
            return a + b;
        }
        """)
        (loop,) = loops
        branch = program.instrs[loop.canonical_branch_pc]
        # The canonical predicate is the header's test on `a`, classified
        # from CFG structure even though the source condition spans two
        # branches.
        assert branch.hint == "logical"

    def test_loop_with_break_and_continue(self):
        program, loops = loops_of("""
        int main() {
            int s = 0;
            for (int i = 0; i < 10; i++) {
                if (i % 2 == 0) continue;
                if (i > 6) break;
                s += i;
            }
            return s;
        }
        """)
        (loop,) = loops
        # Loop body contains the conditional blocks.
        assert len(loop.body) >= 6


def _branch(pc):
    """A Branch with an assigned pc (finalize() normally does this)."""
    branch = ins.Branch(line=1, col=1, cond=0, then_block=1,
                        else_block=2, hint="while")
    branch.pc = pc
    return branch


class _FakeBlock:
    def __init__(self, terminator):
        self.terminator = terminator


class TestCanonicalBranchDeterminism:
    """With several branch-terminated back-edge sources (a merged
    shared-header loop) the canonical branch must be a property of the
    loop, not of back-edge discovery order."""

    def test_min_pc_regardless_of_back_edge_order(self):
        from repro.analysis.loops import LoopInfo, _canonical_branch

        # Header ends in a Jump; two back-edge sources end in Branches.
        jump = ins.Jump(line=1, col=1, target=0)
        jump.pc = 10
        blocks = {0: _FakeBlock(jump),
                  1: _FakeBlock(_branch(30)),
                  2: _FakeBlock(_branch(20))}
        for order in ([(1, 0), (2, 0)], [(2, 0), (1, 0)]):
            loop = LoopInfo(header=0)
            loop.back_edges = list(order)
            assert _canonical_branch(blocks, loop) == 20

    def test_header_branch_always_wins(self):
        from repro.analysis.loops import LoopInfo, _canonical_branch

        blocks = {0: _FakeBlock(_branch(40)),
                  1: _FakeBlock(_branch(5))}
        loop = LoopInfo(header=0)
        loop.back_edges = [(1, 0)]
        assert _canonical_branch(blocks, loop) == 40


class TestLoopStructurePins:
    """Pin nested-loop and shared-header behavior of find_loops."""

    def test_triple_nesting_is_strictly_ordered(self):
        program, loops = loops_of("""
        int main() {
            int s = 0;
            for (int i = 0; i < 2; i++)
                for (int j = 0; j < 2; j++)
                    for (int k = 0; k < 2; k++)
                        s += 1;
            return s;
        }
        """)
        assert len(loops) == 3
        by_size = sorted(loops, key=lambda l: len(l.body))
        inner, middle, outer = by_size
        assert set(inner.body) < set(middle.body) < set(outer.body)
        # Each loop's canonical branch sits inside its own body.
        for loop in loops:
            branch = program.instrs[loop.canonical_branch_pc]
            assert isinstance(branch, ins.Branch)
        # Loops are reported sorted by header id — a deterministic,
        # input-independent order.
        assert [l.header for l in loops] == sorted(l.header for l in loops)

    def test_continue_keeps_one_loop_with_one_header(self):
        # `continue` adds a second path to the loop's step block, not a
        # second natural loop: the back-edge set stays merged under a
        # single header.
        _, loops = loops_of("""
        int main() {
            int s = 0;
            for (int i = 0; i < 10; i++) {
                if (i % 3 == 0) continue;
                s += i;
            }
            return s;
        }
        """)
        (loop,) = loops
        assert loop.canonical_branch_pc is not None

    def test_sibling_loops_do_not_share_bodies(self):
        _, loops = loops_of("""
        int main() {
            int s = 0;
            for (int i = 0; i < 3; i++) s += i;
            for (int j = 0; j < 3; j++) s -= j;
            return s;
        }
        """)
        assert len(loops) == 2
        first, second = loops
        assert not (set(first.body) & set(second.body))
