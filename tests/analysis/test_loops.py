"""Natural loop detection tests."""

from repro.analysis.loops import find_loops
from repro.ir import compile_source
from repro.ir import instructions as ins


def loops_of(source, fn="main"):
    program = compile_source(source)
    return program, find_loops(program.functions[fn])


class TestLoopShapes:
    def test_while_loop(self):
        program, loops = loops_of(
            "int main() { int i = 0; while (i < 3) i++; return i; }")
        (loop,) = loops
        header = program.blocks_by_id[loop.header]
        assert "while.head" in header.label
        assert loop.canonical_branch_pc == header.terminator.pc

    def test_for_loop_body_includes_step(self):
        program, loops = loops_of(
            "int main() { for (int i = 0; i < 3; i++) { } return 0; }")
        (loop,) = loops
        labels = {program.blocks_by_id[b].label for b in loop.body}
        assert any("for.step" in lbl for lbl in labels)
        assert any("for.body" in lbl for lbl in labels)
        assert any("for.head" in lbl for lbl in labels)

    def test_do_while_canonical_is_cond_block(self):
        program, loops = loops_of(
            "int main() { int i = 0; do { i++; } while (i < 3); return i; }")
        (loop,) = loops
        branch = program.instrs[loop.canonical_branch_pc]
        assert isinstance(branch, ins.Branch)
        assert branch.hint == "dowhile"
        # Header (back-edge target) is the body, not the cond block.
        assert "do.body" in program.blocks_by_id[loop.header].label

    def test_nested_loops(self):
        program, loops = loops_of("""
        int main() {
            int s = 0;
            for (int i = 0; i < 3; i++)
                for (int j = 0; j < 3; j++)
                    s += i * j;
            return s;
        }
        """)
        assert len(loops) == 2
        outer, inner = sorted(loops, key=lambda l: -len(l.body))
        assert set(inner.body) < set(outer.body)

    def test_no_loops(self):
        _, loops = loops_of("int main() { return 0; }")
        assert loops == []

    def test_while_with_logical_cond_single_loop(self):
        program, loops = loops_of("""
        int main() {
            int a = 10;
            int b = 20;
            while (a > 0 && b > 0) { a--; b -= 2; }
            return a + b;
        }
        """)
        (loop,) = loops
        branch = program.instrs[loop.canonical_branch_pc]
        # The canonical predicate is the header's test on `a`, classified
        # from CFG structure even though the source condition spans two
        # branches.
        assert branch.hint == "logical"

    def test_loop_with_break_and_continue(self):
        program, loops = loops_of("""
        int main() {
            int s = 0;
            for (int i = 0; i < 10; i++) {
                if (i % 2 == 0) continue;
                if (i > 6) break;
                s += i;
            }
            return s;
        }
        """)
        (loop,) = loops
        # Loop body contains the conditional blocks.
        assert len(loop.body) >= 6
