"""Construct table tests: kinds, post-dominator ends, regions."""

from repro.analysis import ConstructKind, ConstructTable
from repro.ir import compile_source


def table_of(source):
    program = compile_source(source)
    return program, ConstructTable(program)


class TestKinds:
    def test_every_function_is_a_procedure_construct(self):
        program, table = table_of(
            "void f() { } int main() { f(); return 0; }")
        assert set(table.procedures) == {"f", "main"}
        for fn_name, construct in table.procedures.items():
            assert construct.kind is ConstructKind.PROCEDURE
            assert construct.pc == program.functions[fn_name].entry_pc

    def test_loop_and_cond_classification(self):
        _, table = table_of("""
        int main() {
            int s = 0;
            for (int i = 0; i < 4; i++) {
                if (i % 2) { s += i; }
            }
            while (s > 10) { s /= 2; }
            do { s++; } while (s < 3);
            return s;
        }
        """)
        kinds = sorted((c.kind.value, c.hint) for c in table.by_pc.values()
                       if c.kind is not ConstructKind.PROCEDURE)
        assert kinds == [("cond", "if"), ("loop", "dowhile"),
                         ("loop", "for"), ("loop", "while")]

    def test_static_count_matches_paper_definition(self):
        _, table = table_of("""
        int main() {
            int x = 0;
            if (x) { x = 1; }
            while (x < 5) { x++; }
            return x;
        }
        """)
        # 1 procedure + 1 if + 1 while.
        assert table.static_count() == 3


class TestRegions:
    def test_if_region_is_its_arms(self):
        program, table = table_of("""
        int main() {
            int x = 1;
            if (x) { x = 2; } else { x = 3; }
            return x;
        }
        """)
        cond = next(c for c in table.by_pc.values()
                    if c.kind is ConstructKind.COND)
        labels = {program.blocks_by_id[b].label for b in cond.region}
        assert any("if.then" in lbl for lbl in labels)
        assert any("if.else" in lbl for lbl in labels)
        assert not any("if.join" in lbl for lbl in labels)

    def test_loop_region_is_loop_body(self):
        program, table = table_of("""
        int main() {
            int i = 0;
            while (i < 3) { i++; }
            return i;
        }
        """)
        loop = next(c for c in table.by_pc.values() if c.is_loop)
        assert loop.region == loop.loop_body
        labels = {program.blocks_by_id[b].label for b in loop.region}
        assert not any("while.exit" in lbl for lbl in labels)

    def test_region_with_return_extends_to_function_end(self):
        program, table = table_of("""
        int main() {
            int i = 0;
            while (i < 10) { if (i == 5) return i; i++; }
            return 0;
        }
        """)
        loop = next(c for c in table.by_pc.values() if c.is_loop)
        # ipostdom is the virtual exit, so the loop's region covers every
        # block reachable from the header.
        assert loop.ipostdom_block is None
        exit_label = next(b.id for b in program.main.blocks
                          if "while.exit" in b.label)
        assert exit_label in loop.region

    def test_predicate_block_id_points_to_branch_block(self):
        program, table = table_of("""
        int main() {
            int x = 2;
            if (x > 1) { x = 0; }
            return x;
        }
        """)
        cond = next(c for c in table.by_pc.values()
                    if c.kind is ConstructKind.COND)
        block = program.blocks_by_id[cond.block_id]
        assert block.terminator.pc == cond.pc

    def test_ipostdom_of_if_is_join_block(self):
        program, table = table_of("""
        int main() {
            int x = 1;
            if (x) { x = 2; }
            return x;
        }
        """)
        cond = next(c for c in table.by_pc.values()
                    if c.kind is ConstructKind.COND)
        assert "if.join" in program.blocks_by_id[cond.ipostdom_block].label
