"""Dominator/post-dominator tests, cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dominance import (dominates, dominators_of,
                                      immediate_dominators,
                                      post_dominators, reachable_blocks)
from repro.ir import compile_source
from repro.ir.cfg import VIRTUAL_EXIT


def idoms_of_edges(edges, entry):
    graph = {}
    for a, b in edges:
        graph.setdefault(a, []).append(b)
        graph.setdefault(b, [])
    return immediate_dominators(entry, lambda n: graph.get(n, []))


class TestImmediateDominators:
    def test_diamond(self):
        edges = [(0, 1), (0, 2), (1, 3), (2, 3)]
        idom = idoms_of_edges(edges, 0)
        assert idom[1] == 0 and idom[2] == 0 and idom[3] == 0

    def test_chain(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        idom = idoms_of_edges(edges, 0)
        assert idom == {0: 0, 1: 0, 2: 1, 3: 2}

    def test_loop(self):
        edges = [(0, 1), (1, 2), (2, 1), (1, 3)]
        idom = idoms_of_edges(edges, 0)
        assert idom[2] == 1 and idom[3] == 1

    def test_unreachable_excluded(self):
        edges = [(0, 1), (5, 6)]
        idom = idoms_of_edges(edges, 0)
        assert 5 not in idom and 6 not in idom

    def test_dominates_helper(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        idom = idoms_of_edges(edges, 0)
        assert dominates(idom, 0, 0, 3)
        assert dominates(idom, 0, 2, 3)
        assert not dominates(idom, 0, 3, 2)

    @settings(max_examples=150, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                    min_size=1, max_size=25))
    def test_matches_networkx(self, edges):
        graph = nx.DiGraph()
        graph.add_node(0)
        graph.add_edges_from(edges)
        reachable = nx.descendants(graph, 0) | {0}
        # networkx >= 3.6 excludes the start node from its result.
        expected = {k: v for k, v in
                    nx.immediate_dominators(graph, 0).items() if k != 0}
        got = idoms_of_edges(edges, 0)
        assert set(got) == reachable
        assert got[0] == 0
        assert {k: v for k, v in got.items() if k != 0} == expected


class TestFunctionDominance:
    def test_post_dominators_straight_line(self):
        program = compile_source(
            "int main() { int x = 1; x = x + 1; return x; }")
        ipdom = post_dominators(program.main)
        # Single block: its post-dominator is the virtual exit.
        (block,) = program.main.blocks
        assert ipdom[block.id] == VIRTUAL_EXIT

    def test_if_postdominated_by_join(self):
        program = compile_source("""
        int main() {
            int x = 1;
            if (x) { x = 2; } else { x = 3; }
            return x;
        }
        """)
        fn = program.main
        ipdom = post_dominators(fn)
        labels = {b.id: b.label for b in fn.blocks}
        branch_block = next(b for b in fn.blocks if "entry" in b.label)
        join = ipdom[branch_block.id]
        assert "if.join" in labels[join]

    def test_loop_with_return_postdominated_by_exit_only(self):
        program = compile_source("""
        int main() {
            int i = 0;
            while (i < 10) { if (i == 3) return i; i++; }
            return 0;
        }
        """)
        fn = program.main
        ipdom = post_dominators(fn)
        header = next(b for b in fn.blocks if "while.head" in b.label)
        # A return inside the loop means nothing in the function
        # post-dominates the header except the virtual exit.
        assert ipdom[header.id] == VIRTUAL_EXIT

    def test_forward_dominators_of_loop(self):
        program = compile_source("""
        int main() {
            int i = 0;
            while (i < 3) { i++; }
            return i;
        }
        """)
        fn = program.main
        idom = dominators_of(fn)
        header = next(b for b in fn.blocks if "while.head" in b.label)
        body = next(b for b in fn.blocks if "while.body" in b.label)
        exit_b = next(b for b in fn.blocks if "while.exit" in b.label)
        assert idom[body.id] == header.id
        assert idom[exit_b.id] == header.id


class TestDualityProperty:
    """Post-dominance on the CFG == dominance on the reversed CFG."""

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)),
                    min_size=1, max_size=20))
    def test_postdom_is_dom_of_reverse(self, edges):
        graph = nx.DiGraph()
        graph.add_node(0)
        graph.add_edges_from(edges)
        # Add a virtual exit reachable from every sink. (A graph of only
        # cycles has no sinks — the exit is then isolated, matching an
        # infinite loop's empty post-dominance relation.)
        exit_node = 99
        graph.add_node(exit_node)
        for node in list(graph.nodes):
            if graph.out_degree(node) == 0 and node != exit_node:
                graph.add_edge(node, exit_node)
        reverse = graph.reverse()
        expected = {k: v for k, v in
                    nx.immediate_dominators(reverse, exit_node).items()
                    if k != exit_node}
        got = immediate_dominators(
            exit_node, lambda n: list(reverse.successors(n)))
        assert got[exit_node] == exit_node
        assert {k: v for k, v in got.items() if k != exit_node} == expected


class TestDeadBlocks:
    """Blocks unreachable from the entry (e.g. code lowered after an
    unconditional ``return``) must be excluded from both dominator
    maps instead of producing degenerate entries."""

    DEAD_LOOP = """
    int main() {
        int i = 0;
        return i;
        while (i < 10) { i = i + 1; }
        return 0;
    }
    """

    def test_dead_blocks_exist_but_are_unreachable(self):
        fn = compile_source(self.DEAD_LOOP).main
        live = reachable_blocks(fn)
        assert len(fn.blocks) > len(live), \
            "lowering should keep the dead while-loop blocks"
        assert live == {fn.entry_block.id}

    def test_forward_dominators_exclude_dead_blocks(self):
        fn = compile_source(self.DEAD_LOOP).main
        assert set(dominators_of(fn)) <= reachable_blocks(fn)

    def test_post_dominators_exclude_dead_blocks(self):
        # Regression: dead Ret blocks reach the virtual exit in the
        # reverse CFG, so they used to show up in the post-dominator
        # map (and polluted live blocks' reverse predecessor sets).
        fn = compile_source(self.DEAD_LOOP).main
        ipdom = post_dominators(fn)
        assert set(ipdom) <= reachable_blocks(fn)
        assert ipdom[fn.entry_block.id] == VIRTUAL_EXIT

    def test_dead_branch_into_live_code_does_not_skew_live_ipdoms(self):
        # The dead conditional jumps back into live code; the live
        # blocks' post-dominators must be what they would be without
        # the dead blocks.
        source = """
        int main() {
            int x = 1;
            if (x) { x = 2; } else { x = 3; }
            return x;
            if (x > 1) { return 1; }
            return 2;
        }
        """
        fn = compile_source(source).main
        live = reachable_blocks(fn)
        ipdom = post_dominators(fn)
        assert set(ipdom) <= live
        labels = {b.id: b.label for b in fn.blocks}
        branch_block = next(b for b in fn.blocks if "entry" in b.label)
        assert "if.join" in labels[ipdom[branch_block.id]]
