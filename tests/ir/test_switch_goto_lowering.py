"""CFG shapes for switch/goto lowering and their construct-table view."""

from repro.analysis.constructs import ConstructKind, ConstructTable
from repro.ir import instructions as ins
from tests.conftest import compile_ir


def branches(program, fn_name="main"):
    fn = program.functions[fn_name]
    return [i for b in fn.blocks for i in b.instrs
            if isinstance(i, ins.Branch)]


class TestSwitchLowering:
    def test_one_branch_per_tested_case(self):
        program = compile_ir("""
        int main() {
            switch (1) {
                case 1: return 1;
                case 2: return 2;
                case 3: return 3;
                default: return 0;
            }
        }
        """)
        hints = [b.hint for b in branches(program)]
        assert hints == ["switch", "switch", "switch"]

    def test_switch_branches_are_cond_constructs(self):
        program = compile_ir("""
        int main() {
            int y = 0;
            switch (2) { case 1: y = 1; break; case 2: y = 2; break; }
            return y;
        }
        """)
        table = ConstructTable(program)
        kinds = [c.kind for c in table.by_pc.values()
                 if c.hint == "switch"]
        assert kinds == [ConstructKind.COND, ConstructKind.COND]

    def test_switch_construct_regions_nest(self):
        # The first test's region must contain the second test's block
        # (cascade order), not vice versa.
        program = compile_ir("""
        int main() {
            int y = 0;
            switch (9) { case 1: y = 1; break; case 2: y = 2; break; }
            return y;
        }
        """)
        table = ConstructTable(program)
        tests = sorted((c for c in table.by_pc.values()
                        if c.hint == "switch"), key=lambda c: c.pc)
        first, second = tests
        assert second.block_id in first.region
        assert first.block_id not in second.region

    def test_empty_switch_loweres_to_jump(self):
        program = compile_ir("int main() { switch (1) { } return 0; }")
        assert branches(program) == []

    def test_default_only_switch(self):
        program = compile_ir(
            "int main() { int y = 0; switch (1) { default: y = 5; } "
            "return y; }")
        assert branches(program) == []


class TestGotoLowering:
    def test_goto_is_a_jump_not_a_branch(self):
        program = compile_ir("""
        int main() {
            goto out;
            out:
            return 0;
        }
        """)
        assert branches(program) == []

    def test_backward_goto_creates_cycle(self):
        # A goto-built loop: the label block is reachable from itself.
        program = compile_ir("""
        int main() {
            int i = 0;
            top:
            i++;
            if (i < 3) { goto top; }
            return i;
        }
        """)
        fn = program.functions["main"]
        label_blocks = [b for b in fn.blocks if "label.top" in b.label]
        assert len(label_blocks) == 1
        # Find the if's branch; its region should include the label block
        # only if the label is inside... here the branch jumps backwards,
        # so the label block must be among some block's successors twice.
        preds = fn.predecessors()
        assert len(preds[label_blocks[0].id]) == 2

    def test_goto_past_if_join_still_analyzes(self):
        # Jumping out of a conditional arm: post-dominance handles the
        # abandoned construct (no construct-table errors).
        program = compile_ir("""
        int main() {
            int x = 0;
            if (x == 0) { goto out; }
            x = 5;
            out:
            return x;
        }
        """)
        table = ConstructTable(program)
        conds = [c for c in table.by_pc.values()
                 if c.kind is ConstructKind.COND]
        assert len(conds) == 1
        # The if's immediate post-dominator is the label block (both arms
        # reach `out`).
        assert conds[0].ipostdom_block is not None
