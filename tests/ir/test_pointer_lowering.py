"""Lowering shapes for pointers and heap builtins."""

import pytest

from repro.ir import instructions as ins
from repro.lang.errors import SemanticError
from tests.conftest import compile_ir


def instrs_of(program, fn_name="main"):
    fn = program.functions[fn_name]
    return [i for block in fn.blocks for i in block.instrs]


def ops_of(program, fn_name="main"):
    return [i.opcode for i in instrs_of(program, fn_name)]


class TestPointerLowering:
    def test_deref_read_lowers_to_loadind(self):
        program = compile_ir("int main() { int *p; return *p; }")
        assert "loadind" in ops_of(program)

    def test_deref_write_lowers_to_storeind(self):
        program = compile_ir("int main() { int *p; *p = 3; return 0; }")
        assert "storeind" in ops_of(program)

    def test_pointer_index_read_is_indirect(self):
        program = compile_ir("int main() { int *p; return p[2]; }")
        ops = ops_of(program)
        assert "loadind" in ops
        # ...and reads the pointer variable itself first.
        loads = [i for i in instrs_of(program) if i.opcode == "load"]
        assert any(i.slot.name == "p" for i in loads)

    def test_pointer_index_write_is_indirect(self):
        program = compile_ir("int main() { int *p; p[1] = 7; return 0; }")
        assert "storeind" in ops_of(program)

    def test_array_index_stays_direct(self):
        program = compile_ir("int a[4]; int main() { return a[1]; }")
        ops = ops_of(program)
        assert "loadind" not in ops
        assert "load" in ops

    def test_addr_of_scalar(self):
        program = compile_ir("int g; int main() { return &g; }")
        addr = [i for i in instrs_of(program) if i.opcode == "addrof"]
        assert len(addr) == 1
        assert addr[0].slot.name == "g"

    def test_addr_of_element_adds_index(self):
        program = compile_ir(
            "int a[8]; int main() { int *p = &a[3]; return 0; }")
        ops = ops_of(program)
        assert "addrof" in ops
        assert "binop" in ops

    def test_addr_of_deref_cancels(self):
        program = compile_ir(
            "int main() { int *p; int *q = &*p; return 0; }")
        # &*p is just p: one load of p, no addrof, no loadind.
        ops = ops_of(program)
        assert "addrof" not in ops
        assert "loadind" not in ops

    def test_compound_assign_through_deref_single_address_eval(self):
        program = compile_ir("""
        int calls;
        int *get() { calls++; return &calls; }
        int main() { *get() += 5; return calls; }
        """)
        calls = [i for i in instrs_of(program) if i.opcode == "call"]
        assert len(calls) == 1

    def test_malloc_lowers_to_alloc(self):
        program = compile_ir("int main() { int *p = malloc(4); return 0; }")
        assert "alloc" in ops_of(program)

    def test_free_lowers_to_free(self):
        program = compile_ir(
            "int main() { int *p = malloc(4); free(p); return 0; }")
        assert "free" in ops_of(program)

    def test_malloc_result_required(self):
        # malloc returns a value usable in larger expressions.
        program = compile_ir("int main() { return malloc(1) != 0; }")
        assert "alloc" in ops_of(program)

    def test_array_decay_in_assignment(self):
        program = compile_ir(
            "int a[4]; int main() { int *p = a; return 0; }")
        assert "addrof" in ops_of(program)


class TestPointerLoweringErrors:
    def err(self, source):
        with pytest.raises(SemanticError):
            compile_ir(source)

    def test_malloc_arity(self):
        self.err("int main() { int *p = malloc(); return 0; }")

    def test_malloc_two_args(self):
        self.err("int main() { int *p = malloc(1, 2); return 0; }")

    def test_free_arity(self):
        self.err("int main() { free(); return 0; }")

    def test_malloc_not_shadowable(self):
        self.err("int malloc(int n) { return n; } int main() { return 0; }")

    def test_free_not_shadowable(self):
        self.err("void free(int p) { } int main() { return 0; }")

    def test_scalar_nonpointer_to_array_param(self):
        self.err("int f(int a[]) { return a[0]; } "
                 "int x; int main() { return f(x); }")

    def test_pointer_to_array_param_ok(self):
        program = compile_ir("int f(int a[]) { return a[0]; } "
                             "int main() { int *p; return f(p); }")
        assert "f" in program.functions

    def test_expression_to_array_param_ok(self):
        program = compile_ir(
            "int f(int a[]) { return a[0]; } int buf[8]; "
            "int main() { return f(&buf[2]); }")
        assert "f" in program.functions
