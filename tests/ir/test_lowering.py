"""Lowering unit tests: CFG shapes, slots, semantic errors."""

import pytest

from repro.ir import compile_source, format_program
from repro.ir import instructions as ins
from repro.ir.cfg import VIRTUAL_EXIT
from repro.lang.errors import SemanticError


def branches(fn):
    return [b.terminator for b in fn.blocks
            if isinstance(b.terminator, ins.Branch)]


class TestStructure:
    def test_all_blocks_terminated(self):
        program = compile_source("""
        int main() {
            int x = 0;
            if (x) { x = 1; } else { x = 2; }
            while (x < 5) x++;
            return x;
        }
        """)
        for fn in program.functions.values():
            for block in fn.blocks:
                assert isinstance(block.terminator, ins.TERMINATORS)

    def test_pcs_are_dense_and_unique(self):
        program = compile_source(
            "int f(int a) { return a + 1; } int main() { return f(2); }")
        pcs = [i.pc for i in program.instrs]
        assert pcs == list(range(len(pcs)))

    def test_ret_blocks_point_to_virtual_exit(self):
        program = compile_source("int main() { return 0; }")
        fn = program.main
        exits = [b for b in fn.blocks
                 if isinstance(b.terminator, ins.Ret)]
        assert exits
        assert all(b.successors() == [VIRTUAL_EXIT] for b in exits)

    def test_implicit_return_for_void_and_int(self):
        program = compile_source("void f() { } int main() { f(); }")
        assert isinstance(program.functions["f"].blocks[-1].terminator,
                          ins.Ret)
        main_term = program.main.blocks[-1].terminator
        assert isinstance(main_term, ins.Ret)
        assert main_term.src is not None  # returns the constant 0

    def test_while_shape(self):
        program = compile_source(
            "int main() { int i = 0; while (i < 3) i++; return i; }")
        (branch,) = branches(program.main)
        assert branch.hint == "while"
        # The header is the branch's block and is a back-edge target.
        labels = {b.id: b.label for b in program.main.blocks}
        assert "while.head" in labels[program.blocks_by_id[
            next(bid for bid, b in program.blocks_by_id.items()
                 if branch in b.instrs)].id]

    def test_for_without_cond_still_has_branch(self):
        program = compile_source(
            "int main() { for (;;) break; return 0; }")
        (branch,) = branches(program.main)
        assert branch.hint == "for"

    def test_logical_and_produces_branch(self):
        program = compile_source(
            "int main() { int a = 1; int b = 2; return a && b; }")
        hints = [b.hint for b in branches(program.main)]
        assert hints == ["logical"]

    def test_ternary_produces_branch(self):
        program = compile_source(
            "int main() { int a = 1; return a ? 2 : 3; }")
        hints = [b.hint for b in branches(program.main)]
        assert hints == ["ternary"]

    def test_globals_layout(self):
        program = compile_source(
            "int a; int buf[10]; int c = 7; int main() { return c; }")
        layout = {v.name: v for v in program.globals_layout}
        # Address 0 is reserved as NULL; globals start at 1.
        assert layout["a"].offset == 1
        assert layout["buf"].offset == 2 and layout["buf"].size == 10
        assert layout["c"].offset == 12 and layout["c"].init == 7
        assert program.globals_size == 13

    def test_frame_layout_reserves_retval_cell(self):
        program = compile_source(
            "int f(int a) { int b; int arr[3]; return a; } "
            "int main() { return f(1); }")
        fn = program.functions["f"]
        offsets = {v.name: v.offset for v in fn.locals_layout}
        assert min(offsets.values()) == 1  # offset 0 is the retval cell
        assert fn.frame_size == 1 + 1 + 1 + 3

    def test_array_param_uses_ref_slot(self):
        program = compile_source(
            "int f(int a[]) { return a[0]; } "
            "int buf[4]; int main() { return f(buf); }")
        fn = program.functions["f"]
        assert isinstance(fn.params[0].slot, ins.RefSlot)
        assert fn.num_refs == 1

    def test_const_size_expression(self):
        program = compile_source(
            "int buf[4 * 8 + 2]; int main() { return 0; }")
        assert program.global_var("buf").size == 34

    def test_format_program_runs(self):
        program = compile_source("int main() { return 1 + 2; }")
        text = format_program(program)
        assert "func main" in text
        assert "ret" in text


class TestSemanticErrors:
    def err(self, source):
        with pytest.raises(SemanticError):
            compile_source(source)

    def test_missing_main(self):
        self.err("int f() { return 0; }")

    def test_unknown_variable(self):
        self.err("int main() { return nope; }")

    def test_unknown_function(self):
        self.err("int main() { return g(); }")

    def test_arity_mismatch(self):
        self.err("int f(int a) { return a; } int main() { return f(); }")

    def test_array_decays_to_address_in_value_position(self):
        # C array decay: the name in value position is the base address,
        # not an error (global segment starts at 0, so buf sits at 0).
        program = compile_source("int buf[3]; int main() { return buf; }")
        fn = program.functions["main"]
        assert any(isinstance(i, ins.AddrOf)
                   for block in fn.blocks for i in block.instrs)

    def test_scalar_indexed(self):
        self.err("int x; int main() { return x[0]; }")

    def test_scalar_passed_to_array_param(self):
        self.err("int f(int a[]) { return a[0]; } "
                 "int x; int main() { return f(x); }")

    def test_array_passed_to_scalar_param_decays(self):
        # With C decay semantics the call passes the base address.
        program = compile_source("int f(int a) { return a; } "
                                 "int buf[3]; int main() { return f(buf); }")
        assert "f" in program.functions

    def test_void_value_used(self):
        self.err("void f() { } int main() { return f(); }")

    def test_break_outside_loop(self):
        self.err("int main() { break; }")

    def test_continue_outside_loop(self):
        self.err("int main() { continue; }")

    def test_void_returns_value(self):
        self.err("void f() { return 3; } int main() { f(); }")

    def test_int_returns_nothing(self):
        self.err("int f() { return; } int main() { return f(); }")

    def test_duplicate_local(self):
        self.err("int main() { int x; int x; return 0; }")

    def test_duplicate_global(self):
        self.err("int g; int g; int main() { return 0; }")

    def test_duplicate_function(self):
        self.err("int f() { return 0; } int f() { return 1; } "
                 "int main() { return 0; }")

    def test_non_constant_array_size(self):
        self.err("int main() { int n = 3; int buf[n]; return 0; }")

    def test_zero_array_size(self):
        self.err("int buf[0]; int main() { return 0; }")

    def test_main_with_params(self):
        self.err("int main(int a) { return a; }")

    def test_builtin_redefinition(self):
        self.err("void print(int x) { } int main() { return 0; }")

    def test_assign_to_array_name(self):
        self.err("int buf[3]; int main() { buf = 1; return 0; }")

    def test_array_initializer_rejected(self):
        self.err("int main() { int a[3] = 5; return 0; }")

    def test_shadowing_is_allowed(self):
        compile_source("""
        int x;
        int main() {
            int x = 1;
            { int x = 2; }
            for (int x = 0; x < 1; x++) { }
            return x;
        }
        """)
