"""CLI observability surface: --metrics artifacts, the stats verb,
--quiet/--verbose stream discipline, and --log-level JSON logs."""

import json

import pytest

from repro.cli import main
from repro.telemetry import validate_metrics

PROG = """
int a[32];
int main() {
    int s = 0;
    for (int i = 0; i < 40; i++) {
        a[i % 32] = i;
        s += a[(i + 3) % 32];
    }
    print(s);
    return 0;
}
"""


@pytest.fixture
def minic_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(PROG)
    return str(path)


def span_names(payload):
    names = []

    def walk(node):
        names.append(node["name"])
        for child in node.get("children", ()):
            walk(child)

    for span in payload["spans"]:
        walk(span)
    return names


class TestMetricsFlag:
    def test_analyze_writes_valid_artifact(self, minic_file, tmp_path,
                                           capsys):
        metrics = str(tmp_path / "m.json")
        assert main(["analyze", minic_file, "--analysis", "dep,counts",
                     "--metrics", metrics]) == 0
        payload = validate_metrics(json.load(open(metrics)))
        assert payload["command"] == "analyze"
        assert payload["exit_code"] == 0
        assert "--metrics" in payload["argv"]
        names = span_names(payload)
        # The tree covers the whole pipeline stages of this run.
        for stage in ("analyze", "compile", "record", "replay",
                      "analysis.finish"):
            assert stage in names, f"missing span {stage!r}"
        assert payload["counters"]["trace.events_decoded"] > 0
        assert payload["counters"]["trace.events_written"] > 0

    def test_record_artifact(self, minic_file, tmp_path):
        metrics = str(tmp_path / "m.json")
        trace = str(tmp_path / "p.trace")
        assert main(["record", minic_file, "-o", trace,
                     "--metrics", metrics]) == 0
        payload = validate_metrics(json.load(open(metrics)))
        assert payload["command"] == "record"
        assert "record" in span_names(payload)
        assert payload["counters"]["trace.bytes_written"] > 0

    def test_replay_artifact(self, minic_file, tmp_path):
        trace = str(tmp_path / "p.trace")
        assert main(["record", minic_file, "-o", trace]) == 0
        metrics = str(tmp_path / "m.json")
        assert main(["replay", trace, "--metrics", metrics]) == 0
        payload = validate_metrics(json.load(open(metrics)))
        assert "replay" in span_names(payload)
        assert payload["counters"]["trace.events_decoded"] > 0

    def test_failed_run_still_publishes_exit_code(self, tmp_path):
        metrics = str(tmp_path / "m.json")
        missing = str(tmp_path / "gone.mc")
        assert main(["analyze", missing, "--metrics", metrics]) == 2
        payload = validate_metrics(json.load(open(metrics)))
        assert payload["exit_code"] == 2

    def test_unwritable_metrics_path_does_not_fail_the_run(
            self, minic_file, tmp_path, capsys):
        metrics = str(tmp_path / "no-such-dir" / "m.json")
        assert main(["analyze", minic_file, "--analysis", "counts",
                     "--metrics", metrics]) == 0
        assert "--metrics" in capsys.readouterr().err


class TestStatsVerb:
    def test_renders_artifact(self, minic_file, tmp_path, capsys):
        metrics = str(tmp_path / "m.json")
        assert main(["analyze", minic_file, "--analysis", "dep",
                     "--metrics", metrics]) == 0
        capsys.readouterr()
        assert main(["stats", metrics]) == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "analyze" in out
        assert "trace.events_decoded" in out
        assert "events/s" in out

    def test_rejects_non_json(self, tmp_path, capsys):
        bad = tmp_path / "junk.json"
        bad.write_text("not json {")
        assert main(["stats", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_rejects_schema_violation(self, tmp_path, capsys):
        bad = tmp_path / "wrong.json"
        bad.write_text(json.dumps({"schema": "other"}))
        assert main(["stats", str(bad)]) == 2
        assert "/schema" in capsys.readouterr().err

    def test_missing_file_exit2(self, capsys):
        assert main(["stats", "/nonexistent/m.json"]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestStreamDiscipline:
    def test_quiet_record_keeps_result_on_stdout(self, minic_file,
                                                 tmp_path, capsys):
        trace = str(tmp_path / "p.trace")
        assert main(["record", minic_file, "-o", trace, "-q"]) == 0
        captured = capsys.readouterr()
        assert "recorded" in captured.out  # the result line survives
        assert captured.err == ""

    def test_quiet_replay(self, minic_file, tmp_path, capsys):
        trace = str(tmp_path / "p.trace")
        assert main(["record", minic_file, "-o", trace, "-q"]) == 0
        capsys.readouterr()
        assert main(["replay", trace, "--quiet"]) == 0
        captured = capsys.readouterr()
        assert "Method main" in captured.out
        assert captured.err == ""

    def test_quiet_and_verbose_conflict(self, minic_file, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", minic_file, "-q", "-v"])

    def test_log_level_emits_json_lines_on_stderr(self, minic_file,
                                                  tmp_path, capsys):
        trace = str(tmp_path / "p.trace")
        assert main(["record", minic_file, "-o", trace,
                     "--log-level", "debug"]) == 0
        captured = capsys.readouterr()
        logged = [json.loads(line)
                  for line in captured.err.strip().splitlines()
                  if line.startswith("{")]
        assert any(entry["msg"] == "recorded trace" for entry in logged)
        assert all(entry["logger"].startswith("alchemist")
                   for entry in logged)

    def test_env_var_controls_plain_verbs(self, minic_file, capsys,
                                          monkeypatch):
        from repro.telemetry import LOG_ENV_VAR

        monkeypatch.setenv(LOG_ENV_VAR, "info")
        assert main(["analyze", minic_file, "--analysis", "counts"]) == 0
        err = capsys.readouterr().err
        assert '"level": "info"' in err


class TestParallelMetrics:
    def test_worker_spans_under_coordinator(self, minic_file, tmp_path):
        trace = str(tmp_path / "seamed.trace")
        assert main(["record", minic_file, "-o", trace,
                     "--checkpoints", "40", "-q"]) == 0
        metrics = str(tmp_path / "m.json")
        assert main(["replay", trace, "--parallel", "--jobs", "2",
                     "--metrics", metrics, "-q"]) == 0
        payload = validate_metrics(json.load(open(metrics)))
        names = span_names(payload)
        assert "replay.parallel" in names or "replay" in names
        if "replay.parallel" in names:
            root = payload["spans"][0]
            kids = [c["name"] for c in root.get("children", ())]
            assert "segment" in kids
            assert "replay.merge" in kids
