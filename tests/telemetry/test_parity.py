"""Metrics parity: enabling telemetry must change ZERO analysis output.

The whole telemetry design rests on one invariant — spans observe the
pipeline, they never steer it. This suite re-runs the golden workload
matrix with an enabled :class:`Telemetry` threaded through the Session
and diffs the rendered snapshots against the committed goldens in
``tests/golden/`` (the exact files the telemetry-off matrix in
``tests/workloads/test_golden_matrix.py`` is held to): the diff must
be empty. A parallel-replay parity check covers the worker/stitching
path the golden matrix doesn't reach.
"""

import json
from pathlib import Path

import pytest

from repro.analyses import analysis_names
from repro.api import Session
from repro.telemetry import Telemetry
from repro.workloads import EXTRA_ORDER, TABLE3_ORDER, get

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"
SCALE = 0.25  # must match tests/workloads/test_golden_matrix.py
ALL_WORKLOADS = list(TABLE3_ORDER) + list(EXTRA_ORDER)


@pytest.fixture(scope="session")
def telemetry_session():
    with Session(telemetry=Telemetry()) as s:
        yield s


@pytest.mark.parametrize("workload", ALL_WORKLOADS)
def test_golden_matrix_identical_with_telemetry_on(telemetry_session,
                                                   workload):
    path = GOLDEN_DIR / f"{workload.replace('.', '_')}.json"
    if not path.exists():
        pytest.skip(f"no golden snapshot for {workload!r}")
    names = analysis_names()
    report = telemetry_session.analyze(get(workload, SCALE).source,
                                       names, filename=workload)
    payload = {
        "workload": workload,
        "scale": SCALE,
        "analyses": {name: report[name].to_dict() for name in names},
    }
    rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    assert rendered == path.read_text(), \
        f"telemetry changed the {workload!r} profile"


def test_session_recorded_spans_for_every_workload(telemetry_session):
    """Runs after the matrix (same session fixture): the parity run
    must actually have exercised the instrumented paths."""
    tm = telemetry_session.telemetry
    assert len(tm.find_spans("analyze")) >= len(ALL_WORKLOADS)
    assert tm.find_spans("record")
    assert tm.find_spans("replay")
    assert tm.counters["trace.events_decoded"] > 0
    assert tm.counters["trace.events_written"] > 0


def test_parallel_replay_parity_with_telemetry(tmp_path):
    """Sharded replay with telemetry on: identical analysis payloads,
    and per-segment worker spans stitched under the coordinator."""
    from repro.trace.parallel import parallel_replay
    from repro.trace.writer import record_source

    source = get("gzip", 0.25).source
    trace = str(tmp_path / "gzip.trace")
    record_source(source, trace, checkpoint_interval=2000)

    baseline = parallel_replay(trace, ("dep", "locality", "hot"),
                               jobs=1)
    tm = Telemetry()
    sharded = parallel_replay(trace, ("dep", "locality", "hot"),
                              jobs=3, telemetry=tm)
    base = {n: r.to_dict() for n, r in baseline.reports.items()}
    got = {n: r.to_dict() for n, r in sharded.reports.items()}
    assert got == base

    if sharded.mode == "parallel":
        coord = tm.find_spans("replay.parallel")
        assert len(coord) == 1
        segments = [c for c in coord[0].children if c.name == "segment"]
        assert len(segments) == len(sharded.plan.segments)
        ordinals = sorted(s.attrs["ordinal"] for s in segments)
        assert ordinals == list(range(len(segments)))


def test_sampled_record_parity_with_telemetry(tmp_path):
    """The sampling gate's counting closures are only installed when
    telemetry is on — they must not change what lands in the trace."""
    from repro.trace.reader import TraceReader
    from repro.trace.writer import record_source

    source = get("gzip", 0.25).source
    plain = str(tmp_path / "plain.trace")
    counted = str(tmp_path / "counted.trace")
    record_source(source, plain, sampling="interval:50")
    tm = Telemetry()
    record_source(source, counted, sampling="interval:50", telemetry=tm)

    def events(path):
        with TraceReader(path) as reader:
            return list(reader.events())

    assert events(counted) == events(plain)
    kept = tm.counters["sampling.memory_events_kept"]
    dropped = tm.counters["sampling.memory_events_dropped"]
    assert kept > 0 and dropped > 0
