"""Structured logging: JSON-lines formatting, the alchemist logger
tree, and level resolution (flag > ALCHEMIST_LOG > warning)."""

import io
import json
import logging

import pytest

from repro.telemetry import (LOG_ENV_VAR, JsonFormatter,
                             configure_logging, get_logger)


@pytest.fixture(autouse=True)
def restore_logging():
    """Leave the process-wide alchemist logger as the suite found it."""
    yield
    configure_logging()


def capture(level=None, env=None, monkeypatch=None):
    if monkeypatch is not None:
        if env is None:
            monkeypatch.delenv(LOG_ENV_VAR, raising=False)
        else:
            monkeypatch.setenv(LOG_ENV_VAR, env)
    stream = io.StringIO()
    configure_logging(level=level, stream=stream)
    return stream


class TestJsonFormatter:
    def test_one_json_object_per_record(self, monkeypatch):
        stream = capture(level="info", monkeypatch=monkeypatch)
        get_logger("repro.test").info("replay finished",
                                      extra={"events": 42,
                                             "trace": "x.trace"})
        payload = json.loads(stream.getvalue())
        assert payload["level"] == "info"
        assert payload["logger"] == "alchemist.repro.test"
        assert payload["msg"] == "replay finished"
        assert payload["events"] == 42
        assert payload["trace"] == "x.trace"
        assert isinstance(payload["ts"], float)

    def test_unserializable_extra_falls_back_to_repr(self, monkeypatch):
        stream = capture(level="info", monkeypatch=monkeypatch)
        get_logger("repro.test").info("x", extra={"obj": object()})
        payload = json.loads(stream.getvalue())
        assert payload["obj"].startswith("<object object")

    def test_exception_fields(self):
        formatter = JsonFormatter()
        try:
            raise ValueError("bad input")
        except ValueError:
            import sys
            record = logging.LogRecord("alchemist.t", logging.ERROR,
                                       "f.py", 1, "failed", (),
                                       sys.exc_info())
        payload = json.loads(formatter.format(record))
        assert payload["exc_type"] == "ValueError"
        assert payload["exc"] == "bad input"


class TestLoggerTree:
    def test_get_logger_grafts_under_alchemist(self):
        assert get_logger("repro.trace.replay").name == \
            "alchemist.repro.trace.replay"
        assert get_logger().name == "alchemist"

    def test_root_does_not_propagate(self):
        root = configure_logging()
        assert root.propagate is False


class TestLevelResolution:
    def test_default_is_warning(self, monkeypatch):
        stream = capture(monkeypatch=monkeypatch)
        log = get_logger("repro.test")
        log.info("hidden")
        log.warning("shown")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["msg"] == "shown"

    def test_env_var_sets_level(self, monkeypatch):
        stream = capture(env="debug", monkeypatch=monkeypatch)
        get_logger("repro.test").debug("visible now")
        assert json.loads(stream.getvalue())["level"] == "debug"

    def test_explicit_level_beats_env(self, monkeypatch):
        stream = capture(level="error", env="debug",
                         monkeypatch=monkeypatch)
        log = get_logger("repro.test")
        log.info("hidden")
        log.error("shown")
        assert len(stream.getvalue().strip().splitlines()) == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="loud")

    def test_reconfigure_does_not_double_log(self, monkeypatch):
        capture(level="info", monkeypatch=monkeypatch)
        stream = capture(level="info", monkeypatch=monkeypatch)
        get_logger("repro.test").info("once")
        assert len(stream.getvalue().strip().splitlines()) == 1
