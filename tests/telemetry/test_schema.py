"""The --metrics artifact: payload shape, strict validation with
violation paths, and the stats renderer."""

import pytest

from repro.telemetry import (METRICS_SCHEMA, METRICS_VERSION,
                             MetricsSchemaError, Telemetry,
                             metrics_payload, render_metrics,
                             validate_metrics)


def sample_payload():
    tm = Telemetry(clock=iter(range(100)).__next__,
                   cpu_clock=iter(range(100)).__next__)
    with tm.span("analyze", file="p.mc"):
        with tm.span("record") as rec:
            rec.set(events=100)
        with tm.span("replay"):
            pass
    tm.count("trace.events_decoded", 100)
    tm.count("trace.events_written", 100)
    tm.gauge("parallel.pool_utilization", 0.75)
    return metrics_payload(tm, command="analyze",
                           argv=["analyze", "p.mc"], exit_code=0)


class TestMetricsPayload:
    def test_shape_and_self_validation(self):
        payload = sample_payload()
        assert payload["schema"] == METRICS_SCHEMA
        assert payload["version"] == METRICS_VERSION
        assert payload["command"] == "analyze"
        assert payload["exit_code"] == 0
        assert [s["name"] for s in payload["spans"]] == ["analyze"]
        assert validate_metrics(payload) is payload

    def test_empty_telemetry_still_validates(self):
        payload = metrics_payload(Telemetry(), command="record",
                                  argv=[], exit_code=2)
        assert validate_metrics(payload)["spans"] == []


class TestValidationRejects:
    def check(self, mutate, path_fragment):
        payload = sample_payload()
        mutate(payload)
        with pytest.raises(MetricsSchemaError, match=path_fragment):
            validate_metrics(payload)

    def test_not_a_dict(self):
        with pytest.raises(MetricsSchemaError, match="object"):
            validate_metrics([1, 2])

    def test_wrong_schema_tag(self):
        self.check(lambda p: p.__setitem__("schema", "other"),
                   "/schema")

    def test_newer_version(self):
        self.check(lambda p: p.__setitem__("version",
                                           METRICS_VERSION + 1),
                   "/version")

    def test_bool_is_not_an_int_version(self):
        self.check(lambda p: p.__setitem__("version", True), "/version")

    def test_argv_must_be_strings(self):
        self.check(lambda p: p.__setitem__("argv", ["ok", 3]), "/argv")

    def test_span_missing_name(self):
        self.check(lambda p: p["spans"][0].pop("name"), "/spans/0/name")

    def test_span_unknown_key(self):
        self.check(lambda p: p["spans"][0].__setitem__("extra", 1),
                   "/spans/0")

    def test_negative_wall_seconds(self):
        self.check(
            lambda p: p["spans"][0].__setitem__("wall_seconds", -1),
            "/spans/0/wall_seconds")

    def test_nested_child_path_reported(self):
        self.check(
            lambda p: p["spans"][0]["children"][0].pop("name"),
            "/spans/0/children/0/name")

    def test_counter_values_integral(self):
        self.check(
            lambda p: p["counters"].__setitem__("x", 1.5),
            "/counters/x")

    def test_gauge_values_numeric(self):
        self.check(
            lambda p: p["gauges"].__setitem__("g", "high"),
            "/gauges/g")


class TestRenderMetrics:
    def test_renders_tree_counters_and_derived(self):
        text = render_metrics(sample_payload())
        assert "alchemist-metrics v1" in text
        assert "analyze" in text and "record" in text
        assert "trace.events_decoded" in text
        assert "parallel.pool_utilization" in text
        # Derived throughput from replay span + events_decoded counter.
        assert "events/s" in text

    def test_render_empty_run(self):
        payload = metrics_payload(Telemetry(), command="record",
                                  argv=[], exit_code=0)
        text = render_metrics(payload)
        assert "no spans" in text
