"""Span-tree mechanics with injected fake clocks: every timing in
these tests is exact, never sleep- or tolerance-based."""

from repro.telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry
from repro.telemetry.spans import Span, as_telemetry


class Ticker:
    """A fake clock: each reading advances by ``step``."""

    def __init__(self, step: float = 1.0, start: float = 0.0):
        self.step = step
        self.now = start

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def make_tm() -> Telemetry:
    # Wall ticks a full second per reading, CPU half of that: the test
    # can predict both timings from the number of clock reads alone.
    return Telemetry(clock=Ticker(1.0), cpu_clock=Ticker(0.5))


class TestSpanTree:
    def test_nesting_follows_dynamic_scope(self):
        tm = make_tm()
        with tm.span("outer"):
            with tm.span("first"):
                pass
            with tm.span("second"):
                with tm.span("grandchild"):
                    pass
        assert [s.name for s in tm.spans] == ["outer"]
        outer = tm.spans[0]
        assert [c.name for c in outer.children] == ["first", "second"]
        assert [c.name for c in outer.children[1].children] == \
            ["grandchild"]

    def test_deterministic_timings(self):
        tm = make_tm()
        with tm.span("outer") as outer:
            with tm.span("inner") as inner:
                pass
        # Wall reads: outer-enter(1), inner-enter(2), inner-exit(3),
        # outer-exit(4); CPU reads advance by 0.5 on the same schedule.
        assert inner.wall_seconds == 1.0
        assert outer.wall_seconds == 3.0
        assert inner.cpu_seconds == 0.5
        assert outer.cpu_seconds == 1.5

    def test_attrs_at_creation_and_set(self):
        tm = make_tm()
        with tm.span("record", file="a.mc") as span:
            span.set(events=42, bytes=100)
        assert span.attrs == {"file": "a.mc", "events": 42,
                              "bytes": 100}

    def test_exception_marks_error_attr(self):
        tm = make_tm()
        try:
            with tm.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        span = tm.spans[0]
        assert span.attrs["error"] == "RuntimeError"
        assert span.wall_seconds == 1.0  # still timed

    def test_sequential_roots_form_a_forest(self):
        tm = make_tm()
        with tm.span("a"):
            pass
        with tm.span("b"):
            pass
        assert [s.name for s in tm.spans] == ["a", "b"]

    def test_walk_is_preorder(self):
        tm = make_tm()
        with tm.span("root"):
            with tm.span("l"):
                with tm.span("ll"):
                    pass
            with tm.span("r"):
                pass
        walked = [(d, s.name) for d, s in tm.spans[0].walk()]
        assert walked == [(0, "root"), (1, "l"), (2, "ll"), (1, "r")]

    def test_find_spans(self):
        tm = make_tm()
        with tm.span("replay"):
            with tm.span("segment"):
                pass
            with tm.span("segment"):
                pass
        assert len(tm.find_spans("segment")) == 2
        assert tm.find_spans("nope") == []

    def test_to_dict_from_dict_roundtrip(self):
        tm = make_tm()
        with tm.span("root", trace="x.trace"):
            with tm.span("child") as child:
                child.set(n=3)
        payload = tm.export_spans()
        clone = Span.from_dict(tm, payload)
        assert clone.to_dict() == payload
        assert clone.name == "root"
        assert clone.children[0].attrs == {"n": 3}
        assert clone.children[0].wall_seconds == 1.0


class TestAttachAndExport:
    def test_attach_lands_under_open_span(self):
        """The coordinator stitches worker payloads while its own span
        is still open — exactly the parallel-replay shape."""
        worker = make_tm()
        with worker.span("segment", ordinal=0):
            pass
        coordinator = make_tm()
        with coordinator.span("replay.parallel"):
            coordinator.attach(worker.export_spans())
        root = coordinator.spans[0]
        assert [c.name for c in root.children] == ["segment"]
        assert root.children[0].attrs == {"ordinal": 0}

    def test_attach_none_is_noop(self):
        tm = make_tm()
        tm.attach(None)
        assert tm.spans == []

    def test_attach_without_open_span_becomes_root(self):
        tm = make_tm()
        tm.attach({"name": "orphan", "wall_seconds": 1,
                   "cpu_seconds": 1})
        assert [s.name for s in tm.spans] == ["orphan"]

    def test_export_spans_empty(self):
        assert make_tm().export_spans() is None


class TestCountersAndGauges:
    def test_count_accumulates(self):
        tm = make_tm()
        tm.count("trace.events_decoded", 10)
        tm.count("trace.events_decoded", 5)
        tm.count("hits")
        assert tm.counters == {"trace.events_decoded": 15, "hits": 1}

    def test_merge_counters_sums(self):
        tm = make_tm()
        tm.count("a", 1)
        tm.merge_counters({"a": 2, "b": 7})
        tm.merge_counters(None)
        assert tm.counters == {"a": 3, "b": 7}

    def test_gauge_last_value_wins(self):
        tm = make_tm()
        tm.gauge("parallel.pool_utilization", 0.5)
        tm.gauge("parallel.pool_utilization", 0.9)
        assert tm.gauges == {"parallel.pool_utilization": 0.9}


class TestNullTelemetry:
    def test_records_nothing(self):
        tm = NullTelemetry()
        with tm.span("x", a=1) as span:
            tm.count("c", 5)
            tm.gauge("g", 1.0)
            tm.attach({"name": "w", "wall_seconds": 0,
                       "cpu_seconds": 0})
            span.set(b=2)
        assert tm.spans == []
        assert tm.counters == {}
        assert tm.gauges == {}
        assert tm.export_spans() is None
        assert tm.find_spans("x") == []

    def test_null_span_still_times(self):
        """Stage timings are span-derived in BOTH modes; the disabled
        span must produce real (non-negative) readings."""
        with NULL_TELEMETRY.span("stage") as span:
            sum(range(1000))
        assert span.wall_seconds >= 0.0
        assert span.cpu_seconds >= 0.0

    def test_enabled_flags(self):
        assert Telemetry().enabled is True
        assert NULL_TELEMETRY.enabled is False

    def test_as_telemetry_normalizes_none(self):
        assert as_telemetry(None) is NULL_TELEMETRY
        tm = Telemetry()
        assert as_telemetry(tm) is tm
