"""Sampled recording: gating, header provenance, replay, Session keys."""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.core.alchemist import ProfileOptions
from repro.runtime.interpreter import run_source
from repro.runtime.tracing import CountingTracer
from repro.sampling import IntervalSampling, SampledTracer
from repro.trace import TraceReader, record_source
from repro.trace.events import (EV_ALLOC, EV_BLOCK, EV_BRANCH, EV_ENTER,
                                EV_EXIT, EV_FINISH, EV_FREE, EV_READ,
                                EV_WRITE)
from repro.trace.replay import replay_trace

PROG = """
int a[64];
int main() {
    int s = 0;
    for (int i = 0; i < 100; i++) {
        int *block = malloc(4);
        block[0] = i;
        a[i % 64] = block[0];
        s += a[(i + 1) % 64];
        free(block);
    }
    print(s);
    return 0;
}
"""


def counts_by_type(path):
    counts = {}
    with TraceReader(path) as reader:
        for etype, _a, _b, _t in reader.events():
            counts[etype] = counts.get(etype, 0) + 1
        return counts, reader.footer


@pytest.fixture
def traces(tmp_path):
    full = tmp_path / "full.trace"
    sampled = tmp_path / "sampled.trace"
    record_source(PROG, full)
    record_source(PROG, sampled, sampling="interval:4")
    return full, sampled


class TestSampledTrace:
    def test_memory_events_thinned_structure_kept(self, traces):
        full, sampled = traces
        fc, _ = counts_by_type(full)
        sc, _ = counts_by_type(sampled)
        memory_full = fc[EV_READ] + fc[EV_WRITE]
        memory_sampled = sc[EV_READ] + sc[EV_WRITE]
        assert memory_sampled == -(-memory_full // 4)  # ceil(n/4)
        for etype in (EV_ENTER, EV_EXIT, EV_BLOCK, EV_BRANCH, EV_ALLOC,
                      EV_FREE, EV_FINISH):
            assert sc.get(etype) == fc.get(etype), etype

    def test_header_and_footer_provenance(self, traces):
        _, sampled = traces
        counts, footer = counts_by_type(sampled)
        with TraceReader(sampled) as reader:
            assert reader.header.sampling == "interval:4"
        assert footer.events == sum(counts.values())

    def test_timestamps_still_absolute(self, traces):
        """Dropping events must not warp the clock of survivors."""
        full, sampled = traces
        with TraceReader(full) as reader:
            full_times = {(e, a, b, t) for e, a, b, t in reader.events()}
        with TraceReader(sampled) as reader:
            last = 0
            for event in reader.events():
                if event[0] != EV_FREE:
                    # Same event, same absolute timestamp. (FREE has no
                    # timestamp of its own — it borrows the previous
                    # *emitted* event's clock, which legitimately
                    # differs once events are dropped.)
                    assert event in full_times
                assert event[3] >= last
                last = event[3]

    def test_replay_flags_dep_as_sampled(self, traces):
        _, sampled = traces
        outcome = replay_trace(str(sampled), ("dep",))
        report = outcome.reports["dep"]
        assert report.data["sampled"] == "interval:4"
        assert "lower-confidence" in report.text
        assert report.payload.stats.sampling == "interval:4"
        assert "sampling=interval:4" in report.payload.describe_run()

    def test_full_replay_not_flagged(self, traces):
        full, _ = traces
        outcome = replay_trace(str(full), ("dep",))
        assert "sampled" not in outcome.reports["dep"].data

    def test_heap_replay_still_exact(self, traces):
        """ALLOC/FREE are never sampled, so memory reconstruction and
        symbolic names survive sampling."""
        _, sampled = traces
        outcome = replay_trace(str(sampled), ("hot",))
        names = {row.name for row in outcome.reports["hot"].payload}
        assert names  # symbolic resolution ran without divergence


class TestSampledTracerLive:
    def test_gates_only_memory_hooks(self):
        inner = CountingTracer()
        run_source(PROG, tracer=SampledTracer(IntervalSampling(4), inner))
        reference = CountingTracer()
        run_source(PROG, tracer=reference)
        assert inner.calls == reference.calls
        assert inner.branches == reference.branches
        assert inner.blocks == reference.blocks
        memory_ref = reference.reads + reference.writes
        assert inner.reads + inner.writes == -(-memory_ref // 4)

    def test_full_policy_is_transparent(self):
        from repro.sampling import FullSampling

        inner = CountingTracer()
        run_source(PROG, tracer=SampledTracer(FullSampling(), inner))
        reference = CountingTracer()
        run_source(PROG, tracer=reference)
        assert (inner.reads, inner.writes) == (reference.reads,
                                               reference.writes)


class TestSessionSamplingCache:
    def test_traces_keyed_by_sampling_config(self, tmp_path):
        full = Session(cache_dir=tmp_path / "a")
        sampled = Session(ProfileOptions(sample="interval:8"),
                          cache_dir=tmp_path / "b")
        try:
            p_full = full.record(PROG)
            p_sampled = sampled.record(PROG)
            assert p_full != p_sampled
            with TraceReader(p_full) as r:
                assert r.header.sampling == "full"
            with TraceReader(p_sampled) as r:
                assert r.header.sampling == "interval:8"
        finally:
            full.close()
            sampled.close()

    def test_same_config_hits_cache(self):
        with Session(ProfileOptions(sample="interval:8")) as session:
            first = session.record(PROG)
            second = session.record(PROG)
            assert first == second
            assert session.stats.records == 1
            assert session.stats.record_hits == 1

    def test_analyze_with_sampling_flags_results(self):
        with Session(ProfileOptions(sample="interval:8")) as session:
            report = session.analyze(PROG, ("dep", "counts"))
            assert report.modes["dep"] == "replay"
            assert report["dep"].data["sampled"] == "interval:8"

    def test_mixed_live_and_sampled_replay(self):
        """Live analyses on the recording run still see every event."""
        from repro.analyses import Analysis, AnalysisResult, register, \
            unregister

        class LiveCounter(Analysis):
            name = "livecount"
            description = "test-only"
            requires_live = True

            def __init__(self):
                self.reads = 0

            def on_read(self, addr, pc, timestamp):
                self.reads += 1

            def finish(self, ctx):
                return AnalysisResult(analysis=self.name,
                                      data={"reads": self.reads},
                                      text=str(self.reads))

        register(LiveCounter)
        try:
            with Session(ProfileOptions(sample="interval:8")) as session:
                report = session.analyze(PROG, ("livecount", "counts"))
                live_reads = report["livecount"].data["reads"]
                sampled_reads = report["counts"].data["reads"]
                assert report.modes["livecount"] == "live"
                assert report.modes["counts"] == "replay"
                assert 0 < sampled_reads < live_reads
        finally:
            unregister("livecount")

    def test_bad_spec_rejected_at_options(self):
        with pytest.raises(ValueError):
            ProfileOptions(sample="interval:zero")
        with pytest.raises(ValueError):
            ProfileOptions(trace_format=3)
