"""Sampling policies: spec grammar, schedules, determinism."""

from __future__ import annotations

import pytest

from repro.sampling import (BurstSampling, FullSampling, IntervalSampling,
                            ReservoirSampling, as_policy, parse_sample_spec)


def pattern(policy, events):
    """keep() decisions over a synthetic event stream."""
    policy.reset()
    return [policy.keep(addr, False) for addr in events]


class TestParse:
    @pytest.mark.parametrize("spec", [None, "", "full", "none", "off",
                                      "  FULL  "])
    def test_full_spellings(self, spec):
        policy = parse_sample_spec(spec)
        assert isinstance(policy, FullSampling)
        assert policy.is_full
        assert policy.expected_rate() == 1.0

    def test_interval(self):
        policy = parse_sample_spec("interval:100")
        assert isinstance(policy, IntervalSampling)
        assert policy.every == 100
        assert policy.expected_rate() == pytest.approx(0.01)

    def test_burst(self):
        policy = parse_sample_spec("burst:1000/10000")
        assert isinstance(policy, BurstSampling)
        assert (policy.keep_events, policy.period) == (1000, 10000)
        assert policy.expected_rate() == pytest.approx(0.1)

    def test_reservoir_with_seed(self):
        policy = parse_sample_spec("reservoir:64@7")
        assert isinstance(policy, ReservoirSampling)
        assert (policy.size, policy.seed) == (64, 7)
        assert policy.expected_rate() is None

    @pytest.mark.parametrize("spec", [
        "interval", "interval:", "interval:x", "burst:5",
        "burst:/10", "burst:a/b", "reservoir:", "gibberish",
        "interval:100:5", "reservoir:5@x",
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_sample_spec(spec)

    @pytest.mark.parametrize("spec,message", [
        ("interval:0", "every >= 1"),
        ("burst:0/10", "keep >= 1"),
        ("burst:11/10", "period >= keep"),
        ("reservoir:0", "size >= 1"),
    ])
    def test_range_errors_keep_their_message(self, spec, message):
        with pytest.raises(ValueError, match=message):
            parse_sample_spec(spec)

    def test_spec_roundtrip(self):
        for spec in ("full", "interval:7", "burst:3/12", "reservoir:16",
                     "reservoir:16@3"):
            policy = parse_sample_spec(spec)
            assert parse_sample_spec(policy.spec).spec == policy.spec

    def test_as_policy_passthrough(self):
        policy = IntervalSampling(5)
        assert as_policy(policy) is policy
        assert as_policy("interval:5").spec == policy.spec


class TestSchedules:
    def test_interval_every_nth(self):
        policy = IntervalSampling(3)
        assert pattern(policy, range(9)) == [True, False, False] * 3

    def test_interval_one_keeps_all(self):
        policy = IntervalSampling(1)
        assert all(pattern(policy, range(10)))

    def test_burst_window(self):
        policy = BurstSampling(2, 5)
        assert pattern(policy, range(10)) == \
            [True, True, False, False, False] * 2

    def test_reset_restarts_the_clock(self):
        policy = IntervalSampling(4)
        first = pattern(policy, range(6))
        second = pattern(policy, range(6))
        assert first == second

    def test_reservoir_small_universe_keeps_all(self):
        policy = ReservoirSampling(16)
        stream = [1, 2, 3, 4] * 8
        assert all(pattern(policy, stream))

    def test_reservoir_bounds_membership(self):
        policy = ReservoirSampling(4, seed=1)
        policy.reset()
        kept_addrs = set()
        for addr in range(1000):
            if policy.keep(addr, False):
                kept_addrs.add(addr)
        # Every kept address was a reservoir member at its event time;
        # the *final* membership is bounded by the size.
        assert len(policy._slots) == 4

    def test_reservoir_deterministic(self):
        stream = [(i * 37) % 101 for i in range(500)]
        a = pattern(ReservoirSampling(8, seed=42), stream)
        b = pattern(ReservoirSampling(8, seed=42), stream)
        c = pattern(ReservoirSampling(8, seed=43), stream)
        assert a == b
        assert a != c

    def test_reservoir_draws_once_per_distinct_address(self):
        """Algorithm R is over *distinct* addresses: re-encountering a
        non-member address must not redraw (frequency-biased inclusion)
        and a displaced address never re-enters, so every final
        resident was admitted at its first event — complete counts."""
        policy = ReservoirSampling(2, seed=0)
        policy.reset()
        stream = [1] * 100 + [a for a in range(2, 11) for _ in range(5)] \
            + [1] * 100
        kept: dict[int, int] = {}
        first_seen: dict[int, int] = {}
        total: dict[int, int] = {}
        for i, addr in enumerate(stream):
            first_seen.setdefault(addr, i)
            total[addr] = total.get(addr, 0) + 1
            if policy.keep(addr, False):
                kept[addr] = kept.get(addr, 0) + 1
        assert policy._distinct == 10  # distinct addresses, not events
        for addr in policy._slots:  # final residents: complete counts
            assert kept[addr] == total[addr], addr
