"""Accuracy module: error bounds of sampled traces vs full ones."""

from __future__ import annotations

import json

import pytest

from repro.sampling.accuracy import compare_traces
from repro.trace import record_source
from repro.trace.events import TraceError

PROG = """
int hot[8];
int cold[512];
int main() {
    int s = 0;
    for (int i = 0; i < 400; i++) {
        hot[i % 8] = hot[i % 8] + 1;
        cold[(i * 7) % 512] = i;
        s += hot[(i + 1) % 8];
    }
    print(s);
    return 0;
}
"""

OTHER = """
int main() { print(1); return 0; }
"""


@pytest.fixture
def trace_pair(tmp_path):
    full = tmp_path / "full.trace"
    sampled = tmp_path / "sampled.trace"
    record_source(PROG, full)
    record_source(PROG, sampled, sampling="interval:4")
    return str(full), str(sampled)


class TestCompareTraces:
    def test_full_vs_itself_is_exact(self, tmp_path):
        full = tmp_path / "full.trace"
        twin = tmp_path / "twin.trace"
        record_source(PROG, full)
        record_source(PROG, twin)
        report = compare_traces(str(full), str(twin))
        assert report.rate == 1.0
        assert report.rows["hot"].metrics["count_error"] == 0.0
        assert report.rows["hot"].metrics["top_overlap"] == 1.0
        assert report.rows["locality"].metrics["hit_rate_error"] == 0.0
        assert report.rows["dep"].metrics["missed_fraction"] == 0.0

    def test_sampled_errors_measured(self, trace_pair):
        full, sampled = trace_pair
        report = compare_traces(full, sampled)
        assert report.sampling == "interval:4"
        assert report.rate == pytest.approx(0.25)
        hot = report.rows["hot"].metrics
        assert 0.0 <= hot["count_error"] < 1.0
        assert 0.0 <= hot["top_overlap"] <= 1.0
        locality = report.rows["locality"].metrics
        assert 0.0 <= locality["hit_rate_error"] <= 1.0

    def test_dep_always_flagged_as_hints(self, trace_pair):
        full, sampled = trace_pair
        report = compare_traces(full, sampled)
        dep = report.rows["dep"]
        assert dep.metrics["edges_sampled"] <= dep.metrics["edges_full"]
        assert any("under-approxim" in flag for flag in dep.flags)
        assert "min-distance" in report.to_text()

    def test_report_is_jsonable(self, trace_pair):
        full, sampled = trace_pair
        payload = json.dumps(compare_traces(full, sampled).to_dict())
        decoded = json.loads(payload)
        assert decoded["sampling"] == "interval:4"
        assert set(decoded["analyses"]) == {"hot", "locality", "dep"}

    def test_reservoir_scored_on_coverage(self, tmp_path):
        full = tmp_path / "full.trace"
        sampled = tmp_path / "res.trace"
        record_source(PROG, full)
        record_source(PROG, sampled, sampling="reservoir:32")
        report = compare_traces(str(full), str(sampled))
        assert report.rate is None
        hot = report.rows["hot"]
        assert "top_coverage" in hot.metrics
        assert any("reservoir" in flag for flag in hot.flags)

    def test_digest_mismatch_rejected(self, tmp_path):
        full = tmp_path / "full.trace"
        other = tmp_path / "other.trace"
        record_source(PROG, full)
        record_source(OTHER, other, sampling="interval:4")
        with pytest.raises(TraceError, match="not the same program"):
            compare_traces(str(full), str(other))

    def test_sampled_reference_rejected(self, trace_pair):
        full, sampled = trace_pair
        with pytest.raises(TraceError, match="itself sampled"):
            compare_traces(sampled, sampled)
