"""CLI tests for the tree command, --extra workloads, and pointer
programs through the profile command."""

import pytest

from repro.cli import main

POINTER_PROG = """
int results[4];
int total;
int crunch(int *buf, int n) {
    int acc = 0;
    int i;
    for (i = 0; i < n; i++) { acc += buf[i]; }
    return acc;
}
int main() {
    int round;
    for (round = 0; round < 4; round++) {
        int *block = malloc(8);
        int i;
        for (i = 0; i < 8; i++) { block[i] = round * 8 + i; }
        results[round] = crunch(block, 8);
        free(block);
    }
    for (round = 0; round < 4; round++) { total += results[round]; }
    print(total);
    return 0;
}
"""


@pytest.fixture
def pointer_file(tmp_path):
    path = tmp_path / "pointers.mc"
    path.write_text(POINTER_PROG)
    return str(path)


class TestTreeCommand:
    def test_tree_renders(self, pointer_file, capsys):
        assert main(["tree", pointer_file]) == 0
        out = capsys.readouterr().out
        assert "main" in out
        assert "crunch" in out
        assert "loop" in out

    def test_tree_depth_limit(self, pointer_file, capsys):
        assert main(["tree", pointer_file, "--depth", "1"]) == 0
        out = capsys.readouterr().out
        assert "main" in out
        assert "crunch" not in out

    def test_tree_truncation(self, pointer_file, capsys):
        assert main(["tree", pointer_file, "--max-nodes", "5"]) == 0
        captured = capsys.readouterr()
        assert "truncated" in captured.out or "truncated" in captured.err


class TestPointerPrograms:
    def test_run_pointer_program(self, pointer_file, capsys):
        assert main(["run", pointer_file]) == 0
        assert "496" in capsys.readouterr().out  # sum of 0..31

    def test_profile_pointer_program(self, pointer_file, capsys):
        assert main(["profile", pointer_file, "--top", "6"]) == 0
        out = capsys.readouterr().out
        assert "crunch" in out

    def test_speedup_on_heap_loop(self, pointer_file, capsys):
        # Line 12 is the per-round loop.
        line = next(i for i, text in
                    enumerate(POINTER_PROG.splitlines(), start=1)
                    if "round < 4" in text and "round++" in text)
        assert main(["speedup", pointer_file, "--line", str(line),
                     "--workers", "4"]) == 0
        out = capsys.readouterr().out
        assert "T_par" in out and "tasks" in out


class TestAnnotateCommand:
    def test_annotate_renders_guidance(self, pointer_file, capsys):
        line = next(i for i, text in
                    enumerate(POINTER_PROG.splitlines(), start=1)
                    if "round < 4" in text and "results[round]" not in text)
        assert main(["annotate", pointer_file, "--line", str(line)]) == 0
        out = capsys.readouterr().out
        assert "verdict:" in out
        assert "SPAWN" in out or "DO NOT SPAWN" in out

    def test_annotate_bad_line_fails_cleanly(self, pointer_file, capsys):
        assert main(["annotate", pointer_file, "--line", "1"]) == 2
        assert "error" in capsys.readouterr().err


class TestWorkloadsExtra:
    def test_default_lists_table3_only(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "gzip" in out
        assert "wordcount" not in out

    def test_extra_flag_includes_heap_workloads(self, capsys):
        assert main(["workloads", "--extra"]) == 0
        out = capsys.readouterr().out
        assert "wordcount" in out
        assert "lisp-cons" in out
