"""Property-based equivalence: the columnar batch decoder IS V2Decoder.

:class:`~repro.trace.codec.V2BatchDecoder` promises byte-for-byte the
same observable behaviour as the scalar reference decoder — the same
events in the same order, and on malformed input the same event
*prefix* followed by the same typed error with the same message. This
suite pins that promise:

* hypothesis-generated random streams, with tiny block sizes so
  records cross many block seams and per-type delta state must carry
  across them;
* resume-from-checkpoint ``state`` dicts captured mid-stream;
* random truncation and byte-flip corruption (drains must match
  events, exception type, and exception text);
* hand-crafted corrupt blocks covering both codec hardening fixes —
  the bounded-varint cap and the encoder's non-monotone-clock
  rejection;
* batch-vs-scalar replay-engine parity over every registered analysis
  plus a scalar-only custom plugin (the fallback dispatch path).
"""

from __future__ import annotations

import io
import random
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.codec import (BLOCK_HEADER, MAX_VARINT_BYTES, V2Decoder,
                               V2BatchDecoder, V2Encoder, encode_events,
                               make_encoder, read_uvarint)
from repro.trace.events import (EV_ALLOC, EV_BLOCK, EV_BRANCH,
                                EV_CHECKPOINT, EV_ENTER, EV_EXIT,
                                EV_FINISH, EV_FREE, EV_READ, EV_WRITE,
                                TraceError, TraceTruncatedError)

EVENT_TYPES = (EV_ENTER, EV_EXIT, EV_BLOCK, EV_BRANCH, EV_READ,
               EV_WRITE, EV_ALLOC, EV_FREE, EV_CHECKPOINT)

U32 = (1 << 32) - 1


def drain(decoder) -> tuple[list, type | None, str]:
    """Everything a decoder produces: events, then how it stopped."""
    events = []
    try:
        for event in decoder.events():
            events.append(event)
    except Exception as exc:  # noqa: BLE001 — the *type* is the oracle
        return events, type(exc), str(exc)
    return events, None, ""


def both(blob: bytes, state: dict | None = None):
    scalar = drain(V2Decoder(io.BytesIO(blob), "<t>", state=state))
    batch = drain(V2BatchDecoder(io.BytesIO(blob), "<t>", state=state))
    return scalar, batch


# A record's operands: mostly small (the wire format's sweet spot),
# sometimes full 32-bit (multi-byte varints), to mix 1..5-byte fields.
operand = st.one_of(st.integers(0, 4096), st.integers(0, U32))
gap = st.one_of(st.just(0), st.integers(0, 7), st.integers(0, 1 << 40))
record = st.tuples(st.sampled_from(EVENT_TYPES), operand, operand, gap)


def absolutize(records: list[tuple], finish: bool) -> list[tuple]:
    time = 0
    events = []
    for etype, a, b, delta in records:
        time += delta
        events.append((etype, a, b, time))
    if finish:
        events.append((EV_FINISH, 0, 0, time))
    return events


class TestStreamEquivalence:
    @given(records=st.lists(record, max_size=300),
           block_bytes=st.integers(1, 64),
           finish=st.booleans())
    @settings(max_examples=150, deadline=None)
    def test_random_streams_across_block_seams(self, records,
                                               block_bytes, finish):
        """Valid and FINISH-less streams: identical events, identical
        termination (StopIteration vs the missing-FINISH error)."""
        events = absolutize(records, finish)
        blob = encode_events(events, 2, block_bytes)
        scalar, batch = both(blob)
        assert batch == scalar
        if finish:
            assert scalar == (events, None, "")

    @given(records=st.lists(record, min_size=20, max_size=200),
           split=st.integers(1, 19),
           block_bytes=st.integers(1, 48))
    @settings(max_examples=100, deadline=None)
    def test_resume_from_checkpoint_state(self, records, split,
                                          block_bytes):
        """Decoding the tail blocks seeded with the encoder's captured
        ``state`` dict: both decoders reconstruct the same suffix."""
        events = absolutize(records, True)
        encoder = make_encoder(2, block_bytes)
        head = bytearray()
        last = 0
        for etype, a, b, t in events[:split]:
            encoder.add(etype, a, b, t - last)
            last = t
        head += encoder.take()
        state = encoder.state()
        state["time"] = last
        tail = bytearray()
        for etype, a, b, t in events[split:]:
            encoder.add(etype, a, b, t - last)
            last = t
        tail += encoder.take()
        scalar, batch = both(bytes(tail), state=state)
        assert batch == scalar
        assert scalar == (events[split:], None, "")

    @given(records=st.lists(record, max_size=120),
           block_bytes=st.integers(1, 32),
           cut=st.integers(0, 10_000))
    @settings(max_examples=150, deadline=None)
    def test_truncation_equivalence(self, records, block_bytes, cut):
        """Any prefix of a valid stream: same events, same typed
        truncation error, same message."""
        blob = encode_events(absolutize(records, True), 2, block_bytes)
        scalar, batch = both(blob[:cut % (len(blob) + 1)])
        assert batch == scalar

    @given(records=st.lists(record, min_size=1, max_size=120),
           block_bytes=st.integers(1, 32),
           seed=st.integers(0, 2 ** 32))
    @settings(max_examples=150, deadline=None)
    def test_byte_flip_corruption_equivalence(self, records,
                                              block_bytes, seed):
        """Random byte flips anywhere in the framed stream — headers,
        compressed payloads, lengths: still the same prefix-then-error
        behaviour from both decoders."""
        blob = bytearray(encode_events(absolutize(records, True), 2,
                                       block_bytes))
        rng = random.Random(seed)
        for _ in range(rng.randint(1, 4)):
            pos = rng.randrange(len(blob))
            blob[pos] ^= 1 << rng.randrange(8)
        scalar, batch = both(bytes(blob))
        assert batch == scalar

    @given(raw=st.binary(min_size=1, max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_block_payload_equivalence(self, raw):
        """A well-framed block holding arbitrary bytes: whatever the
        scalar loop makes of it (garbage events, overlong varints,
        mid-record cuts), the batch decoder makes the same."""
        payload = zlib.compress(raw)
        blob = BLOCK_HEADER.pack(len(payload), len(raw)) + payload
        scalar, batch = both(blob)
        assert batch == scalar

    def test_finish_mid_block_stops_both_decoders(self):
        """Records packed after FINISH in the same block are dead
        bytes: neither decoder may surface them."""
        raw = bytearray()
        for etype in (EV_READ, EV_FINISH, EV_WRITE, EV_READ):
            raw += bytes((etype, 2, 2, 1))
        payload = zlib.compress(bytes(raw))
        blob = BLOCK_HEADER.pack(len(payload), len(raw)) + payload
        scalar, batch = both(blob)
        assert batch == scalar
        events, exc_type, _ = scalar
        assert exc_type is None
        assert [e[0] for e in events] == [EV_READ, EV_FINISH]


class TestBoundedVarint:
    """Satellite fix 1: ``read_uvarint`` is capped at 10 bytes."""

    def test_ten_byte_varint_still_decodes(self):
        data = b"\x80" * (MAX_VARINT_BYTES - 1) + b"\x01"
        value, pos = read_uvarint(data, 0)
        assert value == 1 << (7 * (MAX_VARINT_BYTES - 1))
        assert pos == MAX_VARINT_BYTES

    def test_eleven_continuation_bytes_raise_typed_error(self):
        data = b"\xff" * (MAX_VARINT_BYTES + 5)
        with pytest.raises(TraceError, match="overlong varint"):
            read_uvarint(data, 0)

    def test_overlong_is_not_reported_as_truncation(self):
        """The cap fires even with bytes left — corruption, not EOF."""
        data = b"\xff" * 64 + b"\x01"
        with pytest.raises(TraceError) as info:
            read_uvarint(data, 0)
        assert not isinstance(info.value, TraceTruncatedError)

    def test_truncated_varint_still_truncation_error(self):
        with pytest.raises(TraceTruncatedError, match="cut mid-way"):
            read_uvarint(b"\x80\x80", 0)

    def test_overlong_varint_in_block_same_from_both_decoders(self):
        """An in-band overlong field: the decoders agree on prefix and
        error (the batch kernel falls back, then applies the cap)."""
        raw = bytes((EV_READ, 2, 2, 1))          # one good record
        raw += bytes((EV_WRITE,)) + b"\xff" * 24  # then a corrupt one
        payload = zlib.compress(raw)
        blob = BLOCK_HEADER.pack(len(payload), len(raw)) + payload
        scalar, batch = both(blob)
        assert batch == scalar
        events, exc_type, message = scalar
        assert [e[0] for e in events] == [EV_READ]
        assert exc_type is TraceError
        assert "overlong varint" in message


class TestEncoderClockGuard:
    """Satellite fix 2: negative time deltas are rejected with
    context, not a bare ``ValueError`` from ``bytearray.append``."""

    def test_negative_delta_raises_trace_error_with_event_index(self):
        encoder = V2Encoder()
        encoder.add(EV_READ, 1, 2, 3)
        encoder.add(EV_WRITE, 1, 2, 3)
        with pytest.raises(TraceError, match=r"event 2: clock went "
                                             r"backwards"):
            encoder.add(EV_READ, 1, 2, -1)

    def test_message_names_the_offending_delta(self):
        with pytest.raises(TraceError, match=r"timestamp delta -7"):
            V2Encoder().add(EV_READ, 0, 0, -7)

    def test_rejected_event_is_not_encoded(self):
        encoder = V2Encoder()
        encoder.add(EV_READ, 1, 2, 3)
        pending = encoder.pending()
        with pytest.raises(TraceError):
            encoder.add(EV_READ, 1, 2, -1)
        assert encoder.pending() == pending


class TestEngineParity:
    """Batch dispatch must reproduce scalar replay exactly — for the
    builtin analyses and for plugins that never opted in."""

    @pytest.fixture(scope="class")
    def trace(self, tmp_path_factory):
        from repro.trace.writer import record_source
        from repro.workloads import get

        path = str(tmp_path_factory.mktemp("col") / "wl.trace")
        record_source(get("aes", 0.25).source, path,
                      checkpoint_interval=2000)
        return path

    def test_all_registered_analyses_identical(self, trace):
        from repro.analyses import analysis_names
        from repro.trace.replay import replay_trace

        names = analysis_names()
        scalar = replay_trace(trace, names, columnar=False)
        batch = replay_trace(trace, names, columnar=True)
        for name in names:
            assert (batch.reports[name].to_dict()
                    == scalar.reports[name].to_dict()), name

    def test_scalar_only_plugin_sees_every_event(self, trace):
        """A plugin without ``consume_batch`` rides the per-event
        fallback inside the batch engine — same hook sequence."""
        from repro.analyses import Analysis
        from repro.analyses.base import AnalysisResult
        from repro.trace.replay import replay_with

        class Probe(Analysis):
            name = "probe"
            description = "records every hook invocation"

            def __init__(self):
                self.log = []

            def on_enter_function(self, fn_name, entry_pc, timestamp):
                self.log.append(("enter", fn_name, entry_pc, timestamp))

            def on_exit_function(self, fn_name, timestamp):
                self.log.append(("exit", fn_name, timestamp))

            def on_block_enter(self, block_id, timestamp):
                self.log.append(("block", block_id, timestamp))

            def on_branch(self, pc, target_block, timestamp):
                self.log.append(("branch", pc, target_block, timestamp))

            def on_read(self, addr, pc, timestamp):
                self.log.append(("read", addr, pc, timestamp))

            def on_write(self, addr, pc, timestamp):
                self.log.append(("write", addr, pc, timestamp))

            def on_heap_alloc(self, base, size, timestamp):
                self.log.append(("alloc", base, size, timestamp))

            def on_frame_free(self, lo, hi):
                self.log.append(("free", lo, hi))

            def on_finish(self, timestamp):
                self.log.append(("finish", timestamp))

            def finish(self, ctx):
                return AnalysisResult(analysis=self.name,
                                      data={"events": len(self.log)},
                                      text="probe")

        runs = {}
        for mode in (False, True):
            probe = Probe()
            replay_with(trace, [probe], columnar=mode)
            runs[mode] = probe.log
        assert runs[True] == runs[False]
        assert runs[True]  # the probe actually saw the stream

    def test_mixed_batch_and_scalar_consumers(self, trace):
        """Block, span, and scalar consumers in one engine pass agree
        with an all-scalar pass (the dispatch-split seams)."""
        from repro.analyses import make_analyses
        from repro.trace.replay import replay_with

        def run(columnar):
            consumers = make_analyses(("counts", "dep", "hot"))
            outcome = replay_with(trace, consumers, columnar=columnar)
            return {name: report.to_dict()
                    for name, report in outcome.reports.items()}

        assert run(True) == run(False)
