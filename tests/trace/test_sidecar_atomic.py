"""Atomic ``.ckpt`` sidecar publication (PR 5 satellite).

The sidecar used to be written with a plain ``open(side, "w")``: a
crash mid-dump (or a reader racing the writer) could observe a torn
JSON file, which the loader silently treats as a miss — every later
replay rescans the trace. Writes now go through
:func:`repro.util.atomic_write_json`: a temp file in the same
directory, then ``os.replace`` into place."""

import json
import os

import pytest

from repro.trace.shards import (SIDECAR_SUFFIX, _write_sidecar,
                                load_or_build_checkpoints)
from repro.trace.writer import record_source

SOURCE = """
int a[32];
int main() {
    for (int i = 0; i < 200; i++) a[i % 32] = a[(i + 1) % 32] + i;
    print(a[3]);
    return 0;
}
"""


@pytest.fixture
def trace(tmp_path):
    path = str(tmp_path / "scan.trace")
    # v1, no embedded seams: the scan path can cut at any record, so a
    # small trace still yields checkpoints (v2 scans only cut at block
    # seams, and this trace fits one block).
    record_source(SOURCE, path, version=1, checkpoint_interval=0)
    return path


class TestAtomicSidecar:
    def test_sidecar_written_and_reused(self, trace):
        first = load_or_build_checkpoints(trace, interval=200)
        side = trace + SIDECAR_SUFFIX
        assert os.path.exists(side)
        with open(side) as handle:
            json.load(handle)  # complete, valid JSON on disk
        again = load_or_build_checkpoints(trace, interval=200)
        assert [c.to_payload() for c in again] == \
            [c.to_payload() for c in first]

    def test_no_temp_droppings(self, trace, tmp_path):
        load_or_build_checkpoints(trace, interval=200)
        leftovers = [n for n in os.listdir(tmp_path) if ".tmp" in n]
        assert leftovers == []

    def test_interrupted_write_preserves_old_sidecar(self, trace,
                                                     monkeypatch):
        """A crash mid-dump must leave the previous sidecar intact:
        the temp file takes the damage, the published file never."""
        load_or_build_checkpoints(trace, interval=200)
        side = trace + SIDECAR_SUFFIX
        before = open(side).read()

        import repro.util as util

        def exploding_replace(src, dst):
            # The temp file holds the new bytes; the publish rename is
            # where the simulated crash lands.
            raise OSError("disk full")

        monkeypatch.setattr(util.os, "replace", exploding_replace)
        # Different interval -> cache miss -> rebuild + attempted write.
        checkpoints = load_or_build_checkpoints(trace, interval=120)
        assert checkpoints  # degraded to scanning, not to an error
        assert open(side).read() == before  # old sidecar untouched
        directory = os.path.dirname(side)
        assert [n for n in os.listdir(directory) if ".tmp" in n] == []

    def test_write_sidecar_failure_is_silent(self, tmp_path):
        target = str(tmp_path / "missing-dir" / "x.ckpt")
        _write_sidecar(target, {"k": 1})  # mkstemp fails: no raise
        assert not os.path.exists(target)

    def test_concurrent_reader_never_sees_torn_json(self, trace):
        """os.replace publishes whole files: any sidecar present on
        disk parses, even immediately after a rebuild."""
        for interval in (200, 150, 120):
            load_or_build_checkpoints(trace, interval=interval)
            with open(trace + SIDECAR_SUFFIX) as handle:
                data = json.load(handle)
            assert data["interval"] == interval
