"""Batch driver: determinism, ordering, error isolation, parallelism."""

from __future__ import annotations

from repro.trace.batch import (BatchJob, record_replay_many, run_batch,
                               run_job)

WORKLOADS = ["gzip", "aes"]
SCALE = 0.25


class TestJobs:
    def test_record_job(self, tmp_path):
        job = BatchJob(kind="record", name="gzip", workload="gzip",
                       scale=SCALE,
                       trace_path=str(tmp_path / "gzip.trace"))
        result = run_job(job)
        assert result.ok, result.error
        assert result.payload["events"] > 0
        assert (tmp_path / "gzip.trace").exists()

    def test_replay_job_payload_shape(self, tmp_path):
        trace = str(tmp_path / "gzip.trace")
        assert run_job(BatchJob(kind="record", name="gzip",
                                workload="gzip", scale=SCALE,
                                trace_path=trace)).ok
        result = run_job(BatchJob(kind="replay", name="gzip",
                                  trace_path=trace,
                                  analyses=("dep", "locality", "hot")))
        assert result.ok, result.error
        dep = result.payload["dep"]
        assert dep["constructs"]
        assert dep["instructions"] > 0
        assert result.payload["locality"]["accesses"] > 0
        assert result.payload["hot"]

    def test_plugin_modules_reach_the_worker_registry(self, tmp_path,
                                                      monkeypatch):
        """Spawn-started workers re-import only the builtins; jobs must
        import the caller's plugin modules before resolving analyses."""
        import textwrap

        (tmp_path / "plugmod_batch_test.py").write_text(textwrap.dedent("""
            from repro.analyses import Analysis, AnalysisResult, register

            @register
            class PlugCounts(Analysis):
                name = "plug-counts-test"

                def __init__(self):
                    self.reads = 0

                def on_read(self, addr, pc, timestamp):
                    self.reads += 1

                def finish(self, ctx):
                    return AnalysisResult(self.name,
                                          {"reads": self.reads}, "ok")
        """))
        monkeypatch.syspath_prepend(str(tmp_path))
        trace = str(tmp_path / "gzip.trace")
        assert run_job(BatchJob(kind="record", name="gzip",
                                workload="gzip", scale=SCALE,
                                trace_path=trace)).ok
        from repro.analyses import unregister

        try:
            result = run_job(BatchJob(
                kind="replay", name="gzip", trace_path=trace,
                analyses=("plug-counts-test",),
                plugin_modules=("plugmod_batch_test",)))
            assert result.ok, result.error
            assert result.payload["plug-counts-test"]["reads"] > 0
        finally:
            unregister("plug-counts-test")

    def test_legacy_nondict_result_payload_preserved(self, tmp_path):
        """Pre-registry consumers whose result() returns a non-dict
        (like the old HotAddressConsumer's list) keep that payload."""
        from repro.trace.replay import CONSUMERS, TraceConsumer

        class LegacyList(TraceConsumer):
            name = "legacy-list-test"

            def __init__(self):
                self.addrs = set()

            def on_read(self, addr, pc, timestamp):
                self.addrs.add(addr)

            def result(self, ctx):
                return sorted(self.addrs)[:3]

        trace = str(tmp_path / "gzip.trace")
        assert run_job(BatchJob(kind="record", name="gzip",
                                workload="gzip", scale=SCALE,
                                trace_path=trace)).ok
        CONSUMERS["legacy-list-test"] = LegacyList
        try:
            result = run_job(BatchJob(kind="replay", name="gzip",
                                      trace_path=trace,
                                      analyses=("legacy-list-test",)))
            assert result.ok, result.error
            payload = result.payload["legacy-list-test"]
            assert isinstance(payload, list) and len(payload) == 3
        finally:
            del CONSUMERS["legacy-list-test"]

    def test_errors_travel_as_data(self, tmp_path):
        result = run_job(BatchJob(kind="replay", name="missing",
                                  trace_path=str(tmp_path / "no.trace")))
        assert not result.ok
        assert "FileNotFoundError" in result.error

        result = run_job(BatchJob(kind="bogus", name="x", trace_path="x"))
        assert not result.ok
        assert "ValueError" in result.error


class TestBatchOrdering:
    def test_results_in_submission_order(self, tmp_path):
        jobs = [BatchJob(kind="record", name=name, workload=name,
                         scale=SCALE,
                         trace_path=str(tmp_path / f"{name}.trace"))
                for name in WORKLOADS]
        results = run_batch(jobs, workers=2)
        assert [r.job.name for r in results] == WORKLOADS
        assert all(r.ok for r in results)

    def test_parallel_equals_serial(self, tmp_path):
        parallel = record_replay_many(WORKLOADS, str(tmp_path / "par"),
                                      analyses=("dep", "hot"),
                                      workers=2, scale=SCALE)
        serial = record_replay_many(WORKLOADS, str(tmp_path / "ser"),
                                    analyses=("dep", "hot"),
                                    workers=1, scale=SCALE)
        assert [r.job.name for r in parallel.replays] \
            == [r.job.name for r in serial.replays]
        for par, ser in zip(parallel.replays, serial.replays):
            assert par.ok and ser.ok
            assert par.payload == ser.payload

    def test_failed_record_skips_replay(self, tmp_path):
        report = record_replay_many(["gzip", "not-a-workload"],
                                    str(tmp_path / "out"),
                                    analyses=("dep",),
                                    workers=1, scale=SCALE)
        assert [r.ok for r in report.records] == [True, False]
        assert "KeyError" in report.records[1].error
        # Only the successful record got a replay job.
        assert [r.job.name for r in report.replays] == ["gzip"]
        assert report.replays[0].ok

    def test_describe_mentions_failures(self, tmp_path):
        report = record_replay_many(["gzip", "not-a-workload"],
                                    str(tmp_path / "out"),
                                    analyses=("dep",),
                                    workers=1, scale=SCALE)
        text = report.describe()
        assert "FAILED" in text
        assert "gzip" in text
