"""Replay engine: live-equivalence of the dependence profile, the
extra consumers, and the live/replay symmetry of consumers."""

from __future__ import annotations

import pytest

from repro.core.alchemist import Alchemist
from repro.core.profile_data import DepKind
from repro.runtime.interpreter import run_source
from repro.trace import TraceError, TraceReader, record_source, replay_trace
from repro.trace.replay import (CountingConsumer, HotAddressConsumer,
                                LocalityConsumer, ReplayEngine,
                                make_consumers)
from repro.workloads import get

#: Workloads for the replay-vs-live equivalence criterion: an array
#: workload with rich conflicts, a cipher, and a heap-heavy extra whose
#: malloc/free recycling stresses address-name reconstruction.
EQUIVALENCE_WORKLOADS = ["gzip", "aes", "wordcount"]

#: Equivalence is asserted at reduced scale to keep the suite quick;
#: the structure (edges, names, distances) is scale-stable.
SCALE = 0.25


def profile_signature(report):
    """Everything the acceptance criterion compares, canonically keyed:
    per-construct durations/instances and per-edge distances/hints."""
    signature = {}
    for pc, profile in report.store.profiles.items():
        edges = {
            (head, tail, kind.value): (stats.min_tdep, stats.count,
                                       stats.var_hint)
            for (head, tail, kind), stats in profile.edges.items()
        }
        signature[pc] = (profile.total_duration, profile.instances,
                         profile.max_duration, edges)
    return signature


@pytest.mark.parametrize("name", EQUIVALENCE_WORKLOADS)
class TestReplayEquivalence:
    def test_dependence_profile_identical(self, name, tmp_path):
        workload = get(name, SCALE)
        live = Alchemist().profile(workload.source)
        path = tmp_path / f"{name}.trace"
        record_source(workload.source, path)
        replayed = replay_trace(str(path), ("dep",)).results["dep"]

        assert profile_signature(live) == profile_signature(replayed)
        assert live.stats.instructions == replayed.stats.instructions
        assert (live.stats.dynamic_instances
                == replayed.stats.dynamic_instances)
        assert live.stats.raw_events == replayed.stats.raw_events
        assert live.stats.war_events == replayed.stats.war_events
        assert live.stats.waw_events == replayed.stats.waw_events
        assert live.exit_value == replayed.exit_value
        assert live.output == replayed.output

    def test_violating_edges_identical(self, name, tmp_path):
        """The paper-facing metric (Fig. 6 / Table IV) survives replay."""
        workload = get(name, SCALE)
        live = Alchemist().profile(workload.source)
        path = tmp_path / f"{name}.trace"
        record_source(workload.source, path)
        replayed = replay_trace(str(path), ("dep",)).results["dep"]
        for kind in DepKind:
            live_counts = {pc: p.violating_count(kind)
                           for pc, p in live.store.profiles.items()}
            replay_counts = {pc: p.violating_count(kind)
                             for pc, p in replayed.store.profiles.items()}
            assert live_counts == replay_counts


class TestMultiConsumer:
    def test_one_pass_feeds_many_analyses(self, tmp_path):
        workload = get("gzip", SCALE)
        path = tmp_path / "gzip.trace"
        record_source(workload.source, path)
        outcome = replay_trace(str(path),
                               ("dep", "locality", "hot", "counts"))
        assert set(outcome.results) == {"dep", "locality", "hot", "counts"}

        counts = outcome.results["counts"]
        locality = outcome.results["locality"]
        assert locality.accesses == counts["reads"] + counts["writes"]
        assert locality.cold_misses == locality.distinct_addresses
        assert sum(locality.histogram.values()) + locality.cold_misses \
            == locality.accesses

        hot = outcome.results["hot"]
        assert hot, "expected at least one hot address"
        assert hot[0].total >= hot[-1].total
        total_hot = sum(row.total for row in hot)
        assert total_hot <= locality.accesses

    def test_hot_addresses_name_globals(self, tmp_path):
        source = """
int counter;
int main() {
    for (int i = 0; i < 30; i++) {
        counter += i;
    }
    print(counter);
    return 0;
}
"""
        path = tmp_path / "hot.trace"
        record_source(source, path)
        hot = replay_trace(str(path), ("hot",)).results["hot"]
        names = [row.name for row in hot]
        assert "counter" in names

    def test_describe_renders(self, tmp_path):
        workload = get("aes", SCALE)
        path = tmp_path / "aes.trace"
        record_source(workload.source, path)
        outcome = replay_trace(str(path), ("dep", "locality", "hot"))
        text = outcome.describe()
        assert "Reuse-distance profile" in text
        assert "Hottest addresses" in text


class TestLocalityExactness:
    def test_matches_bruteforce_reuse_distance(self):
        """Fenwick reuse distances == brute-force distinct counting."""
        import random

        rng = random.Random(1234)
        accesses = [rng.randrange(60) for _ in range(2500)]
        consumer = LocalityConsumer()
        expected_hist: dict[int, int] = {}
        expected_cold = 0
        last_index: dict[int, int] = {}
        for i, addr in enumerate(accesses):
            consumer._access(addr)
            if addr in last_index:
                distance = len(set(accesses[last_index[addr] + 1:i]))
                bucket = distance.bit_length()
                expected_hist[bucket] = expected_hist.get(bucket, 0) + 1
            else:
                expected_cold += 1
            last_index[addr] = i
        assert consumer.stats.cold_misses == expected_cold
        assert consumer.stats.histogram == expected_hist

    def test_hit_fraction_bounds(self):
        consumer = LocalityConsumer()
        for addr in [1, 2, 1, 2, 1, 2]:
            consumer._access(addr)
        stats = consumer.stats
        stats.distinct_addresses = 2
        assert stats.hit_fraction(64) == 1.0
        assert 0.0 <= stats.hit_fraction(1) <= 1.0


class TestConsumerSymmetry:
    """Consumers double as live tracers; live and replay must agree."""

    @pytest.mark.parametrize("consumer_cls",
                             [CountingConsumer, LocalityConsumer])
    def test_live_equals_replay(self, consumer_cls, tmp_path):
        workload = get("aes", SCALE)
        live = consumer_cls()
        run_source(workload.source, tracer=live)

        path = tmp_path / "aes.trace"
        record_source(workload.source, path)
        outcome = replay_trace(str(path), (consumer_cls.name,))
        replayed = outcome.results[consumer_cls.name]

        if consumer_cls is CountingConsumer:
            assert live.counts == replayed
        else:
            live.stats.distinct_addresses = len(live._last)
            assert live.stats == replayed


class TestEngineValidation:
    def test_unknown_analysis_rejected(self, tmp_path):
        path = tmp_path / "x.trace"
        record_source("int main() { return 0; }", path)
        with pytest.raises(TraceError, match="unknown analysis"):
            replay_trace(str(path), ("nope",))

    def test_no_analyses_rejected(self):
        with pytest.raises(TraceError, match="no analyses"):
            make_consumers("")

    def test_replay_reconstructs_heap_names(self, tmp_path):
        """Heap recycling must replay deterministically (name check)."""
        source = """
int main() {
    int total = 0;
    for (int i = 0; i < 5; i++) {
        int *p = malloc(8);
        p[3] = i;
        total += p[3];
        free(p);
    }
    print(total);
    return 0;
}
"""
        path = tmp_path / "heap.trace"
        record_source(source, path)
        live = Alchemist().profile(source)
        replayed = replay_trace(str(path), ("dep",)).results["dep"]
        assert profile_signature(live) == profile_signature(replayed)

    def test_corrupt_digest_rejected(self, tmp_path):
        """A header whose digest does not match the embedded source."""
        from repro.trace.events import MAGIC, TraceHeader, pack_length

        path = tmp_path / "x.trace"
        record_source("int main() { return 0; }", path)
        blob = path.read_bytes()
        with TraceReader(str(path)) as reader:
            header = reader.header
            events_start = reader._events_start
        header.digest = "0" * 64
        new_blob = header.to_bytes()
        forged = (blob[:len(MAGIC) + 2] + pack_length(len(new_blob))
                  + new_blob + blob[events_start:])
        bad = tmp_path / "forged.trace"
        bad.write_bytes(forged)
        with pytest.raises(TraceError, match="digest"):
            replay_trace(str(bad), ("counts",))

    def test_engine_runs_with_no_consumers(self, tmp_path):
        path = tmp_path / "x.trace"
        result = record_source("int main() { return 0; }", path)
        with TraceReader(str(path)) as reader:
            ctx = ReplayEngine(reader).run([])
        assert ctx.events == result.events
        assert ctx.final_time == result.final_time
