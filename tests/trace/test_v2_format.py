"""Trace format v2: parity with v1, compression, corruption handling."""

from __future__ import annotations

import zlib

import pytest

from repro.trace import (DEFAULT_TRACE_VERSION, TraceError, TraceReader,
                         TraceTruncatedError, record_source)
from repro.trace.codec import BLOCK_HEADER, BLOCK_HEADER_SIZE
from repro.trace.replay import replay_trace

SMALL = """
int a[32];
int helper(int x) {
    a[x % 32] = x;
    return a[(x + 1) % 32];
}
int main() {
    int s = 0;
    for (int i = 0; i < 20; i++) {
        s += helper(i);
    }
    print(s);
    return 0;
}
"""

LOOPY = """
int data[256];
int main() {
    int s = 0;
    for (int round = 0; round < 40; round++) {
        for (int i = 0; i < 256; i++) {
            data[i] = data[i] + round;
        }
        s += data[round % 256];
    }
    print(s);
    return 0;
}
"""


@pytest.fixture
def both_traces(tmp_path):
    v1 = tmp_path / "v1.trace"
    v2 = tmp_path / "v2.trace"
    r1 = record_source(SMALL, v1, version=1)
    r2 = record_source(SMALL, v2, version=2)
    return (v1, r1), (v2, r2)


class TestParity:
    def test_default_version_is_v2(self, tmp_path):
        assert DEFAULT_TRACE_VERSION == 2
        path = tmp_path / "default.trace"
        record_source(SMALL, path)
        with TraceReader(path) as reader:
            assert reader.version == 2

    def test_event_streams_identical(self, both_traces):
        (v1, _), (v2, _) = both_traces
        with TraceReader(v1) as ra, TraceReader(v2) as rb:
            assert list(ra.events()) == list(rb.events())
            assert ra.footer.events == rb.footer.events
            assert ra.footer.final_time == rb.footer.final_time

    def test_header_and_versions(self, both_traces):
        (v1, _), (v2, _) = both_traces
        with TraceReader(v1) as ra, TraceReader(v2) as rb:
            assert ra.version == 1
            assert rb.version == 2
            assert ra.header.digest == rb.header.digest
            assert rb.header.sampling == "full"

    def test_replay_results_identical(self, both_traces):
        """The analyses cannot tell which wire format fed them."""
        (v1, _), (v2, _) = both_traces
        o1 = replay_trace(str(v1), ("dep", "locality", "hot", "counts"))
        o2 = replay_trace(str(v2), ("dep", "locality", "hot", "counts"))
        for name in o1.reports:
            assert o1.reports[name].to_dict() == o2.reports[name].to_dict()

    def test_v2_is_much_smaller(self, tmp_path):
        v1 = tmp_path / "v1.trace"
        v2 = tmp_path / "v2.trace"
        # checkpoint_interval=0: compare the bare wire formats (default
        # checkpointing would add marker records + footer snapshots).
        r1 = record_source(LOOPY, v1, version=1)
        r2 = record_source(LOOPY, v2, version=2, checkpoint_interval=0)
        assert r1.events == r2.events
        assert r1.trace_bytes > 5 * r2.trace_bytes

    def test_checkpointed_trace_still_much_smaller_than_v1(self, tmp_path):
        """Default checkpointing (markers + footer snapshots) must not
        eat the v2 size win."""
        v1 = tmp_path / "v1.trace"
        v2 = tmp_path / "v2.trace"
        r1 = record_source(LOOPY, v1, version=1)
        r2 = record_source(LOOPY, v2, version=2,
                           checkpoint_interval=10_000)
        with TraceReader(str(v2)) as reader:
            assert reader.checkpoints()
        assert r1.trace_bytes > 3 * r2.trace_bytes

    def test_multiple_blocks_roundtrip(self, tmp_path):
        """A tiny block size forces many blocks; decoding still matches
        the single-block stream record for record."""
        from repro.ir.lowering import compile_source
        from repro.runtime.interpreter import Interpreter
        from repro.trace.writer import TraceWriter

        big = tmp_path / "one-block.trace"
        small = tmp_path / "many-blocks.trace"
        record_source(SMALL, big, version=2)
        program = compile_source(SMALL, "<input>")
        writer = TraceWriter(small, SMALL, version=2, block_bytes=64)
        interp = Interpreter(program, writer)
        exit_value = interp.run()
        writer.close(exit_value, interp.output)
        with TraceReader(big) as ra, TraceReader(small) as rb:
            assert list(ra.events()) == list(rb.events())
            assert rb.decoder.blocks > 1

    def test_read_footer_without_streaming(self, both_traces):
        _, (v2, r2) = both_traces
        with TraceReader(v2) as reader:
            footer = reader.read_footer()
        assert footer.events == r2.events

    def test_events_restartable(self, both_traces):
        _, (v2, _) = both_traces
        with TraceReader(v2) as reader:
            first = list(reader.events())
            second = list(reader.events())
        assert first == second


class TestCorruption:
    """Satellite contract: truncation at header, mid-record, and
    mid-block all raise typed errors, never struct/EOF exceptions."""

    def _events_start(self, path) -> int:
        with TraceReader(path) as reader:
            return reader._events_start

    def _consume(self, path):
        with TraceReader(path) as reader:
            for _ in reader.events():
                pass

    def test_truncated_header(self, both_traces, tmp_path):
        _, (v2, _) = both_traces
        bad = tmp_path / "hdr.trace"
        bad.write_bytes(v2.read_bytes()[:12])
        with pytest.raises(TraceTruncatedError):
            TraceReader(bad)

    def test_truncated_inside_block_header(self, both_traces, tmp_path):
        _, (v2, _) = both_traces
        start = self._events_start(v2)
        bad = tmp_path / "bh.trace"
        bad.write_bytes(v2.read_bytes()[:start + BLOCK_HEADER_SIZE - 3])
        with pytest.raises(TraceTruncatedError, match="block header"):
            self._consume(bad)

    def test_truncated_mid_block(self, both_traces, tmp_path):
        _, (v2, _) = both_traces
        start = self._events_start(v2)
        bad = tmp_path / "mb.trace"
        bad.write_bytes(v2.read_bytes()[:start + BLOCK_HEADER_SIZE + 40])
        with pytest.raises(TraceTruncatedError, match="mid-block"):
            self._consume(bad)

    def test_truncated_at_block_boundary(self, both_traces, tmp_path):
        """EOF exactly between blocks: reported as a missing FINISH."""
        _, (v2, _) = both_traces
        blob = v2.read_bytes()
        start = self._events_start(v2)
        comp_len, _raw = BLOCK_HEADER.unpack(
            blob[start:start + BLOCK_HEADER_SIZE])
        bad = tmp_path / "bb.trace"
        bad.write_bytes(blob[:start])  # zero whole blocks survive
        with pytest.raises(TraceTruncatedError, match="without FINISH"):
            self._consume(bad)

    def test_block_cut_mid_record(self, both_traces, tmp_path):
        """A block whose decompressed payload stops inside a record."""
        _, (v2, _) = both_traces
        blob = v2.read_bytes()
        start = self._events_start(v2)
        comp_len, raw_len = BLOCK_HEADER.unpack(
            blob[start:start + BLOCK_HEADER_SIZE])
        payload = blob[start + BLOCK_HEADER_SIZE:
                       start + BLOCK_HEADER_SIZE + comp_len]
        raw = zlib.decompress(payload)
        cut = zlib.compress(raw[:len(raw) - 2], 6)
        bad = tmp_path / "mr.trace"
        bad.write_bytes(blob[:start]
                        + BLOCK_HEADER.pack(len(cut), len(raw) - 2)
                        + cut)
        with pytest.raises(TraceTruncatedError, match="mid-record|cut"):
            self._consume(bad)

    def test_corrupt_block_payload(self, both_traces, tmp_path):
        _, (v2, _) = both_traces
        blob = bytearray(v2.read_bytes())
        start = self._events_start(v2)
        # Stomp bytes inside the compressed payload.
        for i in range(start + BLOCK_HEADER_SIZE + 4,
                       start + BLOCK_HEADER_SIZE + 12):
            blob[i] ^= 0xFF
        bad = tmp_path / "corrupt.trace"
        bad.write_bytes(blob)
        with pytest.raises(TraceError):
            self._consume(bad)

    def test_block_length_lie(self, both_traces, tmp_path):
        _, (v2, _) = both_traces
        blob = bytearray(v2.read_bytes())
        start = self._events_start(v2)
        comp_len, raw_len = BLOCK_HEADER.unpack(
            bytes(blob[start:start + BLOCK_HEADER_SIZE]))
        blob[start:start + BLOCK_HEADER_SIZE] = BLOCK_HEADER.pack(
            comp_len, raw_len + 7)
        bad = tmp_path / "lie.trace"
        bad.write_bytes(blob)
        with pytest.raises(TraceError, match="length mismatch"):
            self._consume(bad)

    def test_aborted_recording_is_truncated(self, tmp_path):
        from repro.runtime.errors import StepLimitExceeded

        path = tmp_path / "aborted.trace"
        with pytest.raises(StepLimitExceeded):
            record_source(SMALL, path, max_steps=100, version=2)
        with pytest.raises(TraceTruncatedError):
            self._consume(path)
