"""CLI wiring for the record / replay / batch verbs."""

import json

import pytest

from repro.cli import build_parser, main

PROG = """
int a[32];
int main() {
    int s = 0;
    for (int i = 0; i < 25; i++) {
        a[i % 32] = i;
        s += a[(i + 3) % 32];
    }
    print(s);
    return 0;
}
"""


@pytest.fixture
def minic_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(PROG)
    return str(path)


@pytest.fixture
def trace_file(minic_file, tmp_path):
    out = str(tmp_path / "prog.trace")
    assert main(["record", minic_file, "-o", out]) == 0
    return out


class TestRecordReplayCli:
    def test_parser_wiring(self):
        parser = build_parser()
        args = parser.parse_args(["replay", "x.trace",
                                  "--analysis", "dep,hot"])
        assert args.command == "replay"
        assert args.analysis == "dep,hot"
        args = parser.parse_args(["batch", "--workers", "3", "--bench"])
        assert args.workers == 3
        assert args.bench

    def test_record_default_output(self, minic_file, capsys):
        assert main(["record", minic_file]) == 0
        out = capsys.readouterr().out
        assert "recorded" in out
        assert minic_file + ".trace" in out

    def test_replay_dep(self, trace_file, capsys):
        assert main(["replay", trace_file]) == 0
        captured = capsys.readouterr()
        assert "replayed" in captured.err  # progress header: stderr
        assert "Method main" in captured.out  # report: stdout

    def test_replay_multi_analysis(self, trace_file, capsys):
        assert main(["replay", trace_file,
                     "--analysis", "dep,locality,hot,counts"]) == 0
        out = capsys.readouterr().out
        assert "Reuse-distance profile" in out
        assert "Hottest addresses" in out
        assert "Event counts" in out

    def test_replay_unknown_analysis_fails(self, trace_file, capsys):
        assert main(["replay", trace_file, "--analysis", "nope"]) == 2
        assert "unknown analysis" in capsys.readouterr().err

    def test_replay_missing_file_fails(self, tmp_path, capsys):
        missing = str(tmp_path / "no.trace")
        assert main(["replay", missing]) == 2
        assert "error:" in capsys.readouterr().err

    def test_replay_truncated_trace_fails(self, trace_file, tmp_path,
                                          capsys):
        stub = tmp_path / "cut.trace"
        with open(trace_file, "rb") as handle:
            stub.write_bytes(handle.read()[:80])
        assert main(["replay", str(stub)]) == 2
        assert "error:" in capsys.readouterr().err


class TestBatchCli:
    def test_batch_json(self, tmp_path, capsys):
        assert main(["batch", "--workloads", "gzip", "--scale", "0.25",
                     "--out-dir", str(tmp_path / "traces"),
                     "--workers", "1", "--json"]) == 0
        out = capsys.readouterr().out
        assert "batch: 1 workload(s)" in out
        payload = json.loads(out[out.index("{"):])
        assert payload["gzip"]["record"]["ok"]
        assert payload["gzip"]["replay"]["ok"]
        assert payload["gzip"]["replay"]["payload"]["dep"]["constructs"]

    def test_batch_failure_exit_code(self, tmp_path, capsys):
        assert main(["batch", "--workloads", "definitely-not-real",
                     "--out-dir", str(tmp_path / "traces"),
                     "--workers", "1"]) == 1

    def test_batch_failure_lists_failing_jobs(self, tmp_path, capsys):
        """A worker error must surface three ways: non-zero exit, a
        FAILED section in the summary naming the job, and a one-line
        stderr count — never a silent partial-results report."""
        assert main(["batch", "--workloads", "gzip,definitely-not-real",
                     "--scale", "0.25",
                     "--out-dir", str(tmp_path / "traces"),
                     "--workers", "1"]) == 1
        captured = capsys.readouterr()
        assert "FAILED (1 job(s)):" in captured.out
        assert "record definitely-not-real" in captured.out
        assert "1 batch job(s) failed" in captured.err
        assert "definitely-not-real" in captured.err
        # The healthy workload is still reported (partial results are
        # fine — hiding the failure is not).
        assert "gzip" in captured.out

    def test_batch_failure_exit_with_json(self, tmp_path, capsys):
        assert main(["batch", "--workloads", "definitely-not-real",
                     "--out-dir", str(tmp_path / "traces"),
                     "--workers", "1", "--json"]) == 1
        captured = capsys.readouterr()
        payload = json.loads(
            captured.out[captured.out.index("{"):
                         captured.out.rindex("}") + 1])
        assert not payload["definitely-not-real"]["record"]["ok"]
        assert "failed" in captured.err

    def test_batch_bench_skips_failed_workloads(self, tmp_path, capsys):
        """--bench must not crash when no workload recorded."""
        assert main(["batch", "--workloads", "definitely-not-real",
                     "--out-dir", str(tmp_path / "traces"),
                     "--workers", "1", "--bench",
                     "--bench-out", str(tmp_path / "B.json")]) == 1
        err = capsys.readouterr().err
        assert "skipped" in err
        assert not (tmp_path / "B.json").exists()

    def test_batch_bench_bad_analysis_reports_error(self, tmp_path,
                                                    capsys):
        assert main(["batch", "--workloads", "gzip", "--scale", "0.25",
                     "--out-dir", str(tmp_path / "traces"),
                     "--workers", "1", "--bench",
                     "--bench-out", str(tmp_path / "B.json"),
                     "--analysis", "dep,bogus"]) == 2
        assert "unknown analysis" in capsys.readouterr().err


class TestParallelReplayCli:
    @pytest.fixture
    def seamed_trace(self, minic_file, tmp_path):
        out = str(tmp_path / "seamed.trace")
        assert main(["record", minic_file, "-o", out,
                     "--checkpoints", "40"]) == 0
        return out

    def test_parser_wiring(self):
        args = build_parser().parse_args(
            ["replay", "x.trace", "--parallel", "--jobs", "4"])
        assert args.parallel and args.jobs == 4
        args = build_parser().parse_args(
            ["record", "f.mc", "--checkpoints", "0"])
        assert args.checkpoints == 0
        args = build_parser().parse_args(
            ["analyze", "f.mc", "--jobs", "2"])
        assert args.jobs == 2

    def test_record_reports_checkpoints(self, minic_file, tmp_path,
                                        capsys):
        out = str(tmp_path / "t.trace")
        assert main(["record", minic_file, "-o", out,
                     "--checkpoints", "40"]) == 0
        assert "checkpoint(s)" in capsys.readouterr().out

    def test_info_reports_checkpoints(self, seamed_trace, capsys):
        capsys.readouterr()
        assert main(["info", seamed_trace]) == 0
        out = capsys.readouterr().out
        assert "shard seam(s)" in out
        assert "embedded in the trace footer" in out
        assert "checkpoint=" in out  # marker records in the event counts

    def test_info_reports_sidecar_seams(self, minic_file, tmp_path,
                                        capsys):
        """v1 traces have no embedded seams; once a parallel replay (or
        direct scan) caches a .ckpt sidecar, info reports it uniformly
        with the embedded case — same "shard seam(s)" line, different
        origin."""
        from repro.trace.shards import load_or_build_checkpoints

        out = str(tmp_path / "v1.trace")
        assert main(["record", minic_file, "-o", out,
                     "--format", "1"]) == 0
        assert load_or_build_checkpoints(out, interval=200)
        capsys.readouterr()
        assert main(["info", out]) == 0
        info_out = capsys.readouterr().out
        assert "shard seam(s)" in info_out
        assert ".ckpt sidecar" in info_out

    def test_info_reports_no_seams(self, minic_file, tmp_path, capsys):
        out = str(tmp_path / "bare.trace")
        assert main(["record", minic_file, "-o", out,
                     "--checkpoints", "0"]) == 0
        capsys.readouterr()
        assert main(["info", out]) == 0
        assert "checkpoints:none" in capsys.readouterr().out

    def test_parallel_replay_matches_serial_output(self, seamed_trace,
                                                   capsys):
        capsys.readouterr()
        assert main(["replay", seamed_trace,
                     "--analysis", "dep,locality,counts"]) == 0
        serial = capsys.readouterr().out
        assert main(["replay", seamed_trace, "--parallel", "--jobs", "3",
                     "--analysis", "dep,locality,counts"]) == 0
        captured = capsys.readouterr()
        assert "across" in captured.err and "segment(s)" in captured.err
        # Headers live on stderr; the stdout reports must be identical.
        assert serial == captured.out

    def test_parallel_flag_falls_back_without_seams(self, minic_file,
                                                    tmp_path, capsys):
        out = str(tmp_path / "tiny.trace")
        assert main(["record", minic_file, "-o", out,
                     "--checkpoints", "0"]) == 0
        capsys.readouterr()
        # The tiny trace still parallelizes via the scan builder or
        # falls back serially; either way it must succeed and say how.
        assert main(["replay", out, "--parallel", "--jobs", "2",
                     "--analysis", "counts"]) == 0
        assert "analysis(es)" in capsys.readouterr().err

    def test_negative_jobs_rejected(self, seamed_trace, capsys):
        assert main(["replay", seamed_trace, "--jobs", "-1"]) == 2
        assert "--jobs" in capsys.readouterr().err
