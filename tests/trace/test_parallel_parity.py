"""Differential harness: parallel sharded replay vs one serial pass.

The contract under test is exact equality — ``to_dict()`` *and*
rendered text — for every registered analysis, over both trace
formats, across worker counts including one that does not divide the
segment count. Parametrization goes through the live registry, so an
analysis registered later is automatically held to the same standard
(or must explicitly opt out of ``supports_segments``, in which case
the driver's serial fallback is asserted instead).
"""

import os

import pytest

from repro.analyses import registry
from repro.trace.parallel import parallel_replay, unsupported_analyses
from repro.trace.replay import replay_trace
from repro.trace.shards import plan_shards
from repro.trace.writer import record_source
from repro.workloads import get

#: Worker counts: serial fallback, even split, oversubscribed, and a
#: count that does not divide the segment total.
JOB_COUNTS = (1, 2, 4, 7)
FORMATS = (1, 2)

#: Small but structurally rich: gzip exercises globals + arrays +
#: deep call nesting; wordcount exercises heap allocation/recycling
#: (the hard cases for checkpointed memory reconstruction).
WORKLOADS = {"gzip": 0.25, "wordcount": 0.6}

#: Events between embedded checkpoints — small enough that every
#: bundled trace yields well over 7 segments.
INTERVAL = 1200


def _segmented_names():
    return sorted(name for name, cls in registry().items()
                  if cls.supports_segments)


@pytest.fixture(scope="module")
def traces(tmp_path_factory):
    """(workload, format) -> trace path, recorded once per module."""
    root = tmp_path_factory.mktemp("parity-traces")
    paths = {}
    for name, scale in WORKLOADS.items():
        workload = get(name, scale)
        for version in FORMATS:
            path = str(root / f"{name}-v{version}.trace")
            record_source(workload.source, path, version=version,
                          checkpoint_interval=INTERVAL)
            paths[name, version] = path
    return paths


@pytest.fixture(scope="module")
def outcomes(traces):
    """All serial and parallel outcomes, computed once; the
    per-analysis tests below only compare."""
    names = _segmented_names()
    serial = {}
    parallel = {}
    for (workload, version), path in traces.items():
        serial[workload, version] = replay_trace(path, names)
        for jobs in JOB_COUNTS:
            parallel[workload, version, jobs] = parallel_replay(
                path, names, jobs=jobs, interval=INTERVAL)
    return serial, parallel


class TestParity:
    @pytest.mark.parametrize("analysis", _segmented_names())
    @pytest.mark.parametrize("version", FORMATS)
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_merged_equals_serial(self, outcomes, workload, version,
                                  jobs, analysis):
        serial, parallel = outcomes
        expected = serial[workload, version].reports[analysis]
        actual = parallel[workload, version, jobs].reports[analysis]
        assert actual.to_dict() == expected.to_dict()
        assert actual.text == expected.text

    def test_every_bundled_analysis_supports_segments(self):
        assert not unsupported_analyses(sorted(registry()))

    def test_parallel_mode_actually_engaged(self, outcomes):
        _serial, parallel = outcomes
        for (workload, version, jobs), outcome in parallel.items():
            if jobs == 1:
                assert outcome.mode == "serial", (workload, version)
            else:
                assert outcome.mode == "parallel", (workload, version,
                                                    jobs)
                assert len(outcome.plan.segments) > 1

    def test_nondivisible_worker_count(self, traces):
        """jobs=7 over a segment count it does not divide: every event
        is still replayed exactly once (counts analysis is a watertight
        event-conservation check)."""
        path = traces["gzip", 2]
        plan = plan_shards(path, 7, interval=INTERVAL)
        assert len(plan.segments) % 7 != 0
        serial = replay_trace(path, ["counts"])
        par = parallel_replay(path, ["counts"], jobs=7,
                              interval=INTERVAL)
        assert par.reports["counts"].to_dict() == \
            serial.reports["counts"].to_dict()


class TestOptionsParity:
    def test_analysis_options_reach_workers(self, traces):
        path = traces["gzip", 2]
        options = {"hot": {"top": 3}, "dep": {"track_war_waw": False}}
        from repro.trace.replay import replay_with
        from repro.analyses import make_analyses

        serial = replay_with(path, make_analyses(["dep", "hot"],
                                                 options))
        par = parallel_replay(path, ["dep", "hot"], jobs=3,
                              options=options, interval=INTERVAL)
        assert par.mode == "parallel"
        for name in ("dep", "hot"):
            assert par.reports[name].to_dict() == \
                serial.reports[name].to_dict()
        assert par.reports["hot"].data["top"] == 3


class TestFallbacks:
    def test_unsupported_analysis_falls_back_serially(self, traces):
        from repro.analyses import register, unregister
        from repro.analyses.base import Analysis, AnalysisResult

        class Stub(Analysis):
            name = "parity-stub"
            description = "no segment support"

            def finish(self, ctx):
                return AnalysisResult(analysis=self.name, data={},
                                      text="stub")

        register(Stub)
        try:
            path = traces["gzip", 2]
            outcome = parallel_replay(path, ["counts", "parity-stub"],
                                      jobs=4, interval=INTERVAL)
            assert outcome.mode == "serial"
            assert "parity-stub" in outcome.fallback_reason
            assert outcome.reports["counts"].data["reads"] > 0
        finally:
            unregister("parity-stub")

    def test_trace_without_seams_falls_back(self, tmp_path):
        workload = get("gzip", 0.1)
        path = str(tmp_path / "noseams.trace")
        record_source(workload.source, path, checkpoint_interval=0)
        outcome = parallel_replay(path, ["counts"], jobs=4,
                                  allow_scan=False)
        assert outcome.mode == "serial"
        assert "seams" in outcome.fallback_reason
        assert not os.path.exists(path + ".ckpt")

    def test_scan_builds_seams_for_v1(self, tmp_path):
        """v1 traces predate checkpoints entirely; the scan builder
        makes them shardable after the fact (and caches a sidecar)."""
        workload = get("gzip", 0.25)
        path = str(tmp_path / "old.trace")
        record_source(workload.source, path, version=1)
        serial = replay_trace(path, ["dep", "locality"])
        outcome = parallel_replay(path, ["dep", "locality"], jobs=4,
                                  interval=INTERVAL)
        assert outcome.mode == "parallel"
        assert outcome.plan.source == "scan"
        assert os.path.exists(path + ".ckpt")
        for name in ("dep", "locality"):
            assert outcome.reports[name].to_dict() == \
                serial.reports[name].to_dict()
        # Second run must reuse the sidecar (same plan, same results).
        again = parallel_replay(path, ["dep"], jobs=4,
                                interval=INTERVAL)
        assert again.mode == "parallel"
        assert again.reports["dep"].to_dict() == \
            serial.reports["dep"].to_dict()
