"""Round-trip fuzz: randomized event sequences survive both codecs.

The codec layer is driven directly (no interpreter, no file envelope):
``encode_events`` must invert through ``decode_events`` for arbitrary
well-formed event streams — any type byte, full 32-bit operand range,
random timestamp gaps — across block boundaries (tiny ``block_bytes``
forces records to straddle many blocks) and for the empty trace
(FINISH alone). A full-file sweep then checks the same property
through the writer/reader envelope.
"""

from __future__ import annotations

import random

import pytest

from repro.trace.codec import (decode_events, encode_events, unzigzag,
                               zigzag)
from repro.trace.events import (EV_ALLOC, EV_BLOCK, EV_BRANCH, EV_ENTER,
                                EV_EXIT, EV_FINISH, EV_FREE, EV_READ,
                                EV_WRITE, TraceTruncatedError)

EVENT_TYPES = (EV_ENTER, EV_EXIT, EV_BLOCK, EV_BRANCH, EV_READ,
               EV_WRITE, EV_ALLOC, EV_FREE)

U32 = (1 << 32) - 1


def random_events(rng: random.Random, count: int) -> list[tuple]:
    """A plausible-shape stream: monotone time, 32-bit operands,
    FINISH last (what a well-formed writer always produces)."""
    events = []
    time = 0
    for _ in range(count):
        etype = rng.choice(EVENT_TYPES)
        # Mix small sequential-ish operands (the common case the
        # delta encoding optimizes for) with full-range extremes.
        if rng.random() < 0.1:
            a, b = rng.randint(0, U32), rng.randint(0, U32)
        else:
            a, b = rng.randint(0, 4096), rng.randint(0, 4096)
        gap = rng.choice((0, 0, 1, 1, 2, 7, rng.randint(0, 100000)))
        time += gap
        events.append((etype, a, b, time))
    events.append((EV_FINISH, 0, 0, time))
    return events


class TestCodecFuzz:
    @pytest.mark.parametrize("seed", range(4))
    def test_zigzag_reference_roundtrip(self, seed):
        """The reference zigzag transform inverts over the full signed
        delta range; the v2 record roundtrip below pins the encoder's
        and decoder's *inlined* copies against it (a record whose
        per-type delta is n survives iff inlined == reference)."""
        rng = random.Random(seed)
        for _ in range(2000):
            n = rng.randint(-(1 << 32), 1 << 32)
            z = zigzag(n)
            assert z >= 0
            assert unzigzag(z) == n
        for n, z in ((0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4)):
            assert zigzag(n) == z
            assert unzigzag(z) == n

    @pytest.mark.parametrize("version", [1, 2])
    @pytest.mark.parametrize("seed", range(8))
    def test_roundtrip_random_streams(self, version, seed):
        rng = random.Random(seed)
        events = random_events(rng, rng.randint(1, 400))
        blob = encode_events(events, version)
        assert decode_events(blob, version) == events

    @pytest.mark.parametrize("version", [1, 2])
    def test_roundtrip_empty_trace(self, version):
        """The degenerate stream: FINISH and nothing else."""
        events = [(EV_FINISH, 0, 0, 0)]
        blob = encode_events(events, version)
        assert decode_events(blob, version) == events

    @pytest.mark.parametrize("seed", range(8))
    def test_roundtrip_across_block_boundaries(self, seed):
        """block_bytes=16 splits nearly every record pair; per-type
        delta state must survive the block seams."""
        rng = random.Random(1000 + seed)
        events = random_events(rng, 300)
        blob = encode_events(events, 2, block_bytes=16)
        assert decode_events(blob, 2) == events

    @pytest.mark.parametrize("version", [1, 2])
    def test_extreme_operands(self, version):
        events = [
            (EV_READ, U32, 0, 0),
            (EV_READ, 0, U32, 0),       # max negative per-type delta
            (EV_WRITE, U32, U32, U32),  # max timestamp delta
            (EV_READ, U32, 0, U32),
            (EV_FINISH, 0, 0, U32),
        ]
        blob = encode_events(events, version)
        assert decode_events(blob, version) == events

    def test_missing_finish_is_truncation(self):
        events = [(EV_READ, 1, 2, 3)]
        blob = encode_events(events, 2)
        with pytest.raises(TraceTruncatedError):
            decode_events(blob, 2)

    def test_zero_events_is_truncation(self):
        for version in (1, 2):
            with pytest.raises(TraceTruncatedError):
                decode_events(b"", version)


class TestFullFileFuzz:
    """The same property through the writer/reader envelope: random
    programs record and replay identically in both formats."""

    @pytest.mark.parametrize("seed", range(3))
    def test_program_roundtrip_both_formats(self, seed, tmp_path):
        from repro.trace import TraceReader, record_source

        rng = random.Random(seed)
        n = rng.randint(5, 40)
        stride = rng.choice((1, 3, 7))
        source = f"""
        int buf[{max(n * stride, 8)}];
        int main() {{
            int s = 0;
            for (int i = 0; i < {n}; i++) {{
                buf[i * {stride}] = i;
                s += buf[(i * {stride} + 1) % {n * stride}];
            }}
            print(s);
            return 0;
        }}
        """
        v1 = tmp_path / "v1.trace"
        v2 = tmp_path / "v2.trace"
        record_source(source, v1, version=1)
        record_source(source, v2, version=2)
        with TraceReader(v1) as ra, TraceReader(v2) as rb:
            assert list(ra.events()) == list(rb.events())
