"""Randomized fuzz for checkpoint placement and reconstruction.

Two independent oracles, checked at *every* checkpoint of randomly
checkpointed traces:

* **stream resumption** — decoding from the checkpoint's offset with
  its codec state must reproduce, record for record, the tail of a
  serial decode paused at the same event index (this pins the v2
  delta/clock seeding and the v1 offset arithmetic);
* **state reconstruction** — memory rebuilt via
  :func:`restore_memory` must equal a reference built by replaying
  the event prefix through the *real* :class:`Memory` (frames, stack
  top, heap blocks and free lists, allocation registry, popped-frame
  marker), and the checkpointed shadow/construct stacks must equal
  reference copies built with the real ShadowMemory/IndexingStack —
  catching any drift between the writer's lightweight mirror and the
  semantics replay actually applies.

Sources of randomness: bundled workloads under random checkpoint
intervals (seeded), plus hypothesis-fuzzed random programs run
end-to-end through record -> checkpoint -> verify.
"""

import random

import pytest
from hypothesis import given, settings

from repro.analysis.constructs import ConstructTable
from repro.core.indexing import IndexingStack
from repro.core.pool import NodeAllocator
from repro.core.profile_data import ProfileStore
from repro.core.shadow import ShadowMemory
from repro.ir.lowering import compile_source
from repro.lang.errors import SemanticError
from repro.lang.pretty import pretty_print
from repro.runtime.errors import MiniCRuntimeError, StepLimitExceeded
from repro.runtime.memory import Memory
from repro.trace.events import (EV_ALLOC, EV_BLOCK, EV_BRANCH,
                                EV_CHECKPOINT, EV_ENTER, EV_EXIT,
                                EV_FINISH, EV_FREE, EV_READ, EV_WRITE)
from repro.trace.reader import TraceReader
from repro.trace.shards import Checkpoint, restore_memory
from repro.trace.writer import record_source
from repro.workloads import get
from tests.lang.test_pretty import _programs


class _Reference:
    """Serial replay of the event prefix with the *real* runtime
    structures — the ground truth every checkpoint is held to."""

    def __init__(self, program, header):
        self.memory = Memory(program, header.stack_limit)
        self.shadow = ShadowMemory()
        self.stack = IndexingStack(ConstructTable(program),
                                   NodeAllocator(64), ProfileStore())
        self.functions = [program.functions[name]
                          for name in header.functions]
        self.heap_base = self.memory.heap_base

    def apply(self, etype, a, b, t):
        if etype == EV_READ:
            self.shadow.on_read(a, b, None, t)
        elif etype == EV_WRITE:
            self.shadow.on_write(a, b, None, t)
        elif etype == EV_BLOCK:
            self.stack.on_block_enter(a, t)
        elif etype == EV_BRANCH:
            self.stack.on_branch(a, b, t)
        elif etype == EV_ENTER:
            self.memory.push_frame(self.functions[a])
            self.stack.enter_procedure(self.functions[a].entry_pc, t)
        elif etype == EV_EXIT:
            self.stack.exit_procedure(t)
            self.memory.pop_frame()
        elif etype == EV_FREE:
            if b and a >= self.heap_base:
                self.memory.heap_free(a)
            self.shadow.clear_range(a, a + b)
        elif etype == EV_ALLOC:
            assert self.memory.heap_alloc(b) == a
        else:
            assert etype in (EV_FINISH, EV_CHECKPOINT)


def _memory_fingerprint(memory: Memory):
    return {
        "stack_top": memory.stack_top,
        "frames": [(fr.fn.name, fr.base, fr.size)
                   for fr in memory.frames],
        "last_popped": (None if memory.last_popped is None else
                        (memory.last_popped.fn.name,
                         memory.last_popped.base)),
        "heap_top": memory.heap_top,
        "blocks": dict(memory._heap_blocks),
        "bases": list(memory._heap_bases),
        "free": {size: list(bases)
                 for size, bases in memory._free_by_size.items()
                 if bases},
        "next_id": memory._next_heap_id,
        "allocations": dict(memory.allocations),
    }


def _shadow_fingerprint(shadow: ShadowMemory):
    out = {}
    for addr, (write, reads) in shadow._entries.items():
        out[addr] = ((None if write is None else (write[0], write[2])),
                     {pc: t for pc, (_n, t) in reads.items()})
    return out


def _verify_trace(path):
    """Assert both oracles at every embedded or scan-built checkpoint."""
    with TraceReader(path) as reader:
        header = reader.header
        program = compile_source(header.source, header.filename)
        serial_events = list(reader.events())
        payloads = reader.checkpoints()
        if not payloads:
            from repro.trace.shards import build_checkpoints

            checkpoints = build_checkpoints(
                path, interval=max(1, len(serial_events) // 5))
        else:
            checkpoints = [Checkpoint.from_payload(p) for p in payloads]
        assert checkpoints, "fuzz case produced no checkpoints"

        reference = _Reference(program, header)
        consumed = 0
        for checkpoint in checkpoints:
            while consumed < checkpoint.index:
                reference.apply(*serial_events[consumed])
                consumed += 1

            # Oracle 1: the resumed stream equals the serial tail.
            resumed = list(reader.events_from(
                checkpoint.offset, checkpoint.decoder_state()))
            assert resumed == serial_events[checkpoint.index:], \
                f"stream diverges at checkpoint {checkpoint.index}"

            # Oracle 2a: reconstructed memory equals the reference.
            restored = restore_memory(program, header, checkpoint)
            assert _memory_fingerprint(restored) == \
                _memory_fingerprint(reference.memory), \
                f"memory diverges at checkpoint {checkpoint.index}"

            # Oracle 2b: checkpointed shadow equals the reference's.
            snapshot = {addr: (write, reads) for addr, write, reads
                        in checkpoint.shadow_entries()}
            assert snapshot == _shadow_fingerprint(reference.shadow), \
                f"shadow diverges at checkpoint {checkpoint.index}"

            # Oracle 2c: construct stack (pc, Tenter) matches.
            assert [tuple(e) for e in checkpoint.cstack] == \
                [(n.static.pc, n.t_enter)
                 for n in reference.stack.stack], \
                f"construct stack diverges at {checkpoint.index}"

            assert checkpoint.time == (
                serial_events[checkpoint.index - 1][3]
                if checkpoint.index else 0)


class TestWorkloadCheckpoints:
    @pytest.mark.parametrize("workload,scale", [("gzip", 0.2),
                                                ("wordcount", 0.5),
                                                ("lisp-cons", 0.5)])
    def test_random_intervals(self, tmp_path, workload, scale):
        rng = random.Random(f"ckpt-{workload}")
        source = get(workload, scale).source
        for trial in range(3):
            interval = rng.randint(200, 4000)
            path = str(tmp_path / f"{workload}-{trial}.trace")
            record_source(source, path, checkpoint_interval=interval)
            _verify_trace(path)

    def test_v1_scan_checkpoints(self, tmp_path):
        path = str(tmp_path / "v1.trace")
        record_source(get("gzip", 0.2).source, path, version=1)
        _verify_trace(path)


class TestRandomProgramCheckpoints:
    @given(_programs)
    @settings(max_examples=25, deadline=None)
    def test_generated_programs_checkpoint_exactly(self, program_ast):
        import os
        import tempfile

        source = pretty_print(program_ast)
        try:
            compile_source(source)
        except SemanticError:
            return
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "fuzz.trace")
            try:
                result = record_source(source, path, max_steps=20_000,
                                       checkpoint_interval=150)
            except (MiniCRuntimeError, StepLimitExceeded):
                return  # wild pointers / infinite loops: legitimate
            if result.checkpoints == 0:
                return  # too short to seam — nothing to verify
            _verify_trace(path)
