"""Trace format: round-trip fidelity, versioning, corruption handling."""

from __future__ import annotations

import struct

import pytest

from repro.runtime.interpreter import run_source
from repro.runtime.tracing import CountingTracer
from repro.trace import (TRACE_VERSION, TraceError, TraceReader,
                         TraceTruncatedError, TraceVersionError,
                         record_source)
from repro.trace.events import (EV_ALLOC, EV_BLOCK, EV_BRANCH, EV_ENTER,
                                EV_EXIT, EV_FINISH, EV_FREE, EV_READ,
                                EV_WRITE, MAGIC, RECORD_SIZE, source_digest)

SMALL = """
int a[32];
int helper(int x) {
    a[x % 32] = x;
    return a[(x + 1) % 32];
}
int main() {
    int s = 0;
    for (int i = 0; i < 20; i++) {
        s += helper(i);
    }
    print(s);
    return 0;
}
"""

HEAPY = """
int main() {
    int total = 0;
    for (int round = 0; round < 6; round++) {
        int *block = malloc(16);
        for (int i = 0; i < 16; i++) {
            block[i] = round * i;
        }
        total += block[round];
        free(block);
    }
    print(total);
    return 0;
}
"""


# These tests exercise the v1 wire format specifically (fixed 13-byte
# records); tests/trace/test_v2_format.py covers the v2 counterparts.


@pytest.fixture
def small_trace(tmp_path):
    path = tmp_path / "small.trace"
    result = record_source(SMALL, path, version=1)
    return path, result


class TestRoundTrip:
    def test_events_match_live_run(self, small_trace):
        """Every recorded event class matches a live counting run."""
        path, result = small_trace
        live = CountingTracer()
        run_source(SMALL, tracer=live)

        counts = {etype: 0 for etype in
                  (EV_ENTER, EV_EXIT, EV_BLOCK, EV_BRANCH, EV_READ,
                   EV_WRITE, EV_ALLOC, EV_FREE, EV_FINISH)}
        with TraceReader(path) as reader:
            for etype, a, b, t in reader.events():
                counts[etype] += 1
        assert counts[EV_READ] == live.reads
        assert counts[EV_WRITE] == live.writes
        assert counts[EV_ENTER] == live.calls
        assert counts[EV_BRANCH] == live.branches
        assert counts[EV_BLOCK] == live.blocks
        assert counts[EV_FINISH] == 1
        assert sum(counts.values()) == result.events

    def test_timestamps_monotone_and_final(self, small_trace):
        path, result = small_trace
        with TraceReader(path) as reader:
            last = 0
            final = 0
            for etype, a, b, t in reader.events():
                assert t >= last
                last = t
                if etype == EV_FINISH:
                    final = t
        assert final == result.final_time

    def test_header_identity(self, small_trace):
        path, _ = small_trace
        with TraceReader(path) as reader:
            header = reader.header
            assert header.source == SMALL
            assert header.digest == source_digest(SMALL)
            assert "main" in header.functions
            assert "helper" in header.functions
            assert reader.verify_source(SMALL)
            assert not reader.verify_source(SMALL + " ")

    def test_footer_outcome(self, small_trace):
        path, result = small_trace
        exit_value, interp = run_source(SMALL)
        with TraceReader(path) as reader:
            for _ in reader.events():
                pass
            footer = reader.footer
        assert footer is not None
        assert footer.exit_value == exit_value == result.exit_value
        assert [tuple(v) for v in footer.output] == interp.output
        assert footer.events == result.events
        assert footer.final_time == interp.time

    def test_footer_without_streaming(self, small_trace):
        path, result = small_trace
        with TraceReader(path) as reader:
            footer = reader.read_footer()
        assert footer.events == result.events

    def test_heap_events_roundtrip(self, tmp_path):
        path = tmp_path / "heap.trace"
        record_source(HEAPY, path)
        allocs = frees_in_heap = 0
        with TraceReader(path) as reader:
            heap_base = reader.header.heap_base
            for etype, a, b, t in reader.events():
                if etype == EV_ALLOC:
                    allocs += 1
                    assert a >= heap_base
                    assert b == 16
                elif etype == EV_FREE and a >= heap_base:
                    frees_in_heap += 1
        assert allocs == 6
        assert frees_in_heap == 6


class TestSchemaErrors:
    def test_version_mismatch_rejected(self, small_trace, tmp_path):
        """Versions outside the supported set (1, 2) are rejected; v2
        is auto-detected, so it is no longer a mismatch."""
        path, _ = small_trace
        blob = bytearray(path.read_bytes())
        offset = len(MAGIC)
        blob[offset:offset + 2] = struct.pack("<H", 99)
        bad = tmp_path / "future.trace"
        bad.write_bytes(blob)
        with pytest.raises(TraceVersionError):
            TraceReader(bad)

    def test_bad_magic_rejected(self, tmp_path):
        bad = tmp_path / "bad.trace"
        bad.write_bytes(b"NOTATRACE" + b"\0" * 64)
        with pytest.raises(TraceError):
            TraceReader(bad)

    def test_empty_file_rejected(self, tmp_path):
        bad = tmp_path / "empty.trace"
        bad.write_bytes(b"")
        with pytest.raises(TraceTruncatedError):
            TraceReader(bad)


class TestTruncation:
    def _truncate(self, path, tmp_path, keep: int):
        bad = tmp_path / "cut.trace"
        bad.write_bytes(path.read_bytes()[:keep])
        return bad

    def test_truncated_mid_events(self, small_trace, tmp_path):
        path, result = small_trace
        size = path.stat().st_size
        # Cut deep inside the event stream (well before the footer).
        bad = self._truncate(path, tmp_path, size - result.events
                             * RECORD_SIZE // 2)
        with pytest.raises(TraceTruncatedError):
            with TraceReader(bad) as reader:
                for _ in reader.events():
                    pass

    def test_truncated_mid_record(self, small_trace, tmp_path):
        path, _ = small_trace
        with TraceReader(path) as reader:
            start = reader._events_start
        bad = self._truncate(path, tmp_path, start + RECORD_SIZE * 3 + 5)
        with pytest.raises(TraceTruncatedError):
            with TraceReader(bad) as reader:
                for _ in reader.events():
                    pass

    def test_missing_footer(self, small_trace, tmp_path):
        """FINISH present but footer/trailer cut off."""
        path, _ = small_trace
        size = path.stat().st_size
        bad = self._truncate(path, tmp_path, size - 9)
        with pytest.raises(TraceTruncatedError):
            with TraceReader(bad) as reader:
                for _ in reader.events():
                    pass

    def test_truncated_header(self, small_trace, tmp_path):
        path, _ = small_trace
        bad = self._truncate(path, tmp_path, len(MAGIC) + 4)
        with pytest.raises(TraceTruncatedError):
            TraceReader(bad)

    def test_aborted_recording_is_truncated(self, tmp_path):
        """A recording that dies (step limit) leaves a detectable stub."""
        from repro.runtime.errors import StepLimitExceeded

        path = tmp_path / "aborted.trace"
        with pytest.raises(StepLimitExceeded):
            record_source(SMALL, path, max_steps=100)
        with pytest.raises(TraceTruncatedError):
            with TraceReader(path) as reader:
                for _ in reader.events():
                    pass
