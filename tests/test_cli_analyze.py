"""CLI wiring for the unified `analyze` verb, the `analyses` listing,
and the centralized file/option error handling shared by every verb."""

from __future__ import annotations

import json

import pytest

from repro.analyses import analysis_names
from repro.cli import main

PROG = """
int bins[16];
int main() {
    int s = 0;
    for (int i = 0; i < 30; i++) {
        bins[i % 16] += i;
        s += bins[(i + 2) % 16];
    }
    print(s);
    return 0;
}
"""


@pytest.fixture
def minic_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(PROG)
    return str(path)


class TestAnalyzeVerb:
    def test_text_output_sections(self, minic_file, capsys):
        assert main(["analyze", minic_file,
                     "--analysis", "dep,locality,hot"]) == 0
        captured = capsys.readouterr()
        # Progress header on stderr; the report itself on stdout.
        assert "replayed 1 recording through 3 analysis(es)" \
            in captured.err
        assert "== dep (replay) ==" in captured.out
        assert "== locality (replay) ==" in captured.out
        assert "== hot (replay) ==" in captured.out

    def test_quiet_suppresses_progress(self, minic_file, capsys):
        assert main(["analyze", minic_file, "--analysis", "dep",
                     "--quiet"]) == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert "== dep (replay) ==" in captured.out

    def test_json_output_shape(self, minic_file, capsys):
        assert main(["analyze", minic_file,
                     "--analysis", "dep,locality,hot", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {"file", "digest", "mode", "analyses"} <= set(payload)
        assert set(payload["analyses"]) == {"dep", "locality", "hot"}
        assert payload["analyses"]["dep"]["constructs"]
        assert payload["analyses"]["locality"]["accesses"] > 0
        assert payload["analyses"]["hot"]["rows"]
        assert payload["mode"] == {"dep": "replay", "locality": "replay",
                                   "hot": "replay"}

    def test_live_flag_skips_recording(self, minic_file, capsys):
        assert main(["analyze", minic_file, "--analysis", "dep,counts",
                     "--live", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == {"dep": "live", "counts": "live"}

    def test_live_and_replay_json_agree(self, minic_file, capsys):
        assert main(["analyze", minic_file, "--analysis", "dep,locality",
                     "--json"]) == 0
        replayed = json.loads(capsys.readouterr().out)
        assert main(["analyze", minic_file, "--analysis", "dep,locality",
                     "--live", "--json"]) == 0
        live = json.loads(capsys.readouterr().out)
        assert live["analyses"] == replayed["analyses"]

    def test_baseline_analyses_available(self, minic_file, capsys):
        assert main(["analyze", minic_file,
                     "--analysis", "flat,context"]) == 0
        out = capsys.readouterr().out
        assert "Flat dependence profile" in out
        assert "Context dependence profile" in out

    def test_unknown_analysis_fails_cleanly(self, minic_file, capsys):
        assert main(["analyze", minic_file, "--analysis", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown analysis 'nope'" in err
        assert "dep" in err and "locality" in err

    def test_dep_flags_without_dep_rejected(self, minic_file, capsys):
        assert main(["analyze", minic_file, "--analysis", "locality",
                     "--raw-only"]) == 2
        assert "not requested" in capsys.readouterr().err
        assert main(["analyze", minic_file, "--analysis", "locality",
                     "--pool-size", "64"]) == 2
        assert "not requested" in capsys.readouterr().err


class TestAnalysesVerb:
    def test_lists_every_registered_analysis(self, capsys):
        assert main(["analyses"]) == 0
        out = capsys.readouterr().out
        for name in analysis_names():
            assert name in out
        assert "pool_size" in out  # option schemas are shown


class TestCentralFileErrors:
    """Satellite: a missing/unreadable FILE is one line + exit 2 for
    every verb, never a traceback."""

    @pytest.mark.parametrize("argv", [
        ["run", "{missing}"],
        ["analyze", "{missing}"],
        ["profile", "{missing}"],
        ["record", "{missing}"],
        ["tree", "{missing}"],
        ["annotate", "{missing}", "--line", "3"],
        ["speedup", "{missing}", "--line", "3"],
        ["replay", "{missing}"],
    ])
    def test_missing_file_exits_2(self, argv, tmp_path, capsys):
        missing = str(tmp_path / "does-not-exist.mc")
        argv = [a.format(missing=missing) for a in argv]
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert len(captured.err.strip().splitlines()) == 1

    def test_unreadable_directory_exits_2(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize("verb", ["run", "analyze", "profile",
                                      "record"])
    def test_syntax_error_exits_2(self, verb, tmp_path, capsys):
        bad = tmp_path / "syntax.mc"
        bad.write_text("int main( { return 0; }")
        assert main([verb, str(bad)]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert len(captured.err.strip().splitlines()) == 1

    def test_runtime_trap_exits_2(self, tmp_path, capsys):
        trap = tmp_path / "trap.mc"
        trap.write_text("""
int main() {
    int zero = 0;
    return 7 / zero;
}
""")
        assert main(["analyze", str(trap), "--analysis", "dep"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1


class TestOptionValidation:
    """Satellite: bad ProfileOptions fail at construction with a clear
    message, surfaced as exit 2 by the CLI."""

    def test_profile_options_reject_nonpositive_pool(self):
        from repro.core.alchemist import ProfileOptions

        with pytest.raises(ValueError, match="pool_size"):
            ProfileOptions(pool_size=0)
        with pytest.raises(ValueError, match="pool_size"):
            ProfileOptions(pool_size=-4)

    def test_profile_options_reject_nonpositive_max_steps(self):
        from repro.core.alchemist import ProfileOptions

        with pytest.raises(ValueError, match="max_steps"):
            ProfileOptions(max_steps=0)

    def test_valid_options_still_construct(self):
        from repro.core.alchemist import ProfileOptions

        options = ProfileOptions(pool_size=1, max_steps=1)
        assert options.pool_size == 1

    @pytest.mark.parametrize("verb", ["profile", "analyze"])
    def test_cli_surfaces_bad_pool_size(self, verb, minic_file, capsys):
        assert main([verb, minic_file, "--pool-size", "0"]) == 2
        assert "pool_size" in capsys.readouterr().err


class TestAliasVerbs:
    """`profile` and `replay` are thin aliases over the unified API and
    must keep their original presentation."""

    def test_profile_output_unchanged(self, minic_file, capsys):
        assert main(["profile", minic_file, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "Profile:" in out
        assert "Advisor recommendations:" in out

    def test_replay_accepts_new_registry_analyses(self, minic_file,
                                                  tmp_path, capsys):
        trace = str(tmp_path / "p.trace")
        assert main(["record", minic_file, "-o", trace]) == 0
        capsys.readouterr()
        assert main(["replay", trace, "--analysis", "flat,counts"]) == 0
        out = capsys.readouterr().out
        assert "Flat dependence profile" in out
        assert "Event counts" in out
