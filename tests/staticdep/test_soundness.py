"""The soundness oracle: static PROVEN_INDEPENDENT is never contradicted
by a full (unsampled) dynamic profile.

For every Table III workload, run the dependence profiler on the full
event stream and classify every observed edge of every executed
construct against the static pass. An observed edge means the two pcs
really did touch the same address inside the construct — so a
``PROVEN_INDEPENDENT`` verdict on it would be a soundness bug in the
points-to model, not an imprecision.

The fusion layer computes the same check (its ``contradictions``
counter), so both the direct classification and the fused payload are
asserted.
"""

import pytest

from repro.api import Session
from repro.staticdep import StaticVerdict, report_for
from repro.workloads import TABLE3_ORDER, get

SCALE = 0.25


@pytest.fixture(scope="module")
def session():
    with Session() as s:
        yield s


@pytest.mark.parametrize("workload", TABLE3_ORDER)
def test_static_never_contradicts_full_profile(session, workload):
    source = get(workload, SCALE).source
    outcome = session.analyze(source, ("dep",), filename=workload)
    result = outcome["dep"]
    report = result.payload
    static = report_for(report.program)

    contradictions = []
    checked = 0
    for view in report.constructs():
        for (head, tail, kind) in view.profile.edges:
            verdict = static.classify_edge(view.pc, head, tail, kind)
            checked += 1
            if verdict is StaticVerdict.PROVEN_INDEPENDENT:
                contradictions.append(
                    (view.name, head, tail, kind.value,
                     view.profile.edges[(head, tail, kind)].var_hint))
    assert not contradictions, (
        f"{workload}: static pass claimed PROVEN_INDEPENDENT on "
        f"{len(contradictions)} observed edge(s): {contradictions[:5]}")
    assert checked > 0, f"{workload}: no edges observed — vacuous oracle"

    # The fusion layer runs the same classification; its payload must
    # agree that a full trace has zero contradictions.
    fusion = result.data["static"]
    assert fusion["mode"] == "full"
    assert fusion["contradictions"] == 0
    assert fusion["edges_checked"] >= checked
