"""Committed golden snapshots of ``alchemist screen --json``.

Two Table III workloads (gzip and bzip2) are screened statically and
the full JSON payload is compared byte-for-byte against
``tests/golden/screen/``. The CI ``static-analysis`` job repeats the
same comparison through the real CLI, so the committed files also pin
the command-line surface.

Regenerate after an intentional static-model change::

    ALCHEMIST_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \\
        tests/staticdep/test_screen_golden.py -q
"""

import difflib
import json
import os
from pathlib import Path

import pytest

from repro.api import Session
from repro.workloads import get

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden" / "screen"
SCALE = 0.25
WORKLOADS = ("gzip", "bzip2")
REGEN = bool(os.environ.get("ALCHEMIST_REGEN_GOLDEN"))


def _render(workload: str) -> str:
    with Session() as session:
        static = session.static_report(get(workload, SCALE).source,
                                       filename=workload)
        assert session.stats.records == 0
        assert session.stats.live_runs == 0
    return json.dumps(static.to_dict(), indent=2, sort_keys=True) + "\n"


@pytest.mark.parametrize("workload", WORKLOADS)
def test_screen_json_matches_golden(workload):
    path = GOLDEN_DIR / f"{workload}.json"
    rendered = _render(workload)
    if REGEN:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered)
        pytest.skip(f"regenerated {path}")
    assert path.exists(), \
        f"missing golden {path}; regenerate with ALCHEMIST_REGEN_GOLDEN=1"
    expected = path.read_text()
    if rendered != expected:
        diff = "\n".join(difflib.unified_diff(
            expected.splitlines(), rendered.splitlines(),
            fromfile=str(path), tofile="rendered", lineterm=""))
        pytest.fail(f"static screen drift for {workload}:\n{diff[:4000]}")
