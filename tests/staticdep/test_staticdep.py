"""Unit tests for the static dependence pass and its three fusion points."""

import pytest

from repro.api import Session
from repro.core.advisor import Advisor, Verdict
from repro.core.alchemist import ProfileOptions
from repro.core.profile_data import DepKind
from repro.ir import compile_source
from repro.staticdep import (StaticDepReport, StaticVerdict,
                             analyze_program, report_for)
from repro.telemetry import Telemetry
from repro.workloads import TABLE3_ORDER, get

ACC_LOOP = """
int acc;
int main() {
  int i;
  for (i = 0; i < 50; i = i + 1) {
    acc = acc + i;
  }
  return acc;
}
"""

DISJOINT_ARRAYS = """
int a[16];
int b[16];
int main() {
  int i;
  for (i = 0; i < 16; i = i + 1) {
    a[i] = i;
  }
  for (i = 0; i < 16; i = i + 1) {
    b[i] = a[i] + 1;
  }
  return b[3];
}
"""

ALIASED_POINTERS = """
int data[8];
int main() {
  int *p;
  int *q;
  int i;
  p = &data[0];
  q = p;
  for (i = 0; i < 8; i = i + 1) {
    *(q + i) = *(p + i) + 1;
  }
  return data[7];
}
"""

RECURSIVE = """
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() { return fib(8); }
"""


def _static(source):
    return StaticDepReport(compile_source(source))


def _loop_pc(report, fn="main"):
    loops = [c for c in report.table.by_pc.values()
             if c.kind.value == "loop" and c.fn_name == fn]
    assert loops, "expected a loop construct"
    return loops[0].pc


class TestStaticClasses:
    def test_global_scalar_raw_is_must(self):
        static = _static(ACC_LOOP)
        pc = _loop_pc(static)
        raw = {c.var: c.verdict for c in static.raw_classes(pc)}
        assert raw == {"acc": StaticVerdict.MUST_DEP}

    def test_induction_variable_is_filtered(self):
        static = _static(ACC_LOOP)
        pc = _loop_pc(static)
        all_raw = [c for c in static.classes[pc] if c.kind is DepKind.RAW]
        assert any(c.var == "main.i" and c.induction for c in all_raw)
        assert all(c.var != "main.i" for c in static.raw_classes(pc))

    def test_disjoint_arrays_prove_independent_loops(self):
        static = _static(DISJOINT_ARRAYS)
        loops = sorted(c.pc for c in static.table.by_pc.values()
                       if c.kind.value == "loop")
        first, second = loops
        # The first loop only writes `a` (plus its own counter):
        # no loop-carried flow dependence survives the induction filter.
        assert static.construct_verdict(first) == "independent"
        # The second reads `a` but writes only `b`: RAW needs a write.
        assert static.construct_verdict(second) == "independent"

    def test_aliased_pointers_stay_may(self):
        static = _static(ALIASED_POINTERS)
        pc = _loop_pc(static)
        raw = {c.var: c.verdict for c in static.raw_classes(pc)}
        assert raw.get("data") is StaticVerdict.MAY_DEP

    def test_recursive_locals_never_must(self):
        static = _static(RECURSIVE)
        assert "fib" in static.recursive
        for classes in static.classes.values():
            for cls in classes:
                if cls.var.startswith("fib.") or cls.var == "retval(fib)":
                    assert cls.verdict is not StaticVerdict.MUST_DEP


class TestClassifyEdge:
    def test_disjoint_pcs_are_independent(self):
        static = _static(DISJOINT_ARRAYS)
        program = static.program
        writes_a = [pc for pc, locs in static.model.writes.items()
                    if any(l.label() == "a" for l in locs)]
        writes_b = [pc for pc, locs in static.model.writes.items()
                    if any(l.label() == "b" for l in locs)]
        assert writes_a and writes_b
        verdict = static.classify_edge(
            program.main.entry_pc, writes_a[0], writes_b[0], DepKind.WAW)
        assert verdict is StaticVerdict.PROVEN_INDEPENDENT

    def test_same_global_scalar_is_must(self):
        static = _static(ACC_LOOP)
        program = static.program
        acc_writes = [pc for pc, locs in static.model.writes.items()
                      if any(l.label() == "acc" for l in locs)]
        acc_reads = [pc for pc, locs in static.model.reads.items()
                     if any(l.label() == "acc" for l in locs)]
        verdict = static.classify_edge(
            program.main.entry_pc, acc_writes[0], acc_reads[0], DepKind.RAW)
        assert verdict is StaticVerdict.MUST_DEP

    def test_head_outside_construct_is_independent(self):
        static = _static(DISJOINT_ARRAYS)
        loops = sorted(c.pc for c in static.table.by_pc.values()
                       if c.kind.value == "loop")
        first, second = loops
        # A pc inside the second loop can never be the head of an edge
        # attributed to the first loop.
        inside_second = static.inside_pcs[second] - static.inside_pcs[first]
        head = sorted(pc for pc in inside_second
                      if pc in static.model.writes)[0]
        verdict = static.classify_edge(first, head, head, DepKind.WAW)
        assert verdict is StaticVerdict.PROVEN_INDEPENDENT


class TestScreen:
    @pytest.mark.parametrize("workload", TABLE3_ORDER)
    def test_all_workloads_screen_with_zero_execution(self, workload):
        with Session() as session:
            static = session.static_report(get(workload, 0.25).source,
                                           filename=workload)
            rows = static.screen_rows()
            assert rows, f"{workload}: no constructs screened"
            assert len(rows) == static.table.static_count()
            assert all(r["verdict"] in
                       ("independent", "may-dep", "must-dep")
                       for r in rows)
            # Zero execution: the static pass must not run or record.
            assert session.stats.records == 0
            assert session.stats.live_runs == 0
            assert session.stats.replay_passes == 0

    def test_ranking_puts_independent_first(self):
        static = _static(DISJOINT_ARRAYS)
        rows = static.screen_rows()
        ranks = [row["verdict"] for row in rows]
        order = {"independent": 0, "may-dep": 1, "must-dep": 2}
        assert ranks == sorted(ranks, key=order.__getitem__)

    def test_to_dict_is_deterministic_and_path_free(self):
        import json

        first = _static(DISJOINT_ARRAYS).to_dict()
        second = _static(DISJOINT_ARRAYS).to_dict()
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)
        assert "filename" not in json.dumps(first)

    def test_session_caches_by_digest(self):
        with Session() as session:
            one = session.static_report(ACC_LOOP)
            two = session.static_report(ACC_LOOP)
            assert one is two

    def test_telemetry_span_emitted(self):
        tm = Telemetry()
        with tm.span("root"):
            analyze_program(compile_source(ACC_LOOP), tm)
        assert tm.find_spans("static.analyze")


class TestFusion:
    def test_full_trace_fusion_reports_no_contradictions(self):
        with Session() as session:
            result = session.analyze(ACC_LOOP, ("dep",))["dep"]
        fusion = result.data["static"]
        assert fusion["mode"] == "full"
        assert fusion["contradictions"] == 0
        assert fusion["confirmed_must"] > 0
        assert "Static fusion:" in result.text

    def test_sampled_trace_upgrades_hints(self):
        with Session(ProfileOptions(sample="interval:7")) as session:
            result = session.analyze(ACC_LOOP, ("dep",))["dep"]
        fusion = result.data["static"]
        assert fusion["mode"] == "sampled"
        # Acceptance: the fusion layer upgrades at least one sampled
        # hint to a verdict (confirmed MUST_DEP or proven spurious).
        assert fusion["upgraded_hints"] >= 1
        assert "upgraded" in result.text

    def test_sampled_trace_warns_about_missed_classes(self):
        # Sample so sparsely that some statically-possible class goes
        # unobserved; the result must say so instead of staying silent.
        with Session(ProfileOptions(sample="interval:977")) as session:
            result = session.analyze(DISJOINT_ARRAYS, ("dep",))["dep"]
        fusion = result.data["static"]
        assert fusion["mode"] == "sampled"
        assert fusion["missed_by_sampling"] >= 1
        assert "missed-by-sampling" in result.text

    def test_fuse_span_emitted(self):
        tm = Telemetry()
        with Session(telemetry=tm) as session:
            session.analyze(ACC_LOOP, ("dep",))
        assert tm.find_spans("static.fuse")


class TestAdvisorConfidence:
    def _report(self, source, sample=None):
        options = ProfileOptions(sample=sample) if sample else None
        with Session(options) as session:
            result = session.analyze(source, ("dep",))["dep"]
        return result.payload

    def test_dynamic_only_without_static_report(self):
        report = self._report(ACC_LOOP)
        recs = Advisor(report).recommend(5)
        assert recs
        assert all(r.confidence == "dynamic-only" for r in recs)

    def test_must_confident_blocked(self):
        report = self._report(ACC_LOOP)
        static = report_for(report.program)
        recs = Advisor(report, static_report=static).recommend(5)
        blocked = [r for r in recs if r.verdict is Verdict.BLOCKED]
        assert blocked, "the acc loop must be dynamically BLOCKED"
        # Every blocking edge is on the global scalar `acc` — statically
        # certain, so the BLOCKED verdict is must-confident.
        assert all(r.confidence == "must" for r in blocked)

    def test_must_confident_ready_when_no_static_raw(self):
        report = self._report(DISJOINT_ARRAYS)
        static = report_for(report.program)
        recs = Advisor(report, static_report=static).recommend(10)
        loops = [r for r in recs if r.view.kind.value == "loop"]
        assert loops
        for rec in loops:
            if not static.raw_classes(rec.view.pc):
                assert rec.confidence == "must"

    def test_confidence_in_summary_and_describe(self):
        report = self._report(ACC_LOOP)
        static = report_for(report.program)
        rec = Advisor(report, static_report=static).recommend(1)[0]
        assert rec.summary()["confidence"] in ("must", "may")
        assert "confidence:" in rec.describe()

    def test_whatif_surfaces_confidence(self):
        with Session() as session:
            result = session.advise(DISJOINT_ARRAYS, workers=(2, 4))
        for entry in result.data["candidates"] + result.data["skipped"]:
            assert entry["confidence"] in ("must", "may")
        assert "confidence]" in result.text
