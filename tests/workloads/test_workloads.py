"""Workload correctness and profile-shape tests.

Every benchmark port must run deterministically, and its profile must
show the qualitative features the paper's evaluation reports for it.
"""

import pytest

from repro.core.alchemist import Alchemist
from repro.core.profile_data import DepKind
from repro.ir import compile_source
from repro.parallel import estimate_speedup
from repro.runtime import run_source
from repro.workloads import TABLE3_ORDER, all_workloads, get

SMALL = 0.5  # scale for the cheaper runs


@pytest.fixture(scope="module")
def reports():
    """Profile every workload once (module-scoped: reused across tests)."""
    alch = Alchemist()
    return {w.name: (w, alch.profile(w.source))
            for w in all_workloads(SMALL)}


class TestExecution:
    @pytest.mark.parametrize("name", TABLE3_ORDER)
    def test_runs_clean_and_deterministic(self, name):
        workload = get(name, SMALL)
        v1, i1 = run_source(workload.source)
        v2, i2 = run_source(workload.source)
        assert v1 == v2 == 0
        assert i1.output == i2.output
        assert len(i1.output) == workload.expected_outputs

    @pytest.mark.parametrize("name", TABLE3_ORDER)
    def test_markers_resolve(self, name):
        workload = get(name, SMALL)
        for target, line in workload.target_lines():
            assert line > 0
            text = workload.source.splitlines()[line - 1]
            assert target.marker in text

    @pytest.mark.parametrize("name", TABLE3_ORDER)
    def test_scales(self, name):
        small = get(name, 0.5)
        big = get(name, 1.0)
        _, interp_small = run_source(small.source)
        _, interp_big = run_source(big.source)
        assert interp_big.time > interp_small.time

    def test_registry_round_trip(self):
        assert set(TABLE3_ORDER) == {w.name for w in all_workloads(SMALL)}
        with pytest.raises(KeyError):
            get("nonesuch")


class TestProfileShapes:
    def test_every_workload_profiles(self, reports):
        for name, (workload, report) in reports.items():
            assert report.stats.instructions > 1000, name
            assert report.stats.dynamic_instances > 10, name
            assert report.constructs(), name

    def test_gzip_flush_block_shape(self, reports):
        _, report = reports["gzip"]
        fb = next(v for v in report.constructs() if v.name == "flush_block")
        assert fb.instances >= 4  # several flushes per run
        retval = [e for e in fb.edges(DepKind.RAW)
                  if e.var_hint.startswith("retval(")]
        assert retval and min(e.min_tdep for e in retval) == 1
        waw_vars = {e.var_hint.split("[")[0] for e in fb.edges(DepKind.WAW)}
        assert "outcnt" in waw_vars

    def test_gzip_file_loop_is_top_candidate(self, reports):
        _, report = reports["gzip"]
        loops = [v for v in report.top_constructs(4)
                 if v.static.is_loop and v.fn_name == "main"]
        assert loops, "the per-file loop must rank among the largest"

    def test_parser_dictionary_larger_but_io_bound(self, reports):
        """Fig. 6(c): C1/C2 (dictionary) outweigh C3 (sentence loop) and
        carry the input-cursor chain; C3's violations are counters."""
        _, report = reports["197.parser"]
        dict_loop = next(v for v in report.constructs()
                         if v.static.is_loop
                         and v.fn_name == "read_dictionary")
        sentence_loop = next(v for v in report.constructs()
                             if v.static.is_loop and v.fn_name == "main")
        assert dict_loop.total_duration > sentence_loop.total_duration
        # The dictionary loop's cursor chain:
        hints = {e.var_hint for e in dict_loop.violating(DepKind.RAW)}
        assert "in_state" in hints
        # The sentence loop's violations are the shared counters.
        sentence_hints = {e.var_hint
                          for e in sentence_loop.violating(DepKind.RAW)}
        assert "total_cost" in sentence_hints or \
            "sentences_parsed" in sentence_hints

    def test_lisp_xlload_slightly_larger_than_batch(self, reports):
        """Fig. 6(d): C1 (xlload) executes slightly more instructions
        than C2 (the batch loop's eval side) thanks to the initial call
        before the loop."""
        _, report = reports["130.li"]
        xlload = next(v for v in report.constructs()
                      if v.name == "xlload")
        batch = next(v for v in report.constructs()
                     if v.static.is_loop and v.fn_name == "main")
        assert xlload.instances == batch.instances + 1

    def test_lisp_recursion_counted_once(self, reports):
        _, report = reports["130.li"]
        xeval = next(v for v in report.constructs() if v.name == "xeval")
        total = report.stats.instructions
        assert xeval.total_duration < total  # no recursive double count

    def test_bzip2_bzf_conflicts(self, reports):
        """Table IV: the file loop's WAW conflicts concentrate on the
        shared bzf stream state."""
        workload, report = reports["bzip2"]
        target, line = workload.target_lines()[0]
        view = report.views_at_line(line)[0]
        waw_vars = {e.var_hint.split("[")[0]
                    for e in view.violating(DepKind.WAW)}
        assert any(v.startswith("bzf_") or v == "stream_crc"
                   for v in waw_vars)

    def test_aes_ivec_conflicts(self, reports):
        """Table IV: WAW/WAR conflicts on ivec for the CTR loop."""
        workload, report = reports["aes"]
        _, line = workload.primary_target()
        view = report.views_at_line(line)[0]
        conflict_vars = {e.var_hint.split("[")[0]
                         for e in view.violating(DepKind.WAW)}
        conflict_vars |= {e.var_hint.split("[")[0]
                          for e in view.violating(DepKind.WAR)}
        assert "ivec" in conflict_vars

    def test_ogg_errors_and_samples_conflicts(self, reports):
        """Table IV / §IV-B.2: conflicts on the errors flag and the
        samples-read counter."""
        workload, report = reports["ogg"]
        _, line = workload.primary_target()
        view = report.views_at_line(line)[0]
        all_vars = set()
        for kind in (DepKind.RAW, DepKind.WAW, DepKind.WAR):
            all_vars |= {e.var_hint for e in view.violating(kind)}
        assert "samples_read" in all_vars
        assert any("errors" in v for v in all_vars) or "outlen" in all_vars

    def test_par2_file_close_conflict(self, reports):
        """§IV-B.2: 'Alchemist detected a conflict when a file is
        closed' — the nopen counter in the open loop."""
        workload, report = reports["par2"]
        open_target = next((t, line) for t, line in workload.target_lines()
                           if t.marker == "PARALLEL-PAR2-OPEN")
        view = report.views_at_line(open_target[1])[0]
        conflict_vars = set()
        for kind in (DepKind.RAW, DepKind.WAW, DepKind.WAR):
            conflict_vars |= {e.var_hint for e in view.violating(kind)}
        assert "nopen" in conflict_vars

    def test_delaunay_heavily_blocked(self, reports):
        """§IV-B.1: the compute-heavy constructs carry many violating
        static RAW dependences."""
        _, report = reports["delaunay"]
        refine = next(v for v in report.constructs()
                      if v.static.is_loop and v.fn_name == "main")
        assert refine.violating_count(DepKind.RAW) >= 15
        biggest_loop = next(v for v in report.constructs()
                            if v.static.is_loop)
        assert biggest_loop.violating_count(DepKind.RAW) >= 10


class TestSpeedupShapes:
    """Table V: who wins and by roughly what factor."""

    def _speedup(self, name, workers=4):
        # Full scale: the near-linear cases need one file per worker,
        # as in the paper's 4-thread runs.
        workload = get(name, 1.0)
        target, line = workload.primary_target()
        program = compile_source(workload.source)
        return estimate_speedup(program=program, line=line, workers=workers,
                                private_vars=target.private_vars).speedup

    def test_bzip2_near_linear(self):
        assert self._speedup("bzip2") > 2.5

    def test_ogg_near_linear(self):
        assert self._speedup("ogg") > 2.5

    def test_par2_sublinear_but_wins(self):
        speedup = self._speedup("par2")
        assert 1.3 < speedup < 3.2

    def test_aes_sublinear_but_wins(self):
        speedup = self._speedup("aes")
        assert 1.3 < speedup < 3.2

    def test_delaunay_no_speedup(self):
        workload = get("delaunay", SMALL)
        _, line = workload.primary_target()
        program = compile_source(workload.source)
        result = estimate_speedup(program=program, line=line, workers=4)
        assert result.speedup < 1.15

    def test_ranking_matches_paper(self):
        """ogg/bzip2 (near-linear) beat par2/aes (serial-bound)."""
        near_linear = min(self._speedup("bzip2"), self._speedup("ogg"))
        serial_bound = max(self._speedup("par2"), self._speedup("aes"))
        assert near_linear > serial_bound
