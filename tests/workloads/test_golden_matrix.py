"""Golden workload matrix: every bundled workload × every analysis.

Each workload is recorded once per session (one ``Session.analyze``
call fans the single trace out to all registered analyses) and every
``to_dict()`` is compared against a committed golden snapshot under
``tests/golden/``. Any drift — a changed dependence edge, a shifted
min distance, one extra cold miss — fails with a readable unified
diff, so unintended profile changes cannot slip through a refactor.

To bless intentional changes, regenerate the snapshots::

    ALCHEMIST_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \\
        tests/workloads/test_golden_matrix.py -q

and commit the updated ``tests/golden/*.json`` together with the
change that caused them (the diff in review *is* the profile drift).
"""

import difflib
import json
import os
from pathlib import Path

import pytest

from repro.analyses import analysis_names
from repro.api import Session
from repro.workloads import EXTRA_ORDER, TABLE3_ORDER, get

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"
SCALE = 0.25
ALL_WORKLOADS = list(TABLE3_ORDER) + list(EXTRA_ORDER)
REGEN = bool(os.environ.get("ALCHEMIST_REGEN_GOLDEN"))

#: Diff lines shown before truncation (a full workload diff can be
#: thousands of lines; the head is where the story is).
DIFF_LIMIT = 80


def _golden_path(workload: str) -> Path:
    return GOLDEN_DIR / f"{workload.replace('.', '_')}.json"


@pytest.fixture(scope="session")
def session():
    with Session() as s:
        yield s


def _snapshot(session: Session, workload: str) -> dict:
    names = analysis_names()
    report = session.analyze(get(workload, SCALE).source, names,
                             filename=workload)
    assert session.stats.records <= len(ALL_WORKLOADS), \
        "a workload must be recorded at most once per session"
    return {
        "workload": workload,
        "scale": SCALE,
        "analyses": {name: report[name].to_dict() for name in names},
    }


def _render(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


@pytest.mark.parametrize("workload", ALL_WORKLOADS)
def test_profile_matches_golden(session, workload):
    payload = _snapshot(session, workload)
    path = _golden_path(workload)
    rendered = _render(payload)
    if REGEN:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered)
        return
    if not path.exists():
        pytest.fail(
            f"no golden snapshot for {workload!r} at {path}; generate "
            "with ALCHEMIST_REGEN_GOLDEN=1 (see module docstring)")
    expected = path.read_text()
    if rendered == expected:
        return
    diff = list(difflib.unified_diff(
        expected.splitlines(), rendered.splitlines(),
        fromfile=f"golden/{path.name}", tofile="current",
        lineterm=""))
    shown = "\n".join(diff[:DIFF_LIMIT])
    if len(diff) > DIFF_LIMIT:
        shown += f"\n... ({len(diff) - DIFF_LIMIT} more diff lines)"
    pytest.fail(
        f"profile drift on {workload!r} ({len(diff)} diff lines).\n"
        "If intentional, regenerate goldens with "
        "ALCHEMIST_REGEN_GOLDEN=1 and commit the diff.\n" + shown)
