"""Correctness and profile-shape tests for the heap-centric workloads."""

import pytest

from repro.core.alchemist import Alchemist
from repro.core.profile_data import DepKind
from repro.ir import compile_source
from repro.parallel import estimate_speedup
from repro.runtime import run_source
from repro.workloads import EXTRA_ORDER, extra_workloads, get


@pytest.fixture(scope="module")
def reports():
    alch = Alchemist()
    return {w.name: (w, alch.profile(w.source))
            for w in extra_workloads(0.5)}


class TestExecution:
    @pytest.mark.parametrize("name", EXTRA_ORDER)
    def test_runs_clean_and_deterministic(self, name):
        workload = get(name, 0.5)
        v1, i1 = run_source(workload.source)
        v2, i2 = run_source(workload.source)
        assert v1 == v2 == 0
        assert i1.output == i2.output
        assert len(i1.output) == workload.expected_outputs

    @pytest.mark.parametrize("name", EXTRA_ORDER)
    def test_all_heap_blocks_freed(self, name):
        workload = get(name, 0.5)
        _, interp = run_source(workload.source)
        assert interp.memory.heap_allocs > 10
        assert interp.memory.heap_allocs == interp.memory.heap_frees
        assert interp.memory.live_heap_words() == 0

    @pytest.mark.parametrize("name", EXTRA_ORDER)
    def test_markers_resolve(self, name):
        workload = get(name, 0.5)
        for target, line in workload.target_lines():
            text = workload.source.splitlines()[line - 1]
            assert target.marker in text

    @pytest.mark.parametrize("name", EXTRA_ORDER)
    def test_scales(self, name):
        _, small = run_source(get(name, 0.5).source)
        _, big = run_source(get(name, 1.5).source)
        assert big.time > small.time

    def test_registry_exposes_extras(self):
        from repro.workloads import names
        assert "wordcount" not in names()
        assert "wordcount" in names(include_extra=True)
        assert "lisp-cons" in names(include_extra=True)


class TestWordcountProfile:
    def test_query_loop_conflicts_on_lookups_counter(self, reports):
        """The query loop's cross-iteration violations concentrate on
        the shared `lookups` counter — the privatization hint."""
        workload, report = reports["wordcount"]
        _, line = workload.primary_target()
        view = report.views_at_line(line)[0]
        conflict_vars = set()
        for kind in (DepKind.RAW, DepKind.WAW, DepKind.WAR):
            conflict_vars |= {e.var_hint.split("[")[0]
                              for e in view.violating(kind)}
        assert "lookups" in conflict_vars, conflict_vars

    def test_query_loop_no_heap_violations(self, reports):
        """Queries only read the dictionary, so no violating RAW edge of
        the query loop may involve heap words."""
        workload, report = reports["wordcount"]
        _, line = workload.primary_target()
        view = report.views_at_line(line)[0]
        heap_violations = [e for e in view.violating(DepKind.RAW)
                           if e.var_hint.startswith("heap#")]
        assert heap_violations == []

    def test_build_phase_has_heap_dependences(self, reports):
        """Insertions rewire chain nodes: the build loop must carry RAW
        dependences through heap words (the table and node links)."""
        workload, report = reports["wordcount"]
        build_line = workload.line_of("SERIAL-WORDCOUNT-BUILD")
        view = report.views_at_line(build_line)[0]
        heap_edges = [e for e in view.edges(DepKind.RAW)
                      if e.var_hint.startswith("heap#")]
        assert heap_edges

    def test_query_loop_parallelizes_after_privatization(self):
        workload = get("wordcount", 1.0)
        target, line = workload.primary_target()
        program = compile_source(workload.source)
        result = estimate_speedup(program=program, line=line, workers=4,
                                  private_vars=target.private_vars)
        assert result.speedup > 1.5


class TestLispConsProfile:
    def test_no_cross_iteration_heap_dependences(self, reports):
        """Trees are freed per batch iteration and their addresses are
        recycled by the next iteration. With shadow clearing on free,
        the batch loop's violating RAW edges involve only genuinely
        shared globals — never recycled heap cells."""
        workload, report = reports["lisp-cons"]
        _, line = workload.primary_target()
        view = report.views_at_line(line)[0]
        heap_violations = [e for e in view.violating(DepKind.RAW)
                           if e.var_hint.startswith("heap#")]
        assert heap_violations == [], [
            (e.var_hint, e.min_tdep) for e in heap_violations]

    def test_shared_state_dependences_remain(self, reports):
        workload, report = reports["lisp-cons"]
        _, line = workload.primary_target()
        view = report.views_at_line(line)[0]
        conflict_vars = set()
        for kind in (DepKind.RAW, DepKind.WAW, DepKind.WAR):
            conflict_vars |= {e.var_hint.split("[")[0]
                              for e in view.violating(kind)}
        assert "load_state" in conflict_vars or \
            "exprs_loaded" in conflict_vars, conflict_vars

    def test_recursive_eval_counted_once(self, reports):
        _, report = reports["lisp-cons"]
        xeval = next(v for v in report.constructs() if v.name == "xeval")
        assert xeval.total_duration < report.stats.instructions

    def test_free_tree_recursion_balances(self, reports):
        _, report = reports["lisp-cons"]
        free_tree = next(v for v in report.constructs()
                         if v.name == "free_tree")
        assert free_tree.instances > 0
