"""Task-graph extraction tests."""

import pytest

from repro.ir import compile_source
from repro.parallel.estimator import (EstimatorError, estimate_speedup,
                                      find_construct)
from repro.parallel.taskgraph import extract_task_graph, induction_offsets_of

INDEPENDENT = """
int results[64];
int work(int seed) {
    int acc = seed;
    for (int i = 0; i < 150; i++) acc = (acc * 31 + i) % 65521;
    return acc;
}
int main() {
    for (int f = 0; f < 12; f++) {
        results[f] = work(f);
    }
    int sum = 0;
    for (int f = 0; f < 12; f++) sum += results[f];
    print(sum);
    return 0;
}
"""
INDEPENDENT_LOOP_LINE = 9

CHAINED = """
int state;
int work(int seed) {
    int acc = seed;
    for (int i = 0; i < 150; i++) acc = (acc * 31 + i) % 65521;
    return acc;
}
int main() {
    for (int f = 0; f < 12; f++) {
        state = work(state);
    }
    print(state);
    return 0;
}
"""


class TestExtraction:
    def test_iteration_tasks_partition_the_run(self):
        program = compile_source(INDEPENDENT)
        pc = find_construct(program, line=INDEPENDENT_LOOP_LINE)
        graph = extract_task_graph(program, pc)
        assert len(graph.tasks) == 12
        assert len(graph.serial) == 13
        covered = graph.task_time + graph.serial_time
        assert covered == graph.total_time
        for earlier, later in zip(graph.tasks, graph.tasks[1:]):
            assert earlier.end <= later.start

    def test_independent_iterations_have_no_task_deps(self):
        program = compile_source(INDEPENDENT)
        pc = find_construct(program, line=INDEPENDENT_LOOP_LINE)
        graph = extract_task_graph(program, pc)
        assert graph.task_deps == set()

    def test_epilogue_joins_on_producing_tasks(self):
        program = compile_source(INDEPENDENT)
        pc = find_construct(program, line=INDEPENDENT_LOOP_LINE)
        graph = extract_task_graph(program, pc)
        epilogue = len(graph.tasks)
        # The summation loop reads every results[f].
        assert graph.joins.get(epilogue) == set(range(12))

    def test_chained_iterations_form_a_chain(self):
        program = compile_source(CHAINED)
        pc = find_construct(program, line=9)
        graph = extract_task_graph(program, pc)
        chain = {(k, k + 1) for k in range(11)}
        assert chain <= graph.task_deps

    def test_procedure_target_instances_are_calls(self):
        program = compile_source(INDEPENDENT)
        pc = find_construct(program, fn_name="work")
        graph = extract_task_graph(program, pc)
        assert len(graph.tasks) == 12

    def test_induction_detection_for_for_loop(self):
        program = compile_source(INDEPENDENT)
        pc = find_construct(program, line=INDEPENDENT_LOOP_LINE)
        offsets = induction_offsets_of(program, pc)
        assert len(offsets) == 1  # the loop variable f

    def test_induction_detection_for_while_loop(self):
        program = compile_source("""
        int a[16];
        int main() {
            int i = 0;
            while (i < 16) { a[i] = i; i++; }
            return a[3];
        }
        """)
        pc = find_construct(program, line=5)
        offsets = induction_offsets_of(program, pc)
        assert len(offsets) == 1

    def test_private_vars_break_chains(self):
        source = """
        int counter;
        int a[16];
        int main() {
            for (int i = 0; i < 16; i++) {
                counter++;
                a[i] = counter * 2;
            }
            print(counter);
            return 0;
        }
        """
        slow = estimate_speedup(source, line=5, workers=4)
        fast = estimate_speedup(source, line=5, workers=4,
                                private_vars=("counter",))
        assert slow.speedup == pytest.approx(1.0, abs=0.05)
        assert fast.speedup > 1.5


class TestEstimator:
    def test_near_linear_for_independent(self):
        result = estimate_speedup(INDEPENDENT, line=INDEPENDENT_LOOP_LINE,
                                  workers=4)
        assert result.speedup > 3.0

    def test_no_speedup_for_chain(self):
        result = estimate_speedup(CHAINED, line=9, workers=4)
        assert result.speedup == pytest.approx(1.0, abs=0.02)

    def test_more_workers_never_hurt(self):
        speeds = [estimate_speedup(INDEPENDENT,
                                   line=INDEPENDENT_LOOP_LINE,
                                   workers=w).speedup
                  for w in (1, 2, 4)]
        assert speeds == sorted(speeds)
        assert speeds[0] == pytest.approx(1.0, abs=0.02)

    def test_find_construct_prefers_loop(self):
        program = compile_source(INDEPENDENT)
        pc = find_construct(program, line=INDEPENDENT_LOOP_LINE)
        table_pc = find_construct(program, pc=pc)
        assert table_pc == pc

    def test_find_construct_unknown_line(self):
        program = compile_source(INDEPENDENT)
        with pytest.raises(EstimatorError,
                           match=r"no construct at line 9999.*lines "
                                 r"heading constructs"):
            find_construct(program, line=9999)

    def test_describe(self):
        result = estimate_speedup(INDEPENDENT, line=INDEPENDENT_LOOP_LINE,
                                  workers=4)
        text = result.describe()
        assert "T_seq" in text and "workers" in text
