"""Regression tests for the estimator/CLI bug cluster (PR 5 satellites)
plus the trace-grounded estimation path."""

import pytest

from repro.analysis.constructs import ConstructKind
from repro.ir import compile_source
from repro.parallel.estimator import (_KIND_ORDER, _KIND_ORDER_DEFAULT,
                                      EstimatorError, estimate_speedup,
                                      find_construct, simulate_speedup)
from repro.parallel.simulator import FutureSimulator, ScheduleResult
from repro.parallel.taskgraph import TaskGraph

SOURCE = """
int results[8];
int work(int seed) {
    int acc = seed;
    for (int i = 0; i < 40; i++) acc = (acc * 31 + i) % 65521;
    return acc;
}
int never_called(int x) { return x + 1; }
int main() {
    for (int f = 0; f < 8; f++) results[f] = work(f);
    int sum = 0;
    for (int f = 0; f < 8; f++) sum += results[f];
    print(sum);
    return 0;
}
"""
LOOP_LINE = 10


@pytest.fixture(scope="module")
def program():
    return compile_source(SOURCE)


class TestFindConstructErrors:
    """Bare ``KeyError('name')`` used to escape to the CLI and print as
    the quoted key; every resolution failure is now an
    :class:`EstimatorError` naming the valid alternatives."""

    def test_unknown_procedure_lists_known_ones(self, program):
        with pytest.raises(EstimatorError) as excinfo:
            find_construct(program, fn_name="nope")
        message = str(excinfo.value)
        assert "no procedure named 'nope'" in message
        assert "work" in message and "main" in message

    def test_unknown_pc_lists_construct_heads(self, program):
        with pytest.raises(EstimatorError, match=r"pc 999999 heads no "
                                                 r"construct.*heads"):
            find_construct(program, pc=999999)

    def test_unknown_line_lists_lines(self, program):
        with pytest.raises(EstimatorError,
                           match=r"no construct at line 424242"):
            find_construct(program, line=424242)

    def test_errors_are_value_errors_not_key_errors(self, program):
        """The CLI prints str(exc): a KeyError would render with
        quotes; ValueError subclasses render the message itself."""
        with pytest.raises(ValueError):
            find_construct(program, fn_name="nope")
        try:
            find_construct(program, fn_name="nope")
        except Exception as exc:
            assert not isinstance(exc, KeyError)
            assert not str(exc).startswith("'")

    def test_every_construct_kind_has_a_sort_rank(self):
        """A ConstructKind added later must not KeyError the line
        tie-break; unknown kinds rank last via the .get fallback."""
        assert set(_KIND_ORDER) == set(ConstructKind)
        assert _KIND_ORDER.get(object(), _KIND_ORDER_DEFAULT) \
            == _KIND_ORDER_DEFAULT
        assert all(rank < _KIND_ORDER_DEFAULT
                   for rank in _KIND_ORDER.values())

    def test_no_location_at_all(self, program):
        with pytest.raises(EstimatorError, match="need source"):
            estimate_speedup()


class TestUnknownPrivateGlobal:
    def test_unknown_global_names_the_known_ones(self, program):
        with pytest.raises(ValueError) as excinfo:
            estimate_speedup(program=program, line=LOOP_LINE,
                             private_vars=("missing_var",))
        message = str(excinfo.value)
        assert "no global variable named 'missing_var'" in message
        assert "results" in message


class TestZeroInstances:
    """An empty task graph used to report x1.00; it is now an explicit
    error in the estimator and a 0.0 from the raw schedule result."""

    def test_never_executed_procedure_is_an_error(self, program):
        with pytest.raises(EstimatorError,
                           match="'never_called' executed no instances"):
            estimate_speedup(program=program, fn_name="never_called")

    def test_simulate_speedup_rejects_empty_graph(self):
        graph = TaskGraph(target_pc=0, total_time=0, serial=[0])
        with pytest.raises(EstimatorError, match="no instances"):
            simulate_speedup(graph, target_name="ghost")

    def test_schedule_result_zero_makespan_is_not_1x(self):
        result = ScheduleResult(workers=4, t_seq=0, makespan=0)
        assert result.speedup == 0.0

    def test_empty_graph_schedules_to_zero_speedup(self):
        graph = TaskGraph(target_pc=0, total_time=0, serial=[0])
        result = FutureSimulator(4).schedule(graph)
        assert result.makespan == 0
        assert result.speedup == 0.0


class TestTraceGroundedEstimation:
    """The refactor's core contract: a replayed trace and a live run
    produce identical speedup predictions — no re-execution needed."""

    def test_trace_equals_live(self, tmp_path):
        from repro.trace.writer import record_source

        path = str(tmp_path / "est.trace")
        record_source(SOURCE, path)
        live = estimate_speedup(SOURCE, line=LOOP_LINE, workers=4)
        replayed = estimate_speedup(trace=path, line=LOOP_LINE,
                                    workers=4)
        assert replayed.t_seq == live.t_seq
        assert replayed.t_par == live.t_par
        assert replayed.speedup == live.speedup
        assert len(replayed.graph.tasks) == len(live.graph.tasks)
        assert replayed.graph.task_deps == live.graph.task_deps
        assert replayed.graph.joins == live.graph.joins

    def test_trace_with_private_vars(self, tmp_path):
        from repro.trace.writer import record_source

        source = """
        int counter;
        int a[16];
        int main() {
            for (int i = 0; i < 16; i++) {
                counter++;
                a[i] = counter * 2;
            }
            print(counter);
            return 0;
        }
        """
        path = str(tmp_path / "priv.trace")
        record_source(source, path)
        live = estimate_speedup(source, line=5, workers=4,
                                private_vars=("counter",))
        replayed = estimate_speedup(trace=path, line=5, workers=4,
                                    private_vars=("counter",))
        assert replayed.speedup == live.speedup
        assert replayed.speedup > 1.5

    def test_corrupt_trace_is_a_trace_error(self, tmp_path):
        from repro.trace.events import TraceError
        from repro.trace.writer import record_source

        path = tmp_path / "corrupt.trace"
        record_source(SOURCE, str(path))
        raw = bytearray(path.read_bytes())
        # Flip a byte inside the embedded source so the digest check
        # trips (the header text region sits past the fixed fields).
        raw[200] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceError):
            estimate_speedup(trace=str(path), line=LOOP_LINE)


class TestMultiTargetExtraction:
    def test_one_pass_matches_individual_passes(self, program):
        from repro.parallel.taskgraph import (LiveSource,
                                              extract_task_graph,
                                              extract_task_graphs)

        loop_pc = find_construct(program, line=LOOP_LINE)
        work_pc = find_construct(program, fn_name="work")
        combined = extract_task_graphs(LiveSource(program),
                                       [loop_pc, work_pc])
        for pc in (loop_pc, work_pc):
            single = extract_task_graph(program, pc)
            multi = combined[pc]
            assert multi.total_time == single.total_time
            assert [t.duration for t in multi.tasks] == \
                [t.duration for t in single.tasks]
            assert multi.task_deps == single.task_deps
            assert multi.joins == single.joins
            assert multi.anti_task_deps == single.anti_task_deps

    def test_empty_target_set(self, program):
        from repro.parallel.taskgraph import (LiveSource,
                                              extract_task_graphs)

        assert extract_task_graphs(LiveSource(program), []) == {}
