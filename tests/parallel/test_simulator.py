"""Schedule simulator unit tests and invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.simulator import FutureSimulator
from repro.parallel.taskgraph import TaskGraph, TaskNode


def graph_of(durations, serial=None, deps=(), joins=None,
             anti_deps=(), anti_joins=None):
    tasks = []
    clock = 0
    serial = serial if serial is not None else [0] * (len(durations) + 1)
    segments = []
    for k, dur in enumerate(durations):
        clock += serial[k]
        tasks.append(TaskNode(k, clock, clock + dur))
        clock += dur
    clock += serial[len(durations)]
    return TaskGraph(
        target_pc=0,
        total_time=clock,
        tasks=tasks,
        serial=list(serial),
        task_deps=set(deps),
        joins={k: set(v) for k, v in (joins or {}).items()},
        anti_task_deps=set(anti_deps),
        anti_joins={k: set(v) for k, v in (anti_joins or {}).items()},
    )


class TestBasicSchedules:
    def test_single_worker_is_sequential(self):
        graph = graph_of([100, 100, 100])
        result = FutureSimulator(1).schedule(graph)
        assert result.makespan == 300
        assert result.speedup == pytest.approx(1.0)

    def test_independent_tasks_scale(self):
        graph = graph_of([100] * 8)
        result = FutureSimulator(4).schedule(graph)
        assert result.makespan == 200
        assert result.speedup == pytest.approx(4.0)

    def test_chain_gives_no_speedup(self):
        graph = graph_of([100] * 8,
                         deps=[(k, k + 1) for k in range(7)])
        result = FutureSimulator(4).schedule(graph)
        assert result.makespan == 800

    def test_serial_prologue_bounds_speedup(self):
        # Amdahl: 400 serial + 400 parallelizable on 4 workers.
        graph = graph_of([100] * 4, serial=[400, 0, 0, 0, 0])
        result = FutureSimulator(4).schedule(graph)
        assert result.makespan == 500
        assert result.speedup == pytest.approx(800 / 500)

    def test_join_stalls_main_thread(self):
        # The epilogue joins on task 1: both tasks run concurrently while
        # the main thread blocks at the claim point.
        graph = graph_of([100, 100], joins={2: {1}})
        result = FutureSimulator(2).schedule(graph)
        assert result.makespan == 100
        assert result.join_stall == 100
        graph = graph_of([100, 100], serial=[0, 0, 50], joins={2: {1}})
        result = FutureSimulator(2).schedule(graph)
        assert result.makespan == 150

    def test_mid_serial_join(self):
        # Segment 1 (before task 1) must wait for task 0.
        graph = graph_of([100, 100], joins={1: {0}})
        result = FutureSimulator(2).schedule(graph)
        assert result.makespan == 200

    def test_anti_deps_only_without_privatization(self):
        graph = graph_of([100] * 4,
                         anti_deps=[(k, k + 1) for k in range(3)])
        with_priv = FutureSimulator(4, privatize=True).schedule(graph)
        without = FutureSimulator(4, privatize=False).schedule(graph)
        assert with_priv.makespan == 100
        assert without.makespan == 400

    def test_spawn_overhead_charged_to_main(self):
        graph = graph_of([100] * 4)
        cheap = FutureSimulator(4, spawn_overhead=0).schedule(graph)
        costly = FutureSimulator(4, spawn_overhead=10).schedule(graph)
        assert costly.makespan >= cheap.makespan + 10

    def test_empty_graph(self):
        graph = graph_of([], serial=[500])
        result = FutureSimulator(4).schedule(graph)
        assert result.makespan == 500

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            FutureSimulator(0)

    def test_sweep(self):
        graph = graph_of([100] * 8)
        results = FutureSimulator(1).sweep(graph, [1, 2, 4])
        assert results[1].makespan >= results[2].makespan >= \
            results[4].makespan


durations = st.lists(st.integers(1, 200), min_size=1, max_size=16)


class TestScheduleInvariants:
    @settings(max_examples=80, deadline=None)
    @given(durations, st.integers(1, 8))
    def test_makespan_bounds(self, durs, workers):
        graph = graph_of(durs)
        result = FutureSimulator(workers).schedule(graph)
        total = sum(durs)
        assert result.makespan <= total  # never slower than sequential
        # Cannot beat the perfect distribution or the longest task.
        lower = max(max(durs), -(-total // workers))
        assert result.makespan >= lower

    @settings(max_examples=60, deadline=None)
    @given(durations)
    def test_monotone_in_workers(self, durs):
        graph = graph_of(durs)
        previous = None
        for workers in (1, 2, 4, 8):
            result = FutureSimulator(workers).schedule(graph)
            if previous is not None:
                assert result.makespan <= previous
            previous = result.makespan

    @settings(max_examples=60, deadline=None)
    @given(durations, st.data())
    def test_dependences_respected(self, durs, data):
        deps = set()
        if len(durs) >= 2:
            pair_count = data.draw(st.integers(0, min(6, len(durs) - 1)))
            for _ in range(pair_count):
                j = data.draw(st.integers(1, len(durs) - 1))
                i = data.draw(st.integers(0, j - 1))
                deps.add((i, j))
        graph = graph_of(durs, deps=deps)
        result = FutureSimulator(3).schedule(graph)
        for i, j in deps:
            assert result.task_start[j] >= result.task_finish[i]

    @settings(max_examples=40, deadline=None)
    @given(durations)
    def test_full_serialization_with_chain(self, durs):
        deps = {(k, k + 1) for k in range(len(durs) - 1)}
        graph = graph_of(durs, deps=deps)
        result = FutureSimulator(4).schedule(graph)
        assert result.makespan == sum(durs)
