"""Futures simulation over the newer construct kinds: goto-built
loops and heap-carried workloads."""

import pytest

from repro.ir import compile_source
from repro.parallel import estimate_speedup

GOTO_LOOP = """int results[8];
int work(int seed) {
    int acc = seed;
    int i;
    for (i = 0; i < 120; i++) { acc = (acc * 31 + i) % 10007; }
    return acc;
}
int main() {
    int t = 0;
    again:
    results[t] = work(t);
    t++;
    if (t < 8) { goto again; }
    return 0;
}
"""

HEAP_PIPELINE = """int results[8];
int checksum;
int process(int *p, int n) {
    int acc = 0;
    int i;
    for (i = 0; i < n; i++) {
        p[i] = (p[i] * p[i] + 13) % 10007;
        acc = (acc + p[i]) % 10007;
    }
    return acc;
}
int main() {
    int pkt;
    for (pkt = 0; pkt < 8; pkt++) {
        int *p = malloc(16);
        int i;
        for (i = 0; i < 16; i++) { p[i] = pkt * 16 + i; }
        results[pkt] = process(p, 16);
        checksum = (checksum + results[pkt]) % 65521;
        free(p);
    }
    return checksum;
}
"""

SERIAL_HEAP = """int out;
int main() {
    int *acc = malloc(1);
    acc[0] = 1;
    int i;
    for (i = 0; i < 12; i++) {
        int *next = malloc(1);
        next[0] = (acc[0] * 31 + i) % 10007;
        free(acc);
        acc = next;
    }
    out = acc[0];
    free(acc);
    return out;
}
"""


def line_of(source: str, marker: str) -> int:
    return next(i for i, text in enumerate(source.splitlines(), start=1)
                if marker in text)


class TestGotoLoopSimulation:
    def test_goto_loop_parallelizes(self):
        """A hand-rolled goto loop is a natural loop in the CFG, so its
        iterations become simulation tasks like any loop's.

        The shape is bottom-tested (do-while-like): the first body pass
        runs before the predicate ever executes, so rule 4 creates
        N - 1 = 7 iteration instances for 8 body passes — the first
        pass belongs to the enclosing construct.
        """
        program = compile_source(GOTO_LOOP)
        line = line_of(GOTO_LOOP, "if (t < 8)")
        result = estimate_speedup(program=program, line=line, workers=4)
        assert len(result.graph.tasks) == 7
        assert result.speedup > 2.0

    def test_worker_monotonicity(self):
        program = compile_source(GOTO_LOOP)
        line = line_of(GOTO_LOOP, "if (t < 8)")
        speedups = [
            estimate_speedup(program=program, line=line, workers=k).speedup
            for k in (1, 2, 4)
        ]
        assert speedups[0] <= speedups[1] + 1e-9
        assert speedups[1] <= speedups[2] + 1e-9
        assert speedups[0] == pytest.approx(1.0, abs=0.05)


class TestHeapWorkloadSimulation:
    def test_independent_packets_parallelize_with_privatization(self):
        program = compile_source(HEAP_PIPELINE)
        line = line_of(HEAP_PIPELINE, "for (pkt = 0")
        result = estimate_speedup(program=program, line=line, workers=4,
                                  private_vars=("checksum",))
        assert result.speedup > 2.0

    def test_serial_heap_chain_does_not_parallelize(self):
        """Each iteration reads the block the previous one wrote: the
        RAW chain through the heap must serialize the schedule."""
        program = compile_source(SERIAL_HEAP)
        line = line_of(SERIAL_HEAP, "for (i = 0; i < 12")
        result = estimate_speedup(program=program, line=line, workers=4)
        assert result.speedup < 1.3
