"""CLI: the info verb, --sample/--format flags, and the exit-2
contract on truncated or corrupt traces (no tracebacks, one line)."""

from __future__ import annotations

import pytest

from repro.cli import main

PROG = """
int a[32];
int main() {
    int s = 0;
    for (int i = 0; i < 30; i++) {
        a[i % 32] = i;
        s += a[(i + 1) % 32];
    }
    print(s);
    return 0;
}
"""


@pytest.fixture
def prog_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(PROG)
    return str(path)


@pytest.fixture
def trace_file(prog_file, tmp_path):
    out = str(tmp_path / "prog.trace")
    assert main(["record", prog_file, "-o", out]) == 0
    return out


class TestInfoVerb:
    def test_info_prints_header_and_counts(self, trace_file, capsys):
        assert main(["info", trace_file]) == 0
        out = capsys.readouterr().out
        assert "format:" in out and "v2" in out
        assert "digest:     sha256:" in out
        assert "sampling:   full" in out
        assert "read=" in out and "write=" in out and "finish=1" in out
        assert "compressed" in out

    def test_info_v1_trace(self, prog_file, tmp_path, capsys):
        out_path = str(tmp_path / "v1.trace")
        assert main(["record", prog_file, "-o", out_path,
                     "--format", "1"]) == 0
        capsys.readouterr()
        assert main(["info", out_path]) == 0
        out = capsys.readouterr().out
        assert "v1" in out
        assert "uncompressed" in out

    def test_info_sampled_trace(self, prog_file, tmp_path, capsys):
        out_path = str(tmp_path / "s.trace")
        assert main(["record", prog_file, "-o", out_path,
                     "--sample", "interval:5"]) == 0
        capsys.readouterr()
        assert main(["info", out_path]) == 0
        assert "sampling:   interval:5" in capsys.readouterr().out

    def test_info_missing_file_exit2(self, capsys):
        assert main(["info", "/nonexistent/x.trace"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1


class TestRecordSampleFlags:
    def test_record_reports_sampling(self, prog_file, tmp_path, capsys):
        out_path = str(tmp_path / "s.trace")
        assert main(["record", prog_file, "-o", out_path,
                     "--sample", "burst:10/50"]) == 0
        out = capsys.readouterr().out
        assert "sampled burst:10/50" in out
        assert "format v2" in out

    def test_record_bad_spec_exit2(self, prog_file, tmp_path, capsys):
        assert main(["record", prog_file, "-o",
                     str(tmp_path / "x.trace"),
                     "--sample", "interval:banana"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "interval" in err

    def test_sampled_trace_replays(self, prog_file, tmp_path, capsys):
        out_path = str(tmp_path / "s.trace")
        assert main(["record", prog_file, "-o", out_path,
                     "--sample", "interval:5"]) == 0
        assert main(["replay", out_path,
                     "--analysis", "dep,counts"]) == 0
        out = capsys.readouterr().out
        assert "lower-confidence" in out

    def test_analyze_sample_flag(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--analysis", "dep",
                     "--sample", "interval:5", "--json"]) == 0
        out = capsys.readouterr().out
        assert '"sampled": "interval:5"' in out


class TestCorruptTraceExit2:
    """Satellite contract: truncated/corrupt traces surface as one-line
    exit-2 errors from every verb, never struct/EOF tracebacks."""

    def _one_line_error(self, capsys):
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1
        return err

    @pytest.mark.parametrize("verb", ["replay", "info"])
    def test_truncated_mid_stream(self, verb, trace_file, tmp_path,
                                  capsys):
        import os

        blob = open(trace_file, "rb").read()
        bad = tmp_path / "cut.trace"
        bad.write_bytes(blob[:os.path.getsize(trace_file) // 2])
        assert main([verb, str(bad)]) == 2
        self._one_line_error(capsys)

    @pytest.mark.parametrize("verb", ["replay", "info"])
    def test_truncated_header(self, verb, trace_file, tmp_path, capsys):
        blob = open(trace_file, "rb").read()
        bad = tmp_path / "hdr.trace"
        bad.write_bytes(blob[:10])
        assert main([verb, str(bad)]) == 2
        self._one_line_error(capsys)

    @pytest.mark.parametrize("verb", ["replay", "info"])
    def test_garbage_file(self, verb, tmp_path, capsys):
        bad = tmp_path / "junk.trace"
        bad.write_bytes(b"this is not a trace at all" * 10)
        assert main([verb, str(bad)]) == 2
        err = self._one_line_error(capsys)
        assert "magic" in err

    def test_info_tolerates_unknown_event_type(self, trace_file,
                                               tmp_path, capsys):
        """info reports what is in the file; a corrupt type byte must
        not crash it with a KeyError (replay rightly rejects it)."""
        from repro.trace.codec import BLOCK_HEADER, BLOCK_HEADER_SIZE
        import zlib

        from repro.trace.reader import TraceReader

        blob = bytearray(open(trace_file, "rb").read())
        with TraceReader(trace_file) as reader:
            start = reader._events_start
        comp_len, raw_len = BLOCK_HEADER.unpack(
            bytes(blob[start:start + BLOCK_HEADER_SIZE]))
        raw = bytearray(zlib.decompress(
            bytes(blob[start + BLOCK_HEADER_SIZE:
                       start + BLOCK_HEADER_SIZE + comp_len])))
        raw[0] = 0x42  # first record's type byte
        comp = zlib.compress(bytes(raw), 6)
        bad = tmp_path / "badtype.trace"
        bad.write_bytes(bytes(blob[:start])
                        + BLOCK_HEADER.pack(len(comp), len(raw)) + comp
                        + bytes(blob[start + BLOCK_HEADER_SIZE
                                     + comp_len:]))
        assert main(["info", str(bad)]) == 0
        assert "type66=" in capsys.readouterr().out

    def test_bench_sampling_unknown_workload_exit2(self, capsys):
        assert main(["bench-sampling", "--workloads", "nosuch",
                     "--scale", "0.1"]) == 2
        err = self._one_line_error(capsys)
        assert "unknown workload" in err

    def test_bench_trace_unknown_workload_exit2(self, capsys):
        assert main(["bench-trace", "--workloads", "nosuch",
                     "--scale", "0.1"]) == 2
        err = self._one_line_error(capsys)
        assert "unknown workload" in err


class TestBenchTraceVerb:
    def test_columnar_only_writes_artifact_and_checks_parity(
            self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_trace.json"
        assert main(["bench-trace", "--workloads", "gzip",
                     "--scale", "0.25", "--repeats", "1",
                     "--columnar-only", "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert "columnar replay core:" in captured.out
        assert "parity: batch == scalar" in captured.out
        data = json.loads(out.read_text())
        assert data["bench"] == "trace_columnar_vs_scalar"
        assert data["rows"][0]["name"] == "gzip"
        assert data["rows"][0]["events"] > 0

    def test_skip_parity_skips_the_check(self, capsys, tmp_path):
        out = tmp_path / "BENCH_trace.json"
        assert main(["bench-trace", "--workloads", "aes",
                     "--scale", "0.25", "--repeats", "1",
                     "--columnar-only", "--skip-parity",
                     "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert "parity" not in captured.out
