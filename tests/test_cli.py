"""CLI smoke tests (argument wiring; heavy paths are covered by the
bench/workload suites)."""

import pytest

from repro.cli import build_parser, main

HELLO = """
int main() {
    int s = 0;
    for (int i = 0; i < 10; i++) {
        s += i;
    }
    print(s);
    return 0;
}
"""


@pytest.fixture
def minic_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(HELLO)
    return str(path)


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["profile", "x.mc", "--top", "3"])
        assert args.command == "profile"
        assert args.top == 3

    def test_run(self, minic_file, capsys):
        assert main(["run", minic_file]) == 0
        out = capsys.readouterr().out
        assert "45" in out

    def test_profile(self, minic_file, capsys):
        assert main(["profile", minic_file, "--top", "4"]) == 0
        out = capsys.readouterr().out
        assert "Method main" in out
        assert "Advisor" in out

    def test_profile_raw_only(self, minic_file, capsys):
        assert main(["profile", minic_file, "--raw-only",
                     "--no-advice"]) == 0
        out = capsys.readouterr().out
        assert "Advisor" not in out

    def test_speedup(self, minic_file, capsys):
        assert main(["speedup", minic_file, "--line", "4",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "T_seq" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "delaunay" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
