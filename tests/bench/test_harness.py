"""Bench-harness tests: the table/figure drivers produce well-formed
artifacts at small scale (full-scale numbers live in benchmarks/)."""

import pytest

from repro.bench import (fig6_data, gzip_profile_listing, render_fig6,
                         render_table3, render_table4, render_table5,
                         table3_rows, table4_rows, table5_rows)

SCALE = 0.5


@pytest.fixture(scope="module")
def t3_rows():
    return table3_rows(SCALE, names=["gzip", "aes"])


class TestTable3:
    def test_columns_populated(self, t3_rows):
        for row in t3_rows:
            assert row.loc > 30
            assert row.static > 5
            assert row.dynamic > 100
            assert row.prof_seconds > row.orig_seconds > 0
            assert row.slowdown > 1

    def test_render(self, t3_rows):
        text = render_table3(t3_rows)
        assert "Table III" in text
        assert "gzip" in text and "aes" in text
        assert "Slowdown" in text


class TestTable4:
    @pytest.fixture(scope="class")
    def rows(self):
        return table4_rows(SCALE)

    def test_all_locations_present(self, rows):
        names = [r.name for r in rows]
        assert names.count("bzip2") == 2
        assert names.count("par2") == 2
        assert "ogg" in names and "aes" in names

    def test_render(self, rows):
        text = render_table4(rows)
        assert "Table IV" in text
        assert "paper RAW" in text


class TestTable5:
    @pytest.fixture(scope="class")
    def rows(self):
        return table5_rows(scale=1.0, workers=4)

    def test_speedups_positive(self, rows):
        for row in rows:
            assert row.speedup >= 1.0
            assert row.t_par <= row.t_seq

    def test_render(self, rows):
        text = render_table5(rows)
        assert "Table V" in text
        assert "Speedup" in text


class TestFigures:
    def test_gzip_listing(self):
        report, text = gzip_profile_listing(SCALE)
        assert "Fig 2 style profile" in text
        assert "flush_block" in text
        assert "Fig 3 style profile" in text

    def test_fig6_panels(self):
        panels = fig6_data(SCALE, top=6)
        assert set(panels) == {"a", "b", "c", "d", "delaunay"}
        text = render_fig6(panels)
        assert "Fig 6(a) gzip" in text
        assert "197.parser" in text
        for panel in panels.values():
            for row in panel.rows:
                assert 0.0 <= row.norm_size <= 1.0
                assert 0.0 <= row.norm_violations <= 1.0


class TestTraceBench:
    """Shape of the replay-vs-rerun artifact (timings not asserted)."""

    def test_trace_bench_artifact(self, tmp_path):
        import json

        from repro.bench.harness import trace_bench

        out = tmp_path / "BENCH_trace.json"
        data = trace_bench(names=["gzip"], scale=0.25,
                           analyses=("dep", "locality", "hot"),
                           out_path=str(out), repeats=1)
        assert data["rows"][0]["name"] == "gzip"
        assert data["rows"][0]["events"] > 0
        for key in ("live_seconds", "record_seconds", "replay_seconds",
                    "speedup"):
            assert data["total"][key] > 0
        on_disk = json.loads(out.read_text())
        assert on_disk["rows"][0]["analyses"] == ["dep", "locality", "hot"]
        assert on_disk["bench"] == "trace_replay_vs_rerun"
        # The columnar batch-vs-scalar replay-core section rides along.
        assert on_disk["columnar"]["bench"] == "trace_columnar_vs_scalar"
        assert on_disk["columnar"]["rows"][0]["name"] == "gzip"

    def test_trace_decode_bench_artifact(self, tmp_path):
        import json

        from repro.bench.harness import trace_decode_bench

        out = tmp_path / "BENCH_decode.json"
        data = trace_decode_bench(names=["gzip"], scale=0.25, repeats=1,
                                  out_path=str(out))
        row = data["rows"][0]
        assert row["name"] == "gzip"
        assert row["events"] > 0
        assert row["scalar_seconds"] > 0
        assert row["batch_seconds"] > 0
        assert data["total"]["speedup"] > 0
        on_disk = json.loads(out.read_text())
        assert on_disk["bench"] == "trace_columnar_vs_scalar"
        assert on_disk["analyses"] == ["counts"]
