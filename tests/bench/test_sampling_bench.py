"""The sampling benchmark: artifact shape and target scoring."""

from __future__ import annotations

import json

from repro.bench.sampling import (TARGET_MAX_ERROR, TARGET_MIN_REDUCTION,
                                  sampling_bench)


def test_artifact_shape_and_scoring(tmp_path):
    out = tmp_path / "BENCH_sampling.json"
    data = sampling_bench(names=["gzip"], scale=0.1,
                          policies=("interval:10", "burst:100/500"),
                          out_path=str(out))
    # Written artifact round-trips as JSON and matches the return value.
    assert json.loads(out.read_text()) == json.loads(json.dumps(data))

    assert data["bench"] == "sampling_tradeoff"
    (row,) = data["rows"]
    assert row["name"] == "gzip"
    assert row["v1_bytes"] > row["v2_bytes"] > 0
    assert row["format_reduction"] > 1.0
    for spec in ("interval:10", "burst:100/500"):
        cell = row["policies"][spec]
        assert 0 < cell["trace_bytes"] < row["v1_bytes"]
        assert cell["reduction_vs_v1"] > 1.0
        assert cell["events"] < row["events"]
        assert cell["hot_count_error"] >= 0.0
        assert cell["locality_hit_rate_error"] >= 0.0
        assert 0.0 <= cell["dep_missed_fraction"] <= 1.0
        assert cell["replay_speedup"] > 0.0
        assert any("min-distance" in flag for flag in cell["flags"])

    summary = data["summary"]
    assert summary["target"] == {"min_reduction": TARGET_MIN_REDUCTION,
                                 "max_error": TARGET_MAX_ERROR}
    for spec in ("interval:10", "burst:100/500"):
        scored = summary["policies"][spec]
        assert set(scored) == {"workloads_meeting_target",
                               "meets_target_on_3"}


def test_committed_artifact_meets_acceptance():
    """The checked-in BENCH_sampling.json must show >=5x reduction at
    <=5% hot/locality error on >=3 Table III workloads for at least
    one policy (the PR's acceptance criterion, kept green)."""
    import os

    path = os.path.join(os.path.dirname(__file__), "..", "..",
                        "BENCH_sampling.json")
    with open(path) as handle:
        data = json.load(handle)
    assert any(scored["meets_target_on_3"]
               for scored in data["summary"]["policies"].values())
    # And the v2 format alone is a >=5x lossless win nearly everywhere.
    assert data["summary"]["format_v2_full_fidelity"]["meets_target_on_3"]
