"""Screen statically, then confirm dynamically with confidence tiers.

Run with::

    python examples/static_screen.py

The program below has two hot loops: a blur over disjoint rows
(parallelizable) and a prefix-sum whose accumulator chains every
iteration (not). The static pass ranks them *before any execution* —
no trace, no run — and the what-if advisor then confirms the ranking
from a real profile, labelling each verdict with the static/dynamic
agreement tier (``must`` / ``may`` / ``dynamic-only``).
"""

from repro.api import Session

SOURCE = """
int rows[96];
int blurred[96];
int prefix[96];
int total;

int main() {
    int i;
    for (i = 0; i < 96; i = i + 1) {
        rows[i] = (i * 37 + 11) % 255;
    }

    /* Disjoint reads/writes per iteration: statically independent. */
    for (i = 1; i < 95; i = i + 1) {
        blurred[i] = (rows[i - 1] + rows[i] + rows[i + 1]) / 3;
    }

    /* The running total chains iterations: statically MUST_DEP. */
    total = 0;
    for (i = 0; i < 96; i = i + 1) {
        total = total + blurred[i];
        prefix[i] = total;
    }
    return total % 256;
}
"""


def main() -> None:
    with Session() as session:
        # -- zero-execution screening --------------------------------
        static = session.static_report(SOURCE)
        print("Static screen (no execution):")
        for row in static.screen_rows():
            if row["kind"] != "loop":
                continue
            deps = ", ".join(row["must_raw"] + row["may_raw"]) or "none"
            print(f"  line {row['line']:3d} [{row['verdict']:>11}] "
                  f"loop-carried RAW: {deps}")
        assert session.stats.records == 0, "screening must not execute"

        # -- dynamic confirmation with confidence tiers --------------
        print("\nWhat-if advisor (one recorded run):")
        result = session.advise(SOURCE, workers=(2, 4, 8))
        for entry in result.data["candidates"]:
            best = entry["best"]
            print(f"  {entry['name']:<16} {entry['verdict']:<9} "
                  f"confidence={entry['confidence']:<4} "
                  f"best x{best['speedup']:.2f} @{best['workers']}w")
        for entry in result.data["skipped"]:
            print(f"  {entry['name']:<16} {entry['verdict']:<9} "
                  f"confidence={entry['confidence']:<4} "
                  f"skipped: {entry['reason'][:40]}...")


if __name__ == "__main__":
    main()
