"""Quickstart: profile a small program and read the report.

Run with::

    python examples/quickstart.py

The program below has one obviously parallelizable loop (independent
image tiles) and one that is not (a running histogram equalization
whose state chains across rows). Alchemist tells them apart without
being told where to look.
"""

from repro import Advisor, Alchemist
from repro.core.profile_data import DepKind

SOURCE = """
int tiles[64];
int histogram[32];
int cursor;

int render_tile(int seed) {
    int acc = seed * 17 + 1;
    for (int p = 0; p < 120; p++) {
        acc = (acc * 1103515245 + 12345) % 2147483648;
        acc = acc % 100000 + p;
    }
    return acc % 65536;
}

int main() {
    // Parallelizable: every tile is independent.
    for (int t = 0; t < 16; t++) {
        tiles[t] = render_tile(t);
    }
    // Not parallelizable as-is: each row reads the running cursor the
    // previous row wrote.
    for (int r = 0; r < 16; r++) {
        cursor = (cursor + tiles[r]) % 32;
        histogram[cursor] += 1;
    }
    int sum = 0;
    for (int t = 0; t < 16; t++) {
        sum = (sum + tiles[t]) % 1000003;
    }
    print(sum);
    return 0;
}
"""


def main() -> None:
    report = Alchemist().profile(SOURCE)

    print("=== Ranked constructs (largest first) ===")
    for view in report.top_constructs(6):
        violating = view.violating_count(DepKind.RAW)
        print(f"{view.describe():60s} violating RAW edges: {violating}")

    print()
    print("=== Dependence edges of the hottest loop ===")
    hottest_loop = next(v for v in report.constructs() if v.static.is_loop)
    for line in hottest_loop.edge_lines(
            (DepKind.RAW, DepKind.WAW, DepKind.WAR), limit=8):
        print(line)

    print()
    print("=== Advisor ===")
    for rec in Advisor(report).recommend(4):
        print(rec.describe())

    print()
    print(report.describe_run())


if __name__ == "__main__":
    main()
