"""Transformation guidance: the paper's §II walk-through as annotations.

Run with::

    python examples/transform_guidance.py

The paper's gzip discussion reads a profile table and derives, by
hand: spawn ``flush_block`` as a future from the in-loop call site,
join before the conflicting reads (the return value and ``outcnt``),
privatize ``flag_buf``, and hoist the ``last_flags`` reset into the
continuation. This example produces that guidance mechanically, as an
annotated listing — first for the parallelizable candidate, then for a
deliberately serial loop to show the BLOCKED verdict.
"""

from repro import Alchemist
from repro.core.annotate import annotate

GZIP_MINI = """int window[64];
int flag_buf[64];
int outcnt;
int last_flags;
int outbuf[128];

int flush_block(int buf[], int len) {
    flag_buf[last_flags] = 1;
    int k = 0;
    int bits = 0;
    while (k < len) {
        bits = (bits * 31 + buf[k]) % 251;
        outbuf[outcnt] = bits;
        outcnt++;
        k++;
    }
    last_flags = 0;
    return len;
}

int main() {
    int processed = 0;
    int i = 0;
    while (i < 48) {
        window[i % 64] = i * 7 % 251;
        if (i % 16 == 15) {
            processed += flush_block(window, 16);
        }
        flag_buf[i % 16] = i & 1;
        last_flags++;
        i++;
    }
    print(processed, outcnt);
    return 0;
}
"""

SERIAL = """int state;
int history[64];
int step(int x) {
    state = (state * 31 + x) % 10007;
    return state;
}
int main() {
    int i;
    for (i = 0; i < 40; i++) {
        history[i] = step(i);
    }
    return state;
}
"""


def line_of(source: str, marker: str) -> int:
    return next(i for i, text in enumerate(source.splitlines(), start=1)
                if marker in text)


def main() -> None:
    print("================ flush_block: TRANSFORM then spawn ===========")
    report = Alchemist().profile(GZIP_MINI)
    listing = annotate(report, GZIP_MINI,
                       line=line_of(GZIP_MINI, "int flush_block"))
    print(listing.render())

    print()
    print("================ serial chain: BLOCKED =======================")
    report = Alchemist().profile(SERIAL)
    listing = annotate(report, SERIAL,
                       line=line_of(SERIAL, "for (i = 0; i < 40"))
    print(listing.render())


if __name__ == "__main__":
    main()
