"""Register a custom analysis and run it live, from a trace, and
alongside the builtins — all through one Session.

Run with::

    PYTHONPATH=src python examples/custom_analysis.py

This is the worked example from the README's "Architecture &
extending" section: an :class:`~repro.analyses.Analysis` is an
ordinary tracer plus a ``finish`` method, and registering it makes it
available to ``Session.analyze``, ``alchemist analyze/replay``, the
batch driver, and the registry-parametrized parity test — with no
other wiring.
"""

from repro import Session
from repro.analyses import Analysis, AnalysisResult, register

SOURCE = """
int ring[64];
int checksum;

int mix(int v) {
    checksum = (checksum * 31 + v) % 65521;
    return checksum;
}

int main() {
    for (int round = 0; round < 6; round++) {
        for (int i = 0; i < 64; i++) {
            ring[i] = mix(ring[(i + 9) % 64] + round);
        }
    }
    print(checksum);
    return 0;
}
"""


@register
class BranchBias(Analysis):
    """How often does each branch site go to each target?"""

    name = "branch-bias"
    description = "Per-site branch target histogram"

    def __init__(self) -> None:
        self.sites: dict[int, dict[int, int]] = {}

    def on_branch(self, pc: int, target_block: int,
                  timestamp: int) -> None:
        taken = self.sites.setdefault(pc, {})
        taken[target_block] = taken.get(target_block, 0) + 1

    def finish(self, ctx) -> AnalysisResult:
        rows = {}
        for pc in sorted(self.sites):
            line = ctx.program.loc_of(pc)[0]
            for target, count in sorted(self.sites[pc].items()):
                rows[f"line{line}->block{target}"] = count
        text = "\n".join(["Branch bias:"] +
                         [f"  {key}: x{count}"
                          for key, count in rows.items()])
        return AnalysisResult(analysis=self.name, data={"sites": rows},
                              text=text)


def main() -> None:
    with Session() as session:
        # One call: the program is recorded once, and the custom
        # analysis shares the replay pass with two builtins.
        report = session.analyze(SOURCE,
                                 ["dep", "locality", "branch-bias"])
        print(report.to_text())
        print()
        print(f"recordings made: {session.stats.records}, "
              f"replay passes: {session.stats.replay_passes}")

        # The same instance semantics hold live — and the structured
        # output is identical (the registry parity test asserts this
        # for every registered analysis).
        live = session.analyze(SOURCE, ["branch-bias"], mode="live")
        assert (live["branch-bias"].to_dict()
                == report["branch-bias"].to_dict())
        print("live run matches the replayed recording, bit for bit")


if __name__ == "__main__":
    main()
