"""End-to-end parallelization workflow on the AES-CTR port (paper
§IV-B.2): profile, read the advisor, apply the transformations, and
simulate the resulting speedup.

Run with::

    python examples/parallelize_aes.py
"""

from repro.core.advisor import Advisor
from repro.core.alchemist import Alchemist
from repro.core.profile_data import DepKind
from repro.ir import compile_source
from repro.parallel import estimate_speedup
from repro.workloads import get


def main() -> None:
    workload = get("aes")
    target, line = workload.primary_target()
    program = compile_source(workload.source)

    print("=== Step 1: profile the sequential program ===")
    report = Alchemist().profile(program=program)
    view = report.views_at_line(line)[0]
    print(f"CTR loop: {view.describe()}")
    for kind in (DepKind.RAW, DepKind.WAW, DepKind.WAR):
        edges = view.violating(kind)
        names = sorted({e.var_hint.split('[')[0] for e in edges})
        print(f"  violating {kind.value}: {len(edges)} "
              f"(on {', '.join(names) if names else '-'})")

    print()
    print("=== Step 2: what the advisor says ===")
    rec = Advisor(report).assess(view)
    print(rec.describe())

    print()
    print("=== Step 3: simulate the transformed program ===")
    naive = estimate_speedup(program=program, line=line, workers=4,
                             privatize=False, private_vars=(),
                             auto_induction=True)
    print(f"no transformations : x{naive.speedup:.2f}")
    privatized = estimate_speedup(program=program, line=line, workers=4,
                                  privatize=True,
                                  private_vars=target.private_vars)
    print(f"privatized ivec/ks : x{privatized.speedup:.2f} "
          f"(paper measured 1.63x on 4 cores)")

    print()
    print("=== Step 4: scaling ===")
    for workers in (1, 2, 4, 8):
        result = estimate_speedup(program=program, line=line,
                                  workers=workers,
                                  private_vars=target.private_vars)
        bar = "#" * round(result.speedup * 8)
        print(f"{workers:2d} workers: x{result.speedup:4.2f} {bar}")
    print("(sublinear: the serial input-read fraction bounds the "
          "speedup, as in the paper)")


if __name__ == "__main__":
    main()
