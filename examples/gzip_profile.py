"""Reproduce the paper's running example (Fig. 2 and Fig. 3) on the
bundled gzip port.

Run with::

    python examples/gzip_profile.py

Shows the profile rows the paper walks through in §II: the
return-value dependence with Tdep=1, the ``outcnt`` RAW/WAW pair right
after the call, the ``flag_buf`` WAR that privatization fixes, and the
``input_len`` self-dependence whose distance dwarfs the construct
duration — then follows the Fig. 6(a)/6(b) candidate-selection flow.
"""

from repro.bench import fig6_data, render_fig6
from repro.core.alchemist import Alchemist
from repro.core.profile_data import DepKind
from repro.workloads import get


def main() -> None:
    workload = get("gzip")
    report = Alchemist().profile(workload.source)

    print("=== Fig. 2: RAW dependence profile ===")
    print(report.to_text(top=5, max_edges=6, kinds=(DepKind.RAW,)))

    print()
    print("=== Fig. 3: WAW/WAR profile of flush_block ===")
    fb = next(v for v in report.constructs() if v.name == "flush_block")
    print(fb.describe())
    for line in fb.edge_lines((DepKind.WAW, DepKind.WAR), limit=10):
        print(line)

    print()
    print("=== The paper's §II observations, checked live ===")
    retval = [e for e in fb.edges(DepKind.RAW)
              if e.var_hint.startswith("retval(")]
    print(f"return-value dependence min Tdep: "
          f"{min(e.min_tdep for e in retval)} (paper: 1)")
    waw_bases = {e.var_hint.split('[')[0] for e in fb.edges(DepKind.WAW)}
    print(f"WAW on outcnt: {'outcnt' in waw_bases} (paper: yes); "
          f"WAW on outbuf: {'outbuf' in waw_bases} (paper: no — "
          "disjoint writes)")

    print()
    print("=== Fig. 6(a)/(b): candidate selection ===")
    panels = fig6_data(scale=1.0, top=8)
    print(render_fig6({"a": panels["a"], "b": panels["b"]}))


if __name__ == "__main__":
    main()
