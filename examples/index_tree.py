"""Visualize the execution index tree (the paper's Fig. 4).

Run with::

    python examples/index_tree.py

The paper's Fig. 4(c) shows why dependence profiling needs more than
calling contexts: the nesting structure of *loop iterations* matters.
This example runs a miniature of that figure — nested loops inside a
procedure — records the full index tree, and prints it. Iterations of
each loop appear as siblings (rule 4 of the instrumentation rules), so
a dependence between two iterations is visibly a *cross-boundary*
dependence for the loop while remaining internal to the procedure.
"""

from repro import record_index_tree
from repro.core.profile_data import DepKind

SOURCE = """
int g;

void D() {
    int i;
    int j;
    for (i = 0; i < 2; i++) {          // the paper's loop "2"
        g += i;
        for (j = 0; j < 2; j++) {      // the paper's loop "4"
            g += j;                    //   (iterations become siblings)
        }
    }
}

int main() {
    D();
    return g;
}
"""


def main() -> None:
    tree, tracer = record_index_tree(SOURCE)

    print("=== Execution index tree (Fig. 4 style) ===")
    print(tree.render())

    print()
    print("=== Execution indices ===")
    inner = tree.instances_of(
        next(n.name for _, n in tree.root.walk()
             if n.name.startswith("loop(D:9")))
    first_inner = tree.index_of_first(inner[0].name)
    print(f"index of the first inner-loop iteration: {first_inner}")
    print("(the paper's bracket notation: the path from the root)")

    print()
    print("=== The profile collected by the same run ===")
    for prof in sorted(tracer.store.profiles.values(),
                       key=lambda p: -p.total_duration):
        raw = len([e for e in prof.edges.values()
                   if e.kind is DepKind.RAW])
        print(f"{prof.static.name:16s} Ttotal={prof.total_duration:<6d} "
              f"inst={prof.instances:<3d} RAW edges={raw}")


if __name__ == "__main__":
    main()
