"""Using the substrate directly: write your own tracer.

Run with::

    python examples/custom_tracer.py

Alchemist is one client of the interpreter's tracing interface; this
example builds another — a tiny memory-access heat map plus an
execution-index sampler — to show how the pieces compose (useful when
prototyping a different profiler on the same substrate).
"""

from collections import Counter

from repro.analysis.constructs import ConstructTable
from repro.core.tracer import AlchemistTracer
from repro.ir import compile_source
from repro.runtime.interpreter import Interpreter
from repro.runtime.tracing import Tracer

SOURCE = """
int grid[128];
void smooth(int rounds) {
    for (int r = 0; r < rounds; r++) {
        for (int i = 1; i < 127; i++) {
            grid[i] = (grid[i - 1] + grid[i] * 2 + grid[i + 1]) / 4;
        }
    }
}
int main() {
    for (int i = 0; i < 128; i++) {
        grid[i] = (i * 37) % 100;
    }
    smooth(6);
    print(grid[64]);
    return 0;
}
"""


class HeatMapTracer(Tracer):
    """Counts reads/writes per symbol."""

    def __init__(self) -> None:
        self.reads: Counter = Counter()
        self.writes: Counter = Counter()
        self._memory = None

    def on_start(self, program, memory) -> None:
        self._memory = memory

    def on_read(self, addr, pc, timestamp) -> None:
        self.reads[self._memory.addr_to_name(addr).split("[")[0]] += 1

    def on_write(self, addr, pc, timestamp) -> None:
        self.writes[self._memory.addr_to_name(addr).split("[")[0]] += 1


class IndexSampler(AlchemistTracer):
    """Samples the execution index every N instructions — the paper's
    Fig. 4 index paths, live."""

    def __init__(self, table, every=2000):
        super().__init__(table)
        self.every = every
        self.samples: list[str] = []

    def on_block_enter(self, block_id, timestamp):
        super().on_block_enter(block_id, timestamp)
        if timestamp // self.every != (timestamp - 1) // self.every:
            self.samples.append(" > ".join(self.stack.index_of_top()))


def main() -> None:
    program = compile_source(SOURCE)

    heat = HeatMapTracer()
    Interpreter(program, heat).run()
    print("=== Memory heat map ===")
    for name, count in heat.reads.most_common(5):
        print(f"reads  {name:12s} {count:6d}")
    for name, count in heat.writes.most_common(5):
        print(f"writes {name:12s} {count:6d}")

    sampler = IndexSampler(ConstructTable(program))
    Interpreter(program, sampler).run()
    print()
    print("=== Execution index samples (Fig. 4 paths) ===")
    for sample in sampler.samples[:8]:
        print(f"[{sample}]")


if __name__ == "__main__":
    main()
