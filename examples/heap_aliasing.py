"""Heap aliasing: why dynamic dependence profiling beats static analysis.

Run with::

    python examples/heap_aliasing.py

The paper's introduction argues that data parallelism hides from static
analysis because "different memory blocks at runtime usually are mapped
to the same abstract locations at compile time". This example builds
that exact situation: a pipeline where every stage passes ``malloc``'d
buffers through the *same* pointer-typed code. A compiler sees one
abstract heap location; Alchemist observes the concrete addresses and
proves the per-packet work independent — while catching the one real
dependence (the shared checksum accumulator).
"""

from repro import Advisor, Alchemist
from repro.core.profile_data import DepKind

SOURCE = """
int checksum;      // the one genuinely shared cell
int results[8];

int *make_packet(int seed, int n) {
    int *p = malloc(n + 1);
    p[0] = n;
    int i;
    for (i = 1; i <= n; i++) {
        p[i] = (seed * 31 + i * 7) % 251;
    }
    return p;
}

int process_packet(int *p) {
    int n = p[0];
    int acc = 0;
    int i;
    for (i = 1; i <= n; i++) {
        p[i] = (p[i] * p[i] + 13) % 10007;   // in-place transform
        acc = (acc + p[i]) % 10007;
    }
    checksum = (checksum + acc) % 65521;     // shared accumulator
    return acc;
}

int main() {
    int pkt;
    for (pkt = 0; pkt < 8; pkt++) {          // candidate loop
        int *p = make_packet(pkt, 24);
        results[pkt] = process_packet(p);
        free(p);
    }
    int total = 0;
    for (pkt = 0; pkt < 8; pkt++) {
        total = (total + results[pkt]) % 65521;
    }
    print(total, checksum);
    return 0;
}
"""


def main() -> None:
    report = Alchemist().profile(SOURCE)

    print("=== Ranked constructs ===")
    for view in report.top_constructs(5):
        print(f"{view.describe():58s} "
              f"violating RAW: {view.violating_count(DepKind.RAW)}")

    packet_loop = next(v for v in report.constructs()
                       if v.static.is_loop and v.fn_name == "main")

    print()
    print("=== Violating edges of the packet loop ===")
    conflict_vars = set()
    for kind in (DepKind.RAW, DepKind.WAW, DepKind.WAR):
        for edge in packet_loop.violating(kind):
            conflict_vars.add(edge.var_hint.split("[")[0])
            print(f"  {kind.value}: Tdep={edge.min_tdep:<8d} "
                  f"on {edge.var_hint}")

    print()
    heap_conflicts = [v for v in conflict_vars if v.startswith("heap#")]
    print(f"conflicting variables: {sorted(conflict_vars)}")
    if not heap_conflicts:
        print("-> no conflicts through heap blocks: every packet buffer "
              "is independent, even though")
        print("   all packets flow through one static pointer location. "
              "Only `checksum` needs")
        print("   a per-thread copy (reduction) to parallelize this loop.")

    print()
    print("=== Advisor ===")
    for rec in Advisor(report).recommend(3):
        print(rec.describe())


if __name__ == "__main__":
    main()
