"""The negative result (paper §IV-B.1): Delaunay mesh refinement.

Run with::

    python examples/delaunay_negative.py

The paper uses Delaunay refinement as the control: a program known to
be extremely hard to parallelize with futures. Its profile shows the
computation-heavy constructs saturated with violating RAW dependences,
and the futures simulation confirms there is nothing to win. (Kulkarni
et al.'s optimistic Galois approach is what it actually takes.)
"""

from repro.core.advisor import Advisor, Verdict
from repro.core.alchemist import Alchemist
from repro.core.profile_data import DepKind
from repro.ir import compile_source
from repro.parallel import estimate_speedup
from repro.workloads import get


def main() -> None:
    workload = get("delaunay")
    program = compile_source(workload.source)
    report = Alchemist().profile(program=program)

    print("=== Violating RAW dependences per hot construct ===")
    for view in report.top_constructs(6):
        count = view.violating_count(DepKind.RAW)
        bar = "!" * min(count, 60)
        print(f"{view.name:28s} size={view.size_fraction():.2f} "
              f"violating RAW={count:3d} {bar}")

    print()
    print("=== Advisor verdicts ===")
    recs = Advisor(report).recommend(6)
    for rec in recs:
        print(f"{rec.view.name:28s} -> {rec.verdict.value}")
    blocked = sum(1 for r in recs if r.verdict is Verdict.BLOCKED)
    print(f"({blocked}/{len(recs)} hot constructs blocked)")

    print()
    print("=== Futures simulation of the refinement loop ===")
    _, line = workload.primary_target()
    for workers in (2, 4, 8):
        result = estimate_speedup(program=program, line=line,
                                  workers=workers)
        print(f"{workers} workers: x{result.speedup:.2f} "
              f"({len(result.graph.task_deps)} cross-iteration "
              "dependences)")
    print("No speedup at any width: every split reads the worklist and "
          "mesh state its predecessors wrote.")


if __name__ == "__main__":
    main()
