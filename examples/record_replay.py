"""Record once, analyze many times.

Run with::

    PYTHONPATH=src python examples/record_replay.py

A live ``Alchemist().profile`` couples the dependence analysis to an
instrumented execution; every further question (locality? hot data?)
would cost another full run. Here the program runs *once* under the
trace recorder, and the resulting file answers all three questions —
with a dependence profile bit-identical to the live one.
"""

import tempfile

from repro import Alchemist, record_source, replay_trace

SOURCE = """
int ring[128];
int checksum;

int mix(int v) {
    checksum = (checksum * 31 + v) % 65521;
    return checksum;
}

int main() {
    for (int round = 0; round < 12; round++) {
        for (int i = 0; i < 128; i++) {
            ring[i] = mix(ring[(i + 17) % 128] + round);
        }
    }
    print(checksum);
    return 0;
}
"""


def main() -> None:
    with tempfile.NamedTemporaryFile(suffix=".trace") as handle:
        recorded = record_source(SOURCE, handle.name)
        print(f"recorded {recorded.events} events "
              f"({recorded.trace_bytes} bytes) in "
              f"{recorded.wall_seconds * 1000:.1f}ms\n")

        outcome = replay_trace(handle.name, ("dep", "locality", "hot"))

    # 1. The replayed dependence profile == a live profile.
    live = Alchemist().profile(SOURCE)
    replayed = outcome.results["dep"]
    live_edges = {pc: sorted((h, t, k.value) for h, t, k in p.edges)
                  for pc, p in live.store.profiles.items()}
    replay_edges = {pc: sorted((h, t, k.value) for h, t, k in p.edges)
                    for pc, p in replayed.store.profiles.items()}
    assert live_edges == replay_edges
    print("replayed dependence profile matches the live run:")
    for view in replayed.top_constructs(3):
        print(f"  {view.name}: Tdur={view.tdur}, inst={view.instances}")

    # 2. Two more analyses for free — no re-execution.
    print()
    print(outcome.consumers[1].describe(outcome.results["locality"]))
    print()
    for row in outcome.results["hot"][:5]:
        print(f"  hot: {row.name:20s} {row.total} accesses")


if __name__ == "__main__":
    main()
