"""Command-line interface: ``alchemist`` / ``python -m repro``.

Subcommands
-----------
``run FILE``
    Execute a MiniC program (uninstrumented).
``analyze FILE --analysis a,b,c [--json]``
    The unified front door: run any set of registered analyses over a
    program through one :class:`~repro.api.Session` — the program is
    recorded at most once and the trace fans out to every analysis in
    a single replay pass (``--live`` executes instead of replaying).
``analyses``
    List every registered analysis with its description and options.
``profile FILE``
    Thin alias for a live ``dep`` analysis: ranked construct listing
    (Fig. 2/3 style) plus the advisor's recommendations.
``speedup FILE --line N``
    Simulate parallelizing the construct at line N as futures.
``advise FILE [--workers LIST] [--top N] [--json] [--jobs N]``
    The what-if advisor: record the program once, then — entirely from
    the replayed trace — rank the advisor's candidate constructs by
    predicted futures speedup across a worker-count sweep, listing the
    privatizations each one needs and why blocked constructs are
    skipped (a Table V reproduction as one command).
``tree FILE``
    Record and render the execution index tree (paper Fig. 4).
``annotate FILE --line N``
    Render the transformation guidance for the construct at line N as
    an annotated source listing (spawn/join/privatize markers).
``record FILE -o x.trace [--sample interval:100] [--format 2]``
    Execute once under the trace recorder; every interpreter event is
    streamed into a compact self-contained trace file (v2
    block-compressed by default). ``--sample`` gates the memory-event
    stream through a sampling policy for much smaller traces.
``replay x.trace --analysis dep,locality,hot``
    Thin alias for replaying an existing trace file through registered
    analyses — no re-execution. v1 and v2 traces replay alike.
``info x.trace``
    Inspect a trace without replaying it: format version, header
    provenance (digest, sampling policy), event counts by type,
    checkpoint seams (embedded, sidecar-cached, or none), and
    compressed vs. uncompressed sizes.
``stats m.json``
    Render a ``--metrics`` artifact: the hierarchical span tree with
    wall/CPU timings, counters, gauges, and derived rates
    (events/second, cache hit ratios, pool utilization).
``batch``
    Record and replay many workloads concurrently (multiprocessing);
    analyses resolve through the registry; ``--bench`` also writes the
    BENCH_trace.json replay-vs-rerun speedup artifact.
``bench-sampling``
    Measure the sampling/format trade-off across workloads — trace
    size reduction and record speedup vs per-analysis accuracy — and
    write the BENCH_sampling.json artifact.
``bench-advise``
    Run the what-if advisor over the Table III workloads, verify the
    trace-grounded predictions against fresh live simulations, and
    write the BENCH_advisor.json artifact.
``workloads``
    List the bundled benchmark ports.
``experiments``
    Regenerate every table and figure of the paper.

Every verb that takes a ``FILE`` reports a missing/unreadable path as
a one-line ``error: ...`` on stderr with exit code 2 (handled centrally
in :func:`main`), never a traceback.

Stream discipline: results (reports, JSON payloads) go to **stdout**;
progress lines, structured logs, and error diagnostics go to
**stderr**. The instrumented verbs (``analyze``, ``record``,
``replay``, ``batch``, ``advise``) share the observability flags
``--metrics FILE``, ``--log-level LEVEL``, ``-q/--quiet`` and
``-v/--verbose``; ``ALCHEMIST_LOG`` sets the log level everywhere.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.advisor import Advisor
from repro.core.alchemist import ProfileOptions
from repro.core.profile_data import DepKind
from repro.runtime.interpreter import run_source
from repro.telemetry import LOG_LEVELS
from repro.version import __version__


class CliError(Exception):
    """An expected user-facing failure: exit 2 with one line."""


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _add_observability(parser: argparse.ArgumentParser) -> None:
    """Attach the shared observability flags to an instrumented verb."""
    group = parser.add_argument_group("observability")
    group.add_argument("--metrics", default=None, metavar="FILE",
                       help="write this run's span tree and counters "
                            "as a schema-versioned JSON artifact "
                            "(render with `alchemist stats FILE`)")
    group.add_argument("--log-level", default=None, choices=LOG_LEVELS,
                       metavar="LEVEL",
                       help="structured JSON logs on stderr at LEVEL "
                            f"({'/'.join(LOG_LEVELS)}; default: "
                            "$ALCHEMIST_LOG or warning)")
    volume = group.add_mutually_exclusive_group()
    volume.add_argument("-q", "--quiet", action="store_true",
                        help="suppress progress lines on stderr "
                             "(results on stdout are unaffected) and "
                             "log at error")
    volume.add_argument("-v", "--verbose", action="store_true",
                        help="shorthand for --log-level info")


def _observability(args: argparse.Namespace) -> None:
    """Configure logging and build the run's Telemetry (or None).

    Level precedence: ``--log-level`` beats ``-v``/``-q`` beats
    ``$ALCHEMIST_LOG`` beats the ``warning`` default. Runs for every
    verb — the environment variable works even where the flags don't
    exist — so ``getattr`` defaults cover the uninstrumented verbs.
    """
    from repro.telemetry import Telemetry, configure_logging

    if getattr(args, "log_level", None):
        configure_logging(level=args.log_level)
    elif getattr(args, "verbose", False):
        configure_logging(level="info")
    elif getattr(args, "quiet", False):
        configure_logging(level="error")
    else:
        configure_logging()
    args.telemetry = (Telemetry() if getattr(args, "metrics", None)
                      else None)


def _progress(args: argparse.Namespace, message: str = "") -> None:
    """Progress/summary lines: stderr, silenced by ``--quiet``.
    Results (reports, JSON payloads) never come through here."""
    if not getattr(args, "quiet", False):
        print(message, file=sys.stderr)


def _publish_metrics(args: argparse.Namespace,
                     argv: list[str] | None, code: int) -> None:
    """Atomically publish the ``--metrics`` artifact after the verb."""
    tm = getattr(args, "telemetry", None)
    if tm is None or not getattr(args, "metrics", None):
        return
    from repro.telemetry import metrics_payload
    from repro.util import atomic_write_json

    payload = metrics_payload(
        tm, command=args.command,
        argv=list(argv) if argv is not None else sys.argv[1:],
        exit_code=code)
    try:
        atomic_write_json(args.metrics, payload, sort_keys=True)
    except OSError as exc:
        # The verb's own result already went out; an unwritable metrics
        # path must not retroactively turn it into a failure.
        print(f"error: --metrics {args.metrics}: {exc}", file=sys.stderr)


def _profile_options(args: argparse.Namespace) -> ProfileOptions:
    try:
        return ProfileOptions(pool_size=args.pool_size,
                              track_war_waw=not args.raw_only)
    except ValueError as exc:
        raise CliError(str(exc)) from None


def _cmd_run(args: argparse.Namespace) -> int:
    value, interp = run_source(_read(args.file), stdout=sys.stdout)
    print(f"[exit {value}; {interp.time} instructions]", file=sys.stderr)
    return value


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.api import Session

    # dep-only flags ride as per-analysis options so Session's central
    # stray-options check rejects them when 'dep' was not requested.
    options = None
    if args.pool_size is not None or args.raw_only:
        options = {"dep": {
            "pool_size": (args.pool_size if args.pool_size is not None
                          else 4096),
            "track_war_waw": not args.raw_only,
        }}
    try:
        session_options = ProfileOptions(sample=args.sample,
                                         jobs=args.jobs)
    except ValueError as exc:
        raise CliError(str(exc)) from None
    source = _read(args.file)
    with Session(session_options, telemetry=args.telemetry) as session:
        report = session.analyze(source, args.analysis,
                                 filename=args.file,
                                 mode="live" if args.live else "auto",
                                 options=options)
    if args.json:
        print(report.to_json())
        return 0
    replayed = sum(1 for m in report.modes.values() if m == "replay")
    live = len(report.modes) - replayed
    parts = []
    if replayed:
        parts.append(f"replayed 1 recording through {replayed}")
    if live:
        parts.append(f"ran live for {live}")
    _progress(args, f"analyzed {args.file}: {' + '.join(parts)} "
                    f"analysis(es) in {report.wall_seconds:.3f}s")
    print(report.to_text())
    return 0


def _cmd_analyses(args: argparse.Namespace) -> int:
    from repro.analyses import registry

    for name, cls in sorted(registry().items()):
        tag = "  [live only]" if cls.requires_live else ""
        print(f"{name:10s} {cls.description}{tag}")
        for spec in cls.options:
            print(f"{'':10s}   {spec.name}={spec.default!r} "
                  f"({spec.type.__name__}) {spec.help}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.api import Session

    options = _profile_options(args)
    with Session(options) as session:
        outcome = session.analyze(_read(args.file), ("dep",),
                                  filename=args.file, mode="live")
    result = outcome["dep"]
    report = result.payload
    kinds = (DepKind.RAW,) if args.raw_only else (
        DepKind.RAW, DepKind.WAW, DepKind.WAR)
    print(report.to_text(top=args.top, max_edges=args.edges, kinds=kinds))
    # Keep profile/analyze/replay dependence output byte-identical:
    # the static fusion lines live in the analysis text, not the report.
    lines = result.text.splitlines()
    starts = [i for i, line in enumerate(lines)
              if line.startswith("Static fusion:")]
    if starts:
        print("\n".join(lines[starts[0]:]))
    print()
    print(report.describe_run())
    if not args.no_advice:
        from repro.staticdep import report_for

        print()
        print("Advisor recommendations:")
        advisor = Advisor(report, static_report=report_for(report.program))
        for rec in advisor.recommend(args.top):
            print(rec.describe())
    return 0


def _parse_private(spec: str) -> tuple[str, ...]:
    """``--private "a, b"`` -> ``("a", "b")``: names are stripped, and
    empty or duplicate entries are rejected instead of silently
    producing a variable that never matches."""
    if not spec or not spec.strip():
        return ()
    names: list[str] = []
    for part in spec.split(","):
        name = part.strip()
        if not name:
            raise CliError(
                f"--private: empty variable name in {spec!r}")
        if name in names:
            raise CliError(
                f"--private: duplicate variable {name!r}")
        names.append(name)
    return tuple(names)


def _cmd_speedup(args: argparse.Namespace) -> int:
    from repro.parallel.estimator import estimate_speedup

    private = _parse_private(args.private or "")
    try:
        result = estimate_speedup(
            _read(args.file), line=args.line, workers=args.workers,
            privatize=not args.no_privatize, private_vars=private)
    except ValueError as exc:  # EstimatorError included
        raise CliError(str(exc)) from None
    print(result.describe())
    graph = result.graph
    print(f"tasks={len(graph.tasks)} serial={graph.serial_time} "
          f"parallel_fraction={graph.parallel_fraction():.2f} "
          f"task_deps={len(graph.task_deps)}")
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.analyses.whatif import parse_worker_counts
    from repro.api import Session

    try:
        parse_worker_counts(args.workers)  # fail fast with exit 2
    except ValueError as exc:
        raise CliError(f"--workers: {exc}") from None
    if args.top < 1:
        raise CliError(f"--top must be >= 1, got {args.top}")
    if args.jobs is not None and args.jobs < 0:
        raise CliError(f"--jobs must be >= 0, got {args.jobs}")
    source = _read(args.file)
    with Session(telemetry=args.telemetry) as session:
        result = session.advise(source, filename=args.file,
                                workers=args.workers, top=args.top,
                                jobs=args.jobs)
    if args.json:
        print(result.to_json())
        return 0
    print(result.to_text())
    return 0


def _cmd_screen(args: argparse.Namespace) -> int:
    import json

    from repro.api import Session

    if args.top < 1:
        raise CliError(f"--top must be >= 1, got {args.top}")
    source = _read(args.file)
    with Session(telemetry=args.telemetry) as session:
        static = session.static_report(source, filename=args.file)
    payload = static.to_dict()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(_render_screen(payload, args.top))
    return 0


def _render_screen(payload: dict, top: int) -> str:
    """Text ranking for ``alchemist screen`` (best candidates first)."""
    tally = payload["verdicts"]
    lines = [f"Static screen: {payload['static_constructs']} "
             f"construct(s) — {tally['independent']} independent, "
             f"{tally['may-dep']} may-dep, {tally['must-dep']} must-dep "
             "(zero execution)"]
    rows = payload["rows"]
    for rank, row in enumerate(rows[:top], start=1):
        lines.append(f"{rank:2d}. {row['name']} (line {row['line']}, "
                     f"{row['kind']}) [{row['verdict']}] "
                     f"weight {row['weight']}")
        if row["must_raw"]:
            lines.append("      must RAW: " + ", ".join(row["must_raw"]))
        if row["may_raw"]:
            lines.append("      may RAW: " + ", ".join(row["may_raw"]))
    if len(rows) > top:
        lines.append(f"      ... and {len(rows) - top} more "
                     "(raise --top to see them)")
    return "\n".join(lines)


def _cmd_annotate(args: argparse.Namespace) -> int:
    from repro.core.annotate import annotate_text

    try:
        print(annotate_text(_read(args.file), line=args.line,
                            context=args.context))
    except ValueError as exc:  # unknown line: a user error, not a bug
        raise CliError(str(exc)) from None
    return 0


def _cmd_tree(args: argparse.Namespace) -> int:
    from repro.core.treedump import record_index_tree

    tree, _tracer = record_index_tree(_read(args.file),
                                      max_nodes=args.max_nodes)
    print(tree.render(max_depth=args.depth,
                      max_children=args.children))
    print(f"[{tree.node_count} construct instances"
          f"{'; truncated' if tree.truncated else ''}]",
          file=sys.stderr)
    return 0


def _parse_sample(spec: str | None):
    from repro.sampling.policies import parse_sample_spec

    try:
        return parse_sample_spec(spec)
    except ValueError as exc:
        raise CliError(str(exc)) from None


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.trace import record_source

    out = args.out or (args.file + ".trace")
    policy = _parse_sample(args.sample)
    if args.checkpoints is not None and args.checkpoints < 0:
        raise CliError(f"--checkpoints must be >= 0, "
                       f"got {args.checkpoints}")
    result = record_source(_read(args.file), out, filename=args.file,
                           version=args.format, sampling=policy,
                           checkpoint_interval=args.checkpoints,
                           telemetry=args.telemetry)
    sampled = ("" if policy.is_full
               else f", sampled {policy.spec}")
    seams = (f", {result.checkpoints} checkpoint(s)"
             if result.checkpoints else "")
    # The "recorded ... -> path" line is the verb's result: stdout.
    print(f"recorded {result.events} events ({result.trace_bytes} bytes, "
          f"{result.final_time} instructions, format v{result.version}"
          f"{sampled}{seams}) -> {result.path}")
    _progress(args, f"[exit {result.exit_value}; "
                    f"{result.wall_seconds:.3f}s]")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    import os

    from repro.trace.events import (EVENT_NAMES, RECORD_SIZE,
                                    TRACE_VERSION_V1)
    from repro.trace.reader import TraceReader

    with TraceReader(args.trace) as reader:
        header = reader.header
        counts: dict[int, int] = {}
        for etype, _a, _b, _t in reader.events():
            counts[etype] = counts.get(etype, 0) + 1
        footer = reader.footer
        decoder = reader.decoder
    total = sum(counts.values())
    file_bytes = os.path.getsize(args.trace)
    v1_equivalent = total * RECORD_SIZE
    formats = {1: "v1 (fixed 13-byte records)",
               2: "v2 (delta/varint records, zlib blocks)"}
    print(f"trace:      {args.trace}")
    print(f"format:     {formats.get(reader.version, reader.version)}")
    print(f"program:    {header.filename}")
    print(f"digest:     sha256:{header.digest}")
    print(f"sampling:   {header.sampling}")
    print(f"functions:  {len(header.functions)} "
          f"({', '.join(header.functions[:8])}"
          f"{', ...' if len(header.functions) > 8 else ''})")
    # .get: a corrupt type byte still prints (replay would reject it,
    # but info's job is to show what is in the file, without crashing).
    by_name = ", ".join(
        f"{EVENT_NAMES.get(etype, f'type{etype}')}={counts[etype]}"
        for etype in sorted(counts))
    print(f"events:     {total} ({by_name})")
    # Seam reporting is uniform across formats and origins: v2 traces
    # embed checkpoints in the footer, v1 (or --checkpoints 0) traces
    # may carry a scan-built .ckpt sidecar, and a trace can have
    # neither — info always says which case it found.
    from repro.trace.shards import SIDECAR_SUFFIX, probe_sidecar

    if footer.checkpoints:
        count = len(footer.checkpoints)
        origin = "embedded in the trace footer"
    else:
        side = probe_sidecar(args.trace)
        count = side["checkpoints"] if side else 0
        origin = f"cached in the {SIDECAR_SUFFIX} sidecar"
    if count:
        stride = total // (count + 1)
        print(f"checkpoints:{count} shard seam(s), ~{stride} events "
              f"apart, {origin} (parallel replay ready)")
    else:
        print(f"checkpoints:none (no embedded seams, no valid "
              f"{SIDECAR_SUFFIX} sidecar; parallel replay scans and "
              f"caches one on first use)")
    print(f"time:       {footer.final_time} instructions")
    print(f"exit:       {footer.exit_value}; "
          f"{len(footer.output)} output line(s)")
    if reader.version == TRACE_VERSION_V1:
        print(f"size:       {file_bytes} B on disk; event records "
              f"{v1_equivalent} B uncompressed")
    else:
        ratio = (v1_equivalent / decoder.compressed_bytes
                 if decoder.compressed_bytes else float("nan"))
        print(f"size:       {file_bytes} B on disk; events "
              f"{decoder.compressed_bytes} B compressed in "
              f"{decoder.blocks} block(s), {decoder.raw_bytes} B "
              f"unpacked, {v1_equivalent} B v1-equivalent "
              f"({ratio:.1f}x smaller)")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    if args.parallel or args.jobs is not None:
        from repro.trace.parallel import parallel_replay

        if args.jobs is not None and args.jobs < 0:
            raise CliError(f"--jobs must be >= 0, got {args.jobs}")
        outcome = parallel_replay(args.trace, args.analysis,
                                  jobs=args.jobs,
                                  telemetry=args.telemetry)
        ctx = outcome.context
        if outcome.mode == "parallel":
            how = (f"across {outcome.jobs} worker(s), "
                   f"{len(outcome.plan.segments)} segment(s), "
                   f"{outcome.plan.source} checkpoints")
        else:
            how = f"serially ({outcome.fallback_reason})"
        _progress(args, f"replayed {ctx.events} events "
                        f"({ctx.final_time} instructions) through "
                        f"{len(outcome.reports)} analysis(es) {how} "
                        f"in {ctx.wall_seconds:.3f}s")
        print(outcome.describe())
        return 0
    from repro.trace import replay_trace

    outcome = replay_trace(args.trace, args.analysis,
                           telemetry=args.telemetry)
    ctx = outcome.context
    _progress(args, f"replayed {ctx.events} events ({ctx.final_time} "
                    f"instructions) through {len(outcome.consumers)} "
                    f"analysis(es) in {ctx.wall_seconds:.3f}s")
    print(outcome.describe())
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    import json

    from repro.analyses import get_analysis, parse_spec
    from repro.trace.batch import record_replay_many
    from repro.workloads import names as workload_names

    names = ([n.strip() for n in args.workloads.split(",") if n.strip()]
             if args.workloads else workload_names())
    analyses = tuple(parse_spec(args.analysis))
    for name in analyses:  # fail fast through the registry
        get_analysis(name)
    policy = _parse_sample(args.sample)
    report = record_replay_many(names, args.out_dir, analyses=analyses,
                                workers=args.workers, scale=args.scale,
                                sampling=policy.spec,
                                version=args.format,
                                telemetry=args.telemetry)
    print(report.describe())
    failed = report.failures()
    if args.bench:
        from repro.bench.harness import trace_bench

        # Bench only what actually recorded; a bad workload name or a
        # failed record is already reported above, not a crash here.
        recorded = [r.job.name for r in report.records if r.ok]
        if recorded:
            data = trace_bench(recorded, scale=args.scale,
                               analyses=analyses,
                               out_path=args.bench_out,
                               version=args.format)
            total = data["total"]
            _progress(
                args,
                f"replay-vs-rerun: {total['live_seconds']:.3f}s live "
                f"vs {total['record_seconds'] + total['replay_seconds']:.3f}s "
                f"record+replay -> {total['speedup']:.2f}x "
                f"(written to {args.bench_out})")
        else:
            print("\nreplay-vs-rerun: skipped (no workload recorded "
                  "successfully)", file=sys.stderr)
    if args.json:
        payload = {
            name: {
                phase: {"ok": result.ok, "seconds": result.seconds,
                        "payload": result.payload, "error": result.error}
                for phase, result in phases.items()
            }
            for name, phases in report.by_name().items()
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    if failed:
        names = ", ".join(
            f"{r.job.kind} {r.job.trace_path if r.job.kind == 'replay' else r.job.name}"
            for r in failed)
        print(f"error: {len(failed)} batch job(s) failed: {names}",
              file=sys.stderr)
    return 1 if failed else 0


def _cmd_bench_sampling(args: argparse.Namespace) -> int:
    from repro.bench.sampling import DEFAULT_POLICIES, sampling_bench
    from repro.workloads import names as workload_names

    known = workload_names()
    names = ([n.strip() for n in args.workloads.split(",") if n.strip()]
             if args.workloads else known)
    unknown = [n for n in names if n not in known]
    if unknown:  # fail fast with the exit-2 contract, not a KeyError
        raise CliError(f"unknown workload(s): {', '.join(unknown)} "
                       f"(known: {', '.join(known)})")
    policies = tuple(p.strip() for p in args.policies.split(",")
                     if p.strip()) or DEFAULT_POLICIES
    for spec in policies:  # fail fast on bad specs
        _parse_sample(spec)
    data = sampling_bench(names=names, scale=args.scale,
                          policies=policies, out_path=args.out,
                          repeats=args.repeats)
    for row in data["rows"]:
        print(f"{row['name']:12s} v1={row['v1_bytes']:>9} B  "
              f"v2={row['v2_bytes']:>9} B "
              f"({row['format_reduction']:.1f}x)")
        def fmt(value: float | None, spec: str = ".3f") -> str:
            return "n/a" if value is None else format(value, spec)

        for spec, pol in row["policies"].items():
            print(f"{'':12s}   {spec:18s} {pol['trace_bytes']:>9} B "
                  f"({pol['reduction_vs_v1']:.1f}x vs v1, "
                  f"record {pol['record_speedup']:.2f}x, "
                  f"replay {pol['replay_speedup']:.2f}x) "
                  f"hot_err={fmt(pol['hot_count_error'])} "
                  f"loc_err={fmt(pol['locality_hit_rate_error'])} "
                  f"dep_missed={fmt(pol['dep_missed_fraction'])}")
    summary = data["summary"]
    print(f"\ntarget (>= {summary['target']['min_reduction']}x smaller, "
          f"<= {summary['target']['max_error']:.0%} hot/locality error):")
    for spec, met in summary["policies"].items():
        print(f"  {spec:18s} met on {len(met['workloads_meeting_target'])}"
              f"/{len(data['rows'])} workload(s): "
              f"{', '.join(met['workloads_meeting_target']) or '-'}")
    print(f"written to {args.out}", file=sys.stderr)
    return 0


def _cmd_bench_parallel(args: argparse.Namespace) -> int:
    from repro.bench.harness import parallel_bench
    from repro.workloads import names as workload_names

    known = workload_names()
    names = ([n.strip() for n in args.workloads.split(",") if n.strip()]
             if args.workloads else known)
    unknown = [n for n in names if n not in known]
    if unknown:
        raise CliError(f"unknown workload(s): {', '.join(unknown)} "
                       f"(known: {', '.join(known)})")
    if args.jobs <= 0:
        raise CliError(f"--jobs must be positive, got {args.jobs}")
    data = parallel_bench(names=names, scale=args.scale,
                          jobs=args.jobs, repeats=args.repeats,
                          out_path=args.out)
    for row in data["rows"]:
        flag = "" if row["results_identical_to_serial"] else \
            "  RESULTS DIVERGED"
        print(f"{row['name']:12s} {row['events']:>9} events  "
              f"serial {row['serial_seconds']:.2f}s  "
              f"{row['segments']:>2} segment(s)  "
              f"speedup@{data['jobs']} {row['speedup']:.2f}x "
              f"(wall {row['measured_wall_speedup']:.2f}x on "
              f"{data['bench_cpus']} cpu(s)){flag}")
    summary = data["summary"]
    print(f"\n>=2x at {data['jobs']} workers on "
          f"{len(summary['workloads_at_2x'])}/{len(data['rows'])} "
          f"workload(s): {', '.join(summary['workloads_at_2x']) or '-'}")
    print(f"written to {args.out}", file=sys.stderr)
    if not summary["all_results_identical"]:
        print("error: parallel results diverged from serial",
              file=sys.stderr)
        return 1
    return 0


def _cmd_bench_trace(args: argparse.Namespace) -> int:
    from repro.bench.harness import trace_bench, trace_decode_bench
    from repro.workloads import names as workload_names

    known = workload_names()
    names = ([n.strip() for n in args.workloads.split(",") if n.strip()]
             if args.workloads else known)
    unknown = [n for n in names if n not in known]
    if unknown:
        raise CliError(f"unknown workload(s): {', '.join(unknown)} "
                       f"(known: {', '.join(known)})")
    if args.columnar_only:
        columnar = trace_decode_bench(names, scale=args.scale,
                                      repeats=args.repeats,
                                      out_path=args.out)
    else:
        data = trace_bench(names=names, scale=args.scale,
                           repeats=args.repeats, out_path=args.out)
        columnar = data["columnar"]
    for row in columnar["rows"]:
        print(f"{row['name']:12s} scalar {row['scalar_seconds']:.3f}s  "
              f"batch {row['batch_seconds']:.3f}s  "
              f"speedup {row['speedup']:.2f}x  "
              f"({row['events']} events)")
    total = columnar["total"]
    print(f"\ncolumnar replay core: {total['speedup']:.2f}x over scalar "
          f"decode on {len(columnar['rows'])} workload(s)")
    print(f"written to {args.out}", file=sys.stderr)
    if not args.skip_parity:
        diverged = _trace_parity_check(names, min(args.scale, 0.5))
        if diverged:
            print(f"error: batch replay diverged from scalar on: "
                  f"{', '.join(diverged)}", file=sys.stderr)
            return 1
        print(f"parity: batch == scalar for every registered analysis "
              f"on {len(names)} workload(s)")
    return 0


def _trace_parity_check(names: list[str], scale: float) -> list[str]:
    """Workloads where columnar replay disagrees with scalar replay
    for any registered analysis (should always be empty)."""
    import os
    import tempfile

    from repro.analyses import analysis_names
    from repro.trace.replay import replay_trace
    from repro.trace.writer import record_source
    from repro.workloads import get

    every = analysis_names()
    diverged = []
    for name in names:
        workload = get(name, scale)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, f"{name}.trace")
            record_source(workload.source, path, version=2)
            scalar = replay_trace(path, every, columnar=False)
            batch = replay_trace(path, every, columnar=True)
        if any(batch.reports[a].to_dict() != scalar.reports[a].to_dict()
               for a in every):
            diverged.append(name)
    return diverged


def _cmd_bench_advise(args: argparse.Namespace) -> int:
    from repro.analyses.whatif import parse_worker_counts
    from repro.bench.advisor import advisor_bench
    from repro.workloads import names as workload_names

    known = workload_names()
    names = ([n.strip() for n in args.workloads.split(",") if n.strip()]
             if args.workloads else known)
    unknown = [n for n in names if n not in known]
    if unknown:
        raise CliError(f"unknown workload(s): {', '.join(unknown)} "
                       f"(known: {', '.join(known)})")
    try:
        workers = parse_worker_counts(args.workers)
    except ValueError as exc:
        raise CliError(f"--workers: {exc}") from None
    data = advisor_bench(names=names, scale=args.scale,
                         workers=workers, out_path=args.out)
    for row in data["rows"]:
        if row["best"] is None:
            reasons = {e["verdict"] for e in row["skipped"]}
            why = ", ".join(sorted(reasons)) or "no constructs"
            print(f"{row['name']:12s} no candidate ({why})")
            continue
        best = row["best"]
        verified = ("verified" if row["verified_identical"]
                    else "MISMATCH vs live simulation")
        print(f"{row['name']:12s} {best['name']:18s} "
              f"best x{best['workers']}: {best['speedup']:.2f} "
              f"({verified})")
    summary = data["summary"]
    print(f"\ncandidates on {len(summary['with_candidates'])}"
          f"/{summary['workloads']} workload(s); "
          f"predictions verified against live simulation on "
          f"{len(summary['verified_identical'])}")
    print(f"written to {args.out}", file=sys.stderr)
    if not summary["all_verified"]:
        print("error: trace-grounded predictions diverged from live "
              "simulation", file=sys.stderr)
        return 1
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads import all_workloads, extra_workloads

    workloads = all_workloads()
    if args.extra:
        workloads += extra_workloads()
    for workload in workloads:
        targets = ", ".join(
            f"{t.fn_name}:{line}" for t, line in workload.target_lines())
        print(f"{workload.name:12s} {workload.loc:4d} LoC  "
              f"targets: {targets}")
        print(f"{'':12s} {workload.description}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.bench import (fig6_data, gzip_profile_listing,
                             render_fig6, render_table3, render_table4,
                             render_table5, table3_rows, table4_rows,
                             table5_rows)

    scale = args.scale
    print(render_table3(table3_rows(scale)))
    print()
    print(render_table4(table4_rows(scale)))
    print()
    print(render_table5(table5_rows(max(scale, 1.0))))
    print()
    _, listing = gzip_profile_listing(scale)
    print(listing)
    print()
    print(render_fig6(fig6_data(scale)))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry import (MetricsSchemaError, render_metrics,
                                 validate_metrics)

    try:
        with open(args.metrics_file) as handle:
            payload = json.load(handle)
    except ValueError as exc:
        raise CliError(
            f"{args.metrics_file}: not valid JSON ({exc})") from None
    try:
        validate_metrics(payload)
    except MetricsSchemaError as exc:
        raise CliError(f"{args.metrics_file}: {exc}") from None
    print(render_metrics(payload, top=args.top))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="alchemist",
        description="Alchemist dependence distance profiler "
                    "(CGO 2009 reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute a MiniC program")
    p_run.add_argument("file")
    p_run.set_defaults(func=_cmd_run)

    p_ana = sub.add_parser(
        "analyze", help="run any registered analyses over a program")
    p_ana.add_argument("file")
    p_ana.add_argument("--analysis", default="dep",
                       help="comma-separated registered analyses "
                            "(see `alchemist analyses`; default: dep)")
    p_ana.add_argument("--json", action="store_true",
                       help="emit the structured report as JSON")
    p_ana.add_argument("--live", action="store_true",
                       help="execute the program instead of replaying "
                            "a recording")
    p_ana.add_argument("--pool-size", type=int, default=None,
                       help="compatibility no-op (dep analysis; node "
                            "allocation is GC-backed and unbounded)")
    p_ana.add_argument("--raw-only", action="store_true",
                       help="skip WAR/WAW tracking (dep analysis)")
    p_ana.add_argument("--sample", default=None, metavar="SPEC",
                       help="record the replay trace under a sampling "
                            "policy (interval:N, burst:K/N, "
                            "reservoir:K[@SEED]); replayed results "
                            "become lower-confidence hints")
    p_ana.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="replay through N parallel workers "
                            "(0 = one per CPU; results identical to "
                            "serial; live analyses are unaffected)")
    _add_observability(p_ana)
    p_ana.set_defaults(func=_cmd_analyze)

    p_lst = sub.add_parser("analyses",
                           help="list the registered analyses")
    p_lst.set_defaults(func=_cmd_analyses)

    p_prof = sub.add_parser("profile", help="profile a MiniC program")
    p_prof.add_argument("file")
    p_prof.add_argument("--top", type=int, default=10,
                        help="constructs to list")
    p_prof.add_argument("--edges", type=int, default=8,
                        help="dependence edges per construct")
    p_prof.add_argument("--pool-size", type=int, default=4096)
    p_prof.add_argument("--raw-only", action="store_true",
                        help="skip WAR/WAW tracking")
    p_prof.add_argument("--no-advice", action="store_true")
    p_prof.set_defaults(func=_cmd_profile)

    p_speed = sub.add_parser("speedup",
                             help="simulate future-parallelization")
    p_speed.add_argument("file")
    p_speed.add_argument("--line", type=int, required=True,
                         help="source line of the construct")
    p_speed.add_argument("--workers", type=int, default=4)
    p_speed.add_argument("--private", default="",
                         help="comma-separated globals to privatize")
    p_speed.add_argument("--no-privatize", action="store_true",
                         help="keep WAR/WAW constraints")
    p_speed.set_defaults(func=_cmd_speedup)

    p_adv = sub.add_parser(
        "advise",
        help="what-if advisor: rank constructs by predicted futures "
             "speedup from a replayed trace")
    p_adv.add_argument("file")
    p_adv.add_argument("--workers", default="2,4,8,16", metavar="LIST",
                       help="comma-separated worker counts to sweep "
                            "(default: 2,4,8,16)")
    p_adv.add_argument("--top", type=int, default=8,
                       help="candidate constructs taken from the "
                            "advisor (default 8)")
    p_adv.add_argument("--json", action="store_true",
                       help="emit the ranked sweep as JSON")
    p_adv.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="processes for the task-graph extraction "
                            "pass (0 = one per CPU; results identical "
                            "to serial)")
    _add_observability(p_adv)
    p_adv.set_defaults(func=_cmd_advise)

    p_scr = sub.add_parser(
        "screen",
        help="static dependence screening: rank candidate constructs "
             "with zero execution (no trace, no run)")
    p_scr.add_argument("file")
    p_scr.add_argument("--top", type=int, default=10,
                       help="constructs shown in the text ranking "
                            "(default 10; JSON always carries all)")
    p_scr.add_argument("--json", action="store_true",
                       help="emit the full static report as JSON")
    _add_observability(p_scr)
    p_scr.set_defaults(func=_cmd_screen)

    p_ann = sub.add_parser("annotate",
                           help="annotated guidance for one construct")
    p_ann.add_argument("file")
    p_ann.add_argument("--line", type=int, required=True,
                       help="source line heading the construct")
    p_ann.add_argument("--context", type=int, default=2,
                       help="context lines around each marker")
    p_ann.set_defaults(func=_cmd_annotate)

    p_tree = sub.add_parser("tree",
                            help="render the execution index tree (Fig. 4)")
    p_tree.add_argument("file")
    p_tree.add_argument("--depth", type=int, default=None,
                        help="maximum tree depth to render")
    p_tree.add_argument("--children", type=int, default=12,
                        help="siblings shown per node")
    p_tree.add_argument("--max-nodes", type=int, default=100_000,
                        help="recording budget before truncation")
    p_tree.set_defaults(func=_cmd_tree)

    p_rec = sub.add_parser("record",
                           help="record an execution trace for replay")
    p_rec.add_argument("file")
    p_rec.add_argument("-o", "--out", default=None,
                       help="trace output path (default FILE.trace)")
    p_rec.add_argument("--sample", default=None, metavar="SPEC",
                       help="sampling policy for memory events: "
                            "interval:N, burst:K/N, reservoir:K[@SEED] "
                            "(default: full fidelity)")
    p_rec.add_argument("--format", type=int, choices=(1, 2), default=2,
                       help="trace schema version to write (default 2, "
                            "block-compressed)")
    p_rec.add_argument("--checkpoints", type=int, default=None,
                       metavar="N",
                       help="events between checkpoint shard seams for "
                            "parallel replay (v2 only; 0 disables; "
                            "default ~50k)")
    _add_observability(p_rec)
    p_rec.set_defaults(func=_cmd_record)

    p_rep = sub.add_parser("replay",
                           help="replay a recorded trace through analyses")
    p_rep.add_argument("trace")
    p_rep.add_argument("--analysis", default="dep",
                       help="comma-separated registered analyses "
                            "(default: dep)")
    p_rep.add_argument("--parallel", action="store_true",
                       help="shard the replay across worker processes "
                            "(results identical to serial; falls back "
                            "to one pass when the trace has no seams)")
    p_rep.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker count for --parallel (implies it; "
                            "0 = one per CPU)")
    _add_observability(p_rep)
    p_rep.set_defaults(func=_cmd_replay)

    p_info = sub.add_parser(
        "info", help="inspect a trace file without replaying it")
    p_info.add_argument("trace")
    p_info.set_defaults(func=_cmd_info)

    p_stats = sub.add_parser(
        "stats", help="render a --metrics artifact: span tree, "
                      "counters, derived rates")
    p_stats.add_argument("metrics_file",
                         help="JSON artifact written by --metrics")
    p_stats.add_argument("--top", type=int, default=10,
                         help="rows shown per counter table (default "
                              "10)")
    p_stats.set_defaults(func=_cmd_stats)

    p_batch = sub.add_parser(
        "batch", help="record+replay many workloads concurrently")
    p_batch.add_argument("--workloads", default="",
                         help="comma-separated workload names "
                              "(default: all Table III workloads)")
    p_batch.add_argument("--analysis", default="dep,locality,hot",
                         help="analyses every replay runs")
    p_batch.add_argument("--out-dir", default="traces",
                         help="directory for the recorded traces")
    p_batch.add_argument("--workers", type=int, default=None,
                         help="process-pool size (default: cpu count; "
                              "1 = serial)")
    p_batch.add_argument("--scale", type=float, default=0.5)
    p_batch.add_argument("--json", action="store_true",
                         help="print per-workload payloads as JSON")
    p_batch.add_argument("--bench", action="store_true",
                         help="also run the replay-vs-rerun benchmark")
    p_batch.add_argument("--bench-out", default="BENCH_trace.json",
                         help="speedup artifact path (with --bench)")
    p_batch.add_argument("--sample", default=None, metavar="SPEC",
                         help="sampling policy for the record phase "
                              "(default: full fidelity)")
    p_batch.add_argument("--format", type=int, choices=(1, 2), default=2,
                         help="trace schema version to write (default 2)")
    _add_observability(p_batch)
    p_batch.set_defaults(func=_cmd_batch)

    p_bs = sub.add_parser(
        "bench-sampling",
        help="measure trace-size/speed vs accuracy across sampling "
             "policies (writes BENCH_sampling.json)")
    p_bs.add_argument("--workloads", default="",
                      help="comma-separated workload names "
                           "(default: all Table III workloads)")
    p_bs.add_argument("--policies", default="",
                      help="comma-separated sampling specs to measure "
                           "(default: the bench's standard spectrum)")
    p_bs.add_argument("--scale", type=float, default=0.5)
    p_bs.add_argument("--repeats", type=int, default=1,
                      help="timing repetitions (minimum kept)")
    p_bs.add_argument("--out", default="BENCH_sampling.json",
                      help="artifact path")
    p_bs.set_defaults(func=_cmd_bench_sampling)

    p_bp = sub.add_parser(
        "bench-parallel",
        help="measure sharded parallel replay vs one serial pass "
             "(writes BENCH_parallel.json)")
    p_bp.add_argument("--workloads", default="",
                      help="comma-separated workload names "
                           "(default: all Table III workloads)")
    p_bp.add_argument("--scale", type=float, default=2.0)
    p_bp.add_argument("--jobs", type=int, default=4,
                      help="worker count to bench (default 4)")
    p_bp.add_argument("--repeats", type=int, default=2,
                      help="timing repetitions (minimum kept)")
    p_bp.add_argument("--out", default="BENCH_parallel.json",
                      help="artifact path")
    p_bp.set_defaults(func=_cmd_bench_parallel)

    p_bt = sub.add_parser(
        "bench-trace",
        help="replay-vs-rerun and columnar-vs-scalar replay bench "
             "(writes BENCH_trace.json)")
    p_bt.add_argument("--workloads", default="",
                      help="comma-separated workload names "
                           "(default: all Table III workloads)")
    p_bt.add_argument("--scale", type=float, default=0.5)
    p_bt.add_argument("--repeats", type=int, default=2,
                      help="timing repetitions (minimum kept)")
    p_bt.add_argument("--columnar-only", action="store_true",
                      help="skip the live-rerun baseline; bench only "
                           "the batch-vs-scalar replay core")
    p_bt.add_argument("--skip-parity", action="store_true",
                      help="skip the batch-vs-scalar result parity "
                           "check over all registered analyses")
    p_bt.add_argument("--out", default="BENCH_trace.json",
                      help="artifact path")
    p_bt.set_defaults(func=_cmd_bench_trace)

    p_ba = sub.add_parser(
        "bench-advise",
        help="what-if advisor over the Table III workloads, verified "
             "against live simulation (writes BENCH_advisor.json)")
    p_ba.add_argument("--workloads", default="",
                      help="comma-separated workload names "
                           "(default: all Table III workloads)")
    p_ba.add_argument("--workers", default="2,4,8,16", metavar="LIST",
                      help="comma-separated worker counts to sweep")
    p_ba.add_argument("--scale", type=float, default=0.5)
    p_ba.add_argument("--out", default="BENCH_advisor.json",
                      help="artifact path")
    p_ba.set_defaults(func=_cmd_bench_advise)

    p_wl = sub.add_parser("workloads", help="list bundled benchmarks")
    p_wl.add_argument("--extra", action="store_true",
                      help="include the heap-centric extra workloads")
    p_wl.set_defaults(func=_cmd_workloads)

    p_exp = sub.add_parser("experiments",
                           help="regenerate the paper's tables/figures")
    p_exp.add_argument("--scale", type=float, default=0.5)
    p_exp.set_defaults(func=_cmd_experiments)

    return parser


def _expected_errors() -> tuple[type[BaseException], ...]:
    """The user-facing failure types; imported lazily (cold path only)
    so plain verbs don't pay for the analyses/trace import chains."""
    from repro.analyses import AnalysisError
    from repro.lang.errors import CompileError
    from repro.runtime.errors import MiniCRuntimeError
    from repro.trace.events import TraceError

    return (OSError, UnicodeDecodeError, TraceError, AnalysisError,
            CompileError, MiniCRuntimeError, CliError)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _observability(args)
    try:
        code = args.func(args)
    except Exception as exc:
        # One place for every verb: bad FILE paths (missing, unreadable,
        # binary), MiniC compile and runtime errors, corrupt traces,
        # unknown analyses, and invalid options all exit 2 with a
        # single-line diagnostic instead of a traceback. Deliberately
        # NOT a bare ValueError: an unexpected ValueError is an
        # internal bug and should traceback (verbs wrap their expected
        # ones in CliError).
        if not isinstance(exc, _expected_errors()):
            raise
        print(f"error: {exc}", file=sys.stderr)
        code = 2
    # Even a failed run publishes its (partial) span tree — the
    # artifact records the exit code, so a post-mortem can see how far
    # the pipeline got. Unexpected exceptions traceback instead.
    _publish_metrics(args, argv, code)
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
