"""Source-located errors raised by the MiniC frontend."""

from __future__ import annotations


class CompileError(Exception):
    """Base class for every error produced while compiling MiniC.

    Carries a source position so tools can point at the offending code.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0,
                 filename: str = "<input>"):
        self.message = message
        self.line = line
        self.col = col
        self.filename = filename
        super().__init__(f"{filename}:{line}:{col}: {message}")


class LexError(CompileError):
    """An unrecognized or malformed token."""


class ParseError(CompileError):
    """A syntax error detected by the recursive-descent parser."""


class SemanticError(CompileError):
    """A name/arity/type error detected during lowering."""
