"""AST pretty-printer.

Emits valid MiniC source from an AST. ``parse(pretty(parse(s)))`` is
structurally equal to ``parse(s)``, which the property tests rely on.
Expressions are printed fully parenthesized so the round-trip never has
to reason about precedence.
"""

from __future__ import annotations

from repro.lang import ast_nodes as ast

_INDENT = "    "


def pretty_print(program: ast.Program) -> str:
    """Render a whole program as MiniC source text."""
    parts: list[str] = []
    for decl in program.globals:
        parts.append(_global_decl(decl))
    for fn in program.functions:
        parts.append(_function(fn))
    return "\n".join(parts) + "\n"


def expr_to_str(expr: ast.Expr) -> str:
    """Render one expression (fully parenthesized)."""
    return _expr(expr)


def _global_decl(decl: ast.GlobalDecl) -> str:
    star = "*" if decl.is_pointer else ""
    text = f"int {star}{decl.name}"
    if decl.size is not None:
        text += f"[{_expr(decl.size)}]"
    if decl.init is not None:
        text += f" = {_expr(decl.init)}"
    return text + ";"


def _param(p: ast.Param) -> str:
    if p.is_array:
        return f"int {p.name}[]"
    if p.is_pointer:
        return f"int *{p.name}"
    return f"int {p.name}"


def _function(fn: ast.FuncDecl) -> str:
    ret = "int" if fn.returns_value else "void"
    params = ", ".join(_param(p) for p in fn.params)
    header = f"{ret} {fn.name}({params})"
    return header + " " + _block(fn.body, 0)


def _block(block: ast.Block, depth: int) -> str:
    inner = _INDENT * (depth + 1)
    lines = ["{"]
    for stmt in block.stmts:
        lines.append(inner + _stmt(stmt, depth + 1))
    lines.append(_INDENT * depth + "}")
    return "\n".join(lines)


def _stmt(stmt: ast.Stmt, depth: int) -> str:
    if isinstance(stmt, ast.Block):
        return _block(stmt, depth)
    if isinstance(stmt, ast.ExprStmt):
        return _expr(stmt.expr) + ";"
    if isinstance(stmt, ast.VarDeclStmt):
        star = "*" if stmt.is_pointer else ""
        text = f"int {star}{stmt.name}"
        if stmt.size is not None:
            text += f"[{_expr(stmt.size)}]"
        if stmt.init is not None:
            text += f" = {_expr(stmt.init)}"
        return text + ";"
    if isinstance(stmt, ast.If):
        text = f"if ({_expr(stmt.cond)}) " + _stmt_as_block(stmt.then, depth)
        if stmt.els is not None:
            text += " else " + _stmt_as_block(stmt.els, depth)
        return text
    if isinstance(stmt, ast.While):
        return f"while ({_expr(stmt.cond)}) " + _stmt_as_block(stmt.body, depth)
    if isinstance(stmt, ast.DoWhile):
        return ("do " + _stmt_as_block(stmt.body, depth)
                + f" while ({_expr(stmt.cond)});")
    if isinstance(stmt, ast.For):
        init = ""
        if isinstance(stmt.init, ast.VarDeclStmt):
            init = _stmt(stmt.init, depth)[:-1]  # strip trailing ';'
        elif isinstance(stmt.init, ast.ExprStmt):
            init = _expr(stmt.init.expr)
        cond = _expr(stmt.cond) if stmt.cond is not None else ""
        step = _expr(stmt.step) if stmt.step is not None else ""
        return (f"for ({init}; {cond}; {step}) "
                + _stmt_as_block(stmt.body, depth))
    if isinstance(stmt, ast.Break):
        return "break;"
    if isinstance(stmt, ast.Continue):
        return "continue;"
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return "return;"
        return f"return {_expr(stmt.value)};"
    if isinstance(stmt, ast.Switch):
        return _switch(stmt, depth)
    if isinstance(stmt, ast.Label):
        return f"{stmt.name}:"
    if isinstance(stmt, ast.Goto):
        return f"goto {stmt.name};"
    raise TypeError(f"unknown statement {type(stmt).__name__}")


def _switch(stmt: ast.Switch, depth: int) -> str:
    inner = _INDENT * (depth + 1)
    body = _INDENT * (depth + 2)
    lines = [f"switch ({_expr(stmt.scrutinee)}) {{"]
    for case in stmt.cases:
        if case.value is None:
            lines.append(inner + "default:")
        else:
            lines.append(inner + f"case {_expr(case.value)}:")
        for arm_stmt in case.stmts:
            lines.append(body + _stmt(arm_stmt, depth + 2))
    lines.append(_INDENT * depth + "}")
    return "\n".join(lines)


def _stmt_as_block(stmt: ast.Stmt, depth: int) -> str:
    """Wrap non-block statements in braces so dangling-else is unambiguous."""
    if isinstance(stmt, ast.Block):
        return _block(stmt, depth)
    synthetic = ast.Block(stmt.line, stmt.col, [stmt])
    return _block(synthetic, depth)


def _expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.Index):
        return f"{expr.name}[{_expr(expr.index)}]"
    if isinstance(expr, ast.Call):
        return f"{expr.name}({', '.join(_expr(a) for a in expr.args)})"
    if isinstance(expr, ast.BinOp):
        return f"({_expr(expr.lhs)} {expr.op} {_expr(expr.rhs)})"
    if isinstance(expr, ast.LogicalOp):
        return f"({_expr(expr.lhs)} {expr.op} {_expr(expr.rhs)})"
    if isinstance(expr, ast.UnOp):
        return f"({expr.op}{_expr(expr.operand)})"
    if isinstance(expr, ast.CondExpr):
        return (f"({_expr(expr.cond)} ? {_expr(expr.then)}"
                f" : {_expr(expr.els)})")
    if isinstance(expr, ast.Assign):
        op = (expr.op or "") + "="
        return f"({_expr(expr.target)} {op} {_expr(expr.value)})"
    if isinstance(expr, ast.IncDec):
        if expr.is_prefix:
            return f"({expr.op}{_expr(expr.target)})"
        return f"({_expr(expr.target)}{expr.op})"
    if isinstance(expr, ast.Deref):
        return f"(*{_expr(expr.operand)})"
    if isinstance(expr, ast.AddrOf):
        return f"(&{_expr(expr.operand)})"
    raise TypeError(f"unknown expression {type(expr).__name__}")
