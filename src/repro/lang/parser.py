"""Recursive-descent parser for MiniC.

Grammar (EBNF, whitespace/comments elided)::

    program      := (func_decl | global_decl)*
    global_decl  := 'int' '*'* IDENT ('[' expr ']')? ('=' expr)? ';'
    func_decl    := ('int' '*'* | 'void') IDENT
                    '(' [param (',' param)*] ')' block
    param        := 'int' '*'* IDENT ('[' ']')?
    block        := '{' stmt* '}'
    stmt         := block | var_decl | if_stmt | while_stmt | do_while
                  | for_stmt | switch_stmt | 'break' ';' | 'continue' ';'
                  | 'return' [expr] ';' | 'goto' IDENT ';' | IDENT ':'
                  | [expr] ';'
    if_stmt      := 'if' '(' expr ')' stmt ['else' stmt]
    while_stmt   := 'while' '(' expr ')' stmt
    do_while     := 'do' stmt 'while' '(' expr ')' ';'
    for_stmt     := 'for' '(' (var_decl | [expr] ';') [expr] ';' [expr] ')' stmt
    switch_stmt  := 'switch' '(' expr ')' '{' case* '}'
    case         := ('case' expr | 'default') ':' stmt*

Expressions follow the C precedence ladder from assignment (lowest) up to
postfix operators; ``&&``/``||`` short-circuit, ``?:``, unary ``*``
(dereference) and unary ``&`` (address-of) are supported.
"""

from __future__ import annotations

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.tokens import COMPOUND_ASSIGN_OPS, Token, TokenType

# Binary precedence ladder: each level lists its left-associative, strict
# operators. Short-circuit and ternary levels are handled separately.
_BINARY_LEVELS: list[dict[TokenType, str]] = [
    {TokenType.PIPE: "|"},
    {TokenType.CARET: "^"},
    {TokenType.AMP: "&"},
    {TokenType.EQ: "==", TokenType.NE: "!="},
    {TokenType.LT: "<", TokenType.GT: ">", TokenType.LE: "<=",
     TokenType.GE: ">="},
    {TokenType.LSHIFT: "<<", TokenType.RSHIFT: ">>"},
    {TokenType.PLUS: "+", TokenType.MINUS: "-"},
    {TokenType.STAR: "*", TokenType.SLASH: "/", TokenType.PERCENT: "%"},
]


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast_nodes.Program`."""

    def __init__(self, tokens: list[Token], filename: str = "<input>"):
        self.tokens = tokens
        self.filename = filename
        self.pos = 0

    # -- token helpers ------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, tok_type: TokenType) -> bool:
        return self._peek().type is tok_type

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _match(self, tok_type: TokenType) -> Token | None:
        if self._at(tok_type):
            return self._advance()
        return None

    def _expect(self, tok_type: TokenType, what: str) -> Token:
        if not self._at(tok_type):
            token = self._peek()
            raise ParseError(
                f"expected {what}, found {token.value!r}",
                token.line, token.col, self.filename)
        return self._advance()

    # -- top level ----------------------------------------------------

    def parse(self) -> ast.Program:
        """Parse the whole token stream into a program."""
        first = self._peek()
        program = ast.Program(first.line, first.col)
        while not self._at(TokenType.EOF):
            if self._at(TokenType.KW_VOID):
                program.functions.append(self._parse_function())
            elif self._at(TokenType.KW_INT):
                # Distinguish `int f(...)` / `int *f(...)` from
                # `int g...;` by the token after the identifier (skipping
                # any pointer stars).
                after_stars = 1
                while self._peek(after_stars).type is TokenType.STAR:
                    after_stars += 1
                if (self._peek(after_stars).type is TokenType.IDENT
                        and self._peek(after_stars + 1).type
                        is TokenType.LPAREN):
                    program.functions.append(self._parse_function())
                else:
                    program.globals.append(self._parse_global())
            else:
                token = self._peek()
                raise ParseError(
                    f"expected declaration, found {token.value!r}",
                    token.line, token.col, self.filename)
        return program

    def _parse_global(self) -> ast.GlobalDecl:
        kw = self._expect(TokenType.KW_INT, "'int'")
        is_pointer = self._parse_stars()
        name = self._expect(TokenType.IDENT, "global name")
        size = None
        if self._match(TokenType.LBRACKET):
            size = self._parse_expr()
            self._expect(TokenType.RBRACKET, "']'")
            if is_pointer:
                raise ParseError("arrays of pointers are not supported",
                                 kw.line, kw.col, self.filename)
        init = None
        if self._match(TokenType.ASSIGN):
            init = self._parse_expr()
        self._expect(TokenType.SEMI, "';'")
        return ast.GlobalDecl(kw.line, kw.col, str(name.value), size, init,
                              is_pointer)

    def _parse_stars(self) -> bool:
        """Consume a (possibly empty) run of ``*`` in a declarator.

        Multiple levels of indirection collapse to a single flag: every
        pointer is a word holding an address, so ``int **p`` behaves as
        ``int *p`` whose target happens to hold further addresses.
        """
        seen = False
        while self._match(TokenType.STAR):
            seen = True
        return seen

    def _parse_function(self) -> ast.FuncDecl:
        ret_kw = self._advance()  # 'int' or 'void'
        returns_value = ret_kw.type is TokenType.KW_INT
        self._parse_stars()  # pointer returns are plain word values
        name = self._expect(TokenType.IDENT, "function name")
        self._expect(TokenType.LPAREN, "'('")
        params: list[ast.Param] = []
        if not self._at(TokenType.RPAREN):
            if self._at(TokenType.KW_VOID) and self._peek(1).type is TokenType.RPAREN:
                self._advance()  # `f(void)` — empty parameter list
            else:
                params.append(self._parse_param())
                while self._match(TokenType.COMMA):
                    params.append(self._parse_param())
        self._expect(TokenType.RPAREN, "')'")
        body = self._parse_block()
        return ast.FuncDecl(ret_kw.line, ret_kw.col, str(name.value),
                            params, body, returns_value)

    def _parse_param(self) -> ast.Param:
        kw = self._expect(TokenType.KW_INT, "'int' in parameter")
        is_pointer = self._parse_stars()
        name = self._expect(TokenType.IDENT, "parameter name")
        is_array = False
        if self._match(TokenType.LBRACKET):
            self._expect(TokenType.RBRACKET, "']'")
            if is_pointer:
                raise ParseError(
                    "parameter cannot be both pointer and array",
                    kw.line, kw.col, self.filename)
            is_array = True
        return ast.Param(kw.line, kw.col, str(name.value), is_array,
                         is_pointer)

    # -- statements ---------------------------------------------------

    def _parse_block(self) -> ast.Block:
        brace = self._expect(TokenType.LBRACE, "'{'")
        block = ast.Block(brace.line, brace.col)
        while not self._at(TokenType.RBRACE):
            if self._at(TokenType.EOF):
                raise ParseError("unterminated block", brace.line, brace.col,
                                 self.filename)
            block.stmts.append(self._parse_stmt())
        self._expect(TokenType.RBRACE, "'}'")
        return block

    def _parse_stmt(self) -> ast.Stmt:
        token = self._peek()
        if token.type is TokenType.LBRACE:
            return self._parse_block()
        if token.type is TokenType.KW_INT:
            return self._parse_var_decl()
        if token.type is TokenType.KW_IF:
            return self._parse_if()
        if token.type is TokenType.KW_WHILE:
            return self._parse_while()
        if token.type is TokenType.KW_DO:
            return self._parse_do_while()
        if token.type is TokenType.KW_FOR:
            return self._parse_for()
        if token.type is TokenType.KW_BREAK:
            self._advance()
            self._expect(TokenType.SEMI, "';'")
            return ast.Break(token.line, token.col)
        if token.type is TokenType.KW_CONTINUE:
            self._advance()
            self._expect(TokenType.SEMI, "';'")
            return ast.Continue(token.line, token.col)
        if token.type is TokenType.KW_RETURN:
            self._advance()
            value = None
            if not self._at(TokenType.SEMI):
                value = self._parse_expr()
            self._expect(TokenType.SEMI, "';'")
            return ast.Return(token.line, token.col, value)
        if token.type is TokenType.KW_SWITCH:
            return self._parse_switch()
        if token.type is TokenType.KW_GOTO:
            self._advance()
            target = self._expect(TokenType.IDENT, "label name")
            self._expect(TokenType.SEMI, "';'")
            return ast.Goto(token.line, token.col, str(target.value))
        if (token.type is TokenType.IDENT
                and self._peek(1).type is TokenType.COLON):
            self._advance()
            self._advance()
            return ast.Label(token.line, token.col, str(token.value))
        if token.type is TokenType.SEMI:
            self._advance()
            return ast.Block(token.line, token.col)  # empty statement
        expr = self._parse_expr()
        self._expect(TokenType.SEMI, "';'")
        return ast.ExprStmt(token.line, token.col, expr)

    def _parse_var_decl(self) -> ast.VarDeclStmt:
        kw = self._expect(TokenType.KW_INT, "'int'")
        is_pointer = self._parse_stars()
        name = self._expect(TokenType.IDENT, "variable name")
        size = None
        if self._match(TokenType.LBRACKET):
            size = self._parse_expr()
            self._expect(TokenType.RBRACKET, "']'")
            if is_pointer:
                raise ParseError("arrays of pointers are not supported",
                                 kw.line, kw.col, self.filename)
        init = None
        if self._match(TokenType.ASSIGN):
            init = self._parse_expr()
        self._expect(TokenType.SEMI, "';'")
        return ast.VarDeclStmt(kw.line, kw.col, str(name.value), size, init,
                               is_pointer)

    def _parse_switch(self) -> ast.Switch:
        kw = self._advance()
        self._expect(TokenType.LPAREN, "'('")
        scrutinee = self._parse_expr()
        self._expect(TokenType.RPAREN, "')'")
        self._expect(TokenType.LBRACE, "'{'")
        switch = ast.Switch(kw.line, kw.col, scrutinee)
        seen_default = False
        while not self._at(TokenType.RBRACE):
            token = self._peek()
            if token.type is TokenType.KW_CASE:
                self._advance()
                value = self._parse_expr()
            elif token.type is TokenType.KW_DEFAULT:
                if seen_default:
                    raise ParseError("duplicate default label", token.line,
                                     token.col, self.filename)
                seen_default = True
                self._advance()
                value = None
            else:
                raise ParseError(
                    f"expected 'case' or 'default', found {token.value!r}",
                    token.line, token.col, self.filename)
            self._expect(TokenType.COLON, "':'")
            case = ast.SwitchCase(token.line, token.col, value)
            while not self._at(TokenType.RBRACE) and not self._peek().type in (
                    TokenType.KW_CASE, TokenType.KW_DEFAULT):
                case.stmts.append(self._parse_stmt())
            switch.cases.append(case)
        self._expect(TokenType.RBRACE, "'}'")
        return switch

    def _parse_if(self) -> ast.If:
        kw = self._advance()
        self._expect(TokenType.LPAREN, "'('")
        cond = self._parse_expr()
        self._expect(TokenType.RPAREN, "')'")
        then = self._parse_stmt()
        els = None
        if self._match(TokenType.KW_ELSE):
            els = self._parse_stmt()
        return ast.If(kw.line, kw.col, cond, then, els)

    def _parse_while(self) -> ast.While:
        kw = self._advance()
        self._expect(TokenType.LPAREN, "'('")
        cond = self._parse_expr()
        self._expect(TokenType.RPAREN, "')'")
        body = self._parse_stmt()
        return ast.While(kw.line, kw.col, cond, body)

    def _parse_do_while(self) -> ast.DoWhile:
        kw = self._advance()
        body = self._parse_stmt()
        self._expect(TokenType.KW_WHILE, "'while'")
        self._expect(TokenType.LPAREN, "'('")
        cond = self._parse_expr()
        self._expect(TokenType.RPAREN, "')'")
        self._expect(TokenType.SEMI, "';'")
        return ast.DoWhile(kw.line, kw.col, body, cond)

    def _parse_for(self) -> ast.For:
        kw = self._advance()
        self._expect(TokenType.LPAREN, "'('")
        init: ast.Stmt | None = None
        if self._at(TokenType.KW_INT):
            init = self._parse_var_decl()  # consumes the ';'
        elif self._match(TokenType.SEMI):
            init = None
        else:
            first = self._peek()
            expr = self._parse_expr()
            self._expect(TokenType.SEMI, "';'")
            init = ast.ExprStmt(first.line, first.col, expr)
        cond = None
        if not self._at(TokenType.SEMI):
            cond = self._parse_expr()
        self._expect(TokenType.SEMI, "';'")
        step = None
        if not self._at(TokenType.RPAREN):
            step = self._parse_expr()
        self._expect(TokenType.RPAREN, "')'")
        body = self._parse_stmt()
        return ast.For(kw.line, kw.col, init, cond, step, body)

    # -- expressions ---------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        lhs = self._parse_ternary()
        token = self._peek()
        if token.type is TokenType.ASSIGN:
            self._advance()
            rhs = self._parse_assignment()
            self._check_lvalue(lhs, token)
            return ast.Assign(token.line, token.col, lhs, rhs, None)
        if token.type in COMPOUND_ASSIGN_OPS:
            self._advance()
            rhs = self._parse_assignment()
            self._check_lvalue(lhs, token)
            op = COMPOUND_ASSIGN_OPS[token.type].value
            return ast.Assign(token.line, token.col, lhs, rhs, op)
        return lhs

    def _check_lvalue(self, expr: ast.Expr, token: Token) -> None:
        if not isinstance(expr, (ast.VarRef, ast.Index, ast.Deref)):
            raise ParseError("assignment target must be a variable, array "
                             "element, or dereference", token.line,
                             token.col, self.filename)

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_logical_or()
        question = self._match(TokenType.QUESTION)
        if question is None:
            return cond
        then = self._parse_assignment()
        self._expect(TokenType.COLON, "':'")
        els = self._parse_ternary()
        return ast.CondExpr(question.line, question.col, cond, then, els)

    def _parse_logical_or(self) -> ast.Expr:
        lhs = self._parse_logical_and()
        while self._at(TokenType.OR_OR):
            token = self._advance()
            rhs = self._parse_logical_and()
            lhs = ast.LogicalOp(token.line, token.col, "||", lhs, rhs)
        return lhs

    def _parse_logical_and(self) -> ast.Expr:
        lhs = self._parse_binary(0)
        while self._at(TokenType.AND_AND):
            token = self._advance()
            rhs = self._parse_binary(0)
            lhs = ast.LogicalOp(token.line, token.col, "&&", lhs, rhs)
        return lhs

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        ops = _BINARY_LEVELS[level]
        lhs = self._parse_binary(level + 1)
        while self._peek().type in ops:
            token = self._advance()
            rhs = self._parse_binary(level + 1)
            lhs = ast.BinOp(token.line, token.col, ops[token.type], lhs, rhs)
        return lhs

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.MINUS:
            self._advance()
            return ast.UnOp(token.line, token.col, "-", self._parse_unary())
        if token.type is TokenType.TILDE:
            self._advance()
            return ast.UnOp(token.line, token.col, "~", self._parse_unary())
        if token.type is TokenType.BANG:
            self._advance()
            return ast.UnOp(token.line, token.col, "!", self._parse_unary())
        if token.type is TokenType.PLUS:
            self._advance()
            return self._parse_unary()
        if token.type is TokenType.STAR:
            self._advance()
            return ast.Deref(token.line, token.col, self._parse_unary())
        if token.type is TokenType.AMP:
            self._advance()
            operand = self._parse_unary()
            if not isinstance(operand, (ast.VarRef, ast.Index, ast.Deref)):
                raise ParseError(
                    "'&' needs a variable, array element, or dereference",
                    token.line, token.col, self.filename)
            return ast.AddrOf(token.line, token.col, operand)
        if token.type in (TokenType.PLUS_PLUS, TokenType.MINUS_MINUS):
            self._advance()
            target = self._parse_unary()
            self._check_lvalue(target, token)
            op = "++" if token.type is TokenType.PLUS_PLUS else "--"
            return ast.IncDec(token.line, token.col, target, op,
                              is_prefix=True)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.type in (TokenType.PLUS_PLUS, TokenType.MINUS_MINUS):
                self._advance()
                self._check_lvalue(expr, token)
                op = "++" if token.type is TokenType.PLUS_PLUS else "--"
                expr = ast.IncDec(token.line, token.col, expr, op,
                                  is_prefix=False)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.type in (TokenType.INT_LIT, TokenType.CHAR_LIT):
            self._advance()
            return ast.IntLit(token.line, token.col, int(token.value))
        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenType.RPAREN, "')'")
            return expr
        if token.type is TokenType.IDENT:
            self._advance()
            name = str(token.value)
            if self._match(TokenType.LPAREN):
                args: list[ast.Expr] = []
                if not self._at(TokenType.RPAREN):
                    args.append(self._parse_expr())
                    while self._match(TokenType.COMMA):
                        args.append(self._parse_expr())
                self._expect(TokenType.RPAREN, "')'")
                return ast.Call(token.line, token.col, name, args)
            if self._match(TokenType.LBRACKET):
                index = self._parse_expr()
                self._expect(TokenType.RBRACKET, "']'")
                return ast.Index(token.line, token.col, name, index)
            return ast.VarRef(token.line, token.col, name)
        raise ParseError(f"expected expression, found {token.value!r}",
                         token.line, token.col, self.filename)


def parse_program(source: str, filename: str = "<input>") -> ast.Program:
    """Lex and parse MiniC ``source`` into an AST."""
    return Parser(tokenize(source, filename), filename).parse()
