"""Hand-written lexer for MiniC.

The lexer is a straightforward single-pass scanner. It understands line
(``//``) and block (``/* */``) comments, decimal, hexadecimal and character
literals, and the maximal-munch operator set listed in
:mod:`repro.lang.tokens`.
"""

from __future__ import annotations

from repro.lang.errors import LexError
from repro.lang.tokens import KEYWORDS, Token, TokenType

# Multi-character operators, longest first so maximal munch falls out of
# the ordered scan below.
_OPERATORS = [
    ("<<=", TokenType.LSHIFT_ASSIGN),
    (">>=", TokenType.RSHIFT_ASSIGN),
    ("<<", TokenType.LSHIFT),
    (">>", TokenType.RSHIFT),
    ("<=", TokenType.LE),
    (">=", TokenType.GE),
    ("==", TokenType.EQ),
    ("!=", TokenType.NE),
    ("&&", TokenType.AND_AND),
    ("||", TokenType.OR_OR),
    ("+=", TokenType.PLUS_ASSIGN),
    ("-=", TokenType.MINUS_ASSIGN),
    ("*=", TokenType.STAR_ASSIGN),
    ("/=", TokenType.SLASH_ASSIGN),
    ("%=", TokenType.PERCENT_ASSIGN),
    ("&=", TokenType.AMP_ASSIGN),
    ("|=", TokenType.PIPE_ASSIGN),
    ("^=", TokenType.CARET_ASSIGN),
    ("++", TokenType.PLUS_PLUS),
    ("--", TokenType.MINUS_MINUS),
    ("+", TokenType.PLUS),
    ("-", TokenType.MINUS),
    ("*", TokenType.STAR),
    ("/", TokenType.SLASH),
    ("%", TokenType.PERCENT),
    ("&", TokenType.AMP),
    ("|", TokenType.PIPE),
    ("^", TokenType.CARET),
    ("~", TokenType.TILDE),
    ("!", TokenType.BANG),
    ("<", TokenType.LT),
    (">", TokenType.GT),
    ("=", TokenType.ASSIGN),
    ("(", TokenType.LPAREN),
    (")", TokenType.RPAREN),
    ("{", TokenType.LBRACE),
    ("}", TokenType.RBRACE),
    ("[", TokenType.LBRACKET),
    ("]", TokenType.RBRACKET),
    (",", TokenType.COMMA),
    (";", TokenType.SEMI),
    ("?", TokenType.QUESTION),
    (":", TokenType.COLON),
]

_ESCAPES = {
    "n": 10,
    "t": 9,
    "r": 13,
    "0": 0,
    "\\": 92,
    "'": 39,
    '"': 34,
}


class Lexer:
    """Scans MiniC source text into a list of :class:`Token`."""

    def __init__(self, source: str, filename: str = "<input>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    def tokenize(self) -> list[Token]:
        """Return all tokens, terminated by a single ``EOF`` token."""
        tokens: list[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                tokens.append(Token(TokenType.EOF, "eof", self.line, self.col))
                return tokens
            tokens.append(self._next_token())

    # -- internals ---------------------------------------------------

    def _error(self, message: str) -> LexError:
        return LexError(message, self.line, self.col, self.filename)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments; reject unterminated comments."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.col
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment",
                                   start_line, start_col, self.filename)
            else:
                return

    def _next_token(self) -> Token:
        line, col = self.line, self.col
        ch = self._peek()

        if ch.isdigit():
            return self._lex_number(line, col)
        if ch.isalpha() or ch == "_":
            return self._lex_ident(line, col)
        if ch == "'":
            return self._lex_char(line, col)
        if ch == '"':
            raise self._error("string literals are not part of MiniC")

        for spelling, tok_type in _OPERATORS:
            if self.source.startswith(spelling, self.pos):
                self._advance(len(spelling))
                return Token(tok_type, spelling, line, col)

        raise self._error(f"unexpected character {ch!r}")

    def _lex_number(self, line: int, col: int) -> Token:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            digits_start = self.pos
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            if self.pos == digits_start:
                raise self._error("hexadecimal literal needs digits")
            value = int(self.source[start:self.pos], 16)
        else:
            while self._peek().isdigit():
                self._advance()
            value = int(self.source[start:self.pos])
        if self._peek().isalpha() or self._peek() == "_":
            raise self._error("identifier may not start with a digit")
        return Token(TokenType.INT_LIT, value, line, col)

    def _lex_ident(self, line: int, col: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start:self.pos]
        keyword = KEYWORDS.get(text)
        if keyword is not None:
            return Token(keyword, text, line, col)
        return Token(TokenType.IDENT, text, line, col)

    def _lex_char(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        ch = self._peek()
        if ch == "":
            raise self._error("unterminated character literal")
        if ch == "\\":
            self._advance()
            escape = self._peek()
            if escape not in _ESCAPES:
                raise self._error(f"unknown escape sequence \\{escape}")
            value = _ESCAPES[escape]
            self._advance()
        else:
            value = ord(ch)
            self._advance()
        if self._peek() != "'":
            raise self._error("unterminated character literal")
        self._advance()
        return Token(TokenType.CHAR_LIT, value, line, col)


def tokenize(source: str, filename: str = "<input>") -> list[Token]:
    """Convenience wrapper: lex ``source`` and return the token list."""
    return Lexer(source, filename).tokenize()
