"""Token definitions for the MiniC lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Every lexeme class MiniC recognizes."""

    # Literals and names.
    INT_LIT = "int_lit"
    CHAR_LIT = "char_lit"
    IDENT = "ident"

    # Keywords.
    KW_INT = "int"
    KW_VOID = "void"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_DO = "do"
    KW_FOR = "for"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_RETURN = "return"
    KW_SWITCH = "switch"
    KW_CASE = "case"
    KW_DEFAULT = "default"
    KW_GOTO = "goto"

    # Punctuation.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"

    # Operators.
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    BANG = "!"
    LSHIFT = "<<"
    RSHIFT = ">>"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    AND_AND = "&&"
    OR_OR = "||"
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PERCENT_ASSIGN = "%="
    AMP_ASSIGN = "&="
    PIPE_ASSIGN = "|="
    CARET_ASSIGN = "^="
    LSHIFT_ASSIGN = "<<="
    RSHIFT_ASSIGN = ">>="
    PLUS_PLUS = "++"
    MINUS_MINUS = "--"
    QUESTION = "?"
    COLON = ":"

    EOF = "eof"


#: Reserved words, mapped to their keyword token types.
KEYWORDS = {
    "int": TokenType.KW_INT,
    "void": TokenType.KW_VOID,
    "if": TokenType.KW_IF,
    "else": TokenType.KW_ELSE,
    "while": TokenType.KW_WHILE,
    "do": TokenType.KW_DO,
    "for": TokenType.KW_FOR,
    "break": TokenType.KW_BREAK,
    "continue": TokenType.KW_CONTINUE,
    "return": TokenType.KW_RETURN,
    "switch": TokenType.KW_SWITCH,
    "case": TokenType.KW_CASE,
    "default": TokenType.KW_DEFAULT,
    "goto": TokenType.KW_GOTO,
}

#: Compound assignment token -> underlying binary operator token.
COMPOUND_ASSIGN_OPS = {
    TokenType.PLUS_ASSIGN: TokenType.PLUS,
    TokenType.MINUS_ASSIGN: TokenType.MINUS,
    TokenType.STAR_ASSIGN: TokenType.STAR,
    TokenType.SLASH_ASSIGN: TokenType.SLASH,
    TokenType.PERCENT_ASSIGN: TokenType.PERCENT,
    TokenType.AMP_ASSIGN: TokenType.AMP,
    TokenType.PIPE_ASSIGN: TokenType.PIPE,
    TokenType.CARET_ASSIGN: TokenType.CARET,
    TokenType.LSHIFT_ASSIGN: TokenType.LSHIFT,
    TokenType.RSHIFT_ASSIGN: TokenType.RSHIFT,
}


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position.

    ``value`` is the integer value for ``INT_LIT``/``CHAR_LIT`` tokens and
    the identifier text for ``IDENT`` tokens; other token types carry their
    spelling.
    """

    type: TokenType
    value: object
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.col})"
