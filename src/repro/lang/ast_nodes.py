"""AST node classes for MiniC.

Nodes are plain dataclasses carrying a source position. Expression nodes
evaluate to a 64-bit signed integer (the only value type in MiniC; arrays
are second-class and appear only as declarations, indexed accesses, and
by-reference arguments).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Node:
    """Base class: every node knows where it came from."""

    line: int
    col: int


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr(Node):
    """Marker base for expressions."""


@dataclass
class IntLit(Expr):
    """Integer literal (decimal, hex, or character constant)."""

    value: int


@dataclass
class VarRef(Expr):
    """Reference to a scalar variable, or an array name in argument
    position (arrays are passed by reference)."""

    name: str


@dataclass
class Index(Expr):
    """Array element access ``name[index]``."""

    name: str
    index: Expr


@dataclass
class Call(Expr):
    """Function or builtin call."""

    name: str
    args: list[Expr]


@dataclass
class Deref(Expr):
    """Pointer dereference ``*e`` (usable as value or assignment target).

    The operand evaluates to a word address; MiniC pointers are plain
    64-bit integers holding addresses, as on the paper's target machines.
    """

    operand: Expr


@dataclass
class AddrOf(Expr):
    """Address-of ``&x`` or ``&a[i]`` — yields the word address of an
    lvalue. Interior pointers (``&window[start]``) are how gzip's
    ``flush_block(&window[...])`` call pattern is expressed."""

    operand: Expr  # VarRef, Index, or Deref


@dataclass
class BinOp(Expr):
    """Strict binary operator (both operands always evaluated)."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class LogicalOp(Expr):
    """Short-circuit ``&&`` / ``||``.

    Kept distinct from :class:`BinOp` because lowering emits control flow
    (the left operand becomes a predicate, hence a profiled construct),
    matching C semantics and the paper's treatment of conditionals.
    """

    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class UnOp(Expr):
    """Unary operator: ``-`` ``~`` ``!``."""

    op: str
    operand: Expr


@dataclass
class CondExpr(Expr):
    """Ternary conditional ``cond ? then : els`` (lowered to branches)."""

    cond: Expr
    then: Expr
    els: Expr


@dataclass
class Assign(Expr):
    """Assignment expression ``target = value`` or compound
    ``target op= value``.

    ``op`` is ``None`` for plain assignment, otherwise the underlying
    binary operator (``"+"`` for ``+=`` and so on). Lowering computes the
    target address once, so compound assignment evaluates the index
    expression a single time, as in C.
    """

    target: Expr  # VarRef or Index
    value: Expr
    op: str | None = None


@dataclass
class IncDec(Expr):
    """Prefix or postfix ``++``/``--`` with C value semantics."""

    target: Expr  # VarRef or Index
    op: str  # "++" or "--"
    is_prefix: bool = False


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    """Marker base for statements."""


@dataclass
class Block(Stmt):
    """``{ ... }`` statement sequence (introduces a scope)."""

    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for effect."""

    expr: Expr


@dataclass
class VarDeclStmt(Stmt):
    """Local declaration ``int x;`` / ``int x = e;`` / ``int a[N];`` /
    ``int *p;``.

    ``size`` is ``None`` for scalars, otherwise a constant expression for
    the array length. ``is_pointer`` marks ``int *p`` declarations; the
    variable then occupies one word holding an address, and ``p[i]`` and
    ``*p`` lower to indirect accesses.
    """

    name: str
    size: Expr | None
    init: Expr | None
    is_pointer: bool = False


@dataclass
class If(Stmt):
    """``if``/``else`` — a non-loop predicate construct."""

    cond: Expr
    then: Stmt
    els: Stmt | None


@dataclass
class While(Stmt):
    """``while`` loop — each iteration is a construct instance."""

    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    """``do { } while ();`` loop."""

    body: Stmt
    cond: Expr


@dataclass
class For(Stmt):
    """C-style ``for`` loop. Any of init/cond/step may be absent."""

    init: Stmt | None
    cond: Expr | None
    step: Expr | None
    body: Stmt


@dataclass
class Break(Stmt):
    """``break`` out of the innermost loop."""


@dataclass
class Continue(Stmt):
    """``continue`` to the step/condition of the innermost loop."""


@dataclass
class Return(Stmt):
    """``return`` with optional value."""

    value: Expr | None


@dataclass
class SwitchCase(Node):
    """One ``case N:`` arm (or ``default:`` when ``value`` is None) with
    the statements up to the next label. Fall-through is preserved."""

    value: Expr | None
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class Switch(Stmt):
    """``switch`` statement. Lowered to a cascade of equality branches
    (each a profiled non-loop predicate), with ``break`` targeting the
    join block; fall-through between arms is supported."""

    scrutinee: Expr
    cases: list[SwitchCase] = field(default_factory=list)


@dataclass
class Label(Stmt):
    """A statement label ``name:`` — a ``goto`` target."""

    name: str


@dataclass
class Goto(Stmt):
    """``goto name;`` — the irregular control flow (paper §III-A) that the
    post-dominance-based indexing rules must survive."""

    name: str


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------

@dataclass
class Param(Node):
    """Formal parameter. ``is_array`` marks ``int a[]`` — passed by
    reference, giving MiniC the aliasing behaviour the paper's gzip
    example exhibits (``flush_block(&window[...])``). ``is_pointer``
    marks ``int *p`` — an ordinary word-sized parameter holding an
    address, so any pointer expression can be passed."""

    name: str
    is_array: bool
    is_pointer: bool = False


@dataclass
class FuncDecl(Node):
    """Function definition. ``returns_value`` is False for ``void``."""

    name: str
    params: list[Param]
    body: Block
    returns_value: bool


@dataclass
class GlobalDecl(Node):
    """File-scope declaration; initializer must be a constant expression."""

    name: str
    size: Expr | None
    init: Expr | None
    is_pointer: bool = False


@dataclass
class Program(Node):
    """A whole translation unit."""

    globals: list[GlobalDecl] = field(default_factory=list)
    functions: list[FuncDecl] = field(default_factory=list)

    def function(self, name: str) -> FuncDecl:
        """Return the function named ``name`` (raises ``KeyError``)."""
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)
