"""MiniC: the C-subset language substrate Alchemist profiles.

The paper profiles C binaries under valgrind; this reproduction profiles
MiniC programs executed by :mod:`repro.runtime`. MiniC keeps the parts of
C that matter for dependence profiling — procedures, loops, conditionals,
``break``/``continue``/``return``, globals, scalars and arrays, aliasing
through array parameters — and drops the parts that do not (preprocessor,
structs, dynamic allocation, varargs).

Public entry points::

    from repro.lang import parse_program, Lexer, Parser

    program = parse_program(source)   # -> ast_nodes.Program
"""

from repro.lang.errors import CompileError, LexError, ParseError
from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse_program
from repro.lang.pretty import pretty_print

__all__ = [
    "CompileError",
    "LexError",
    "ParseError",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_program",
    "pretty_print",
]
