"""Benchmark harness: regenerates every table and figure of the paper.

================  ====================================================
Paper artifact    Entry point
================  ====================================================
Table III         :func:`repro.bench.harness.table3_rows`
Table IV          :func:`repro.bench.harness.table4_rows`
Table V           :func:`repro.bench.harness.table5_rows`
Fig. 2 / Fig. 3   :func:`repro.bench.harness.gzip_profile_listing`
Fig. 6(a-d)       :func:`repro.bench.harness.fig6_data`
================  ====================================================

``benchmarks/`` wraps these in pytest-benchmark targets; the text
renderers live in :mod:`repro.bench.tables` and
:mod:`repro.bench.figures`. Beyond the paper, two artifact benches
measure this reproduction's own subsystems:
:func:`repro.bench.harness.trace_bench` (BENCH_trace.json,
replay-vs-rerun), :func:`repro.bench.sampling.sampling_bench`
(BENCH_sampling.json, trace size/speed vs accuracy), and
:func:`repro.bench.advisor.advisor_bench` (BENCH_advisor.json, the
what-if advisor's trace-grounded predictions differentially verified
against live simulation).
"""

from repro.bench.advisor import advisor_bench
from repro.bench.harness import (fig6_data, gzip_profile_listing,
                                 profile_workload, table3_rows, table4_rows,
                                 table5_rows, trace_bench)
from repro.bench.sampling import sampling_bench
from repro.bench.tables import (render_table3, render_table4, render_table5)
from repro.bench.figures import render_fig6, render_profile_listing

__all__ = [
    "advisor_bench",
    "trace_bench",
    "sampling_bench",
    "profile_workload",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "gzip_profile_listing",
    "fig6_data",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_fig6",
    "render_profile_listing",
]
