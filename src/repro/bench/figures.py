"""Plain-text renderers for the paper's figures."""

from __future__ import annotations

from repro.core.profile_data import DepKind
from repro.core.report import ProfileReport


def render_profile_listing(report: ProfileReport, top: int = 8,
                           max_edges: int = 6) -> str:
    """Fig. 2 (RAW) and Fig. 3 (WAW/WAR) style gzip profile listing."""
    parts = ["Fig 2 style profile (RAW dependences; '*' marks "
             "Tdep <= Tdur violations)"]
    parts.append(report.to_text(top=top, max_edges=max_edges,
                                kinds=(DepKind.RAW,)))
    parts.append("")
    parts.append("Fig 3 style profile (WAR and WAW dependences)")
    for view in report.top_constructs(3):
        parts.append(view.describe())
        parts.extend(view.edge_lines((DepKind.WAW, DepKind.WAR),
                                     max_edges))
    return "\n".join(parts)


def render_fig6(panels: dict) -> str:
    """Fig. 6: normalized size vs. normalized violating static RAW
    dependences, as labelled text bars."""
    lines = []
    for key in sorted(panels):
        panel = panels[key]
        lines.append(panel.title)
        if panel.note:
            lines.append(f"  note: {panel.note}")
        lines.append(f"  {'label':6s} {'construct':34s} "
                     f"{'size':>6s} {'viol':>6s}  profile")
        for row in panel.rows:
            size_bar = "#" * max(1, round(row.norm_size * 30))
            viol_bar = "!" * round(row.norm_violations * 30)
            lines.append(
                f"  {row.label:6s} {row.view.name[:34]:34s} "
                f"{row.norm_size:6.3f} {row.norm_violations:6.3f}  "
                f"{size_bar}{viol_bar}")
        lines.append("")
    return "\n".join(lines)
