"""The sampling trade-off benchmark behind ``BENCH_sampling.json``.

For every workload it records three families of traces —

* full fidelity, format v1 (the pre-v2 baseline every reduction is
  measured against),
* full fidelity, format v2 (what the format alone buys, at zero
  accuracy cost),
* format v2 under each requested sampling policy —

then replays each sampled trace against the full one through the
accuracy module (:mod:`repro.sampling.accuracy`) and reports, per
workload and policy: trace bytes, size reduction vs. the v1 baseline,
record-time speedup vs. a full v1 recording, and the per-analysis
error metrics (hot count error, locality hit-rate error, dep
missed-edge fraction — the dep numbers are always flagged as hints).

The artifact's ``summary`` section scores every policy against the
headline target — at least ``min_reduction``x smaller traces at no
more than ``max_error`` hot/locality error — and lists the workloads
that meet it, so "≥5x smaller at ≤5% error on ≥3 workloads" is a
greppable fact rather than a claim.
"""

from __future__ import annotations

import os
import tempfile
import time as _time
from typing import Any, Iterable

from repro.util import atomic_write_json
from repro.workloads import get
from repro.workloads import names as workload_names

#: Policies measured when the caller does not choose: the headline
#: burst config (meets the 5x/5% target on most workloads), a denser
#: and a sparser burst, a plain interval, and the aggressive 1%
#: interval — a spectrum from "accurate" to "hints only".
DEFAULT_POLICIES = ("burst:500/1000", "burst:200/1000", "interval:10",
                    "burst:1000/10000", "interval:100")

#: The headline target the summary scores against.
TARGET_MIN_REDUCTION = 5.0
TARGET_MAX_ERROR = 0.05


def _timed_record(source: str, path: str, *, version: int,
                  sampling: str | None, repeats: int) -> tuple[Any, float]:
    """Record ``repeats`` times; returns (last result, best seconds)."""
    from repro.trace.writer import record_source

    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = _time.perf_counter()
        result = record_source(source, path, version=version,
                               sampling=sampling)
        best = min(best, _time.perf_counter() - start)
    return result, best


def sampling_bench_rows(names: list[str] | None = None,
                        scale: float = 0.5,
                        policies: Iterable[str] = DEFAULT_POLICIES,
                        analyses: tuple[str, ...] = ("hot", "locality",
                                                     "dep"),
                        repeats: int = 1) -> list[dict[str, Any]]:
    """Measure every workload x policy cell; returns JSON-able rows."""
    from repro.sampling.accuracy import compare_traces

    rows: list[dict[str, Any]] = []
    for name in (names if names is not None else workload_names()):
        workload = get(name, scale)
        source = workload.source
        with tempfile.TemporaryDirectory() as tmp:
            v1_path = os.path.join(tmp, "full-v1.trace")
            v2_path = os.path.join(tmp, "full-v2.trace")
            # Untimed warmup so first-touch costs (imports, allocator
            # growth) don't land on the v1 baseline measurement.
            _timed_record(source, v1_path, version=1, sampling=None,
                          repeats=1)
            v1_result, v1_seconds = _timed_record(
                source, v1_path, version=1, sampling=None,
                repeats=repeats)
            v2_result, v2_seconds = _timed_record(
                source, v2_path, version=2, sampling=None,
                repeats=repeats)
            row: dict[str, Any] = {
                "name": name,
                "events": v1_result.events,
                "v1_bytes": v1_result.trace_bytes,
                "v1_record_seconds": v1_seconds,
                "v2_bytes": v2_result.trace_bytes,
                "v2_record_seconds": v2_seconds,
                "format_reduction": (v1_result.trace_bytes
                                     / v2_result.trace_bytes),
                "policies": {},
            }
            for spec in policies:
                sampled_path = os.path.join(
                    tmp,
                    "sampled-" + spec.replace(":", "-").replace("/", "-")
                    + ".trace")
                sampled_result, sampled_seconds = _timed_record(
                    source, sampled_path, version=2, sampling=spec,
                    repeats=repeats)
                accuracy = compare_traces(v2_path, sampled_path,
                                          analyses=analyses)
                metrics = {acc.analysis: acc.metrics
                           for acc in accuracy.rows.values()}
                flags = sorted({flag for acc in accuracy.rows.values()
                                for flag in acc.flags})
                row["policies"][spec] = {
                    "trace_bytes": sampled_result.trace_bytes,
                    "events": sampled_result.events,
                    "record_seconds": sampled_seconds,
                    "reduction_vs_v1": (v1_result.trace_bytes
                                        / sampled_result.trace_bytes),
                    "record_speedup": v1_seconds / sampled_seconds
                    if sampled_seconds > 0 else float("nan"),
                    "replay_speedup":
                        accuracy.full_replay_seconds
                        / accuracy.sampled_replay_seconds
                        if accuracy.sampled_replay_seconds > 0
                        else float("nan"),
                    "hot_count_error":
                        metrics.get("hot", {}).get("count_error"),
                    "locality_hit_rate_error":
                        metrics.get("locality", {}).get("hit_rate_error"),
                    "dep_missed_fraction":
                        metrics.get("dep", {}).get("missed_fraction"),
                    "dep_min_distance_overestimates":
                        metrics.get("dep", {}).get(
                            "min_distance_overestimates"),
                    "metrics": metrics,
                    "flags": flags,
                }
            rows.append(row)
    return rows


def _summarize(rows: list[dict[str, Any]],
               policies: Iterable[str]) -> dict[str, Any]:
    summary: dict[str, Any] = {
        "target": {"min_reduction": TARGET_MIN_REDUCTION,
                   "max_error": TARGET_MAX_ERROR},
        "policies": {},
    }
    for spec in policies:
        met = []
        for row in rows:
            cell = row["policies"][spec]
            hot = cell["hot_count_error"]
            loc = cell["locality_hit_rate_error"]
            if (cell["reduction_vs_v1"] >= TARGET_MIN_REDUCTION
                    and hot is not None and hot <= TARGET_MAX_ERROR
                    and loc is not None and loc <= TARGET_MAX_ERROR):
                met.append(row["name"])
        summary["policies"][spec] = {
            "workloads_meeting_target": met,
            "meets_target_on_3": len(met) >= 3,
        }
    # The v2 format alone is lossless; score it against the size half
    # of the target too (error is 0 by construction).
    format_met = [row["name"] for row in rows
                  if row["format_reduction"] >= TARGET_MIN_REDUCTION]
    summary["format_v2_full_fidelity"] = {
        "workloads_meeting_target": format_met,
        "meets_target_on_3": len(format_met) >= 3,
    }
    return summary


def sampling_bench(names: list[str] | None = None, scale: float = 0.5,
                   policies: Iterable[str] = DEFAULT_POLICIES,
                   out_path: str | None = "BENCH_sampling.json",
                   analyses: tuple[str, ...] = ("hot", "locality", "dep"),
                   repeats: int = 1) -> dict[str, Any]:
    """The BENCH_sampling.json artifact: rows, totals, target scoring."""
    policies = tuple(policies)
    rows = sampling_bench_rows(names, scale, policies, analyses, repeats)
    data = {
        "bench": "sampling_tradeoff",
        "scale": scale,
        "policies": list(policies),
        "analyses": list(analyses),
        "repeats": repeats,
        "rows": rows,
        "summary": _summarize(rows, policies),
    }
    if out_path:
        atomic_write_json(out_path, data)
    return data
