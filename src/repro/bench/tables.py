"""Plain-text renderers for the paper's tables."""

from __future__ import annotations

from repro.bench.harness import Table3Row, Table4Row, Table5Row


def _rule(widths: list[int]) -> str:
    return "-+-".join("-" * w for w in widths)


def _fmt_row(cells: list[str], widths: list[int]) -> str:
    return " | ".join(c.ljust(w) for c, w in zip(cells, widths))


def render_table3(rows: list[Table3Row]) -> str:
    """Table III: benchmarks, construct counts and running times."""
    header = ["Benchmark", "LOC", "Static", "Dynamic", "Orig.(s)",
              "Prof.(s)", "Slowdown", "Paper slowdown"]
    body = []
    for r in rows:
        body.append([
            r.name, str(r.loc), str(r.static), str(r.dynamic),
            f"{r.orig_seconds:.4f}", f"{r.prof_seconds:.4f}",
            f"{r.slowdown:.1f}x", f"{r.paper_slowdown:.0f}x",
        ])
    widths = [max(len(header[i]), *(len(b[i]) for b in body))
              for i in range(len(header))]
    lines = [
        "Table III: benchmarks, number of static/dynamic constructs "
        "and running times",
        _fmt_row(header, widths),
        _rule(widths),
    ]
    lines.extend(_fmt_row(b, widths) for b in body)
    lines.append("")
    lines.append("(paper: valgrind on a Pentium D; slowdowns 166-712x. "
                 "Here: a Python interpreter substrate — the slowdown "
                 "factor, not absolute seconds, is the comparable shape.)")
    return "\n".join(lines)


def render_table4(rows: list[Table4Row]) -> str:
    """Table IV: static conflicts at the parallelized locations."""
    header = ["Program", "Code location", "RAW", "WAW", "WAR",
              "paper RAW", "paper WAW", "paper WAR"]
    body = []
    for r in rows:
        def p(v: int) -> str:
            return "-" if v < 0 else str(v)
        body.append([r.name, r.location, str(r.raw), str(r.waw),
                     str(r.war), p(r.paper_raw), p(r.paper_waw),
                     p(r.paper_war)])
    widths = [max(len(header[i]), *(len(b[i]) for b in body))
              for i in range(len(header))]
    lines = [
        "Table IV: parallelization experience — violating static "
        "dependences at the parallelized locations",
        _fmt_row(header, widths),
        _rule(widths),
    ]
    lines.extend(_fmt_row(b, widths) for b in body)
    return "\n".join(lines)


def render_table5(rows: list[Table5Row], workers: int = 4) -> str:
    """Table V: parallelization results."""
    header = ["Benchmark", "T_seq(instr)", "T_par(instr)", "Speedup",
              "Paper seq(s)", "Paper par(s)", "Paper speedup"]
    body = []
    for r in rows:
        body.append([
            r.name, str(r.t_seq), str(r.t_par), f"{r.speedup:.2f}",
            f"{r.paper_seq:.2f}", f"{r.paper_par:.2f}",
            f"{r.paper_speedup:.2f}",
        ])
    widths = [max(len(header[i]), *(len(b[i]) for b in body))
              for i in range(len(header))]
    lines = [
        f"Table V: parallelization results ({workers} workers, "
        "futures simulation)",
        _fmt_row(header, widths),
        _rule(widths),
    ]
    lines.extend(_fmt_row(b, widths) for b in body)
    return "\n".join(lines)
