"""BENCH_advisor.json: the what-if advisor across the Table III suite.

For every workload the bench runs the trace-grounded ``whatif``
analysis (record once, replay — the advisor's hot path never
re-executes the program) and then *differentially verifies* its
predictions: the best candidate is re-simulated with
:func:`~repro.parallel.estimator.estimate_speedup` driving a fresh
live execution, same construct and same privatization list. Extraction
is a pure function of the event stream, so the two sweeps must agree
exactly — a mismatch means the replay path lost or invented events.

Where the paper names a parallelization target (Table IV/V rows), the
bench also sweeps that exact location with its curated privatization
list, so the artifact shows the advisor's pick next to the paper's.
"""

from __future__ import annotations

import os
import tempfile
from typing import Any, Iterable

from repro.analysis.constructs import ConstructTable
from repro.ir.lowering import compile_source
from repro.parallel.estimator import (EstimatorError, find_construct,
                                      simulate_speedup)
from repro.parallel.taskgraph import LiveSource, extract_task_graphs
from repro.util import atomic_write_json
from repro.workloads import get
from repro.workloads.registry import TABLE3_ORDER

#: Worker counts the artifact sweeps by default (Table V uses 4; the
#: spread shows where each workload saturates).
DEFAULT_WORKERS = (2, 4, 8, 16)


def _direct_sweep(program, *, pc: int,
                  private_vars: tuple[str, ...] = (),
                  workers: Iterable[int]) -> dict[str, float]:
    """Live-execution speedups for one construct (the oracle side).

    One execution extracts the graph; each worker count only re-runs
    the scheduler — the graph does not depend on the count."""
    graphs = extract_task_graphs(LiveSource(program),
                                 {pc: private_vars})
    name = ConstructTable(program).by_pc[pc].name
    return {str(count): round(
                simulate_speedup(graphs[pc], target_name=name,
                                 workers=count).speedup, 4)
            for count in workers}


def advisor_row(name: str, scale: float, workers: tuple[int, ...],
                top: int, session) -> dict[str, Any]:
    """One workload's predicted-vs-simulated advisor record."""
    workload = get(name, scale)
    result = session.advise(workload.source, filename=name,
                            workers=workers, top=top)
    data = result.data
    row: dict[str, Any] = {
        "name": name,
        "total_instructions": data["total_instructions"],
        "workers": list(workers),
        "candidates": len(data["candidates"]),
        "skipped": [{"name": e["name"], "verdict": e["verdict"],
                     "reason": e["reason"]} for e in data["skipped"]],
        "best": data["best"],
        "predicted": None,
        "simulated": None,
        "verified_identical": None,
    }
    program = compile_source(workload.source, name)
    if data["candidates"]:
        best = data["candidates"][0]
        predicted = {w: best["speedups"][w]["speedup"]
                     for w in best["speedups"]}
        simulated = _direct_sweep(
            program, pc=best["pc"],
            private_vars=tuple(best["privatized_globals"]),
            workers=workers)
        row["predicted"] = predicted
        row["simulated"] = simulated
        row["verified_identical"] = predicted == simulated

    if workload.targets:
        target, line = workload.primary_target()
        try:
            target_pc = find_construct(program, line=line)
            paper_sweep = _direct_sweep(
                program, pc=target_pc,
                private_vars=target.private_vars, workers=workers)
        except EstimatorError as exc:
            row["paper_target"] = {"line": line, "error": str(exc)}
        else:
            advised_pcs = {c["pc"] for c in data["candidates"]}
            row["paper_target"] = {
                "line": line,
                "fn": target.fn_name,
                "private_vars": list(target.private_vars),
                "speedups": paper_sweep,
                "advised": target_pc in advised_pcs,
            }
    return row


def advisor_bench(names: list[str] | None = None, scale: float = 0.5,
                  workers: tuple[int, ...] = DEFAULT_WORKERS,
                  top: int = 8,
                  out_path: str | os.PathLike = "BENCH_advisor.json"
                  ) -> dict[str, Any]:
    """Run the advisor sweep over ``names`` and write the artifact."""
    from repro.api import Session

    if names is None:
        names = list(TABLE3_ORDER)
    rows = []
    with tempfile.TemporaryDirectory(prefix="alchemist-advise-") as tmp:
        with Session(cache_dir=tmp) as session:
            for name in names:
                rows.append(advisor_row(name, scale, tuple(workers),
                                        top, session))
    verified = [r["name"] for r in rows
                if r["verified_identical"] is True]
    with_candidates = [r["name"] for r in rows if r["candidates"]]
    data = {
        "scale": scale,
        "workers": list(workers),
        "rows": rows,
        "summary": {
            "workloads": len(rows),
            "with_candidates": with_candidates,
            "verified_identical": verified,
            "all_verified": all(r["verified_identical"] in (True, None)
                                for r in rows),
        },
    }
    atomic_write_json(out_path, data, sort_keys=True)
    return data
