"""Experiment drivers behind every table and figure."""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

from repro.core.alchemist import Alchemist, ProfileOptions
from repro.core.profile_data import DepKind
from repro.core.report import ConflictCounts, Fig6Row, ProfileReport
from repro.ir.lowering import compile_source
from repro.parallel.estimator import SpeedupResult, estimate_speedup
from repro.util import atomic_write_json
from repro.workloads import all_workloads, get
from repro.workloads.base import Workload


@dataclass
class WorkloadRun:
    """One profiled workload plus its baseline timing."""

    workload: Workload
    report: ProfileReport

    @property
    def slowdown(self) -> float | None:
        return self.report.stats.slowdown


def profile_workload(workload: Workload, *, measure_baseline: bool = True,
                     pool_size: int = 4096,
                     track_war_waw: bool = True) -> WorkloadRun:
    """Profile one workload (optionally timing the uninstrumented run)."""
    options = ProfileOptions(pool_size=pool_size,
                             track_war_waw=track_war_waw,
                             measure_baseline=measure_baseline)
    report = Alchemist(options).profile(workload.source)
    return WorkloadRun(workload, report)


# ---------------------------------------------------------------------------
# Table III — benchmarks, construct counts, runtimes
# ---------------------------------------------------------------------------

@dataclass
class Table3Row:
    """One measured row next to the paper's."""

    name: str
    loc: int
    static: int
    dynamic: int
    orig_seconds: float
    prof_seconds: float
    paper_loc: str
    paper_static: int
    paper_dynamic: int
    paper_orig: float
    paper_prof: float

    @property
    def slowdown(self) -> float:
        if self.orig_seconds <= 0:
            return float("nan")
        return self.prof_seconds / self.orig_seconds

    @property
    def paper_slowdown(self) -> float:
        return self.paper_prof / self.paper_orig


def table3_rows(scale: float = 1.0,
                names: list[str] | None = None) -> list[Table3Row]:
    """Measure the Table III columns for every workload."""
    rows = []
    workloads = (all_workloads(scale) if names is None
                 else [get(n, scale) for n in names])
    for workload in workloads:
        run = profile_workload(workload, measure_baseline=True)
        stats = run.report.stats
        paper = workload.paper
        rows.append(Table3Row(
            name=workload.name,
            loc=workload.loc,
            static=stats.static_constructs,
            dynamic=stats.dynamic_instances,
            orig_seconds=stats.baseline_seconds or 0.0,
            prof_seconds=stats.wall_seconds,
            paper_loc=paper.loc,
            paper_static=paper.static_constructs,
            paper_dynamic=paper.dynamic_constructs,
            paper_orig=paper.orig_seconds,
            paper_prof=paper.prof_seconds,
        ))
    return rows


# ---------------------------------------------------------------------------
# Table IV — conflicts at the parallelized locations
# ---------------------------------------------------------------------------

@dataclass
class Table4Row:
    name: str
    location: str
    raw: int
    waw: int
    war: int
    paper_raw: int
    paper_waw: int
    paper_war: int


#: Workloads appearing in the paper's Table IV.
TABLE4_WORKLOADS = ["bzip2", "ogg", "aes", "par2"]


def table4_rows(scale: float = 1.0) -> list[Table4Row]:
    """Violating static dependence counts at each parallelized location."""
    rows = []
    for name in TABLE4_WORKLOADS:
        workload = get(name, scale)
        run = profile_workload(workload, measure_baseline=False)
        for target, line in workload.target_lines():
            counts: ConflictCounts = run.report.location_conflicts(line)
            rows.append(Table4Row(
                name=workload.name,
                location=counts.location,
                raw=counts.raw,
                waw=counts.waw,
                war=counts.war,
                paper_raw=target.paper_raw,
                paper_waw=target.paper_waw,
                paper_war=target.paper_war,
            ))
    return rows


# ---------------------------------------------------------------------------
# Table V — parallelization speedups
# ---------------------------------------------------------------------------

@dataclass
class Table5Row:
    name: str
    t_seq: int
    t_par: int
    speedup: float
    paper_seq: float
    paper_par: float
    paper_speedup: float
    result: SpeedupResult


#: Workloads appearing in the paper's Table V.
TABLE5_WORKLOADS = ["bzip2", "ogg", "par2", "aes"]


def table5_rows(scale: float = 1.0, workers: int = 4,
                privatize: bool = True) -> list[Table5Row]:
    """Simulated speedups for the paper's four parallelized programs."""
    rows = []
    for name in TABLE5_WORKLOADS:
        workload = get(name, scale)
        target, line = workload.primary_target()
        program = compile_source(workload.source)
        private = target.private_vars if privatize else ()
        result = estimate_speedup(program=program, line=line,
                                  workers=workers, privatize=privatize,
                                  private_vars=private)
        paper = workload.paper_speedup
        rows.append(Table5Row(
            name=workload.name,
            t_seq=result.t_seq,
            t_par=result.t_par,
            speedup=result.speedup,
            paper_seq=paper.seq_seconds,
            paper_par=paper.par_seconds,
            paper_speedup=paper.speedup,
            result=result,
        ))
    return rows


# ---------------------------------------------------------------------------
# Fig. 2 / Fig. 3 — the gzip profile listing
# ---------------------------------------------------------------------------

def gzip_profile_listing(scale: float = 1.0) -> tuple[ProfileReport, str]:
    """The gzip profile in the paper's Fig. 2/3 presentation."""
    from repro.bench.figures import render_profile_listing

    workload = get("gzip", scale)
    run = profile_workload(workload, measure_baseline=False)
    return run.report, render_profile_listing(run.report)


# ---------------------------------------------------------------------------
# Fig. 6 — size vs. violating static RAW dependences
# ---------------------------------------------------------------------------

@dataclass
class Fig6Panel:
    title: str
    rows: list[Fig6Row]
    note: str = ""


def fig6_data(scale: float = 1.0, top: int = 12) -> dict[str, Fig6Panel]:
    """All four Fig. 6 panels plus the Delaunay observation."""
    panels: dict[str, Fig6Panel] = {}

    gzip_run = profile_workload(get("gzip", scale), measure_baseline=False)
    report = gzip_run.report
    panels["a"] = Fig6Panel(
        title="Fig 6(a) gzip",
        rows=report.fig6_series(top),
    )
    # Fig 6(b): remove the parallelized C1 and every construct with one
    # instance per C1 instance, then look again.
    c1 = report.fig6_series(1)[0].view.pc
    removed = {c1} | report.nested_singletons(c1)
    panels["b"] = Fig6Panel(
        title="Fig 6(b) gzip after removing C1 and nested singletons",
        rows=report.fig6_series(top, exclude=removed),
        note=f"removed {len(removed)} construct(s)",
    )

    parser_run = profile_workload(get("197.parser", scale),
                                  measure_baseline=False)
    panels["c"] = Fig6Panel(
        title="Fig 6(c) 197.parser",
        rows=parser_run.report.fig6_series(top),
        note="C1/C2 (dictionary) are I/O bound despite low violations",
    )

    lisp_run = profile_workload(get("130.li", scale),
                                measure_baseline=False)
    panels["d"] = Fig6Panel(
        title="Fig 6(d) 130.lisp",
        rows=lisp_run.report.fig6_series(top),
        note="C1=xlload (initial call + one per batch iteration)",
    )

    delaunay_run = profile_workload(get("delaunay", scale),
                                    measure_baseline=False)
    refine = max((v for v in delaunay_run.report.constructs()
                  if v.static.is_loop),
                 key=lambda v: v.total_duration)
    panels["delaunay"] = Fig6Panel(
        title="Delaunay (negative control, §IV-B.1)",
        rows=delaunay_run.report.fig6_series(top),
        note=(f"hottest loop carries "
              f"{refine.violating_count(DepKind.RAW)} violating static "
              "RAW dependences"),
    )
    return panels


# ---------------------------------------------------------------------------
# Trace subsystem — replay-vs-rerun speedup (BENCH_trace.json)
# ---------------------------------------------------------------------------

@dataclass
class TraceBenchRow:
    """One workload's record-once-replay-many comparison.

    ``live_seconds`` is the honest baseline: one *live instrumented run
    per analysis* (the dependence profiler via ``Alchemist.profile``,
    the other consumers attached directly to an interpreter run — every
    consumer doubles as a live tracer). ``record + replay`` answers the
    same N questions with a single execution.
    """

    name: str
    analyses: tuple[str, ...]
    live_seconds: float
    record_seconds: float
    replay_seconds: float
    events: int
    trace_bytes: int

    @property
    def replay_total(self) -> float:
        return self.record_seconds + self.replay_seconds

    @property
    def speedup(self) -> float:
        if self.replay_total <= 0:
            return float("nan")
        return self.live_seconds / self.replay_total


def trace_bench_rows(names: list[str] | None = None, scale: float = 0.5,
                     analyses: tuple[str, ...] = ("dep", "locality", "hot"),
                     repeats: int = 1,
                     version: int | None = None) -> list[TraceBenchRow]:
    """Measure record+replay vs. N live instrumented runs per workload.

    ``repeats`` > 1 keeps the minimum of several timings per side,
    damping scheduler noise on small workloads. ``version`` pins the
    trace format (default: the writer's default, currently v2 — its
    compact decode costs ~10% replay time vs v1; pass ``version=1`` to
    bench the fixed-record format).
    """
    import os
    import tempfile

    from repro.analyses import make_analyses
    from repro.runtime.interpreter import run_source
    from repro.trace.events import DEFAULT_TRACE_VERSION
    from repro.trace.replay import replay_trace
    from repro.trace.writer import record_source

    from repro.workloads import names as workload_names

    if version is None:
        version = DEFAULT_TRACE_VERSION
    rows = []
    for name in (names if names is not None else workload_names()):
        workload = get(name, scale)
        source = workload.source

        # Untimed warmup: both sides touch the same code paths once, so
        # first-measurement effects (imports, allocator growth) don't
        # land on whichever side happens to run first.
        with tempfile.TemporaryDirectory() as tmp:
            warm = os.path.join(tmp, "warm.trace")
            record_source(source, warm, version=version)
            replay_trace(warm, analyses)
        Alchemist().profile(source)

        live_best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for analysis in analyses:
                if analysis == "dep":
                    Alchemist().profile(source)
                else:
                    # Registered analyses double as live tracers.
                    run_source(source, tracer=make_analyses([analysis])[0])
            live_best = min(live_best, time.perf_counter() - start)

        record_best = float("inf")
        replay_best = float("inf")
        events = trace_bytes = 0
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, f"{name}.trace")
            for _ in range(repeats):
                start = time.perf_counter()
                recorded = record_source(source, path, version=version)
                record_best = min(record_best,
                                  time.perf_counter() - start)
                events, trace_bytes = recorded.events, recorded.trace_bytes
                start = time.perf_counter()
                replay_trace(path, analyses)
                replay_best = min(replay_best,
                                  time.perf_counter() - start)
        rows.append(TraceBenchRow(
            name=name, analyses=tuple(analyses), live_seconds=live_best,
            record_seconds=record_best, replay_seconds=replay_best,
            events=events, trace_bytes=trace_bytes))
    return rows


def trace_bench(names: list[str] | None = None, scale: float = 0.5,
                analyses: tuple[str, ...] = ("dep", "locality", "hot"),
                out_path: str | None = "BENCH_trace.json",
                repeats: int = 2, version: int | None = None) -> dict:
    """The BENCH_trace.json artifact: per-workload rows plus totals."""
    from repro.trace.events import DEFAULT_TRACE_VERSION

    if version is None:
        version = DEFAULT_TRACE_VERSION
    rows = trace_bench_rows(names, scale, analyses, repeats, version)
    live = sum(r.live_seconds for r in rows)
    rec = sum(r.record_seconds for r in rows)
    rep = sum(r.replay_seconds for r in rows)
    data = {
        "bench": "trace_replay_vs_rerun",
        "scale": scale,
        "analyses": list(analyses),
        "repeats": repeats,
        "trace_version": version,
        "rows": [dict(asdict(r), speedup=r.speedup) for r in rows],
        "total": {
            "live_seconds": live,
            "record_seconds": rec,
            "replay_seconds": rep,
            "speedup": live / (rec + rep) if rec + rep > 0 else float("nan"),
        },
        "columnar": trace_decode_bench(names, scale=max(scale, 1.0),
                                       repeats=max(repeats, 3),
                                       out_path=None),
    }
    if out_path:
        atomic_write_json(out_path, data)
    return data


# ---------------------------------------------------------------------------
# Columnar batch decode — replay-core speedup (folded into BENCH_trace.json)
# ---------------------------------------------------------------------------

@dataclass
class DecodeBenchRow:
    """One workload's serial replay core, scalar vs columnar decode.

    Both sides replay the same pre-recorded v2 trace through the same
    consumer with the program pre-compiled, so the only difference is
    the decode + dispatch machinery: per-event generator dispatch
    (``columnar=False``) against whole-block columnar batches
    (``columnar=True``).
    """

    name: str
    analyses: tuple[str, ...]
    events: int
    scalar_seconds: float
    batch_seconds: float

    @property
    def speedup(self) -> float:
        if self.batch_seconds <= 0:
            return float("nan")
        return self.scalar_seconds / self.batch_seconds

    @property
    def batch_events_per_sec(self) -> float:
        if self.batch_seconds <= 0:
            return float("nan")
        return self.events / self.batch_seconds


def trace_decode_bench_rows(names: list[str] | None = None,
                            scale: float = 1.0,
                            analyses: tuple[str, ...] = ("counts",),
                            repeats: int = 3) -> list[DecodeBenchRow]:
    """Time serial v2 replay with the columnar path off, then on.

    The trace is recorded once per workload and the program compiled
    outside the timed region; each side keeps the minimum of
    ``repeats`` runs. ``counts`` is the default probe because it is
    the cheapest consumer — the measurement is then dominated by the
    replay core itself rather than analysis bookkeeping.
    """
    import os
    import tempfile

    from repro.ir.lowering import compile_source
    from repro.trace.replay import replay_trace
    from repro.trace.writer import record_source
    from repro.workloads import names as workload_names

    rows = []
    for name in (names if names is not None else workload_names()):
        workload = get(name, scale)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, f"{name}.trace")
            recorded = record_source(workload.source, path, version=2)
            program = compile_source(workload.source)
            # Warm both paths before timing either.
            replay_trace(path, analyses, program, columnar=True)
            replay_trace(path, analyses, program, columnar=False)
            timings = {}
            for label, columnar in (("scalar", False), ("batch", True)):
                best = float("inf")
                for _ in range(repeats):
                    start = time.perf_counter()
                    replay_trace(path, analyses, program, columnar=columnar)
                    best = min(best, time.perf_counter() - start)
                timings[label] = best
        rows.append(DecodeBenchRow(
            name=name, analyses=tuple(analyses), events=recorded.events,
            scalar_seconds=timings["scalar"],
            batch_seconds=timings["batch"]))
    return rows


def trace_decode_bench(names: list[str] | None = None, scale: float = 1.0,
                       analyses: tuple[str, ...] = ("counts",),
                       repeats: int = 3,
                       out_path: str | None = None) -> dict:
    """Batch-vs-scalar replay-core comparison (the columnar section of
    BENCH_trace.json, or a standalone artifact when ``out_path`` is
    given)."""
    rows = trace_decode_bench_rows(names, scale, analyses, repeats)
    scalar = sum(r.scalar_seconds for r in rows)
    batch = sum(r.batch_seconds for r in rows)
    data = {
        "bench": "trace_columnar_vs_scalar",
        "scale": scale,
        "analyses": list(analyses),
        "repeats": repeats,
        "rows": [dict(asdict(r), speedup=r.speedup) for r in rows],
        "total": {
            "scalar_seconds": scalar,
            "batch_seconds": batch,
            "events": sum(r.events for r in rows),
            "speedup": scalar / batch if batch > 0 else float("nan"),
        },
    }
    if out_path:
        atomic_write_json(out_path, data)
    return data


# ---------------------------------------------------------------------------
# Parallel sharded replay — speedup artifact (BENCH_parallel.json)
# ---------------------------------------------------------------------------

def _makespan(durations: list[float], jobs: int) -> float:
    """Longest-processing-time schedule of segment times over ``jobs``
    workers — the wall clock the pool achieves once every worker has a
    core to itself."""
    bins = [0.0] * max(1, jobs)
    for duration in sorted(durations, reverse=True):
        index = bins.index(min(bins))
        bins[index] += duration
    return max(bins)


def parallel_bench(names: list[str] | None = None, scale: float = 2.0,
                   analyses: tuple[str, ...] = ("dep", "locality", "hot"),
                   jobs: int = 4, repeats: int = 2,
                   out_path: str | None = "BENCH_parallel.json") -> dict:
    """Measure sharded parallel replay against one serial pass.

    Per workload: record once (checkpointed), time the serial replay
    and the ``jobs``-worker parallel replay (minimum over ``repeats``),
    verify the merged results equal serial bit-for-bit, and report two
    speedups:

    * ``measured_wall_speedup`` — serial / parallel wall on *this*
      box. Only meaningful with at least ``jobs`` idle cores; on the
      single-core CI runners it hovers near 1x by construction.
    * ``speedup`` (the headline) — serial divided by the schedule the
      measured per-segment times achieve on ``jobs`` workers (an LPT
      makespan) plus the measured parent-side merge. This is the wall
      clock a ``jobs``-core box gets, derived entirely from measured
      work, not from a model of it.
    """
    import os
    import tempfile

    from repro.trace.parallel import parallel_replay
    from repro.trace.replay import replay_trace
    from repro.trace.writer import record_source

    from repro.workloads import names as workload_names

    rows = []
    for name in (names if names is not None else workload_names()):
        workload = get(name, scale)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, f"{name}.trace")
            recorded = record_source(workload.source, path)
            if recorded.checkpoints < jobs * 3:
                # Too few seams for a balanced split: re-record with an
                # interval sized to the now-known event count.
                interval = max(1000, recorded.events // (jobs * 4))
                recorded = record_source(workload.source, path,
                                         checkpoint_interval=interval)

            serial_best = float("inf")
            serial_outcome = None
            for _ in range(repeats):
                start = time.perf_counter()
                serial_outcome = replay_trace(path, analyses)
                serial_best = min(serial_best,
                                  time.perf_counter() - start)

            parallel_best = float("inf")
            outcome = None
            for _ in range(repeats):
                start = time.perf_counter()
                candidate = parallel_replay(path, analyses, jobs=jobs)
                elapsed = time.perf_counter() - start
                if elapsed < parallel_best:
                    parallel_best = elapsed
                    outcome = candidate

            identical = all(
                outcome.reports[a].to_dict() ==
                serial_outcome.reports[a].to_dict()
                for a in analyses)
            scheduled = (_makespan(outcome.segment_cpu_seconds, jobs)
                         + outcome.merge_seconds)
            rows.append({
                "name": name,
                "events": recorded.events,
                "trace_bytes": recorded.trace_bytes,
                "checkpoints": recorded.checkpoints,
                "segments": len(outcome.plan.segments),
                "mode": outcome.mode,
                "results_identical_to_serial": identical,
                "serial_seconds": serial_best,
                "parallel_wall_seconds": parallel_best,
                "segment_seconds": outcome.segment_seconds,
                "segment_cpu_seconds": outcome.segment_cpu_seconds,
                "merge_seconds": outcome.merge_seconds,
                "scheduled_seconds": scheduled,
                "measured_wall_speedup": (serial_best / parallel_best
                                          if parallel_best > 0
                                          else float("nan")),
                "speedup": (serial_best / scheduled
                            if scheduled > 0 else float("nan")),
            })
    meeting = [r["name"] for r in rows if r["speedup"] >= 2.0]
    data = {
        "bench": "parallel_sharded_replay",
        "scale": scale,
        "analyses": list(analyses),
        "jobs": jobs,
        "repeats": repeats,
        "bench_cpus": os.cpu_count(),
        "note": ("'speedup' schedules the measured per-segment worker "
                 "CPU times over the requested jobs (LPT makespan) "
                 "plus the measured merge — the wall clock of a box "
                 "with that many idle cores; 'measured_wall_speedup' "
                 "is the raw wall ratio on bench_cpus cores (near 1x "
                 "when bench_cpus < jobs, by construction)."),
        "rows": rows,
        "summary": {
            "workloads_at_2x": meeting,
            "target_met": len(meeting) >= 4,
            "all_results_identical": all(
                r["results_identical_to_serial"] for r in rows),
        },
    }
    if out_path:
        atomic_write_json(out_path, data)
    return data
