"""Unified analysis plugins: one registry for live, replay, and batch.

Importing this package registers the bundled analyses (``dep``,
``locality``, ``hot``, ``counts``, ``flat``, ``context``, ``whatif``).
See :mod:`repro.analyses.base` for the protocol and a worked example of
registering your own.
"""

from repro.analyses.base import (Analysis, AnalysisContext, AnalysisError,
                                 AnalysisResult, OptionSpec, analysis_names,
                                 get_analysis, live_hooks, make_analyses,
                                 parse_spec, register, registry, unregister)
from repro.analyses.builtin import (ContextDependenceAnalysis,
                                    CountingAnalysis, DependenceAnalysis,
                                    FlatDependenceAnalysis, HotAddress,
                                    HotAddressAnalysis, LocalityAnalysis,
                                    LocalityResult, profile_summary)
from repro.analyses.whatif import WhatIfAnalysis

__all__ = [
    "Analysis",
    "AnalysisContext",
    "AnalysisError",
    "AnalysisResult",
    "OptionSpec",
    "analysis_names",
    "get_analysis",
    "live_hooks",
    "make_analyses",
    "parse_spec",
    "register",
    "registry",
    "unregister",
    "DependenceAnalysis",
    "LocalityAnalysis",
    "LocalityResult",
    "HotAddress",
    "HotAddressAnalysis",
    "CountingAnalysis",
    "FlatDependenceAnalysis",
    "ContextDependenceAnalysis",
    "WhatIfAnalysis",
    "profile_summary",
]
