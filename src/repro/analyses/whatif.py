"""The what-if advisor: Table V as a first-class analysis.

``whatif`` closes the paper's profile-to-decision loop (§IV-B) on the
unified analysis protocol: one event stream builds the dependence
profile, the :class:`~repro.core.advisor.Advisor` turns it into ranked
candidate constructs with required privatizations, and every
non-blocked candidate is swept through the
:class:`~repro.parallel.simulator.FutureSimulator` across a set of
worker counts. The result is a JSON-able ranking of "parallelize this,
privatize that, expect roughly x3.5 on 4 workers" answers.

Two passes over the *same* event stream are needed — candidates are
only known once the profile exists — and neither re-executes the
program when the events came from a recording: the second pass replays
``ctx.trace_path`` through one
:class:`~repro.parallel.taskgraph.TaskGraphTracer` per candidate (all
riding a single replay; ``jobs`` > 1 fans candidates across worker
processes instead). Only a live run (``mode="live"``) falls back to
executing the program again for the extraction pass, which is exactly
what the pre-registry estimator always did.

The profiling pass is inherited wholesale from
:class:`~repro.analyses.builtin.DependenceAnalysis` — including its
segment/merge protocol, so ``whatif`` runs under sharded parallel
replay: workers merge the dependence profile exactly as ``dep`` does,
and the sweep happens once after the fold. Results are a pure function
of the event stream, so live, serial-replay and parallel-replay runs
produce identical output — the registry parity tests cover ``whatif``
like every other plugin.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any

from repro.analyses.base import (AnalysisContext, AnalysisResult,
                                 AnalysisSegment, OptionSpec, register)
from repro.analyses.builtin import DependenceAnalysis
from repro.core.advisor import Advisor, Recommendation, Verdict
from repro.core.report import ProfileReport
from repro.ir.cfg import ProgramIR
from repro.parallel.simulator import FutureSimulator
from repro.parallel.taskgraph import (LiveSource, TaskGraph, TraceSource,
                                      extract_task_graphs)

#: Worker counts swept when the caller does not choose (Table V runs
#: on 4 workers; the sweep shows where scaling saturates).
DEFAULT_WORKERS = "2,4,8,16"


def parse_worker_counts(spec: str) -> tuple[int, ...]:
    """``"2,4,8"`` -> ``(2, 4, 8)``; rejects empties, non-positives and
    duplicates with messages naming the offender."""
    counts: list[int] = []
    parts = [p.strip() for p in str(spec).split(",")]
    if not any(parts):
        raise ValueError("workers: need at least one worker count")
    for part in parts:
        if not part:
            raise ValueError(
                f"workers: empty entry in {spec!r} (use e.g. '2,4,8')")
        try:
            count = int(part)
        except ValueError:
            raise ValueError(
                f"workers: {part!r} is not an integer") from None
        if count < 1:
            raise ValueError(
                f"workers: counts must be >= 1, got {count}")
        if count in counts:
            raise ValueError(f"workers: duplicate count {count}")
        counts.append(count)
    return tuple(counts)


def _private_globals(program: ProgramIR,
                     rec: Recommendation) -> tuple[str, ...]:
    """The advisor's privatization list restricted to program globals.

    Privatized *locals* need no RAW exemption — each spawned instance
    owns a fresh frame already — so only global names feed the
    extraction's skip set (the paper's per-thread ``ivec`` copies).
    """
    names = []
    for name in rec.privatize:
        try:
            program.global_var(name)
        except KeyError:
            continue
        names.append(name)
    return tuple(names)


def _extract_job(payload: dict) -> dict[int, TaskGraph]:
    """Worker entry for ``jobs`` > 1: replay the trace once for one
    chunk of candidates (top-level so it pickles)."""
    source = TraceSource(payload["trace_path"])
    return extract_task_graphs(
        source, {int(pc): tuple(vars_) for pc, vars_ in
                 payload["targets"].items()})


@register
class WhatIfAnalysis(DependenceAnalysis):
    """Predicted futures-parallelization speedups per candidate
    construct, grounded in the profiled event stream."""

    name = "whatif"
    description = ("what-if advisor: predicted futures speedup per "
                   "candidate construct (Table V sweep)")
    supports_segments = True  # dep's merge machinery, inherited
    # batch_kind = "span" and consume_batch are inherited from
    # DependenceAnalysis: the advisor profiles through the same bound
    # tracer hooks, so dep's span fast path is exactly right here too.
    options = (
        OptionSpec("workers", str, DEFAULT_WORKERS,
                   "comma-separated worker counts to sweep"),
        OptionSpec("top", int, 8,
                   "candidate constructs taken from the advisor"),
        OptionSpec("jobs", int, 1,
                   "processes for the extraction pass over a recorded "
                   "trace (0 = one per CPU; results identical)"),
    )

    def __init__(self, workers: str = DEFAULT_WORKERS, top: int = 8,
                 jobs: int = 1):
        super().__init__()  # full WAR/WAW profile — the advisor needs it
        self.worker_counts = parse_worker_counts(workers)
        if top < 1:
            raise ValueError(f"top must be >= 1, got {top}")
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        self.top = top
        self.jobs = jobs

    def _sweep_options(self) -> dict[str, Any]:
        return {"workers": list(self.worker_counts), "top": self.top,
                "jobs": self.jobs}

    # -- serial / live path ----------------------------------------------

    def finish(self, ctx: AnalysisContext) -> AnalysisResult:
        report = super().finish(ctx).payload
        return _advise(report, ctx, self.worker_counts, self.top,
                       self.jobs)

    # -- segment/merge protocol -------------------------------------------
    #
    # The profile folds exactly as `dep`'s; the sweep options ride in
    # each segment's state so the classmethod finalize can rebuild them
    # (segment workers run in other processes — `self` is long gone by
    # merge time).

    def export_segment(self, ctx: AnalysisContext) -> AnalysisSegment:
        segment = super().export_segment(ctx)
        segment.state["whatif"] = self._sweep_options()
        return segment

    @classmethod
    def _internalize(cls, state: dict) -> dict:
        internal = super()._internalize(state)
        internal["whatif"] = state["whatif"]
        return internal

    @classmethod
    def finalize_segments(cls, state: dict,
                          ctx: AnalysisContext) -> AnalysisResult:
        sweep = state["whatif"] if "whatif" in state else None
        dep_result = super().finalize_segments(state, ctx)
        if sweep is None:  # pragma: no cover - segments always carry it
            sweep = {"workers": [2, 4, 8, 16], "top": 8, "jobs": 1}
        return _advise(dep_result.payload, ctx,
                       tuple(sweep["workers"]), sweep["top"],
                       sweep["jobs"])


# ---------------------------------------------------------------------------
# The sweep itself — shared by finish() and finalize_segments()
# ---------------------------------------------------------------------------

def _extract(ctx: AnalysisContext,
             targets: dict[int, tuple[str, ...]],
             jobs: int) -> dict[int, TaskGraph]:
    """One more pass over the same event stream: replay the recording
    when there is one, execute the program otherwise."""
    if ctx.trace_path is not None:
        jobs = jobs if jobs else (os.cpu_count() or 1)
        if jobs > 1 and len(targets) > 1 \
                and not multiprocessing.current_process().daemon:
            # Daemonic workers (e.g. a batch-driver replay job) cannot
            # spawn children; extraction falls back to the one-pass
            # serial replay, which is result-identical anyway.
            return _extract_parallel(ctx, targets, jobs)
        return extract_task_graphs(
            TraceSource(ctx.trace_path, ctx.program), targets)
    # The profile pass completed, so the deterministic re-run finishes
    # at exactly ctx.final_time — budget it accordingly rather than
    # inheriting a default that may be *smaller* than the session's
    # (a raised-budget session would otherwise trip StepLimitExceeded
    # here mid-extraction).
    return extract_task_graphs(
        LiveSource(ctx.program, max_steps=max(ctx.final_time, 1)),
        targets)


def _extract_parallel(ctx: AnalysisContext,
                      targets: dict[int, tuple[str, ...]],
                      jobs: int) -> dict[int, TaskGraph]:
    """Fan candidate chunks across processes, one replay each.

    Graph extraction is independent per candidate, so the merged
    result is identical to the serial pass whatever the split."""
    pcs = sorted(targets)
    jobs = min(jobs, len(pcs))
    chunks: list[dict[str, tuple[str, ...]]] = [{} for _ in range(jobs)]
    for index, pc in enumerate(pcs):
        chunks[index % jobs][str(pc)] = targets[pc]
    payloads = [{"trace_path": ctx.trace_path, "targets": chunk}
                for chunk in chunks if chunk]
    with multiprocessing.Pool(processes=len(payloads)) as pool:
        results = pool.map(_extract_job, payloads)
    graphs: dict[int, TaskGraph] = {}
    for partial in results:
        graphs.update(partial)
    return graphs


def _advise(report: ProfileReport, ctx: AnalysisContext,
            worker_counts: tuple[int, ...], top: int,
            jobs: int) -> AnalysisResult:
    """Advisor candidates × worker counts -> the ranked what-if result."""
    from repro.staticdep import report_for

    static = report_for(ctx.program, getattr(ctx, "telemetry", None))
    recommendations = Advisor(report, static_report=static).recommend(top)

    skipped: list[dict[str, Any]] = []
    simulate: list[Recommendation] = []
    entry_pc = ctx.program.main.entry_pc
    for rec in recommendations:
        if rec.view.pc == entry_pc:
            # ``main`` spans the entire run: there is no caller left to
            # spawn it from, so a sweep would report a vacuous x1.00 at
            # every worker count.
            entry = rec.summary()
            entry["reason"] = ("the entry procedure is the whole run — "
                               "there is nothing to spawn it from")
            skipped.append(entry)
        elif rec.verdict is Verdict.BLOCKED:
            entry = rec.summary()
            entry["reason"] = rec.blocked_reason
            skipped.append(entry)
        else:
            simulate.append(rec)

    from repro.telemetry import as_telemetry

    tm = as_telemetry(getattr(ctx, "telemetry", None))
    targets = {rec.view.pc: _private_globals(ctx.program, rec)
               for rec in simulate}
    with tm.span("advisor.extract", candidates=len(targets), jobs=jobs):
        graphs = _extract(ctx, targets, jobs) if targets else {}

    candidates: list[dict[str, Any]] = []
    with tm.span("advisor.sweep", candidates=len(simulate),
                 workers=list(worker_counts)):
        for rec in simulate:
            graph = graphs[rec.view.pc]
            entry = rec.summary()
            entry["privatized_globals"] = list(targets[rec.view.pc])
            if not graph.tasks:
                entry["reason"] = ("construct executed no instances — "
                                   "nothing to schedule")
                skipped.append(entry)
                continue
            entry["tasks"] = len(graph.tasks)
            entry["parallel_fraction"] = round(
                graph.parallel_fraction(), 6)
            sweep: dict[str, Any] = {}
            best: dict[str, Any] | None = None
            for workers in worker_counts:
                schedule = FutureSimulator(workers).schedule(graph)
                point = {
                    "speedup": round(schedule.speedup, 4),
                    "t_seq": schedule.t_seq,
                    "t_par": schedule.makespan,
                    "join_stall": schedule.join_stall,
                }
                sweep[str(workers)] = point
                if best is None or point["speedup"] > best["speedup"]:
                    best = dict(point, workers=workers)
            entry["speedups"] = sweep
            entry["best"] = best
            candidates.append(entry)
    tm.count("advisor.candidates_swept", len(candidates))

    # Rank by payoff: best predicted speedup first; ties fall back to
    # the advisor's ordering (already verdict-then-size) and finally
    # the pc so the order is total and mode-independent.
    advisor_rank = {rec.view.pc: index
                    for index, rec in enumerate(simulate)}
    candidates.sort(key=lambda c: (-c["best"]["speedup"],
                                   advisor_rank[c["pc"]], c["pc"]))
    data: dict[str, Any] = {
        "workers": list(worker_counts),
        "total_instructions": ctx.final_time,
        "candidates": candidates,
        "skipped": skipped,
        "best": ({"name": candidates[0]["name"],
                  "pc": candidates[0]["pc"],
                  "line": candidates[0]["line"],
                  **candidates[0]["best"]}
                 if candidates else None),
    }
    if ctx.sampling:
        data["sampled"] = ctx.sampling
    return AnalysisResult(analysis=WhatIfAnalysis.name, data=data,
                          text=_render(data), payload=report)


def _render(data: dict[str, Any]) -> str:
    counts = ", ".join(str(w) for w in data["workers"])
    lines = [f"What-if advisor: {len(data['candidates'])} "
             f"candidate(s) swept over {{{counts}}} worker(s)"]
    for rank, entry in enumerate(data["candidates"], start=1):
        private = (" privatize: " + ", ".join(entry["privatize"])
                   if entry["privatize"] else "")
        confidence = entry.get("confidence", "dynamic-only")
        lines.append(
            f"{rank:2d}. {entry['name']} (line {entry['line']}, "
            f"{entry['kind']}) [{entry['verdict']}, "
            f"{confidence} confidence]{private}")
        sweep = "  ".join(
            f"x{w}={entry['speedups'][str(w)]['speedup']:.2f}"
            for w in data["workers"])
        best = entry["best"]
        lines.append(
            f"    {sweep}  best x{best['workers']}: "
            f"{best['speedup']:.2f} (T_seq={best['t_seq']} "
            f"T_par={best['t_par']}, {entry['tasks']} task(s), "
            f"parallel fraction {entry['parallel_fraction']:.2f})")
    if not data["candidates"]:
        lines.append("  (no simulatable candidates — every construct "
                     "is blocked, below the size threshold, or never "
                     "ran)")
    if data["skipped"]:
        lines.append("skipped:")
        for entry in data["skipped"]:
            lines.append(f"  {entry['name']} (line {entry['line']}) "
                         f"[{entry['verdict']}]: {entry['reason']}")
    if data.get("sampled"):
        lines.append(
            f"NOTE: advised from a sampled trace ({data['sampled']}); "
            "missed dependences make these predictions optimistic — "
            "treat as hints, not proof.")
    return "\n".join(lines)
