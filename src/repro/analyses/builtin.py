"""The bundled analyses, all registered on the unified protocol.

Each class here used to live behind a different front door — the
dependence profiler behind ``Alchemist.profile``, the locality /
hot-address / counting consumers behind ``ReplayEngine``'s private
``CONSUMERS`` table, the flat and context baselines behind free
functions in ``repro.baselines``. They are now uniform plugins: every
one runs live, from a recorded trace, and in batch through the same
registry, and every one is covered by the registry-parametrized
live-vs-replay parity test.

Every bundled analysis also implements the segment/merge protocol
(``supports_segments``), so all of them run under sharded parallel
replay (:mod:`repro.trace.parallel`) with results bit-identical to a
serial pass; the cross-segment bookkeeping lives in
:mod:`repro.analyses.merging`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analyses.base import (Analysis, AnalysisContext,
                                 AnalysisError, AnalysisResult,
                                 AnalysisSegment, OptionSpec,
                                 SegmentSeed, register)
from repro.analysis.constructs import ConstructTable
from repro.baselines.context_profiler import (ContextProfile,
                                              ContextSensitiveTracer)
from repro.baselines.flat_profiler import FlatProfile, FlatTracer
from repro.core.profile_data import DepKind
from repro.core.report import ProfileReport, RunStats
from repro.core.tracer import AlchemistTracer
from repro.ir.cfg import ProgramIR
from repro.runtime.memory import Memory


def profile_summary(report: ProfileReport) -> dict[str, Any]:
    """Compact, JSON-able, order-stable digest of a ProfileReport.

    Captures exactly what the replay-equivalence criterion cares about:
    per-construct durations/instances and per-edge (min Tdep, count,
    variable hint), keyed deterministically.
    """
    constructs = {}
    for pc in sorted(report.store.profiles):
        profile = report.store.profiles[pc]
        edges = {}
        for (head, tail, kind), stats in sorted(
                profile.edges.items(),
                key=lambda item: (item[0][0], item[0][1], item[0][2].value)):
            edges[f"{head}->{tail}:{kind.value}"] = [
                stats.min_tdep, stats.count, stats.var_hint]
        constructs[str(pc)] = {
            "name": profile.static.name,
            "total_duration": profile.total_duration,
            "instances": profile.instances,
            "max_duration": profile.max_duration,
            "edges": edges,
        }
    return {
        "constructs": constructs,
        "instructions": report.stats.instructions,
        "dynamic_instances": report.stats.dynamic_instances,
        "violating_raw": sum(
            p.violating_count(DepKind.RAW)
            for p in report.store.profiles.values()),
        "exit_value": report.exit_value,
    }


def _dep_result(report: ProfileReport, track_war_waw: bool,
                sampling: str | None,
                telemetry: Any = None) -> AnalysisResult:
    """Shared result rendering for serial ``finish`` and the parallel
    ``finalize_segments`` — one code path, so the two cannot drift."""
    from repro.staticdep import fuse_profile, report_for

    kinds = ((DepKind.RAW, DepKind.WAW, DepKind.WAR)
             if track_war_waw else (DepKind.RAW,))
    data = profile_summary(report)
    text = report.to_text(kinds=kinds)
    if sampling:
        # A sampled stream distorts the profile in both directions:
        # dropped events hide dependences (violation counts
        # under-approximated), and a dropped WRITE re-pairs later
        # reads with a stale writer (spurious edges, shifted
        # distances).
        data["sampled"] = sampling
        text += (f"\nNOTE: profiled from a sampled trace "
                 f"({sampling}); dependences may be missed or "
                 "mis-paired and min distances shifted — treat as "
                 "lower-confidence hints, not proof.")
    static = report_for(report.program, telemetry)
    fusion, fusion_lines = fuse_profile(report, static, sampling, telemetry)
    data["static"] = fusion
    text += "\n" + "\n".join(fusion_lines)
    return AnalysisResult(analysis="dep", data=data, text=text,
                          payload=report)


@register
class DependenceAnalysis(Analysis):
    """The Alchemist dependence profiler as a plugin.

    Wraps the unmodified :class:`AlchemistTracer`, so the profile —
    per-construct edges, min-Tdep distances, durations, instance counts
    — is *identical* whether the events come from a live interpreter or
    a recorded trace (the equivalence tests assert this workload by
    workload).
    """

    name = "dep"
    description = ("Alchemist dependence profile: min RAW/WAR/WAW "
                   "distance per construct")
    supports_segments = True
    batch_kind = "span"
    options = (
        OptionSpec("pool_size", int, 4096,
                   "compatibility no-op: node allocation is GC-backed "
                   "and unbounded"),
        OptionSpec("track_war_waw", bool, True,
                   "also profile WAR/WAW dependences"),
    )

    def __init__(self, pool_size: int = 4096, track_war_waw: bool = True):
        if pool_size <= 0:
            raise ValueError(
                f"pool_size must be positive, got {pool_size}")
        self.pool_size = pool_size
        self.track_war_waw = track_war_waw
        self.table: ConstructTable | None = None
        self.tracer: AlchemistTracer | None = None

    def on_start(self, program: ProgramIR, memory: Memory) -> None:
        self.table = ConstructTable(program)
        tracer = AlchemistTracer(self.table, self.pool_size,
                                 self.track_war_waw)
        tracer.on_start(program, memory)
        self.tracer = tracer
        # Rebind the hot hooks straight to the inner tracer: both the
        # interpreter and the replay engine look methods up after
        # on_start, so dispatch skips this shim entirely.
        self.on_enter_function = tracer.on_enter_function
        self.on_exit_function = tracer.on_exit_function
        self.on_block_enter = tracer.on_block_enter
        self.on_branch = tracer.on_branch
        self.on_read = tracer.on_read
        self.on_write = tracer.on_write
        self.on_frame_free = tracer.on_frame_free
        self.on_finish = tracer.on_finish

    def consume_batch(self, batch) -> None:
        """Span fast path: replay the interior events of one
        memory-quiet span through whichever hooks are currently bound
        (the inner tracer after ``on_start``, the deferring segment
        wrapper after ``begin_segment``)."""
        on_read = self.on_read
        on_write = self.on_write
        on_block = self.on_block_enter
        on_branch = self.on_branch
        for etype, a, b, t in batch.rows():
            if etype == EV_READ:
                on_read(a, b, t)
            elif etype == EV_WRITE:
                on_write(a, b, t)
            elif etype == EV_BLOCK:
                on_block(a, t)
            elif etype == EV_BRANCH:
                on_branch(a, b, t)

    def finish(self, ctx: AnalysisContext) -> AnalysisResult:
        tracer = self.tracer
        stats = RunStats(
            wall_seconds=ctx.wall_seconds,
            baseline_seconds=None,
            instructions=ctx.final_time,
            dynamic_instances=tracer.store.dynamic_instances,
            static_constructs=self.table.static_count(),
            max_index_depth=tracer.stack.max_depth,
            raw_events=tracer.raw_events,
            war_events=tracer.war_events,
            waw_events=tracer.waw_events,
            edges_profiled=tracer.profiler.edges_profiled,
            pool=tracer.pool.stats,
            sampling=ctx.sampling,
        )
        report = ProfileReport(ctx.program, self.table, tracer.store,
                               stats, ctx.exit_value,
                               [tuple(v) for v in ctx.output])
        return _dep_result(report, self.track_war_waw, ctx.sampling,
                           getattr(ctx, "telemetry", None))

    # -- segment/merge protocol -------------------------------------------

    def begin_segment(self, program: ProgramIR, memory: Memory,
                      seed: SegmentSeed) -> None:
        from repro.analyses.merging import SegmentAlchemistTracer

        self.table = ConstructTable(program)
        inner = AlchemistTracer(self.table, self.pool_size,
                                self.track_war_waw)
        inner.on_start(program, memory)
        self.tracer = inner
        segment = SegmentAlchemistTracer(inner, seed)
        self._segment = segment
        # Structural hooks go straight to the inner tracer; the memory
        # hooks route through the deferring wrapper.
        self.on_enter_function = inner.on_enter_function
        self.on_exit_function = inner.on_exit_function
        self.on_block_enter = inner.on_block_enter
        self.on_branch = inner.on_branch
        self.on_read = segment.on_read
        self.on_write = segment.on_write
        self.on_frame_free = inner.on_frame_free
        self.on_finish = inner.on_finish

    def export_segment(self, ctx: AnalysisContext) -> AnalysisSegment:
        inner = self.tracer
        segment = self._segment
        nodes, node_id_of = segment.export_nodes()
        profile = {
            pc: [prof.total_duration, prof.instances, prof.max_duration,
                 {key: [e.min_tdep, e.count, e.var_hint, e.first_t]
                  for key, e in prof.edges.items()}]
            for pc, prof in inner.store.profiles.items()
        }
        pool = inner.pool.stats
        state = {
            "profile": profile,
            "counters": {
                "RAW": inner.raw_events,
                "WAR": inner.war_events,
                "WAW": inner.waw_events,
                "edges_profiled": inner.profiler.edges_profiled,
                "dyn": inner.store.dynamic_instances,
            },
            "max_depth": inner.stack.max_depth,
            "pool": (pool.capacity, pool.acquires),
            "deferred": segment.deferred,
            "nodes": nodes,
            "frontier": segment.export_frontier(node_id_of),
            "track_war_waw": self.track_war_waw,
        }
        return AnalysisSegment(type(self), state)

    @classmethod
    def _internalize(cls, state: dict) -> dict:
        from repro.analyses import merging

        if state["deferred"]:
            raise AnalysisError(
                "first segment deferred a dependence pair — it starts "
                "from pristine state and has no boundary to defer to")
        recs: dict = {}
        local = merging.register_nodes(recs, state["nodes"])
        frontier: dict = {}
        merging.update_dep_frontier(frontier, state["frontier"], local)
        return {
            "profile": state["profile"],
            "counters": state["counters"],
            "max_depth": state["max_depth"],
            "pool": state["pool"],
            "track_war_waw": state["track_war_waw"],
            "_recs": recs,
            "_frontier": frontier,
        }

    @classmethod
    def merge_segment_states(cls, acc: dict, part: dict) -> dict:
        from repro.analyses import merging

        if "_recs" not in acc:
            acc = cls._internalize(acc)
        local = merging.register_nodes(acc["_recs"], part["nodes"])
        merging.resolve_deferred_dep(part["deferred"], acc["_frontier"],
                                     acc["profile"], acc["counters"])
        merging.merge_dep_profiles(acc["profile"], part["profile"])
        for key, value in part["counters"].items():
            acc["counters"][key] += value
        if part["max_depth"] > acc["max_depth"]:
            acc["max_depth"] = part["max_depth"]
        acc["pool"] = (max(acc["pool"][0], part["pool"][0]),
                       acc["pool"][1] + part["pool"][1])
        merging.update_dep_frontier(acc["_frontier"], part["frontier"],
                                    local)
        return acc

    @classmethod
    def finalize_segments(cls, state: dict,
                          ctx: AnalysisContext) -> AnalysisResult:
        from repro.core.pool import PoolStats
        from repro.core.profile_data import (ConstructProfile, EdgeStats,
                                             ProfileStore)

        if "_recs" not in state:
            state = cls._internalize(state)
        table = ConstructTable(ctx.program)
        store = ProfileStore()
        counters = state["counters"]
        store.dynamic_instances = counters["dyn"]
        for pc in sorted(state["profile"]):
            dur, inst, max_dur, edges = state["profile"][pc]
            profile = ConstructProfile(table.by_pc[pc], dur, inst,
                                       max_dur)
            for key in sorted(edges, key=lambda k: (k[0], k[1],
                                                    k[2].value)):
                min_tdep, count, hint, first_t = edges[key]
                profile.edges[key] = EdgeStats(
                    key[0], key[1], key[2], min_tdep, count, hint,
                    first_t=first_t)
            store.profiles[pc] = profile
        capacity, acquires = state["pool"]
        stats = RunStats(
            wall_seconds=ctx.wall_seconds,
            baseline_seconds=None,
            instructions=ctx.final_time,
            dynamic_instances=counters["dyn"],
            static_constructs=table.static_count(),
            max_index_depth=state["max_depth"],
            raw_events=counters["RAW"],
            war_events=counters["WAR"],
            waw_events=counters["WAW"],
            edges_profiled=counters["edges_profiled"],
            pool=PoolStats(capacity=capacity, acquires=acquires,
                           grows=acquires),
            sampling=ctx.sampling,
        )
        report = ProfileReport(ctx.program, table, store, stats,
                               ctx.exit_value,
                               [tuple(v) for v in ctx.output])
        return _dep_result(report, state["track_war_waw"], ctx.sampling,
                           getattr(ctx, "telemetry", None))


@dataclass
class LocalityResult:
    """Reuse-distance summary of one run."""

    accesses: int = 0
    distinct_addresses: int = 0
    cold_misses: int = 0
    #: log2 bucket -> access count; bucket k holds distances in
    #: [2^(k-1), 2^k), bucket 0 holds distance 0 (back-to-back reuse).
    histogram: dict[int, int] = field(default_factory=dict)

    def hit_fraction(self, capacity: int) -> float:
        """Fraction of reuses that fit a ``capacity``-word LRU cache."""
        reuses = self.accesses - self.cold_misses
        if reuses <= 0:
            return 0.0
        hits = sum(count for bucket, count in self.histogram.items()
                   if (1 << bucket) <= capacity)
        return hits / reuses


def _locality_result(stats: LocalityResult) -> AnalysisResult:
    """Shared rendering for serial finish and the parallel merge."""
    lines = [
        "Reuse-distance profile:",
        f"  accesses           {stats.accesses}",
        f"  distinct addresses {stats.distinct_addresses}",
        f"  cold misses        {stats.cold_misses}",
    ]
    for capacity in (64, 1024, 16384):
        lines.append(f"  LRU({capacity:>5}) hit rate "
                     f"{stats.hit_fraction(capacity):6.1%}")
    lines.append("  distance histogram (log2 buckets):")
    for bucket in sorted(stats.histogram):
        lo = 0 if bucket == 0 else 1 << (bucket - 1)
        lines.append(f"    >= {lo:>8}: {stats.histogram[bucket]}")
    return AnalysisResult(
        analysis="locality",
        data={
            "accesses": stats.accesses,
            "distinct_addresses": stats.distinct_addresses,
            "cold_misses": stats.cold_misses,
            "histogram": {str(k): v
                          for k, v in sorted(stats.histogram.items())},
        },
        text="\n".join(lines),
        payload=stats,
    )


@register
class LocalityAnalysis(Analysis):
    """Exact LRU reuse-distance histogram (a PROMPT-style analysis).

    For every memory access, the reuse distance is the number of
    *distinct* addresses touched since the previous access to the same
    address — i.e. the minimal LRU cache size (in words) that would hit.
    Computed exactly with a Fenwick tree over access sequence numbers
    (O(log n) per access). Distances are bucketed by powers of two.

    Addresses are physical interpreter words; stack reuse across frames
    therefore counts as reuse of the same word, which is exactly the
    cache behaviour a hardware-level locality profile would see.
    """

    name = "locality"
    description = ("Exact LRU reuse-distance histogram over every "
                   "memory access")
    supports_segments = True
    batch_kind = "block"

    def __init__(self) -> None:
        self._seq = 0
        self._last: dict[int, int] = {}
        self._tree: list[int] = [0]
        self._live = 0
        #: Per first access of an address: how many distinct addresses
        #: came before it — in access order. Free to maintain (cold
        #: path only) and exactly what the cross-segment reuse-distance
        #: merge needs (``repro.analyses.merging.fold_locality``).
        self._cold_order: list[tuple[int, int]] = []
        self.stats = LocalityResult()

    def _access(self, addr: int, pc: int = 0, timestamp: int = 0) -> None:
        stats = self.stats
        stats.accesses += 1
        seq = self._seq + 1
        self._seq = seq
        tree = self._tree
        # Fenwick append: node ``seq`` covers ``(seq - lowbit, seq]``, so
        # its initial value is the live count over that range (the new
        # position itself contributes 1 — it is now `addr`'s last
        # access).
        before = self._prefix(seq - 1)
        tree.append(1 + before - self._prefix(seq - (seq & -seq)))
        last = self._last.get(addr)
        self._last[addr] = seq
        self._live += 1
        if last is None:
            stats.cold_misses += 1
            self._cold_order.append((addr, len(self._last) - 1))
            return
        # distance = live addresses whose last access falls strictly
        # between `last` and `seq` = prefix(seq - 1) - prefix(last).
        distance = before - self._prefix(last)
        bucket = distance.bit_length()  # 0 -> 0, [2^(k-1), 2^k) -> k
        stats.histogram[bucket] = stats.histogram.get(bucket, 0) + 1
        # The superseded position stops representing a live address.
        i = last
        size = seq
        while i <= size:
            tree[i] -= 1
            i += i & (-i)
        self._live -= 1

    # Both reads and writes are accesses (pc/timestamp unused).
    on_read = _access
    on_write = _access

    def consume_batch(self, batch) -> None:
        """Block fast path: only the access addresses matter (reuse
        distance ignores pc/timestamp and every other event type)."""
        access = self._access
        for addr in batch.access_addrs():
            access(addr)

    def _prefix(self, i: int) -> int:
        tree = self._tree
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    def finish(self, ctx: AnalysisContext) -> AnalysisResult:
        stats = self.stats
        stats.distinct_addresses = len(self._last)
        return _locality_result(stats)

    # -- segment/merge protocol -------------------------------------------
    # begin_segment: the default (cold start) is exactly right — every
    # intra-segment distance is already exact, and cross-segment reuses
    # are reconstructed by the fold from the exports below.

    def export_segment(self, ctx: AnalysisContext) -> AnalysisSegment:
        return AnalysisSegment(type(self), {
            "accesses": self._seq,
            "hist": dict(self.stats.histogram),
            "order": self._cold_order,
            "last": dict(self._last),
        })

    @classmethod
    def merge_segment_states(cls, acc: dict, part: dict) -> dict:
        from repro.analyses.merging import LivePositions, fold_locality

        if "live" not in acc:
            folded = {"accesses": 0, "offset": 0, "cold": 0, "hist": {},
                      "last": {}, "live": LivePositions()}
            fold_locality(folded, acc)
            acc = folded
        fold_locality(acc, part)
        return acc

    @classmethod
    def finalize_segments(cls, state: dict,
                          ctx: AnalysisContext) -> AnalysisResult:
        if "live" not in state:
            state = cls.merge_segment_states(
                state, {"accesses": 0, "hist": {}, "order": [],
                        "last": {}})
        stats = LocalityResult(
            accesses=state["accesses"],
            distinct_addresses=len(state["last"]),
            cold_misses=state["cold"],
            histogram=dict(state["hist"]),
        )
        return _locality_result(stats)


@dataclass
class HotAddress:
    """One row of the hot-address histogram."""

    addr: int
    name: str
    reads: int
    writes: int

    @property
    def total(self) -> int:
        return self.reads + self.writes


def _hot_result(reads: dict, writes: dict, top: int,
                ctx: AnalysisContext) -> AnalysisResult:
    """Shared rendering for serial finish and the parallel merge
    (naming resolves against the run's final memory either way)."""
    totals: dict[int, int] = dict(reads)
    for addr, count in writes.items():
        totals[addr] = totals.get(addr, 0) + count
    ranked = sorted(totals, key=lambda a: (-totals[a], a))[:top]
    rows = [HotAddress(addr=addr,
                       name=ctx.memory.addr_to_name(addr),
                       reads=reads.get(addr, 0),
                       writes=writes.get(addr, 0))
            for addr in ranked]
    lines = ["Hottest addresses (reads+writes):"]
    for row in rows:
        lines.append(f"  {row.total:>10}  {row.name:<28} "
                     f"(r={row.reads}, w={row.writes}, "
                     f"addr={row.addr})")
    return AnalysisResult(
        analysis="hot",
        data={"top": top,
              "rows": [{"addr": row.addr, "name": row.name,
                        "reads": row.reads, "writes": row.writes}
                       for row in rows]},
        text="\n".join(lines),
        payload=rows,
    )


@register
class HotAddressAnalysis(Analysis):
    """Access-count histogram over addresses (contention spotting).

    Names are resolved best-effort from the final memory state —
    reconstructed on replay, live otherwise: globals and live heap
    blocks name exactly; long-dead stack frames fall back to
    ``stack+addr``.
    """

    name = "hot"
    description = "Hottest addresses by read+write count, with names"
    supports_segments = True
    batch_kind = "block"
    options = (
        OptionSpec("top", int, 20, "rows to keep"),
    )

    def __init__(self, top: int = 20):
        self.top = top
        self._reads: dict[int, int] = {}
        self._writes: dict[int, int] = {}

    def on_read(self, addr: int, pc: int, timestamp: int) -> None:
        reads = self._reads
        reads[addr] = reads.get(addr, 0) + 1

    def on_write(self, addr: int, pc: int, timestamp: int) -> None:
        writes = self._writes
        writes[addr] = writes.get(addr, 0) + 1

    def consume_batch(self, batch) -> None:
        """Block fast path: fold pre-aggregated per-address counts
        (order within a block cannot matter for pure counters)."""
        reads = self._reads
        for addr, count in batch.addr_counts(EV_READ):
            reads[addr] = reads.get(addr, 0) + count
        writes = self._writes
        for addr, count in batch.addr_counts(EV_WRITE):
            writes[addr] = writes.get(addr, 0) + count

    def address_totals(self) -> dict[int, int]:
        """Full read+write count per address (not just the top rows);
        the sampling accuracy module compares these across traces."""
        totals: dict[int, int] = dict(self._reads)
        for addr, count in self._writes.items():
            totals[addr] = totals.get(addr, 0) + count
        return totals

    def finish(self, ctx: AnalysisContext) -> AnalysisResult:
        return _hot_result(self._reads, self._writes, self.top, ctx)

    # -- segment/merge protocol (counters are purely additive) ------------

    def export_segment(self, ctx: AnalysisContext) -> AnalysisSegment:
        return AnalysisSegment(type(self), {"reads": self._reads,
                                            "writes": self._writes,
                                            "top": self.top})

    @classmethod
    def merge_segment_states(cls, acc: dict, part: dict) -> dict:
        for field_name in ("reads", "writes"):
            mine = acc[field_name]
            for addr, count in part[field_name].items():
                mine[addr] = mine.get(addr, 0) + count
        return acc

    @classmethod
    def finalize_segments(cls, state: dict,
                          ctx: AnalysisContext) -> AnalysisResult:
        return _hot_result(state["reads"], state["writes"],
                           state["top"], ctx)


def _counts_result(counts: dict) -> AnalysisResult:
    text = "Event counts: " + ", ".join(
        f"{k}={v}" for k, v in sorted(counts.items()))
    # payload is a separate copy: mutating it must not corrupt
    # what to_dict()/to_json() serialize.
    return AnalysisResult(analysis="counts", data=counts, text=text,
                          payload=dict(counts))


@register
class CountingAnalysis(Analysis):
    """Event counts; the registered twin of ``CountingTracer``."""

    name = "counts"
    description = "Raw event statistics (reads, writes, calls, ...)"
    supports_segments = True
    batch_kind = "block"

    def __init__(self) -> None:
        self.counts = {"reads": 0, "writes": 0, "calls": 0,
                       "branches": 0, "blocks": 0, "allocs": 0,
                       "frees": 0}

    def on_enter_function(self, fn_name, entry_pc, timestamp) -> None:
        self.counts["calls"] += 1

    def on_block_enter(self, block_id, timestamp) -> None:
        self.counts["blocks"] += 1

    def on_branch(self, pc, target_block, timestamp) -> None:
        self.counts["branches"] += 1

    def on_read(self, addr, pc, timestamp) -> None:
        self.counts["reads"] += 1

    def on_write(self, addr, pc, timestamp) -> None:
        self.counts["writes"] += 1

    def on_heap_alloc(self, base, size, timestamp) -> None:
        self.counts["allocs"] += 1

    def on_frame_free(self, lo, hi) -> None:
        self.counts["frees"] += 1

    def consume_batch(self, batch) -> None:
        """Block fast path: one histogram of the block's event types
        replaces per-event hook dispatch entirely."""
        tally = batch.etype_counts()
        counts = self.counts
        counts["reads"] += tally[EV_READ]
        counts["writes"] += tally[EV_WRITE]
        counts["calls"] += tally[EV_ENTER]
        counts["branches"] += tally[EV_BRANCH]
        counts["blocks"] += tally[EV_BLOCK]
        counts["allocs"] += tally[EV_ALLOC]
        counts["frees"] += tally[EV_FREE]

    def finish(self, ctx: AnalysisContext) -> AnalysisResult:
        return _counts_result(dict(self.counts))

    # -- segment/merge protocol (purely additive) -------------------------

    def export_segment(self, ctx: AnalysisContext) -> AnalysisSegment:
        return AnalysisSegment(type(self), {"counts": dict(self.counts)})

    @classmethod
    def merge_segment_states(cls, acc: dict, part: dict) -> dict:
        mine = acc["counts"]
        for key, value in part["counts"].items():
            mine[key] = mine.get(key, 0) + value
        return acc

    @classmethod
    def finalize_segments(cls, state: dict,
                          ctx: AnalysisContext) -> AnalysisResult:
        return _counts_result(dict(state["counts"]))


def _edge_rows(edges: dict, describe, tiekey) -> list[str]:
    # ``tiekey`` totalizes the order: serial and merged replays insert
    # edges into the dict in different orders, and a ranking that fell
    # back to insertion order on (-count, min_tdep) ties would make
    # the rendering depend on how the profile was computed.
    ranked = sorted(edges.values(),
                    key=lambda e: (-e.count, e.min_tdep, tiekey(e)))[:8]
    return [f"  {describe(edge)}" for edge in ranked]


def _flat_result(profile: FlatProfile) -> AnalysisResult:
    edges = {}
    for (head, tail, kind), edge in sorted(
            profile.edges.items(),
            key=lambda item: (item[0][0], item[0][1], item[0][2].value)):
        edges[f"{head}->{tail}:{kind.value}"] = [edge.min_tdep,
                                                 edge.count]
    program = profile.program
    lines = [f"Flat dependence profile: {len(edges)} static edge(s)"]
    lines += _edge_rows(
        profile.edges,
        lambda e: (f"{program.loc_of(e.head_pc)[0]}->"
                   f"{program.loc_of(e.tail_pc)[0]} {e.kind.value}: "
                   f"min Tdep {e.min_tdep}, x{e.count}"),
        lambda e: (e.head_pc, e.tail_pc, e.kind.value))
    return AnalysisResult(
        analysis="flat",
        data={"edges": edges, "instructions": profile.instructions},
        text="\n".join(lines),
        payload=profile,
    )


@register
class FlatDependenceAnalysis(Analysis):
    """The context-insensitive baseline profiler as a plugin.

    Wraps :class:`~repro.baselines.flat_profiler.FlatTracer`: every
    dependence is attributed to its static ``(head pc, tail pc)`` pair
    only — the "traditional profiling" strawman the paper's §III opens
    with, now comparable against ``dep`` in a single replay pass.
    """

    name = "flat"
    description = ("Baseline: dependences aggregated by static PC "
                   "pair only")
    supports_segments = True
    batch_kind = "span"

    def __init__(self) -> None:
        self.tracer: FlatTracer | None = None

    def on_start(self, program: ProgramIR, memory: Memory) -> None:
        tracer = FlatTracer(program)
        self.tracer = tracer
        self.on_read = tracer.on_read
        self.on_write = tracer.on_write
        self.on_frame_free = tracer.on_frame_free
        self.on_finish = tracer.on_finish

    @property
    def profile(self) -> FlatProfile:
        return self.tracer.profile

    def consume_batch(self, batch) -> None:
        """Span fast path: flat attribution only watches the memory
        stream (structural events arrive via the scalar hooks)."""
        on_read = self.on_read
        on_write = self.on_write
        for etype, a, b, t in batch.rows():
            if etype == EV_READ:
                on_read(a, b, t)
            elif etype == EV_WRITE:
                on_write(a, b, t)

    def finish(self, ctx: AnalysisContext) -> AnalysisResult:
        return _flat_result(self.tracer.profile)

    # -- segment/merge protocol -------------------------------------------
    # Flat attribution needs only the head's (pc, t), which the
    # checkpointed shadow carries — so the seeded tracer attributes
    # cross-segment pairs locally and nothing is ever deferred.

    def begin_segment(self, program: ProgramIR, memory: Memory,
                      seed: SegmentSeed) -> None:
        self.on_start(program, memory)
        shadow = self.tracer._shadow
        for addr, write, reads in seed.shadow:
            shadow[addr] = [write, dict(reads)]

    def export_segment(self, ctx: AnalysisContext) -> AnalysisSegment:
        profile = self.tracer.profile
        return AnalysisSegment(type(self), {
            "edges": {key: [edge.min_tdep, edge.count]
                      for key, edge in profile.edges.items()},
        })

    @classmethod
    def merge_segment_states(cls, acc: dict, part: dict) -> dict:
        mine = acc["edges"]
        for key, (min_tdep, count) in part["edges"].items():
            stats = mine.get(key)
            if stats is None:
                mine[key] = [min_tdep, count]
            else:
                stats[1] += count
                if min_tdep < stats[0]:
                    stats[0] = min_tdep
        return acc

    @classmethod
    def finalize_segments(cls, state: dict,
                          ctx: AnalysisContext) -> AnalysisResult:
        from repro.baselines.flat_profiler import FlatEdge

        profile = FlatProfile(ctx.program)
        for key in sorted(state["edges"],
                          key=lambda k: (k[0], k[1], k[2].value)):
            min_tdep, count = state["edges"][key]
            profile.edges[key] = FlatEdge(key[0], key[1], key[2],
                                          min_tdep, count)
        profile.instructions = ctx.final_time
        return _flat_result(profile)


def _context_result(profile: ContextProfile) -> AnalysisResult:
    edges = {}
    for key, edge in sorted(
            profile.edges.items(),
            key=lambda item: (item[0][2], item[0][3],
                              item[0][4].value, item[0][0], item[0][1])):
        head = ">".join(edge.head_context)
        tail = ">".join(edge.tail_context)
        edges[f"{head}|{tail}|{edge.head_pc}->{edge.tail_pc}"
              f":{edge.kind.value}"] = [edge.min_tdep, edge.count]
    lines = [f"Context dependence profile: {len(edges)} edge(s)"]
    lines += _edge_rows(
        profile.edges,
        lambda e: (f"{'>'.join(e.head_context)} -> "
                   f"{'>'.join(e.tail_context)} {e.kind.value}: "
                   f"min Tdep {e.min_tdep}, x{e.count}"),
        lambda e: (e.head_pc, e.tail_pc, e.kind.value,
                   e.head_context, e.tail_context))
    return AnalysisResult(
        analysis="context",
        data={"edges": edges, "instructions": profile.instructions},
        text="\n".join(lines),
        payload=profile,
    )


@register
class ContextDependenceAnalysis(Analysis):
    """The context-sensitive baseline profiler as a plugin.

    Wraps :class:`ContextSensitiveTracer`: dependences attributed to
    the calling contexts of both endpoints — the granularity of the
    profilers the paper's §III-B criticizes, and reproducibly unable to
    separate loop-carried from loop-local dependences.
    """

    name = "context"
    description = ("Baseline: dependences attributed to calling "
                   "contexts")
    supports_segments = True
    batch_kind = "span"

    def __init__(self) -> None:
        self.tracer = ContextSensitiveTracer()
        tracer = self.tracer
        self.on_enter_function = tracer.on_enter_function
        self.on_exit_function = tracer.on_exit_function
        self.on_read = tracer.on_read
        self.on_write = tracer.on_write
        self.on_frame_free = tracer.on_frame_free
        self.on_finish = tracer.on_finish

    @property
    def profile(self) -> ContextProfile:
        return self.tracer.profile

    def consume_batch(self, batch) -> None:
        """Span fast path: routes through whichever read/write hooks
        are bound (serial tracer or deferring segment wrapper)."""
        on_read = self.on_read
        on_write = self.on_write
        for etype, a, b, t in batch.rows():
            if etype == EV_READ:
                on_read(a, b, t)
            elif etype == EV_WRITE:
                on_write(a, b, t)

    def finish(self, ctx: AnalysisContext) -> AnalysisResult:
        return _context_result(self.tracer.profile)

    # -- segment/merge protocol -------------------------------------------

    def begin_segment(self, program: ProgramIR, memory: Memory,
                      seed: SegmentSeed) -> None:
        from repro.analyses.merging import SegmentContextTracer

        segment = SegmentContextTracer(seed)
        self._segment = segment
        self.tracer = segment.inner
        self.on_enter_function = segment.inner.on_enter_function
        self.on_exit_function = segment.inner.on_exit_function
        self.on_read = segment.on_read
        self.on_write = segment.on_write
        self.on_frame_free = segment.inner.on_frame_free
        self.on_finish = segment.inner.on_finish

    def export_segment(self, ctx: AnalysisContext) -> AnalysisSegment:
        segment = self._segment
        return AnalysisSegment(type(self), {
            "edges": {key: [edge.min_tdep, edge.count]
                      for key, edge in
                      segment.inner.profile.edges.items()},
            "deferred": segment.deferred,
            "frontier": segment.export_frontier(),
        })

    @classmethod
    def _internalize(cls, state: dict) -> dict:
        from repro.analyses import merging

        if state["deferred"]:
            raise AnalysisError(
                "first segment deferred a dependence pair — it starts "
                "from pristine state and has no boundary to defer to")
        frontier: dict = {}
        merging.update_context_frontier(frontier, state["frontier"])
        return {"edges": state["edges"], "_frontier": frontier}

    @classmethod
    def merge_segment_states(cls, acc: dict, part: dict) -> dict:
        from repro.analyses import merging

        if "_frontier" not in acc:
            acc = cls._internalize(acc)
        merging.resolve_deferred_context(part["deferred"],
                                         acc["_frontier"], acc["edges"])
        mine = acc["edges"]
        for key, (min_tdep, count) in part["edges"].items():
            stats = mine.get(key)
            if stats is None:
                mine[key] = [min_tdep, count]
            else:
                stats[1] += count
                if min_tdep < stats[0]:
                    stats[0] = min_tdep
        merging.update_context_frontier(acc["_frontier"],
                                        part["frontier"])
        return acc

    @classmethod
    def finalize_segments(cls, state: dict,
                          ctx: AnalysisContext) -> AnalysisResult:
        from repro.baselines.context_profiler import ContextEdge

        if "_frontier" not in state:
            state = cls._internalize(state)
        profile = ContextProfile()
        for key in sorted(state["edges"],
                          key=lambda k: (k[2], k[3], k[4].value,
                                         k[0], k[1])):
            min_tdep, count = state["edges"][key]
            head_ctx, tail_ctx, head_pc, tail_pc, kind = key
            profile.edges[key] = ContextEdge(head_ctx, tail_ctx,
                                             head_pc, tail_pc, kind,
                                             min_tdep, count)
        profile.instructions = ctx.final_time
        return _context_result(profile)


# Imported at the bottom on purpose: ``repro.trace`` imports the
# replay engine, which imports ``repro.analyses`` — a top-of-file
# ``from repro.trace.events import ...`` here would re-enter that
# half-initialized package and fail whichever side imports first. The
# ``consume_batch`` bodies above resolve these names at call time, so
# placing the import after the class definitions is safe under both
# import orders.
from repro.trace.events import (EV_ALLOC, EV_BLOCK,  # noqa: E402
                                EV_BRANCH, EV_ENTER, EV_FREE, EV_READ,
                                EV_WRITE)
