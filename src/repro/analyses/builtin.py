"""The bundled analyses, all registered on the unified protocol.

Each class here used to live behind a different front door — the
dependence profiler behind ``Alchemist.profile``, the locality /
hot-address / counting consumers behind ``ReplayEngine``'s private
``CONSUMERS`` table, the flat and context baselines behind free
functions in ``repro.baselines``. They are now uniform plugins: every
one runs live, from a recorded trace, and in batch through the same
registry, and every one is covered by the registry-parametrized
live-vs-replay parity test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analyses.base import (Analysis, AnalysisContext, AnalysisResult,
                                 OptionSpec, register)
from repro.analysis.constructs import ConstructTable
from repro.baselines.context_profiler import (ContextProfile,
                                              ContextSensitiveTracer)
from repro.baselines.flat_profiler import FlatProfile, FlatTracer
from repro.core.profile_data import DepKind
from repro.core.report import ProfileReport, RunStats
from repro.core.tracer import AlchemistTracer
from repro.ir.cfg import ProgramIR
from repro.runtime.memory import Memory


def profile_summary(report: ProfileReport) -> dict[str, Any]:
    """Compact, JSON-able, order-stable digest of a ProfileReport.

    Captures exactly what the replay-equivalence criterion cares about:
    per-construct durations/instances and per-edge (min Tdep, count,
    variable hint), keyed deterministically.
    """
    constructs = {}
    for pc in sorted(report.store.profiles):
        profile = report.store.profiles[pc]
        edges = {}
        for (head, tail, kind), stats in sorted(
                profile.edges.items(),
                key=lambda item: (item[0][0], item[0][1], item[0][2].value)):
            edges[f"{head}->{tail}:{kind.value}"] = [
                stats.min_tdep, stats.count, stats.var_hint]
        constructs[str(pc)] = {
            "name": profile.static.name,
            "total_duration": profile.total_duration,
            "instances": profile.instances,
            "max_duration": profile.max_duration,
            "edges": edges,
        }
    return {
        "constructs": constructs,
        "instructions": report.stats.instructions,
        "dynamic_instances": report.stats.dynamic_instances,
        "violating_raw": sum(
            p.violating_count(DepKind.RAW)
            for p in report.store.profiles.values()),
        "exit_value": report.exit_value,
    }


@register
class DependenceAnalysis(Analysis):
    """The Alchemist dependence profiler as a plugin.

    Wraps the unmodified :class:`AlchemistTracer`, so the profile —
    per-construct edges, min-Tdep distances, durations, instance counts
    — is *identical* whether the events come from a live interpreter or
    a recorded trace (the equivalence tests assert this workload by
    workload).
    """

    name = "dep"
    description = ("Alchemist dependence profile: min RAW/WAR/WAW "
                   "distance per construct")
    options = (
        OptionSpec("pool_size", int, 4096,
                   "initial construct-pool size"),
        OptionSpec("track_war_waw", bool, True,
                   "also profile WAR/WAW dependences"),
    )

    def __init__(self, pool_size: int = 4096, track_war_waw: bool = True):
        if pool_size <= 0:
            raise ValueError(
                f"pool_size must be positive, got {pool_size}")
        self.pool_size = pool_size
        self.track_war_waw = track_war_waw
        self.table: ConstructTable | None = None
        self.tracer: AlchemistTracer | None = None

    def on_start(self, program: ProgramIR, memory: Memory) -> None:
        self.table = ConstructTable(program)
        tracer = AlchemistTracer(self.table, self.pool_size,
                                 self.track_war_waw)
        tracer.on_start(program, memory)
        self.tracer = tracer
        # Rebind the hot hooks straight to the inner tracer: both the
        # interpreter and the replay engine look methods up after
        # on_start, so dispatch skips this shim entirely.
        self.on_enter_function = tracer.on_enter_function
        self.on_exit_function = tracer.on_exit_function
        self.on_block_enter = tracer.on_block_enter
        self.on_branch = tracer.on_branch
        self.on_read = tracer.on_read
        self.on_write = tracer.on_write
        self.on_frame_free = tracer.on_frame_free
        self.on_finish = tracer.on_finish

    def finish(self, ctx: AnalysisContext) -> AnalysisResult:
        tracer = self.tracer
        stats = RunStats(
            wall_seconds=ctx.wall_seconds,
            baseline_seconds=None,
            instructions=ctx.final_time,
            dynamic_instances=tracer.store.dynamic_instances,
            static_constructs=self.table.static_count(),
            max_index_depth=tracer.stack.max_depth,
            raw_events=tracer.raw_events,
            war_events=tracer.war_events,
            waw_events=tracer.waw_events,
            edges_profiled=tracer.profiler.edges_profiled,
            pool=tracer.pool.stats,
            sampling=ctx.sampling,
        )
        report = ProfileReport(ctx.program, self.table, tracer.store,
                               stats, ctx.exit_value,
                               [tuple(v) for v in ctx.output])
        kinds = ((DepKind.RAW, DepKind.WAW, DepKind.WAR)
                 if self.track_war_waw else (DepKind.RAW,))
        data = profile_summary(report)
        text = report.to_text(kinds=kinds)
        if ctx.sampling:
            # A sampled stream distorts the profile in both directions:
            # dropped events hide dependences (violation counts
            # under-approximated), and a dropped WRITE re-pairs later
            # reads with a stale writer (spurious edges, shifted
            # distances).
            data["sampled"] = ctx.sampling
            text += (f"\nNOTE: profiled from a sampled trace "
                     f"({ctx.sampling}); dependences may be missed or "
                     "mis-paired and min distances shifted — treat as "
                     "lower-confidence hints, not proof.")
        return AnalysisResult(
            analysis=self.name,
            data=data,
            text=text,
            payload=report,
        )


@dataclass
class LocalityResult:
    """Reuse-distance summary of one run."""

    accesses: int = 0
    distinct_addresses: int = 0
    cold_misses: int = 0
    #: log2 bucket -> access count; bucket k holds distances in
    #: [2^(k-1), 2^k), bucket 0 holds distance 0 (back-to-back reuse).
    histogram: dict[int, int] = field(default_factory=dict)

    def hit_fraction(self, capacity: int) -> float:
        """Fraction of reuses that fit a ``capacity``-word LRU cache."""
        reuses = self.accesses - self.cold_misses
        if reuses <= 0:
            return 0.0
        hits = sum(count for bucket, count in self.histogram.items()
                   if (1 << bucket) <= capacity)
        return hits / reuses


@register
class LocalityAnalysis(Analysis):
    """Exact LRU reuse-distance histogram (a PROMPT-style analysis).

    For every memory access, the reuse distance is the number of
    *distinct* addresses touched since the previous access to the same
    address — i.e. the minimal LRU cache size (in words) that would hit.
    Computed exactly with a Fenwick tree over access sequence numbers
    (O(log n) per access). Distances are bucketed by powers of two.

    Addresses are physical interpreter words; stack reuse across frames
    therefore counts as reuse of the same word, which is exactly the
    cache behaviour a hardware-level locality profile would see.
    """

    name = "locality"
    description = ("Exact LRU reuse-distance histogram over every "
                   "memory access")

    def __init__(self) -> None:
        self._seq = 0
        self._last: dict[int, int] = {}
        self._tree: list[int] = [0]
        self._live = 0
        self.stats = LocalityResult()

    def _access(self, addr: int, pc: int = 0, timestamp: int = 0) -> None:
        stats = self.stats
        stats.accesses += 1
        seq = self._seq + 1
        self._seq = seq
        tree = self._tree
        # Fenwick append: node ``seq`` covers ``(seq - lowbit, seq]``, so
        # its initial value is the live count over that range (the new
        # position itself contributes 1 — it is now `addr`'s last
        # access).
        before = self._prefix(seq - 1)
        tree.append(1 + before - self._prefix(seq - (seq & -seq)))
        last = self._last.get(addr)
        self._last[addr] = seq
        self._live += 1
        if last is None:
            stats.cold_misses += 1
            return
        # distance = live addresses whose last access falls strictly
        # between `last` and `seq` = prefix(seq - 1) - prefix(last).
        distance = before - self._prefix(last)
        bucket = distance.bit_length()  # 0 -> 0, [2^(k-1), 2^k) -> k
        stats.histogram[bucket] = stats.histogram.get(bucket, 0) + 1
        # The superseded position stops representing a live address.
        i = last
        size = seq
        while i <= size:
            tree[i] -= 1
            i += i & (-i)
        self._live -= 1

    # Both reads and writes are accesses (pc/timestamp unused).
    on_read = _access
    on_write = _access

    def _prefix(self, i: int) -> int:
        tree = self._tree
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    def finish(self, ctx: AnalysisContext) -> AnalysisResult:
        stats = self.stats
        stats.distinct_addresses = len(self._last)
        lines = [
            "Reuse-distance profile:",
            f"  accesses           {stats.accesses}",
            f"  distinct addresses {stats.distinct_addresses}",
            f"  cold misses        {stats.cold_misses}",
        ]
        for capacity in (64, 1024, 16384):
            lines.append(f"  LRU({capacity:>5}) hit rate "
                         f"{stats.hit_fraction(capacity):6.1%}")
        lines.append("  distance histogram (log2 buckets):")
        for bucket in sorted(stats.histogram):
            lo = 0 if bucket == 0 else 1 << (bucket - 1)
            lines.append(f"    >= {lo:>8}: {stats.histogram[bucket]}")
        return AnalysisResult(
            analysis=self.name,
            data={
                "accesses": stats.accesses,
                "distinct_addresses": stats.distinct_addresses,
                "cold_misses": stats.cold_misses,
                "histogram": {str(k): v
                              for k, v in sorted(stats.histogram.items())},
            },
            text="\n".join(lines),
            payload=stats,
        )


@dataclass
class HotAddress:
    """One row of the hot-address histogram."""

    addr: int
    name: str
    reads: int
    writes: int

    @property
    def total(self) -> int:
        return self.reads + self.writes


@register
class HotAddressAnalysis(Analysis):
    """Access-count histogram over addresses (contention spotting).

    Names are resolved best-effort from the final memory state —
    reconstructed on replay, live otherwise: globals and live heap
    blocks name exactly; long-dead stack frames fall back to
    ``stack+addr``.
    """

    name = "hot"
    description = "Hottest addresses by read+write count, with names"
    options = (
        OptionSpec("top", int, 20, "rows to keep"),
    )

    def __init__(self, top: int = 20):
        self.top = top
        self._reads: dict[int, int] = {}
        self._writes: dict[int, int] = {}

    def on_read(self, addr: int, pc: int, timestamp: int) -> None:
        reads = self._reads
        reads[addr] = reads.get(addr, 0) + 1

    def on_write(self, addr: int, pc: int, timestamp: int) -> None:
        writes = self._writes
        writes[addr] = writes.get(addr, 0) + 1

    def address_totals(self) -> dict[int, int]:
        """Full read+write count per address (not just the top rows);
        the sampling accuracy module compares these across traces."""
        totals: dict[int, int] = dict(self._reads)
        for addr, count in self._writes.items():
            totals[addr] = totals.get(addr, 0) + count
        return totals

    def finish(self, ctx: AnalysisContext) -> AnalysisResult:
        totals = self.address_totals()
        ranked = sorted(totals, key=lambda a: (-totals[a], a))[:self.top]
        rows = [HotAddress(addr=addr,
                           name=ctx.memory.addr_to_name(addr),
                           reads=self._reads.get(addr, 0),
                           writes=self._writes.get(addr, 0))
                for addr in ranked]
        lines = ["Hottest addresses (reads+writes):"]
        for row in rows:
            lines.append(f"  {row.total:>10}  {row.name:<28} "
                         f"(r={row.reads}, w={row.writes}, "
                         f"addr={row.addr})")
        return AnalysisResult(
            analysis=self.name,
            data={"top": self.top,
                  "rows": [{"addr": row.addr, "name": row.name,
                            "reads": row.reads, "writes": row.writes}
                           for row in rows]},
            text="\n".join(lines),
            payload=rows,
        )


@register
class CountingAnalysis(Analysis):
    """Event counts; the registered twin of ``CountingTracer``."""

    name = "counts"
    description = "Raw event statistics (reads, writes, calls, ...)"

    def __init__(self) -> None:
        self.counts = {"reads": 0, "writes": 0, "calls": 0,
                       "branches": 0, "blocks": 0, "allocs": 0,
                       "frees": 0}

    def on_enter_function(self, fn_name, entry_pc, timestamp) -> None:
        self.counts["calls"] += 1

    def on_block_enter(self, block_id, timestamp) -> None:
        self.counts["blocks"] += 1

    def on_branch(self, pc, target_block, timestamp) -> None:
        self.counts["branches"] += 1

    def on_read(self, addr, pc, timestamp) -> None:
        self.counts["reads"] += 1

    def on_write(self, addr, pc, timestamp) -> None:
        self.counts["writes"] += 1

    def on_heap_alloc(self, base, size, timestamp) -> None:
        self.counts["allocs"] += 1

    def on_frame_free(self, lo, hi) -> None:
        self.counts["frees"] += 1

    def finish(self, ctx: AnalysisContext) -> AnalysisResult:
        counts = dict(self.counts)
        text = "Event counts: " + ", ".join(
            f"{k}={v}" for k, v in sorted(counts.items()))
        # payload is a separate copy: mutating it must not corrupt
        # what to_dict()/to_json() serialize.
        return AnalysisResult(analysis=self.name, data=counts, text=text,
                              payload=dict(counts))


def _edge_rows(edges: dict, describe) -> list[str]:
    ranked = sorted(edges.values(),
                    key=lambda e: (-e.count, e.min_tdep))[:8]
    return [f"  {describe(edge)}" for edge in ranked]


@register
class FlatDependenceAnalysis(Analysis):
    """The context-insensitive baseline profiler as a plugin.

    Wraps :class:`~repro.baselines.flat_profiler.FlatTracer`: every
    dependence is attributed to its static ``(head pc, tail pc)`` pair
    only — the "traditional profiling" strawman the paper's §III opens
    with, now comparable against ``dep`` in a single replay pass.
    """

    name = "flat"
    description = ("Baseline: dependences aggregated by static PC "
                   "pair only")

    def __init__(self) -> None:
        self.tracer: FlatTracer | None = None

    def on_start(self, program: ProgramIR, memory: Memory) -> None:
        tracer = FlatTracer(program)
        self.tracer = tracer
        self.on_read = tracer.on_read
        self.on_write = tracer.on_write
        self.on_frame_free = tracer.on_frame_free
        self.on_finish = tracer.on_finish

    @property
    def profile(self) -> FlatProfile:
        return self.tracer.profile

    def finish(self, ctx: AnalysisContext) -> AnalysisResult:
        profile = self.tracer.profile
        edges = {}
        for (head, tail, kind), edge in sorted(
                profile.edges.items(),
                key=lambda item: (item[0][0], item[0][1], item[0][2].value)):
            edges[f"{head}->{tail}:{kind.value}"] = [edge.min_tdep,
                                                     edge.count]
        program = ctx.program
        lines = [f"Flat dependence profile: {len(edges)} static edge(s)"]
        lines += _edge_rows(
            profile.edges,
            lambda e: (f"{program.loc_of(e.head_pc)[0]}->"
                       f"{program.loc_of(e.tail_pc)[0]} {e.kind.value}: "
                       f"min Tdep {e.min_tdep}, x{e.count}"))
        return AnalysisResult(
            analysis=self.name,
            data={"edges": edges, "instructions": profile.instructions},
            text="\n".join(lines),
            payload=profile,
        )


@register
class ContextDependenceAnalysis(Analysis):
    """The context-sensitive baseline profiler as a plugin.

    Wraps :class:`ContextSensitiveTracer`: dependences attributed to
    the calling contexts of both endpoints — the granularity of the
    profilers the paper's §III-B criticizes, and reproducibly unable to
    separate loop-carried from loop-local dependences.
    """

    name = "context"
    description = ("Baseline: dependences attributed to calling "
                   "contexts")

    def __init__(self) -> None:
        self.tracer = ContextSensitiveTracer()
        tracer = self.tracer
        self.on_enter_function = tracer.on_enter_function
        self.on_exit_function = tracer.on_exit_function
        self.on_read = tracer.on_read
        self.on_write = tracer.on_write
        self.on_frame_free = tracer.on_frame_free
        self.on_finish = tracer.on_finish

    @property
    def profile(self) -> ContextProfile:
        return self.tracer.profile

    def finish(self, ctx: AnalysisContext) -> AnalysisResult:
        profile = self.tracer.profile
        edges = {}
        for key, edge in sorted(
                profile.edges.items(),
                key=lambda item: (item[0][2], item[0][3],
                                  item[0][4].value, item[0][0], item[0][1])):
            head = ">".join(edge.head_context)
            tail = ">".join(edge.tail_context)
            edges[f"{head}|{tail}|{edge.head_pc}->{edge.tail_pc}"
                  f":{edge.kind.value}"] = [edge.min_tdep, edge.count]
        lines = [f"Context dependence profile: {len(edges)} edge(s)"]
        lines += _edge_rows(
            profile.edges,
            lambda e: (f"{'>'.join(e.head_context)} -> "
                       f"{'>'.join(e.tail_context)} {e.kind.value}: "
                       f"min Tdep {e.min_tdep}, x{e.count}"))
        return AnalysisResult(
            analysis=self.name,
            data={"edges": edges, "instructions": profile.instructions},
            text="\n".join(lines),
            payload=profile,
        )
