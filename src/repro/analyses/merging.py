"""Cross-segment merge machinery for sharded parallel replay.

Workers replay disjoint trace segments with full pre-segment *memory*
state (reconstructed from a checkpoint) but cold *analysis* state, so
every dependence whose head lies before the segment is detected — the
checkpointed shadow pairs the tail with its true head ``(pc, t)`` —
but cannot be attributed locally: attribution needs the head's
execution-index chain (``dep``), or its calling context (``context``),
which live in the segment that executed the head. Workers therefore
**defer** such pairs, and export alongside their partial profile a
**live-writer frontier**: for every address still tracked at segment
end, the in-segment last write and per-pc reads, each tagged with its
attribution payload (index-tree chain / context). The left-to-right
fold (:meth:`repro.analyses.base.AnalysisSegment.merge`) keeps the
running frontier, resolves each segment's deferred pairs against it,
and folds the partial profiles — producing results bit-identical to a
serial pass.

Identity across segments uses timestamps, which the interpreter makes
unambiguous: the clock advances once per instruction, so

* a construct instance is globally identified by
  ``(head pc, Tenter)`` — no two pushes share a timestamp;
* an ancestor was completed *before* a deferred tail at ``Tt`` iff its
  ``Texit < Tt`` — pops share a timestamp with a tail only inside one
  ``ret`` instruction (return-value write, then the pop), where the
  serial engine sees the construct still active, matching the strict
  inequality;
* the first observation of a static edge (which fixes ``var_hint``) is
  the one with the smallest tail timestamp — no two observations of
  the same edge share one.

The locality merge is different in kind: reuse distances need no
frontier, but a cross-segment reuse's distance spans the seam. Each
segment exports, per first-in-segment access, how many distinct
addresses preceded it locally; the fold counts the live last-access
positions between the global previous access and the seam with a
Fenwick tree, subtracting addresses whose live position already moved
into the new segment. Intra-segment distances are exact as computed
(every intervening access lies inside the segment), so the merged
histogram is exact, not approximate.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.analyses.base import AnalysisError

#: Sentinel standing in for the unknown construct node / context of a
#: checkpointed (pre-segment) access. Segment tracers test identity
#: against it and defer instead of attributing.
BOUNDARY = type("_Boundary", (), {"__repr__": lambda s: "<boundary>"})()


# ---------------------------------------------------------------------------
# Construct-instance records shared across the fold (dep analysis)
# ---------------------------------------------------------------------------

class NodeRec:
    """One construct instance, as the merge sees it.

    Created when any segment exports the instance (in a frontier chain
    or as part of its seeded stack); ``t_exit`` stays 0 until the
    segment that actually pops it reports the completion, at which
    point every earlier chain referencing this record sees it — that
    is how a head recorded in segment i gets attributed to an ancestor
    that completes in segment j > i.
    """

    __slots__ = ("pc", "t_enter", "t_exit", "parent")

    def __init__(self, pc: int, t_enter: int, t_exit: int = 0,
                 parent: "NodeRec | None" = None):
        self.pc = pc
        self.t_enter = t_enter
        self.t_exit = t_exit
        self.parent = parent


def register_nodes(recs: dict, nodes: dict) -> dict:
    """Fold one segment's exported node table into the shared records.

    ``nodes`` maps local id -> ``(pc, t_enter, t_exit, parent_id)``;
    returns local id -> :class:`NodeRec` for resolving this segment's
    chain references. Completion times fill in monotonically (a pop is
    reported by exactly one segment)."""
    local: dict[int, NodeRec] = {}
    for nid, (pc, t_enter, t_exit, _parent) in nodes.items():
        key = (pc, t_enter)
        rec = recs.get(key)
        if rec is None:
            rec = NodeRec(pc, t_enter)
            recs[key] = rec
        if t_exit and not rec.t_exit:
            rec.t_exit = t_exit
        local[nid] = rec
    for nid, (_pc, _t, _x, parent_id) in nodes.items():
        if parent_id is not None and local[nid].parent is None:
            local[nid].parent = local[parent_id]
    return local


def resolve_deferred_dep(deferred: list, frontier: dict,
                         profile: dict, counters: dict) -> None:
    """Attribute one segment's deferred dependence pairs.

    Each entry is ``(kind, addr, head_pc, head_t, tail_pc, tail_t,
    var_hint)``; the head's chain comes from the running frontier. The
    walk mirrors ``DependenceProfiler.profile_edge`` exactly, with
    "completed and not recycled" expressed in merge terms: ``Texit``
    known, ``< Tt``, and covering the head timestamp (nodes are never
    recycled under the GC allocator, so no staleness cases exist).
    """
    for kind, addr, head_pc, head_t, tail_pc, tail_t, hint in deferred:
        entry = frontier.get(addr)
        if entry is None:
            raise AnalysisError(
                f"deferred {kind.value} pair at address {addr} has no "
                "frontier entry (corrupt segment export)")
        if kind.value == "WAR":
            head = entry[2].get(head_pc)
            if head is None or head[0] != head_t:
                raise AnalysisError(
                    f"deferred WAR head at address {addr} does not "
                    "match the frontier (corrupt segment export)")
            rec = head[1]
        else:
            head = entry[1]
            if head is None or head[0] != head_pc or head[1] != head_t:
                raise AnalysisError(
                    f"deferred {kind.value} head at address {addr} "
                    "does not match the frontier (corrupt segment "
                    "export)")
            rec = head[2]
        counters[kind.value] += 1
        counters["edges_profiled"] += 1
        tdep = tail_t - head_t
        key = (head_pc, tail_pc, kind)
        while rec is not None and rec.t_exit \
                and rec.t_exit < tail_t \
                and rec.t_enter <= head_t <= rec.t_exit:
            prof = profile.get(rec.pc)
            if prof is None:
                prof = profile[rec.pc] = [0, 0, 0, {}]
            edges = prof[3]
            stats = edges.get(key)
            if stats is None:
                edges[key] = [tdep, 1, hint, tail_t]
            else:
                stats[1] += 1
                if tdep < stats[0]:
                    stats[0] = tdep
                if tail_t < stats[3]:
                    stats[2] = hint
                    stats[3] = tail_t
            rec = rec.parent


def merge_dep_profiles(acc: dict, part: dict) -> None:
    """Fold per-construct aggregates: durations and instances add, max
    duration maxes, edges combine by (min, sum, earliest var_hint)."""
    for pc, (dur, inst, max_dur, edges) in part.items():
        mine = acc.get(pc)
        if mine is None:
            acc[pc] = [dur, inst, max_dur,
                       {key: list(stats) for key, stats in edges.items()}]
            continue
        mine[0] += dur
        mine[1] += inst
        if max_dur > mine[2]:
            mine[2] = max_dur
        my_edges = mine[3]
        for key, (min_tdep, count, hint, first_t) in edges.items():
            stats = my_edges.get(key)
            if stats is None:
                my_edges[key] = [min_tdep, count, hint, first_t]
            else:
                stats[1] += count
                if min_tdep < stats[0]:
                    stats[0] = min_tdep
                if first_t < stats[3]:
                    stats[2] = hint
                    stats[3] = first_t


def update_dep_frontier(frontier: dict, part_frontier: dict,
                        local_recs: dict) -> None:
    """Advance the live-writer frontier past one segment.

    ``part_frontier`` maps addr -> ``(wrote, write, reads)`` with
    ``write = (pc, t, node_id)`` and ``reads = {pc: (t, node_id)}``. A
    segment that wrote the address supersedes the entry wholesale
    (its write also reset the read set, exactly like the shadow); a
    read-only touch folds into the existing read set per static pc.
    Entries for addresses a later segment freed simply go stale — a
    deferred pair can only reference state the checkpoint still
    carried, so stale entries are never consulted.
    """
    for addr, (wrote, write, reads) in part_frontier.items():
        new_reads = {pc: (t, local_recs[nid])
                     for pc, (t, nid) in reads.items()}
        if wrote:
            new_write = (None if write is None
                         else (write[0], write[1], local_recs[write[2]]))
            frontier[addr] = [addr, new_write, new_reads]
        else:
            entry = frontier.get(addr)
            if entry is None:
                frontier[addr] = [addr, None, new_reads]
            else:
                entry[2].update(new_reads)


# ---------------------------------------------------------------------------
# Context-profile merge (same frontier idea, contexts instead of chains)
# ---------------------------------------------------------------------------

def resolve_deferred_context(deferred: list, frontier: dict,
                             edges: dict) -> None:
    """Attribute deferred pairs for the context baseline: the frontier
    carries the head's calling context instead of an index chain."""
    for kind, addr, head_pc, head_t, tail_ctx, tail_pc, tail_t in deferred:
        entry = frontier.get(addr)
        if entry is None:
            raise AnalysisError(
                f"deferred {kind.value} pair at address {addr} has no "
                "frontier entry (corrupt segment export)")
        if kind.value == "WAR":
            head = entry[1].get(head_pc)
            if head is None or head[0] != head_t:
                raise AnalysisError(
                    f"deferred WAR head at address {addr} does not "
                    "match the frontier")
            head_ctx = head[1]
        else:
            head = entry[0]
            if head is None or head[0] != head_pc or head[1] != head_t:
                raise AnalysisError(
                    f"deferred {kind.value} head at address {addr} "
                    "does not match the frontier")
            head_ctx = head[2]
        key = (head_ctx, tail_ctx, head_pc, tail_pc, kind)
        tdep = tail_t - head_t
        stats = edges.get(key)
        if stats is None:
            edges[key] = [tdep, 1]
        else:
            stats[1] += 1
            if tdep < stats[0]:
                stats[0] = tdep


def update_context_frontier(frontier: dict, part_frontier: dict) -> None:
    """Context twin of :func:`update_dep_frontier`; ``write`` is
    ``(pc, t, context)`` and ``reads`` maps pc -> ``(t, context)``."""
    for addr, (wrote, write, reads) in part_frontier.items():
        if wrote:
            frontier[addr] = [write, dict(reads)]
        else:
            entry = frontier.get(addr)
            if entry is None:
                frontier[addr] = [None, dict(reads)]
            else:
                entry[1].update(reads)


# ---------------------------------------------------------------------------
# Exact cross-segment reuse distances (locality analysis)
# ---------------------------------------------------------------------------

class LivePositions:
    """Live last-access positions over the merged prefix.

    Positions are appended in strictly increasing order (each segment's
    accesses come after all earlier ones), so the backing array stays
    sorted and a Fenwick tree over it answers "how many *live*
    positions exceed q" in O(log n); superseding an address's last
    access kills its old position.
    """

    __slots__ = ("positions", "tree", "live")

    def __init__(self) -> None:
        self.positions: list[int] = []
        self.tree: list[int] = [0]
        self.live = 0

    def _prefix(self, i: int) -> int:
        tree = self.tree
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    def append(self, pos: int) -> int:
        """Add a live position (> all existing); returns its slot."""
        index = len(self.positions) + 1
        self.positions.append(pos)
        # Fenwick append: node `index` covers (index - lowbit, index].
        before = self._prefix(index - 1)
        self.tree.append(1 + before
                         - self._prefix(index - (index & -index)))
        self.live += 1
        return index

    def kill(self, index: int) -> None:
        tree = self.tree
        size = len(self.positions)
        while index <= size:
            tree[index] -= 1
            index += index & (-index)
        self.live -= 1

    def count_after(self, pos: int) -> int:
        """Live positions strictly greater than ``pos``."""
        return self.live - self._prefix(bisect_right(self.positions, pos))


def fold_locality(acc: dict, part: dict) -> None:
    """Fold one segment's locality export into the accumulator.

    ``part``: ``accesses``, intra-segment ``hist``, ``order`` — per
    segment-first access of an address, ``(addr, distinct addresses
    seen earlier in the segment)`` in stream order — and ``last``
    (addr -> local last position). For each cross-segment reuse the
    distance is::

        pre_distinct                       (live positions inside the
                                            segment, before this access)
      + live prefix positions > q          (last accesses between the
                                            previous access and the seam)
      - already-swept addrs with old > q   (their live position moved
                                            into the segment: counted by
                                            pre_distinct already)

    which equals the serial Fenwick count of live positions strictly
    between the previous access ``q`` and this one.
    """
    last = acc["last"]
    live: LivePositions = acc["live"]
    hist = acc["hist"]
    offset = acc["offset"]

    order = part["order"]
    # Correction sweep: for each cross access, count the already-swept
    # addresses whose old global position exceeds its q — a Fenwick
    # over the per-segment ranks of the q values (known up front).
    cross = [(addr, pre_d, last[addr][0])
             for addr, pre_d in order if addr in last]
    qs = sorted({q for _a, _p, q in cross})
    rank = {q: i + 1 for i, q in enumerate(qs)}
    rank_tree = [0] * (len(qs) + 1)

    def rank_prefix(i: int) -> int:
        total = 0
        while i > 0:
            total += rank_tree[i]
            i -= i & (-i)
        return total

    def rank_add(i: int) -> None:
        while i <= len(qs):
            rank_tree[i] += 1
            i += i & (-i)

    inserted = 0
    for addr, pre_d, q in cross:
        distance = pre_d + live.count_after(q) \
            - (inserted - rank_prefix(rank[q]))
        bucket = distance.bit_length()
        hist[bucket] = hist.get(bucket, 0) + 1
        rank_add(rank[q])
        inserted += 1
    acc["cold"] += len(order) - len(cross)

    for bucket, count in part["hist"].items():
        hist[bucket] = hist.get(bucket, 0) + count
    # Sorted by position: LivePositions is append-only increasing, and
    # the export dict is keyed in first-access order, not last-access.
    for addr, local_pos in sorted(part["last"].items(),
                                  key=lambda item: item[1]):
        global_pos = offset + local_pos
        old = last.get(addr)
        if old is not None:
            live.kill(old[1])
        last[addr] = (global_pos, live.append(global_pos))
    acc["offset"] = offset + part["accesses"]
    acc["accesses"] += part["accesses"]


# ---------------------------------------------------------------------------
# Segment tracers: serial tracers + boundary seeding + deferral
# ---------------------------------------------------------------------------

class SegmentAlchemistTracer:
    """The Alchemist tracer of one parallel worker.

    Wraps an unmodified :class:`~repro.core.tracer.AlchemistTracer`
    whose indexing stack is seeded from the checkpoint and whose
    shadow is seeded with boundary-sentinel accesses; the only changed
    behaviour is on the memory hooks, which defer any pair whose head
    is a sentinel instead of walking an index chain that lives in an
    earlier segment.
    """

    def __init__(self, inner, seed):
        from repro.core.profile_data import DepKind

        self.inner = inner
        self._raw = DepKind.RAW
        self._war = DepKind.WAR
        self._waw = DepKind.WAW
        self.deferred: list = []
        inner.stack.seed(seed.construct_stack)
        self.seeded_nodes = list(inner.stack.stack)
        for addr, write, reads in seed.shadow:
            inner.shadow.seed_entry(
                addr,
                None if write is None else (write[0], BOUNDARY, write[1]),
                {pc: (BOUNDARY, t) for pc, t in reads.items()})

    def on_read(self, addr: int, pc: int, timestamp: int) -> None:
        inner = self.inner
        node = inner.stack.stack[-1]
        write = inner.shadow.on_read(addr, pc, node, timestamp)
        if write is None:
            return
        if write[1] is BOUNDARY:
            self.deferred.append(
                (self._raw, addr, write[0], write[2], pc, timestamp,
                 inner.memory.addr_to_name(addr)))
            return
        inner.raw_events += 1
        memory = inner.memory
        inner.profiler.profile_edge(
            write[0], write[1], write[2], pc, timestamp, self._raw,
            lambda: memory.addr_to_name(addr))

    def on_write(self, addr: int, pc: int, timestamp: int) -> None:
        inner = self.inner
        node = inner.stack.stack[-1]
        waw_head, war_heads = inner.shadow.on_write(addr, pc, node,
                                                    timestamp)
        if not inner.track_war_waw:
            return
        memory = inner.memory
        if war_heads:
            for read_pc, (read_node, read_time) in war_heads.items():
                if read_node is BOUNDARY:
                    self.deferred.append(
                        (self._war, addr, read_pc, read_time, pc,
                         timestamp, memory.addr_to_name(addr)))
                    continue
                inner.war_events += 1
                inner.profiler.profile_edge(
                    read_pc, read_node, read_time, pc, timestamp,
                    self._war, lambda: memory.addr_to_name(addr))
        if waw_head is not None:
            if waw_head[1] is BOUNDARY:
                self.deferred.append(
                    (self._waw, addr, waw_head[0], waw_head[2], pc,
                     timestamp, memory.addr_to_name(addr)))
                return
            inner.waw_events += 1
            inner.profiler.profile_edge(
                waw_head[0], waw_head[1], waw_head[2], pc, timestamp,
                self._waw, lambda: memory.addr_to_name(addr))

    def export_nodes(self):
        """Serialize every construct instance the merge must know:
        the seeded stack (their pops complete earlier segments'
        chains) plus everything reachable from the final shadow, with
        ancestor chains. Returns ``(nodes, node_id_of)``."""
        ids: dict[int, int] = {}
        nodes: dict[int, tuple] = {}

        def intern(node) -> int:
            nid = ids.get(id(node))
            if nid is not None:
                return nid
            nid = len(ids)
            ids[id(node)] = nid
            parent = node.parent
            parent_id = intern(parent) if parent is not None else None
            nodes[nid] = (node.static.pc, node.t_enter, node.t_exit,
                          parent_id)
            return nid

        for node in self.seeded_nodes:
            intern(node)
        for entry in self.inner.shadow._entries.values():
            write, reads = entry
            if write is not None and write[1] is not BOUNDARY:
                intern(write[1])
            for read_node, _t in reads.values():
                if read_node is not BOUNDARY:
                    intern(read_node)
        return nodes, (lambda node: ids[id(node)])

    def export_frontier(self, node_id_of):
        """addr -> (wrote, write, reads) for segment-born accesses."""
        frontier: dict[int, tuple] = {}
        for addr, (write, reads) in self.inner.shadow._entries.items():
            wrote = write is not None and write[1] is not BOUNDARY
            out_reads = {pc: (t, node_id_of(node))
                         for pc, (node, t) in reads.items()
                         if node is not BOUNDARY}
            if not wrote and not out_reads:
                continue
            out_write = ((write[0], write[2], node_id_of(write[1]))
                         if wrote else None)
            frontier[addr] = (wrote, out_write, out_reads)
        return frontier


class SegmentContextTracer:
    """Context-baseline twin of :class:`SegmentAlchemistTracer`.

    Subclasses the serial tracer: the call stack is seeded from the
    checkpointed frame stack, the shadow from the checkpoint (contexts
    replaced by the boundary sentinel), and pairs with sentinel heads
    are deferred for the merge to attribute via the context frontier.
    """

    def __init__(self, seed):
        from repro.baselines.context_profiler import ContextSensitiveTracer

        inner = ContextSensitiveTracer()
        inner._stack = list(seed.call_stack)
        inner._context = tuple(inner._stack)
        for addr, write, reads in seed.shadow:
            inner._shadow[addr] = [
                None if write is None else (write[0], BOUNDARY, write[1]),
                {pc: (BOUNDARY, t) for pc, t in reads.items()}]
        self.inner = inner
        self.deferred: list = []

    def on_read(self, addr: int, pc: int, timestamp: int) -> None:
        from repro.core.profile_data import DepKind

        inner = self.inner
        entry = inner._shadow.get(addr)
        if entry is None:
            inner._shadow[addr] = [None,
                                   {pc: (inner._context, timestamp)}]
            return
        write = entry[0]
        if write is not None:
            if write[1] is BOUNDARY:
                self.deferred.append(
                    (DepKind.RAW, addr, write[0], write[2],
                     inner._context, pc, timestamp))
            else:
                inner.profile.record(write[1], inner._context, write[0],
                                     pc, DepKind.RAW,
                                     timestamp - write[2])
        entry[1][pc] = (inner._context, timestamp)

    def on_write(self, addr: int, pc: int, timestamp: int) -> None:
        from repro.core.profile_data import DepKind

        inner = self.inner
        entry = inner._shadow.get(addr)
        if entry is None:
            inner._shadow[addr] = [(pc, inner._context, timestamp), {}]
            return
        write, reads = entry
        for read_pc, (read_ctx, read_t) in reads.items():
            if read_ctx is BOUNDARY:
                self.deferred.append(
                    (DepKind.WAR, addr, read_pc, read_t,
                     inner._context, pc, timestamp))
            else:
                inner.profile.record(read_ctx, inner._context, read_pc,
                                     pc, DepKind.WAR,
                                     timestamp - read_t)
        if write is not None:
            if write[1] is BOUNDARY:
                self.deferred.append(
                    (DepKind.WAW, addr, write[0], write[2],
                     inner._context, pc, timestamp))
            else:
                inner.profile.record(write[1], inner._context, write[0],
                                     pc, DepKind.WAW,
                                     timestamp - write[2])
        entry[0] = (pc, inner._context, timestamp)
        entry[1] = {}

    def export_frontier(self):
        frontier: dict[int, tuple] = {}
        for addr, (write, reads) in self.inner._shadow.items():
            wrote = write is not None and write[1] is not BOUNDARY
            out_reads = {pc: (t, ctx) for pc, (ctx, t) in reads.items()
                         if ctx is not BOUNDARY}
            if not wrote and not out_reads:
                continue
            out_write = (write[0], write[2], write[1]) if wrote else None
            frontier[addr] = (wrote, out_write, out_reads)
        return frontier
