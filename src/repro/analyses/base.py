"""The unified analysis protocol: one plugin surface, three run modes.

Every analysis — the Alchemist dependence profiler, the replay
consumers, the comparison baselines, and anything a user registers — is
a single kind of object: an :class:`Analysis`, which is an ordinary
:class:`~repro.runtime.tracing.Tracer` (so it can be attached to a live
interpreter run) plus a :meth:`~Analysis.finish` method that turns the
accumulated state into a structured :class:`AnalysisResult` once the
event stream ends. Because recorded traces replay the exact same hook
stream, the same instance runs unchanged

* **live** — attached to an interpreter (one run feeds N analyses
  through :class:`~repro.runtime.tracing.TeeTracer`);
* **from a trace** — driven by
  :class:`~repro.trace.replay.ReplayEngine`, no re-execution;
* **in batch** — the ``multiprocessing`` driver resolves names through
  this registry too.

Plugins self-describe: a ``name``, a one-line ``description``, and an
``options`` schema (:class:`OptionSpec` tuple) that the CLI and
:func:`make_analyses` validate against. Registration is decorator
based::

    from repro.analyses import Analysis, AnalysisResult, register

    @register
    class BranchCount(Analysis):
        name = "branches"
        description = "Count taken branches"

        def __init__(self):
            self.taken = 0

        def on_branch(self, pc, target_block, timestamp):
            self.taken += 1

        def finish(self, ctx):
            return AnalysisResult(
                analysis=self.name,
                data={"taken": self.taken},
                text=f"branches taken: {self.taken}")

and from that moment ``Session.analyze(src, ["branches"])``,
``alchemist analyze --analysis branches`` and
``alchemist replay --analysis branches`` all work — including the
registry-parametrized live-vs-replay parity test, which picks the new
plugin up automatically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Iterable, Mapping

from repro.ir.cfg import ProgramIR
from repro.runtime.memory import Memory
from repro.runtime.tracing import Tracer, overridden_hooks


class AnalysisError(Exception):
    """Bad analysis name, duplicate registration, or invalid options."""


@dataclass(frozen=True)
class OptionSpec:
    """One tunable knob in an analysis's options schema."""

    name: str
    type: type = int
    default: Any = None
    help: str = ""

    def coerce(self, value: Any) -> Any:
        """Validate/convert ``value`` (CLI hands strings through)."""
        if isinstance(value, self.type):
            return value
        try:
            if self.type is bool and isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("1", "true", "yes", "on"):
                    return True
                if lowered in ("0", "false", "no", "off"):
                    return False
                raise ValueError(value)
            return self.type(value)
        except (TypeError, ValueError):
            raise AnalysisError(
                f"option {self.name!r} expects {self.type.__name__}, "
                f"got {value!r}") from None


@dataclass
class AnalysisResult:
    """Structured output of one analysis over one event stream.

    ``data`` is the canonical, JSON-able payload — deterministic for a
    given event stream, so a live run and a replay of its recording
    produce *equal* ``to_dict()`` values (the registry parity test
    asserts exactly this). ``payload`` optionally carries the rich
    in-process object (e.g. a ``ProfileReport``) for callers that want
    more than the serialized view; it never enters ``to_dict()``.
    """

    analysis: str
    data: dict[str, Any]
    text: str
    payload: Any = None

    def __post_init__(self) -> None:
        if "analysis" in self.data:
            raise AnalysisError(
                f"analysis {self.analysis!r}: 'analysis' is a reserved "
                "data key (it labels the result in to_dict())")

    def to_dict(self) -> dict[str, Any]:
        return {"analysis": self.analysis, **self.data}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_text(self) -> str:
        return self.text


@dataclass
class SegmentSeed:
    """Checkpoint-derived state handed to :meth:`Analysis.begin_segment`.

    Built by the parallel replay driver from a
    :class:`repro.trace.shards.Checkpoint`; kept as plain data here so
    analyses never import the trace layer.
    """

    #: Global event index / clock at the segment's first event.
    index: int = 0
    time: int = 0
    #: Shadow snapshot: ``[(addr, (pc, t) | None, {pc: t}), ...]`` —
    #: last write and per-pc reads since it, per tracked address.
    shadow: list = field(default_factory=list)
    #: Execution-index stack at the seam: ``[(head pc, Tenter), ...]``.
    construct_stack: list = field(default_factory=list)
    #: Call stack at the seam, function names bottom-to-top.
    call_stack: list = field(default_factory=list)
    is_first: bool = False
    is_last: bool = False


class AnalysisSegment:
    """Mergeable partial result of one replayed trace segment.

    ``merge(other)`` is the contract parallel replay is built on: fold
    the segments of one trace left-to-right (``s0.merge(s1).merge(s2)
    ...``) and ``finalize`` the result, and you get an
    :class:`AnalysisResult` equal to what a serial replay's ``finish``
    produces — including cross-segment dependence pairs, which workers
    defer and the merge resolves against the accumulated live-writer
    frontier. The fold is ordered (``other`` must be the segment
    immediately after ``self``) and not commutative.
    """

    __slots__ = ("analysis", "cls", "state")

    def __init__(self, cls: type["Analysis"], state: dict):
        self.analysis = cls.name
        self.cls = cls
        self.state = state

    def merge(self, other: "AnalysisSegment") -> "AnalysisSegment":
        """Fold the next segment's partial state into this one."""
        if other.cls is not self.cls:
            raise AnalysisError(
                f"cannot merge segment of {other.analysis!r} into "
                f"{self.analysis!r}")
        return AnalysisSegment(
            self.cls, self.cls.merge_segment_states(self.state,
                                                    other.state))

    def finalize(self, ctx: AnalysisContext) -> AnalysisResult:
        """Turn the folded state into the analysis's final result."""
        return self.cls.finalize_segments(self.state, ctx)


@dataclass
class _FooterView:
    """Duck-type of the old ``TraceFooter`` for ``ctx.footer`` readers."""

    exit_value: int
    output: list
    events: int
    final_time: int


@dataclass
class AnalysisContext:
    """What an analysis receives in :meth:`Analysis.finish`.

    Built by whichever engine drove the events — the interpreter (live)
    or the replay engine (trace) — with identical program/memory/
    final-time semantics, so ``finish`` needs no mode awareness.
    ``events`` counts trace records on replay and is ``None`` live;
    ``wall_seconds`` is honest wall time either way. Neither belongs in
    ``AnalysisResult.data`` (they would break live/replay parity).
    """

    program: ProgramIR
    memory: Memory
    final_time: int = 0
    exit_value: int = 0
    output: list = field(default_factory=list)
    events: int | None = None
    wall_seconds: float = 0.0
    mode: str = "live"
    #: Sampling spec of the trace the events came from, or ``None`` for
    #: a full-fidelity stream (always ``None`` live — the interpreter
    #: emits everything; a sampling gate sits in front of individual
    #: tracers, not the run). Analyses use this to label their results
    #: as approximate.
    sampling: str | None = None
    #: Path of the trace the events were replayed from (``None`` live).
    #: Lets an analysis that needs a *second* pass over the same event
    #: stream (e.g. ``whatif``'s task-graph extraction for candidates
    #: only known after the profile exists) re-read the recording
    #: instead of re-executing the program. Never part of result data —
    #: it would break live/replay parity.
    trace_path: str | None = None
    #: Telemetry handle of the engine that drove the events (never
    #: None — defaults to the shared no-op). Plugins emit their own
    #: spans/counters through it (``with ctx.telemetry.span(...)``);
    #: like the other context fields it must never leak into
    #: ``AnalysisResult.data`` (telemetry on/off cannot change results).
    telemetry: Any = None

    def __post_init__(self) -> None:
        if self.telemetry is None:
            from repro.telemetry import NULL_TELEMETRY

            self.telemetry = NULL_TELEMETRY

    @property
    def footer(self) -> _FooterView:
        """Deprecated: the old ``ReplayContext`` exposed exit/output
        through the trace footer; read the fields directly instead."""
        return _FooterView(exit_value=self.exit_value,
                           output=[list(v) for v in self.output],
                           events=self.events or 0,
                           final_time=self.final_time)


class Analysis(Tracer):
    """Base class for registered analyses: tracer hooks + ``finish``.

    Subclasses override whichever hooks they need (unoverridden hooks
    cost nothing — both engines drop base-class no-ops from dispatch)
    and must implement :meth:`finish`. Set ``requires_live = True`` for
    analyses that genuinely need a live interpreter (e.g. ones that
    inspect runtime values not present in the event stream); the
    session will then execute the program rather than replay a trace.
    """

    #: Registry key; also the result key in every multi-analysis report.
    name: str = ""
    #: One-line human description (shown by ``alchemist analyses``).
    description: str = ""
    #: Options schema; constructor keywords must match the spec names.
    options: tuple[OptionSpec, ...] = ()
    #: True if the analysis cannot run from a recorded trace.
    requires_live: bool = False
    #: True if the analysis implements the segment/merge protocol
    #: (``begin_segment`` / ``export_segment`` / ``merge_segment_states``
    #: / ``finalize_segments``) and can therefore run under sharded
    #: parallel replay. Analyses that leave it False simply fall back
    #: to a serial pass — parallel replay is an optimization, never a
    #: requirement.
    supports_segments: bool = False
    #: Optional replay fast path. With ``batch_kind`` left ``None`` the
    #: engines dispatch scalar hooks per event — always correct, and
    #: what live runs use regardless. Setting it (together with a
    #: ``consume_batch(batch)`` method taking a
    #: :class:`repro.trace.columnar.EventBatch`) opts into block-at-a-
    #: time dispatch on replay:
    #:
    #: * ``"block"`` — ``consume_batch`` receives every decoded block
    #:   once and must handle *all* event types it cares about from the
    #:   columns (including structural ENTER/EXIT/ALLOC/FREE and
    #:   FINISH); no scalar hooks fire for in-batch events. Only valid
    #:   for analyses that never read shared replay state (the
    #:   reconstructed ``Memory``) while consuming — counters and
    #:   histograms.
    #: * ``"span"`` — ``consume_batch`` receives maximal sub-batches
    #:   containing no memory-mutating events; ENTER/EXIT/ALLOC/FREE
    #:   and FINISH still arrive through the scalar hooks, with the
    #:   reconstructed memory synchronized exactly as in scalar
    #:   replay. Right for analyses that resolve addresses or names
    #:   against ``Memory`` mid-stream (the dependence profilers).
    #:
    #: Either way ``consume_batch`` must be observationally equivalent
    #: to the scalar hooks — the engines are free to pick the path, and
    #: the batch-vs-scalar parity suite asserts results match.
    batch_kind: str | None = None
    #: Overridden (as a method) by analyses that set ``batch_kind``.
    consume_batch = None

    #: Last ``finish`` output, stashed by the engines so the deprecated
    #: ``describe`` surface can still render after a run.
    last_result: AnalysisResult | None = None

    def finish(self, ctx: AnalysisContext) -> AnalysisResult:
        """Turn accumulated state into the structured result.

        The default adapts pre-registry consumers that implement only
        the legacy ``result()``/``describe()`` protocol; new analyses
        override ``finish`` directly.
        """
        cls = type(self)
        if cls.result is not Analysis.result:  # legacy consumer
            payload = self.result(ctx)
            if cls.describe is not Analysis.describe:
                text = self.describe(payload)
            else:
                text = repr(payload)
            data = (payload if isinstance(payload, dict)
                    and "analysis" not in payload else {})
            return AnalysisResult(analysis=self.name, data=data,
                                  text=text, payload=payload)
        raise NotImplementedError(
            f"{cls.__qualname__} must implement finish()")

    # -- segment/merge protocol (parallel replay) -------------------------

    def begin_segment(self, program: ProgramIR, memory: Memory,
                      seed: SegmentSeed) -> None:
        """Prepare to observe one mid-trace segment.

        Replaces ``on_start`` in a parallel worker: ``memory`` is
        already reconstructed to the checkpoint, and ``seed`` carries
        the shadow/stack snapshots an analysis needs so that every
        in-segment event is handled exactly as a serial pass would
        handle it. The default just calls ``on_start`` — correct for
        analyses whose per-event handling never looks at pre-segment
        state (counters, histograms).
        """
        self.on_start(program, memory)

    def export_segment(self, ctx: AnalysisContext) -> AnalysisSegment:
        """Package this segment's partial state for the merge.

        Called in the worker after its slice of events (in place of
        ``finish``); the returned :class:`AnalysisSegment` must be
        picklable.
        """
        raise NotImplementedError(
            f"{type(self).__qualname__} does not implement the segment "
            "protocol")

    @classmethod
    def merge_segment_states(cls, acc: dict, part: dict) -> dict:
        """Fold ``part`` (the next segment) into ``acc``; returns the
        combined state. Invoked via :meth:`AnalysisSegment.merge`."""
        raise NotImplementedError(
            f"{cls.__qualname__} does not implement the segment "
            "protocol")

    @classmethod
    def finalize_segments(cls, state: dict,
                          ctx: AnalysisContext) -> AnalysisResult:
        """Build the final result from fully folded state; must equal
        what ``finish`` produces after a serial replay."""
        raise NotImplementedError(
            f"{cls.__qualname__} does not implement the segment "
            "protocol")

    # -- deprecated TraceConsumer surface --------------------------------

    def result(self, ctx: AnalysisContext) -> Any:
        """Deprecated: pre-registry consumers returned a raw payload."""
        outcome = self.finish(ctx)
        self.last_result = outcome
        return outcome.payload if outcome.payload is not None \
            else outcome.data

    def describe(self, outcome: Any = None) -> str:
        """Deprecated: pre-registry consumers rendered raw payloads;
        the rendering now lives on :class:`AnalysisResult`."""
        if self.last_result is not None:
            return self.last_result.text
        return repr(outcome)

    @classmethod
    def option_names(cls) -> list[str]:
        return [spec.name for spec in cls.options]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, type[Analysis]] = {}


def register(cls: type[Analysis]) -> type[Analysis]:
    """Class decorator: add an :class:`Analysis` subclass to the
    registry under its ``name``. Duplicate names are an error — plugins
    must not silently shadow each other."""
    if not (isinstance(cls, type) and issubclass(cls, Analysis)):
        raise AnalysisError(
            f"@register expects an Analysis subclass, got {cls!r}")
    name = cls.name
    if not name:
        raise AnalysisError(
            f"{cls.__qualname__} must set a non-empty 'name'")
    existing = _REGISTRY.get(name)
    if existing is not None:
        raise AnalysisError(
            f"duplicate analysis name {name!r}: already registered by "
            f"{existing.__module__}.{existing.__qualname__}")
    _REGISTRY[name] = cls
    return cls


def unregister(name: str) -> None:
    """Remove a registered analysis (tests and plugin reloads)."""
    _REGISTRY.pop(name, None)


def registry() -> Mapping[str, type[Analysis]]:
    """Read-only live view of the registry (name -> class)."""
    return MappingProxyType(_REGISTRY)


def analysis_names() -> list[str]:
    """Registered names, sorted."""
    return sorted(_REGISTRY)


def get_analysis(name: str) -> type[Analysis]:
    """Look up one analysis class; unknown names list every valid one."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(analysis_names())
        raise AnalysisError(
            f"unknown analysis {name!r} (known: {known})") from None


def parse_spec(spec: str | Iterable[str]) -> list[str]:
    """``"dep,locality"`` or any iterable of names -> list of names."""
    if isinstance(spec, str):
        names = [name.strip() for name in spec.split(",") if name.strip()]
    else:
        names = [str(name) for name in spec]
    return names


def make_analyses(spec: str | Iterable[str],
                  options: Mapping[str, Mapping[str, Any]] | None = None
                  ) -> list[Analysis]:
    """Instantiate analyses from a spec, validating per-analysis options.

    ``options`` maps analysis name -> {option name: value}; every value
    is checked against the plugin's :class:`OptionSpec` schema (unknown
    options and un-coercible values raise :class:`AnalysisError`).
    """
    names = parse_spec(spec)
    if not names:
        raise AnalysisError("no analyses requested")
    seen: set[str] = set()
    instances: list[Analysis] = []
    for name in names:
        if name in seen:
            raise AnalysisError(f"analysis {name!r} requested twice")
        seen.add(name)
        cls = get_analysis(name)
        kwargs: dict[str, Any] = {}
        for opt_name, value in dict((options or {}).get(name, {})).items():
            spec_obj = next((s for s in cls.options
                             if s.name == opt_name), None)
            if spec_obj is None:
                valid = ", ".join(cls.option_names()) or "none"
                raise AnalysisError(
                    f"analysis {name!r} has no option {opt_name!r} "
                    f"(valid options: {valid})")
            kwargs[opt_name] = spec_obj.coerce(value)
        try:
            instances.append(cls(**kwargs))
        except ValueError as exc:
            # Constructors own semantic validation (e.g. positivity);
            # surface it as the registry's error type.
            raise AnalysisError(f"analysis {name!r}: {exc}") from None
    return instances


#: Re-export of :func:`repro.runtime.tracing.overridden_hooks` — the
#: one dispatch filter shared by the replay engine and the live tee.
live_hooks = overridden_hooks
