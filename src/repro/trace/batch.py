"""Batch record/replay: many workloads, many analyses, many processes.

The driver fans jobs out over a ``multiprocessing`` pool and returns
results in deterministic (submission) order regardless of completion
order — each job is pure (workload name + scale in, summary dict out),
so parallel and serial execution produce identical payloads.

Job payloads are plain dicts of JSON-able values rather than live
``ProfileReport`` objects: workers run in separate processes, and a
compact summary both pickles cheaply and diffs nicely across runs.

``workers=0`` (or 1) runs jobs inline in the calling process — handy
for tests and for platforms where process spawn cost would swamp the
tiny bundled workloads.
"""

from __future__ import annotations

import multiprocessing
import os
import time as _time
from dataclasses import dataclass, field
from typing import Any

from repro.analyses import profile_summary  # noqa: F401  (re-export)
from repro.trace.replay import replay_trace
from repro.trace.writer import record_source

#: Default analyses a batch replay runs.
DEFAULT_ANALYSES = ("dep", "locality", "hot")


@dataclass(frozen=True)
class BatchJob:
    """One unit of batch work.

    ``kind`` is ``"record"`` (run the workload, write ``trace_path``)
    or ``"replay"`` (stream ``trace_path`` through ``analyses``).
    """

    kind: str
    name: str
    trace_path: str
    workload: str = ""
    scale: float = 1.0
    analyses: tuple[str, ...] = DEFAULT_ANALYSES
    #: Sampling spec the record phase runs under ("full" = unsampled)
    #: and the trace schema version it writes. Replay jobs ignore both
    #: (the reader auto-detects).
    sampling: str = "full"
    version: int | None = None
    #: Modules imported in the worker before resolving ``analyses`` —
    #: how user plugins reach the registry of a freshly *spawned*
    #: process (fork-start platforms inherit the parent registry, spawn
    #: platforms re-import only the builtins).
    plugin_modules: tuple[str, ...] = ()
    #: Per-analysis options for replay jobs, as nested (name, value)
    #: pairs so the job stays hashable: e.g.
    #: ``(("whatif", (("workers", "2,4"), ("top", 3))),)``. Validated
    #: against each plugin's OptionSpec schema in the worker.
    options: tuple[tuple[str, tuple[tuple[str, Any], ...]], ...] = ()
    #: Collect telemetry in the worker and ship the span tree back on
    #: the result (set by the driver when its own telemetry is on).
    telemetry: bool = False


@dataclass
class BatchResult:
    """Outcome of one job, in submission order."""

    job: BatchJob
    ok: bool
    seconds: float
    payload: dict[str, Any] = field(default_factory=dict)
    error: str = ""
    #: Worker span tree / counters (only when the job asked for
    #: telemetry); the driver stitches these under its ``batch`` span.
    spans: dict[str, Any] | None = None
    counters: dict[str, int] | None = None


def run_job(job: BatchJob) -> BatchResult:
    """Execute one job (also the worker entry point — must stay
    importable at module top level for pickling)."""
    from repro.telemetry import NULL_TELEMETRY, Telemetry

    tm = Telemetry() if job.telemetry else NULL_TELEMETRY
    span = tm.span(f"batch.{job.kind}", workload=job.name)
    span.__enter__()
    try:
        if job.plugin_modules:
            import importlib

            for module in job.plugin_modules:
                importlib.import_module(module)
        if job.kind == "record":
            from repro.trace.events import DEFAULT_TRACE_VERSION
            from repro.workloads import get

            workload = get(job.workload or job.name, job.scale)
            result = record_source(
                workload.source, job.trace_path, filename=workload.name,
                version=(job.version if job.version is not None
                         else DEFAULT_TRACE_VERSION),
                sampling=job.sampling, telemetry=tm)
            payload = {
                "trace": result.path,
                "events": result.events,
                "trace_bytes": result.trace_bytes,
                "final_time": result.final_time,
                "exit_value": result.exit_value,
                "version": result.version,
                "sampling": result.sampling,
            }
        elif job.kind == "replay":
            # Analyses resolve through the shared registry; every
            # AnalysisResult.data is JSON-able, hence picklable. Legacy
            # result()-protocol consumers may produce no data dict —
            # fall back to their raw payload (pre-registry behaviour).
            if job.options:
                from repro.analyses import make_analyses
                from repro.trace.replay import replay_with

                option_map = {name: dict(pairs)
                              for name, pairs in job.options}
                consumers = make_analyses(job.analyses, option_map)
                outcome = replay_with(job.trace_path, consumers,
                                      telemetry=tm)
            else:
                outcome = replay_trace(job.trace_path, job.analyses,
                                       telemetry=tm)
            payload = {
                name: (report.data if report.data
                       or report.payload is None else report.payload)
                for name, report in outcome.reports.items()
            }
        else:
            raise ValueError(f"unknown batch job kind {job.kind!r}")
    except Exception as exc:  # worker errors travel as data, not crashes
        span.__exit__(type(exc), exc, None)
        return BatchResult(job=job, ok=False,
                           seconds=span.wall_seconds,
                           error=f"{type(exc).__name__}: {exc}",
                           spans=tm.export_spans(),
                           counters=dict(tm.counters) if tm.enabled
                           else None)
    span.__exit__(None, None, None)
    return BatchResult(job=job, ok=True,
                       seconds=span.wall_seconds,
                       payload=payload,
                       spans=tm.export_spans(),
                       counters=dict(tm.counters) if tm.enabled else None)


def run_batch(jobs: list[BatchJob],
              workers: int | None = None) -> list[BatchResult]:
    """Run ``jobs`` over a process pool; results in submission order.

    ``workers=None`` sizes the pool to ``min(len(jobs), cpu_count)``;
    ``workers<=1`` runs serially in-process.
    """
    if workers is None:
        workers = min(len(jobs), os.cpu_count() or 1)
    if workers <= 1 or len(jobs) <= 1:
        return [run_job(job) for job in jobs]
    with multiprocessing.Pool(processes=min(workers, len(jobs))) as pool:
        # pool.map preserves submission order by construction.
        return pool.map(run_job, jobs)


@dataclass
class BatchReport:
    """Record phase + replay phase over a set of workloads."""

    records: list[BatchResult]
    replays: list[BatchResult]
    workers: int
    wall_seconds: float

    def by_name(self) -> dict[str, dict[str, Any]]:
        """Deterministically ordered {workload: {record, replay}}."""
        merged: dict[str, dict[str, Any]] = {}
        for result in self.records:
            merged.setdefault(result.job.name, {})["record"] = result
        for result in self.replays:
            merged.setdefault(result.job.name, {})["replay"] = result
        return merged

    def failures(self) -> list[BatchResult]:
        """Every failed job (record or replay), in submission order —
        the batch driver's exit code and failure summary hang off
        this, so a worker error can never be silently swallowed into
        a partial-results report."""
        return [result for result in self.records + self.replays
                if not result.ok]

    def describe(self) -> str:
        lines = [f"batch: {len(self.records)} workload(s), "
                 f"{self.workers} worker(s), "
                 f"{self.wall_seconds:.2f}s wall"]
        for name, phases in self.by_name().items():
            record = phases.get("record")
            replay = phases.get("replay")
            parts = [f"  {name:12s}"]
            if record is not None:
                if record.ok:
                    parts.append(f"recorded {record.payload['events']} "
                                 f"events ({record.payload['trace_bytes']}"
                                 f" B) in {record.seconds:.2f}s")
                else:
                    parts.append(f"record FAILED: {record.error}")
            if replay is not None:
                if replay.ok:
                    parts.append(f"; replayed "
                                 f"{','.join(replay.job.analyses)} "
                                 f"in {replay.seconds:.2f}s")
                else:
                    parts.append(f"; replay FAILED: {replay.error}")
            lines.append("".join(parts))
        failures = self.failures()
        if failures:
            lines.append(f"FAILED ({len(failures)} job(s)):")
            for result in failures:
                what = (result.job.trace_path if result.job.kind == "replay"
                        else result.job.name)
                lines.append(f"  {result.job.kind} {what}: {result.error}")
        return "\n".join(lines)


def freeze_options(options: dict | None
                   ) -> tuple[tuple[str, tuple[tuple[str, Any], ...]], ...]:
    """Nested {analysis: {option: value}} dict -> the hashable tuple
    shape :class:`BatchJob.options` carries across process boundaries."""
    if not options:
        return ()
    return tuple(sorted(
        (name, tuple(sorted(opts.items())))
        for name, opts in options.items()))


def record_replay_many(workload_names: list[str], out_dir: str,
                       analyses: tuple[str, ...] = DEFAULT_ANALYSES,
                       workers: int | None = None,
                       scale: float = 1.0,
                       plugin_modules: tuple[str, ...] = (),
                       sampling: str = "full",
                       version: int | None = None,
                       options: dict | None = None,
                       telemetry=None) -> BatchReport:
    """Record every workload, then replay every trace, both in parallel.

    The two phases are separated by a barrier (a replay needs its trace
    on disk); within each phase jobs run concurrently. Pass the modules
    that ``@register`` your custom analyses via ``plugin_modules`` so
    spawned workers can resolve them too. ``sampling``/``version``
    configure the record phase (see :func:`repro.trace.record_source`);
    ``options`` carries per-analysis options into every replay job
    (``{"whatif": {"workers": "2,4"}}``). With an enabled ``telemetry``
    every worker collects its own spans, stitched back under the
    driver's ``batch`` span in submission order.
    """
    from repro.telemetry import as_telemetry

    tm = as_telemetry(telemetry)
    os.makedirs(out_dir, exist_ok=True)
    start = _time.perf_counter()
    frozen = freeze_options(options)
    record_jobs = [
        BatchJob(kind="record", name=name, workload=name, scale=scale,
                 trace_path=os.path.join(out_dir, f"{name}.trace"),
                 sampling=sampling, version=version,
                 telemetry=tm.enabled)
        for name in workload_names
    ]
    with tm.span("batch", workloads=list(workload_names),
                 analyses=list(analyses)) as span:
        records = run_batch(record_jobs, workers)
        replay_jobs = [
            BatchJob(kind="replay", name=job.name,
                     trace_path=job.trace_path,
                     analyses=tuple(analyses),
                     plugin_modules=tuple(plugin_modules),
                     options=frozen, telemetry=tm.enabled)
            for job, result in zip(record_jobs, records) if result.ok
        ]
        replays = run_batch(replay_jobs, workers)
        for result in records + replays:
            tm.attach(result.spans)
            tm.merge_counters(result.counters)
    effective = workers if workers is not None else min(
        len(record_jobs), os.cpu_count() or 1)
    wall = _time.perf_counter() - start
    if tm.enabled:
        span.set(jobs=len(records) + len(replays), workers=effective)
        from repro.telemetry import get_logger

        get_logger(__name__).info(
            "batch finished", extra={
                "workloads": len(record_jobs), "workers": effective,
                "failures": sum(1 for r in records + replays if not r.ok),
                "wall_seconds": round(wall, 6)})
    return BatchReport(records=records, replays=replays,
                       workers=effective,
                       wall_seconds=wall)
