"""Columnar event batches: whole trace blocks as typed arrays.

The scalar v2 decoder reconstructs one event tuple at a time — a pure
Python loop whose per-event cost dwarfs the zlib and varint work it
wraps. This module holds the columnar alternative the batch replay
path is built on: each decoded block becomes one :class:`EventBatch`
of four parallel typed columns (``etypes``/``a``/``b``/``t``), and the
delta/zigzag reconstruction runs once per *column* instead of once per
event. With numpy present the per-block kernel
(:func:`decode_block_columns`) vectorizes the whole pipeline —
varint boundary discovery, value assembly, zigzag, per-type delta
cumsums — in a handful of array ops; without numpy batches are still
produced (``array('q')`` columns filled by the exact scalar loop) so
the ``consume_batch`` plugin surface works everywhere, it just stops
being faster.

Correctness contract: the kernel only ever accepts a block it can
*prove* well-formed — contiguous ``[etype][varint][varint][varint]``
records covering every byte, with no varint beyond the 5 bytes a
legitimate u32-bounded field can occupy (int64 arithmetic is then
exact). Anything else returns ``None`` and the caller re-decodes the
block with the scalar reference loop, which reproduces the scalar
decoder's events and errors bit for bit — the property-based
equivalence suite pins exactly this.
"""

from __future__ import annotations

import os
from array import array

from repro.trace.events import (EV_ALLOC, EV_BLOCK, EV_BRANCH,
                                EV_CHECKPOINT, EV_ENTER, EV_EXIT,
                                EV_FINISH, EV_FREE, EV_READ, EV_WRITE)

try:  # numpy is an accelerator, never a requirement
    import numpy as _np
except Exception:  # pragma: no cover - exercised on numpy-less installs
    _np = None

HAVE_NUMPY = _np is not None

#: Event types the replay engines apply to reconstructed memory (frame
#: pushes/pops, heap churn) plus FINISH: the seams at which a block is
#: split into memory-quiet spans for ``batch_kind == "span"`` plugins.
STRUCTURAL_EVENTS = frozenset(
    (EV_ENTER, EV_EXIT, EV_ALLOC, EV_FREE, EV_FINISH))

#: Every event type the engines understand (anything else is a corrupt
#: record and replay raises ``unknown event type``).
KNOWN_EVENTS = frozenset(
    (EV_ENTER, EV_EXIT, EV_BLOCK, EV_BRANCH, EV_READ, EV_WRITE,
     EV_ALLOC, EV_FREE, EV_FINISH, EV_CHECKPOINT))

#: Longest varint a legitimate v2 field can occupy: operands and
#: deltas are u32-bounded, so zigzag values fit 33 bits = 5 x 7-bit
#: groups. Blocks containing longer varints fall back to the scalar
#: decoder (whose 10-byte/64-bit hard cap raises ``overlong varint``).
VECTOR_MAX_VARINT_BYTES = 5

#: Per-type delta seeds beyond this magnitude (only reachable through
#: corrupt-but-parseable blocks — valid operands are u32) push the
#: int64 cumsums toward overflow, where numpy would silently wrap
#: while the scalar decoder's bignums would not; such blocks take the
#: scalar path instead.
_SAFE_PREV = 1 << 55

if HAVE_NUMPY:
    _STRUCT_LUT = _np.zeros(256, dtype=bool)
    for _et in STRUCTURAL_EVENTS:
        _STRUCT_LUT[_et] = True
    _KNOWN_LUT = _np.zeros(256, dtype=bool)
    for _et in KNOWN_EVENTS:
        _KNOWN_LUT[_et] = True
    _ACCESS_LUT = _np.zeros(256, dtype=bool)
    _ACCESS_LUT[EV_READ] = _ACCESS_LUT[EV_WRITE] = True


def columnar_enabled(override: bool | None = None) -> bool:
    """Should readers/engines prefer the columnar batch path?

    ``override`` (an explicit caller choice) wins; then the
    ``ALCHEMIST_COLUMNAR`` environment variable (``0``/``off`` forces
    the scalar path everywhere — the parity escape hatch — while
    ``1``/``on`` forces batches even without numpy); the default is on
    exactly when numpy is importable, because without it batches decode
    through the same scalar loop they would replace.
    """
    if override is not None:
        return bool(override)
    env = os.environ.get("ALCHEMIST_COLUMNAR", "").strip().lower()
    if env in ("0", "no", "off", "false", "scalar"):
        return False
    if env in ("1", "yes", "on", "true", "force"):
        return True
    return HAVE_NUMPY


class EventBatch:
    """One decoded block of events as four parallel typed columns.

    Columns are numpy ``int64`` arrays on the vectorized path and
    ``array('q')`` on the fallback path; either way :meth:`columns`
    exposes plain-``int`` lists (cached) and :meth:`rows` iterates
    ``(etype, a, b, t)`` tuples identical to the scalar decoder's
    yield. Slices share storage where the backing type allows it.
    """

    __slots__ = ("etypes", "a", "b", "t", "_lists")

    def __init__(self, etypes, a, b, t, _lists=None):
        self.etypes = etypes
        self.a = a
        self.b = b
        self.t = t
        self._lists = _lists

    @classmethod
    def from_lists(cls, etypes: list, a: list, b: list, t: list
                   ) -> "EventBatch":
        """Wrap scalar-decoded columns (keeps the lists as the cache)."""
        try:
            return cls(array("q", etypes), array("q", a), array("q", b),
                       array("q", t), _lists=(etypes, a, b, t))
        except OverflowError:
            # A corrupt-but-parseable block can carry varint values
            # outside int64 (the scalar decoder's 10-byte cap admits up
            # to 70 value bits, yielding Python bigints). Keep plain
            # lists as the columns so the batch surface reproduces the
            # scalar decoder's events bit for bit instead of raising.
            return cls(list(etypes), list(a), list(b), list(t),
                       _lists=(etypes, a, b, t))

    def __len__(self) -> int:
        return len(self.etypes)

    def slice(self, lo: int, hi: int) -> "EventBatch":
        """Sub-batch covering rows ``[lo, hi)``."""
        return EventBatch(self.etypes[lo:hi], self.a[lo:hi],
                          self.b[lo:hi], self.t[lo:hi])

    # -- scalar views ------------------------------------------------------

    def columns(self) -> tuple[list, list, list, list]:
        """The four columns as plain-int lists (computed once)."""
        lists = self._lists
        if lists is None:
            if HAVE_NUMPY and isinstance(self.etypes, _np.ndarray):
                lists = (self.etypes.tolist(), self.a.tolist(),
                         self.b.tolist(), self.t.tolist())
            else:
                lists = (list(self.etypes), list(self.a),
                         list(self.b), list(self.t))
            self._lists = lists
        return lists

    def rows(self):
        """Iterate ``(etype, a, b, t)`` tuples of plain ints."""
        return zip(*self.columns())

    def gather(self, indices: list[int]
               ) -> tuple[list, list, list, list]:
        """The four columns at ``indices`` only, as plain-int lists.

        Cheaper than :meth:`columns` when only a few rows are needed
        (the engines gather just the structural seams of a block).
        """
        if self._lists is not None:
            et_l, a_l, b_l, t_l = self._lists
            return ([et_l[i] for i in indices], [a_l[i] for i in indices],
                    [b_l[i] for i in indices], [t_l[i] for i in indices])
        if HAVE_NUMPY and isinstance(self.etypes, _np.ndarray):
            idx = _np.asarray(indices, dtype=_np.intp)
            return (self.etypes[idx].tolist(), self.a[idx].tolist(),
                    self.b[idx].tolist(), self.t[idx].tolist())
        return ([self.etypes[i] for i in indices],
                [self.a[i] for i in indices],
                [self.b[i] for i in indices],
                [self.t[i] for i in indices])

    # -- engine helpers ----------------------------------------------------

    def structural_indices(self) -> list[int]:
        """Row indices of memory-mutating events and FINISH, in order."""
        if HAVE_NUMPY and isinstance(self.etypes, _np.ndarray):
            return _np.flatnonzero(_STRUCT_LUT[self.etypes]).tolist()
        structural = STRUCTURAL_EVENTS
        return [i for i, et in enumerate(self.etypes) if et in structural]

    def first_unknown_etype(self) -> int | None:
        """The first event type outside the known set, or ``None``."""
        if HAVE_NUMPY and isinstance(self.etypes, _np.ndarray):
            known = _KNOWN_LUT[self.etypes]
            if known.all():
                return None
            return int(self.etypes[int(_np.argmin(known))])
        known = KNOWN_EVENTS
        for et in self.etypes:
            if et not in known:
                return int(et)
        return None

    # -- analysis helpers (the consume_batch building blocks) -------------

    def etype_counts(self) -> list[int]:
        """Count per event type, indexable by the ``EV_*`` codes."""
        if HAVE_NUMPY and isinstance(self.etypes, _np.ndarray):
            return _np.bincount(self.etypes, minlength=256).tolist()
        counts = [0] * 256
        for et in self.etypes:
            counts[et] += 1
        return counts

    def addrs_for(self, etype: int) -> list[int]:
        """The ``a`` operand of every event of type ``etype``."""
        if HAVE_NUMPY and isinstance(self.etypes, _np.ndarray):
            return self.a[self.etypes == etype].tolist()
        return [a for et, a in zip(self.etypes, self.a) if et == etype]

    def addr_counts(self, etype: int) -> list[tuple[int, int]]:
        """``(a, occurrences)`` pairs for events of type ``etype``."""
        if HAVE_NUMPY and isinstance(self.etypes, _np.ndarray):
            values, counts = _np.unique(self.a[self.etypes == etype],
                                        return_counts=True)
            return list(zip(values.tolist(), counts.tolist()))
        tally: dict[int, int] = {}
        for et, a in zip(self.etypes, self.a):
            if et == etype:
                tally[a] = tally.get(a, 0) + 1
        return sorted(tally.items())

    def access_addrs(self) -> list[int]:
        """Addresses of every READ and WRITE, in event order."""
        if HAVE_NUMPY and isinstance(self.etypes, _np.ndarray):
            return self.a[_ACCESS_LUT[self.etypes]].tolist()
        return [a for et, a in zip(self.etypes, self.a)
                if et == EV_READ or et == EV_WRITE]


def decode_block_columns(data: bytes, prev_a: list[int],
                         prev_b: list[int], time0: int):
    """Vectorized whole-block decode of v2 record bytes.

    Returns ``(etypes, a, b, t, finished)`` — four int64 numpy columns
    (truncated at the first FINISH record, matching the scalar
    decoder's early return) plus whether FINISH was seen — and mutates
    ``prev_a``/``prev_b`` in place exactly as decoding each record
    scalar-wise would. Returns ``None`` whenever the block is not
    provably well-formed; the caller must then re-decode it with the
    scalar reference loop, which reproduces events and errors exactly.
    """
    if _np is None:
        return None
    arr = _np.frombuffer(data, dtype=_np.uint8)
    # Varint terminals and etype bytes are the bytes without the
    # continuation bit; a well-formed record contributes exactly four:
    # [etype][end of zz(da)][end of zz(db)][end of dt].
    ends = _np.flatnonzero(arr < 0x80)
    if ends.size == 0 or ends.size % 4:
        return None
    ends = ends.reshape(-1, 4)
    if (ends[0, 0] != 0 or ends[-1, 3] != arr.size - 1
            or (ends[1:, 0] != ends[:-1, 3] + 1).any()):
        return None
    et_u8 = arr[ends[:, 0]]
    fin = _np.flatnonzero(et_u8 == EV_FINISH)
    finished = fin.size > 0
    if finished:
        ends = ends[:int(fin[0]) + 1]
        et_u8 = et_u8[:int(fin[0]) + 1]
    etypes = et_u8.astype(_np.int64)
    # Little-endian 7-bit group assembly, one pass per varint column.
    # Delta compression makes single-byte varints the overwhelmingly
    # common case, so each column starts from its first byte and only
    # the (few) longer varints get integer-indexed fix-up passes; the
    # byte gathers stay in uint8 so only the n decoded values per
    # column ever widen to int64.
    cols = []
    for k in range(3):
        first = ends[:, k] + 1
        lens = ends[:, k + 1] - ends[:, k]
        column = (arr[first] & 0x7F).astype(_np.int64)
        maxlen = int(lens.max())
        if maxlen > VECTOR_MAX_VARINT_BYTES:
            return None
        for j in range(1, maxlen):
            more = _np.flatnonzero(lens > j)
            column[more] |= ((arr[first[more] + j] & 0x7F)
                             .astype(_np.int64) << (7 * j))
        cols.append(column)
    za, zb, dt = cols
    da = (za >> 1) ^ -(za & 1)
    db = (zb >> 1) ^ -(zb & 1)
    n = etypes.shape[0]
    # Deltas are relative to the previous record of the SAME type.
    # Group rows by type with one stable argsort on the uint8 keys
    # (radix sort) instead of a boolean mask + two fancy-index passes
    # per type present: one cumsum per operand column over the sorted
    # deltas, re-based per type segment with the cross-block prev
    # state (which each segment also feeds back into), then an inverse
    # scatter to restore record order.
    order = _np.argsort(et_u8, kind="stable")
    et_sorted = et_u8[order]
    bounds = _np.flatnonzero(et_sorted[1:] != et_sorted[:-1]) + 1
    seg_starts = _np.concatenate(([0], bounds))
    seg_ends = _np.concatenate((bounds, [n]))
    seg_types = et_sorted[seg_starts].tolist()
    if abs(time0) > _SAFE_PREV:
        return None
    for et in seg_types:
        if abs(prev_a[et]) > _SAFE_PREV or abs(prev_b[et]) > _SAFE_PREV:
            return None
    seg_lens = seg_ends - seg_starts
    starts_l = seg_starts.tolist()
    ends_l = seg_ends.tolist()
    a = _np.empty(n, dtype=_np.int64)
    b = _np.empty(n, dtype=_np.int64)
    for deltas, out, prev in ((da, a, prev_a), (db, b, prev_b)):
        cum = deltas[order].cumsum()
        shifts = []
        for s, e, et in zip(starts_l, ends_l, seg_types):
            shift = prev[et] - (int(cum[s - 1]) if s else 0)
            shifts.append(shift)
            prev[et] = int(cum[e - 1]) + shift
        out[order] = cum + _np.repeat(
            _np.asarray(shifts, dtype=_np.int64), seg_lens)
    t = dt.cumsum() + time0
    return etypes, a, b, t, finished
