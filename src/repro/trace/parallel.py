"""Parallel sharded replay: fan trace segments across a process pool.

Serial replay walks the whole event stream through every analysis in
one process, so wall-clock scales with trace length no matter how many
cores the box has. This driver splits a checkpointed trace into
independently replayable segments (:mod:`repro.trace.shards`), runs
the full registered-analysis set over each segment in a worker
process — each worker seeks straight to its seam, reconstructs memory
and decoder state from the checkpoint, and replays only its slice —
then folds the per-segment :class:`~repro.analyses.base.AnalysisSegment`
results left-to-right via their ``merge(other)`` contract and
finalizes. The merged results are bit-identical to a serial pass (the
differential parity suite asserts ``to_dict()`` equality for every
registered analysis on every bundled workload).

Fallbacks are graceful and explicit: a trace with no usable seams, a
single-job request, or an analysis that does not implement the segment
protocol all degrade to one serial pass, reported in
:attr:`ParallelOutcome.mode`.

When serial is still faster: segment workers pay a fork, a program
compile, checkpoint reconstruction, and a pickled export each, so tiny
traces (fewer than ~100k events) or near-free analyses (``counts``)
rarely gain; the win is on long traces with expensive analyses, where
replay cost dominates and scales down with the worker count (see
``docs/parallel-replay.md`` and ``BENCH_parallel.json``).
"""

from __future__ import annotations

import multiprocessing
import os
import time as _time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.analyses import (AnalysisContext, AnalysisResult,
                            get_analysis, make_analyses, parse_spec)
from repro.analyses.base import AnalysisSegment, SegmentSeed
from repro.trace.columnar import columnar_enabled
from repro.trace.events import (EV_ALLOC, EV_BLOCK, EV_BRANCH,
                                EV_CHECKPOINT, EV_ENTER, EV_EXIT,
                                EV_FINISH, EV_FREE, EV_READ, EV_WRITE,
                                TRACE_VERSION_V1, TraceError)
from repro.trace.reader import TraceReader
from repro.trace.replay import dispatch_batches, replay_with
from repro.trace.shards import (Checkpoint, ShardPlan, plan_shards,
                                restore_memory, snapshot_memory)

#: Compiled programs per worker process, keyed by (path, digest) — a
#: worker typically replays several segments of the same trace.
_PROGRAM_CACHE: dict[tuple[str, str], Any] = {}

#: Cache bound: a long-lived process replaying many distinct traces
#: must not accumulate compiled programs forever.
_PROGRAM_CACHE_LIMIT = 16


def unsupported_analyses(names: Iterable[str]) -> list[str]:
    """Requested analyses that cannot run under sharded replay."""
    return [name for name in parse_spec(names)
            if not get_analysis(name).supports_segments]


def _compiled(path: str, header) -> Any:
    from repro.ir.lowering import compile_source

    key = (path, header.digest)
    program = _PROGRAM_CACHE.get(key)
    if program is None:
        program = compile_source(header.source, header.filename)
        if len(_PROGRAM_CACHE) >= _PROGRAM_CACHE_LIMIT:
            _PROGRAM_CACHE.pop(next(iter(_PROGRAM_CACHE)))
        _PROGRAM_CACHE[key] = program
    return program


def run_segment(job: dict) -> dict:
    """Worker entry point: replay one segment, export partial states.

    Top-level so it pickles; ``job`` is a plain dict (path, checkpoint
    payload, end index, analysis names/options, flags). With
    ``job["telemetry"]`` the worker builds its own :class:`Telemetry`
    and ships the span tree + counters back for the coordinator to
    stitch; without it the NULL path still times the segment (the
    ``seconds``/``cpu_seconds`` fields are span-derived either way).
    """
    from repro.telemetry import NULL_TELEMETRY, Telemetry

    tm = Telemetry() if job.get("telemetry") else NULL_TELEMETRY
    # Entered/exited by hand: the whole body is the span, and the
    # result dict needs the span's timings after exit.
    seg_span = tm.span("segment", ordinal=job["ordinal"])
    seg_span.__enter__()
    try:
        for module in job.get("plugin_modules", ()):
            import importlib

            importlib.import_module(module)
        path = job["path"]
        checkpoint = Checkpoint.from_payload(job["checkpoint"])
        budget = (None if job["end_index"] is None
                  else job["end_index"] - checkpoint.index)
        with TraceReader(path) as reader:
            consumed, exports, memory_snapshot = _replay_segment(
                job, reader, checkpoint, budget, tm)
    finally:
        seg_span.__exit__(None, None, None)
    seg_span.set(events=consumed, start_index=checkpoint.index)
    tm.count("trace.events_decoded", consumed)
    return {
        "ordinal": job["ordinal"],
        "exports": exports,
        "events": consumed,
        "memory": memory_snapshot,
        # Span-derived wall time; CPU time is the honest per-segment
        # cost when workers contend for cores (wall time on an
        # oversubscribed box includes the scheduler's time-slicing,
        # which is not the segment's work).
        "seconds": seg_span.wall_seconds,
        "cpu_seconds": seg_span.cpu_seconds,
        "spans": tm.export_spans(),
        "counters": dict(tm.counters) if tm.enabled else None,
    }


def _replay_segment(job: dict, reader: TraceReader,
                    checkpoint: Checkpoint, budget: int | None,
                    tm) -> tuple[int, dict, dict | None]:
    """Restore state at the seam and replay one segment's events."""
    path = job["path"]
    header = reader.header
    with tm.span("segment.restore"):
        program = _compiled(path, header)
        memory = restore_memory(program, header, checkpoint)
        functions = [program.functions[name]
                     for name in header.functions]
        seed = SegmentSeed(
            index=checkpoint.index,
            time=checkpoint.time,
            shadow=list(checkpoint.shadow_entries()),
            construct_stack=[tuple(entry)
                             for entry in checkpoint.cstack],
            call_stack=[header.functions[i]
                        for i in checkpoint.frames],
            is_first=checkpoint.index == 0,
            is_last=job["end_index"] is None,
        )
        analyses = make_analyses(job["analyses"], job.get("options"))
        for analysis in analyses:
            analysis.begin_segment(program, memory, seed)

    replay_span = tm.span("segment.replay")
    replay_span.__enter__()
    try:
        if (reader.version != TRACE_VERSION_V1
                and columnar_enabled(job.get("columnar"))):
            # Columnar fast path: whole blocks decoded into typed
            # columns, per-type delta state reseeded from the
            # checkpoint; the scalar loop below stays the reference
            # semantics (and the path for v1 traces / disabled runs).
            final_time, consumed = dispatch_batches(
                reader.batches_from(checkpoint.offset,
                                    checkpoint.decoder_state()),
                analyses, memory, functions, budget=budget,
                segment=True)
        else:
            final_time, consumed = _replay_segment_scalar(
                reader, checkpoint, budget, analyses, memory,
                functions)
    finally:
        replay_span.__exit__(None, None, None)
    replay_span.set(events=consumed)
    if budget is not None and consumed < budget:
        raise TraceError(
            f"{path}: segment at event {checkpoint.index} ended "
            f"after {consumed} of {budget} events (truncated "
            "trace?)")

    ctx = AnalysisContext(program=program, memory=memory,
                          final_time=final_time, mode="replay",
                          telemetry=tm)
    exports = {analysis.name: analysis.export_segment(ctx)
               for analysis in analyses}
    memory_snapshot = (snapshot_memory(memory, header).to_payload()
                       if job["end_index"] is None else None)
    return consumed, exports, memory_snapshot


def _replay_segment_scalar(reader: TraceReader, checkpoint: Checkpoint,
                           budget: int | None, analyses: list,
                           memory, functions) -> tuple[int, int]:
    """Per-event segment replay (v1 traces, columnar disabled).
    Returns ``(final_time, events_consumed)``."""
    from repro.analyses import live_hooks

    on_enter = live_hooks(analyses, "on_enter_function")
    on_exit = live_hooks(analyses, "on_exit_function")
    on_block = live_hooks(analyses, "on_block_enter")
    on_branch = live_hooks(analyses, "on_branch")
    on_read = live_hooks(analyses, "on_read")
    on_write = live_hooks(analyses, "on_write")
    on_alloc = live_hooks(analyses, "on_heap_alloc")
    on_free = live_hooks(analyses, "on_frame_free")
    on_finish = live_hooks(analyses, "on_finish")

    push_frame = memory.push_frame
    pop_frame = memory.pop_frame
    heap_alloc = memory.heap_alloc
    heap_free = memory.heap_free
    heap_base = memory.heap_base

    consumed = 0
    final_time = 0
    for etype, a, b, t in reader.events_from(
            checkpoint.offset, checkpoint.decoder_state(),
            columnar=False):
        if etype == EV_READ:
            for hook in on_read:
                hook(a, b, t)
        elif etype == EV_WRITE:
            for hook in on_write:
                hook(a, b, t)
        elif etype == EV_BLOCK:
            for hook in on_block:
                hook(a, t)
        elif etype == EV_BRANCH:
            for hook in on_branch:
                hook(a, b, t)
        elif etype == EV_ENTER:
            push_frame(functions[a])
            name = functions[a].name
            for hook in on_enter:
                hook(name, b, t)
        elif etype == EV_EXIT:
            name = functions[a].name
            for hook in on_exit:
                hook(name, t)
            pop_frame()
        elif etype == EV_FREE:
            if b and a >= heap_base:
                heap_free(a)
            hi = a + b
            for hook in on_free:
                hook(a, hi)
        elif etype == EV_ALLOC:
            base = heap_alloc(b)
            if base != a:
                raise TraceError(
                    f"heap replay diverged in segment: alloc "
                    f"returned {base}, trace recorded {a}")
            for hook in on_alloc:
                hook(a, b, t)
        elif etype == EV_FINISH:
            final_time = t
            for hook in on_finish:
                hook(t)
        elif etype == EV_CHECKPOINT:
            pass
        else:
            raise TraceError(f"unknown event type {etype}")
        consumed += 1
        if budget is not None and consumed >= budget:
            break
    return final_time, consumed


@dataclass
class ParallelOutcome:
    """All results of one (possibly parallel) replay pass."""

    reports: dict[str, AnalysisResult]
    context: AnalysisContext
    plan: ShardPlan
    jobs: int
    #: "parallel" or "serial" (fallback; ``fallback_reason`` says why).
    mode: str
    fallback_reason: str = ""
    wall_seconds: float = 0.0
    segment_seconds: list[float] = field(default_factory=list)
    #: Per-segment worker CPU time (excludes time-slicing waits when
    #: workers outnumber cores; what capacity planning should use).
    segment_cpu_seconds: list[float] = field(default_factory=list)
    #: Parent-side fold + finalize time (the serial tail of the run).
    merge_seconds: float = 0.0

    @property
    def results(self) -> dict[str, Any]:
        return {name: report.payload if report.payload is not None
                else report.data
                for name, report in self.reports.items()}

    def describe(self) -> str:
        return "\n\n".join(report.text for report in self.reports.values())


def parallel_replay(path: str | os.PathLike,
                    analyses: Iterable[str] | str = ("dep",),
                    jobs: int | None = None,
                    options: dict | None = None,
                    interval: int | None = None,
                    plugin_modules: tuple[str, ...] = (),
                    allow_scan: bool = True,
                    telemetry=None,
                    columnar: bool | None = None) -> ParallelOutcome:
    """Replay ``path`` through the named analyses across ``jobs``
    workers; falls back to one serial pass when sharding cannot help
    (and says so in the outcome).

    ``interval`` overrides the scan checkpoint interval for traces
    recorded without embedded seams; ``plugin_modules`` are imported
    in each worker before analyses resolve (the registry of a spawned
    process only knows the builtins). With an enabled ``telemetry``
    the coordinator opens a ``replay.parallel`` span and stitches each
    worker's ``segment`` span tree (and counters) under it.
    ``columnar`` forces the batch/scalar decode path in every worker
    (default: auto, see :func:`repro.trace.columnar.columnar_enabled`).
    """
    from repro.telemetry import as_telemetry
    from repro.trace.shards import DEFAULT_CHECKPOINT_INTERVAL

    path = os.fspath(path)
    names = parse_spec(analyses)
    if jobs is None or jobs <= 0:
        jobs = os.cpu_count() or 1
    tm = as_telemetry(telemetry)
    coord = tm.span("replay.parallel", trace=path, jobs=jobs,
                    analyses=list(names))
    coord.__enter__()
    # `finally` still runs on the early-return fallback paths, so the
    # coordinator span brackets the whole call either way.
    try:
        start = _time.perf_counter()
        unsupported = unsupported_analyses(names)
        if unsupported:
            plan = ShardPlan(path=path, version=0, segments=[],
                             source="serial")
            coord.set(mode="serial")
            return _serial_fallback(
                path, names, options, plan, jobs, start,
                "analysis without segment support: "
                + ", ".join(unsupported), tm, columnar)
        with tm.span("replay.plan"):
            plan = plan_shards(path, jobs,
                               interval=(interval if interval
                                         else DEFAULT_CHECKPOINT_INTERVAL),
                               allow_scan=allow_scan)
        coord.set(segments=len(plan.segments), seams=plan.source)
        if not plan.is_parallel:
            coord.set(mode="serial")
            return _serial_fallback(path, names, options, plan, jobs,
                                    start,
                                    "no usable shard seams"
                                    if jobs > 1 else "jobs=1", tm,
                                    columnar)

        coord.set(mode="parallel")
        pool_size = min(jobs, len(plan.segments))
        jobs_payload = [{
            "path": path,
            "ordinal": segment.ordinal,
            "checkpoint": segment.checkpoint.to_payload(),
            "end_index": segment.end_index,
            "analyses": names,
            "options": options,
            "plugin_modules": plugin_modules,
            "telemetry": tm.enabled,
            "columnar": columnar,
        } for segment in plan.segments]
        if pool_size == 1:
            results = [run_segment(job) for job in jobs_payload]
        else:
            with multiprocessing.Pool(processes=pool_size) as pool:
                results = pool.map(run_segment, jobs_payload,
                                   chunksize=1)
        results.sort(key=lambda r: r["ordinal"])
        for result in results:
            tm.attach(result.get("spans"))
            tm.merge_counters(result.get("counters"))
        if tm.enabled:
            busy = sum(r["seconds"] for r in results)
            tm.gauge("parallel.pool_size", pool_size)
            tm.gauge("parallel.segments", len(results))

        with TraceReader(path) as reader:
            header = reader.header
            footer = reader.read_footer()
            program = _compiled(path, header)
        final_memory = restore_memory(
            program, header,
            Checkpoint.from_payload(results[-1]["memory"]))
        sampling = getattr(header, "sampling", "full")
        wall = _time.perf_counter() - start
        ctx = AnalysisContext(
            program=program,
            memory=final_memory,
            final_time=footer.final_time,
            exit_value=footer.exit_value,
            output=[tuple(v) for v in footer.output],
            events=footer.events,
            wall_seconds=wall,
            mode="replay",
            sampling=None if sampling in (None, "", "full") else sampling,
            trace_path=path,
            telemetry=tm,
        )
        with tm.span("replay.merge", analyses=list(names)) as merge_span:
            reports: dict[str, AnalysisResult] = {}
            for name in names:
                folded: AnalysisSegment = results[0]["exports"][name]
                for result in results[1:]:
                    folded = folded.merge(result["exports"][name])
                reports[name] = folded.finalize(ctx)
        merge_seconds = merge_span.wall_seconds
        wall = _time.perf_counter() - start
        ctx.wall_seconds = wall
        if tm.enabled:
            # Pool utilization: worker busy-time over the wall-clock
            # capacity the pool had open (1.0 = perfectly packed).
            tm.gauge("parallel.pool_utilization",
                     round(busy / (wall * pool_size), 4) if wall else 0.0)
            from repro.telemetry import get_logger

            get_logger(__name__).info(
                "parallel replay merged", extra={
                    "trace": path, "segments": len(results),
                    "jobs": pool_size,
                    "merge_seconds": round(merge_seconds, 6),
                    "wall_seconds": round(wall, 6)})
        return ParallelOutcome(
            reports=reports, context=ctx, plan=plan, jobs=pool_size,
            mode="parallel", wall_seconds=wall,
            segment_seconds=[r["seconds"] for r in results],
            segment_cpu_seconds=[r["cpu_seconds"] for r in results],
            merge_seconds=merge_seconds)
    finally:
        coord.__exit__(None, None, None)


def _serial_fallback(path: str, names: list[str], options: dict | None,
                     plan: ShardPlan, jobs: int, start: float,
                     reason: str, telemetry=None,
                     columnar: bool | None = None) -> ParallelOutcome:
    instances = make_analyses(names, options)
    outcome = replay_with(path, instances, telemetry=telemetry,
                          columnar=columnar)
    wall = _time.perf_counter() - start
    outcome.context.wall_seconds = wall
    return ParallelOutcome(
        reports=outcome.reports, context=outcome.context, plan=plan,
        jobs=1, mode="serial", fallback_reason=reason,
        wall_seconds=wall)
