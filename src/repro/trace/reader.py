"""Lazy trace reading: stream events without loading the file.

:class:`TraceReader` parses the header eagerly (it is small), sniffs
the schema version from the envelope, and then yields events chunk by
chunk (v1) or block by block (v2), so a trace larger than memory
replays in constant space. Each yielded event is a plain tuple
``(etype, a, b, timestamp)`` with the *absolute* timestamp already
reconstructed from the stored deltas — consumers never see which wire
format the file used.

Error handling contract (exercised by the format tests):

* wrong magic or a header that fails to parse → :class:`TraceError`;
* a version outside :data:`SUPPORTED_TRACE_VERSIONS` →
  :class:`TraceVersionError`;
* EOF before the FINISH event — whether the cut lands in the header, a
  v1 record, a v2 block header, or mid-block — or a missing
  footer/trailer → :class:`TraceTruncatedError`;
* a v2 block that fails to decompress or whose declared length lies →
  :class:`TraceError`.
"""

from __future__ import annotations

import os
from typing import BinaryIO, Iterator

from repro.trace.codec import Event, make_decoder
from repro.trace.columnar import EventBatch, columnar_enabled
from repro.trace.events import (MAGIC, RECORD_SIZE,
                                SUPPORTED_TRACE_VERSIONS, TRACE_VERSION_V1,
                                TRAILER, TraceError, TraceFooter,
                                TraceHeader, TraceTruncatedError,
                                TraceVersionError, source_digest,
                                unpack_length, unpack_version)


class TraceReader:
    """Streams one trace file; each ``events()`` call restarts from the
    first record, so a reader can replay the same trace repeatedly."""

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        self._handle: BinaryIO = open(self.path, "rb")
        #: Schema version of the file (auto-detected; 1 or 2).
        self.version: int = 0
        self.header = self._read_header()
        self._events_start = self._handle.tell()
        #: Populated once ``events()`` has been fully consumed.
        self.footer: TraceFooter | None = None
        #: The decoder of the most recent ``events()`` pass (exposes
        #: per-stream stats such as v2 block/byte counts).
        self.decoder = None

    # -- setup -------------------------------------------------------------

    def _read_header(self) -> TraceHeader:
        magic = self._handle.read(len(MAGIC))
        if len(magic) < len(MAGIC):
            raise TraceTruncatedError(f"{self.path}: shorter than the magic")
        if magic != MAGIC:
            raise TraceError(f"{self.path}: not an Alchemist trace "
                             f"(bad magic {magic!r})")
        version = unpack_version(self._handle.read(2))
        if version not in SUPPORTED_TRACE_VERSIONS:
            known = ", ".join(str(v) for v in SUPPORTED_TRACE_VERSIONS)
            raise TraceVersionError(
                f"{self.path}: trace schema version {version}, this "
                f"reader understands only {known}")
        self.version = version
        length = unpack_length(self._handle.read(4))
        blob = self._handle.read(length)
        if len(blob) < length:
            raise TraceTruncatedError(f"{self.path}: truncated header")
        return TraceHeader.from_bytes(blob)

    def verify_source(self, source: str) -> bool:
        """Does ``source`` match the program this trace recorded?"""
        return source_digest(source) == self.header.digest

    # -- streaming ---------------------------------------------------------

    @property
    def events_start(self) -> int:
        """File offset of the first event record (v1 footer arithmetic
        and shard-scan checkpoint offsets are relative to this)."""
        return self._events_start

    def events(self, block_hook=None,
               columnar: bool | None = None) -> Iterator[Event]:
        """Yield ``(etype, a, b, timestamp)`` for every recorded event.

        The FINISH event is yielded too (consumers map it to
        ``on_finish``); afterwards the footer is parsed and exposed as
        :attr:`footer`. ``block_hook`` is forwarded to a v2 decoder
        (ignored for v1) — the shard scanner's window into block
        boundaries. ``columnar`` picks the v2 decoder flavor: the
        batch decoder streams the same events block-at-a-time (the
        default when numpy is available; see
        :func:`repro.trace.columnar.columnar_enabled`).
        """
        self._handle.seek(self._events_start)
        decoder = make_decoder(self.version, self._handle, self.path,
                               block_hook=block_hook,
                               columnar=(self.version != TRACE_VERSION_V1
                                         and columnar_enabled(columnar)))
        self.decoder = decoder
        yield from decoder.events()
        # The decoder returned, so FINISH was seen (anything else
        # raised); everything after the records is the footer.
        if self.version == TRACE_VERSION_V1:
            self._read_footer_v1(decoder.records)
        else:
            self.read_footer()

    def batches(self, block_hook=None) -> Iterator[EventBatch]:
        """Yield one :class:`EventBatch` per v2 block (the replay
        engines' fast path), then parse the footer like :meth:`events`.

        Raises :class:`TraceError` for v1 traces — fixed records have
        no block framing; callers fall back to :meth:`events`.
        """
        if self.version == TRACE_VERSION_V1:
            raise TraceError(
                f"{self.path}: columnar batches need a v2 trace")
        self._handle.seek(self._events_start)
        decoder = make_decoder(self.version, self._handle, self.path,
                               block_hook=block_hook, columnar=True)
        self.decoder = decoder
        yield from decoder.batches()
        self.read_footer()

    def _read_footer_v1(self, records: int) -> None:
        """Parse ``[blob][len][trailer]``, right after the records."""
        handle = self._handle
        handle.seek(self._events_start + records * RECORD_SIZE)
        tail = handle.read()
        if len(tail) < 4 + len(TRAILER):
            raise TraceTruncatedError(f"{self.path}: missing footer")
        if tail[-len(TRAILER):] != TRAILER:
            raise TraceTruncatedError(
                f"{self.path}: missing end-of-trace trailer "
                "(recording did not finish cleanly)")
        blob = tail[:-4 - len(TRAILER)]
        length = unpack_length(tail[-4 - len(TRAILER):-len(TRAILER)])
        if length != len(blob):
            raise TraceTruncatedError(
                f"{self.path}: footer length mismatch "
                f"({length} recorded, {len(blob)} present)")
        self.footer = TraceFooter.from_bytes(blob)

    def events_from(self, offset: int,
                    codec_state: dict | None = None,
                    columnar: bool | None = None) -> Iterator[Event]:
        """Stream events from a checkpointed seam instead of the start.

        ``offset`` must be a block boundary (v2) or a record boundary
        (v1) and ``codec_state`` the decoder state a checkpoint
        captured there ({"time": ..., "prev": {...}}); anything else
        desynchronizes the delta decoding. The caller owns termination
        — this iterator neither stops at the next checkpoint nor reads
        the footer (segment drivers consume exactly their slice; the
        FINISH record still ends the stream for the final segment).
        """
        self._handle.seek(offset)
        decoder = make_decoder(self.version, self._handle, self.path,
                               state=codec_state,
                               columnar=(self.version != TRACE_VERSION_V1
                                         and columnar_enabled(columnar)))
        self.decoder = decoder
        return decoder.events()

    def batches_from(self, offset: int,
                     codec_state: dict | None = None
                     ) -> Iterator[EventBatch]:
        """Batch flavor of :meth:`events_from`: stream
        :class:`EventBatch` objects from a checkpointed v2 seam. Same
        caller-owns-termination contract (no footer read)."""
        if self.version == TRACE_VERSION_V1:
            raise TraceError(
                f"{self.path}: columnar batches need a v2 trace")
        self._handle.seek(offset)
        decoder = make_decoder(self.version, self._handle, self.path,
                               state=codec_state, columnar=True)
        self.decoder = decoder
        return decoder.batches()

    def checkpoints(self) -> list[dict]:
        """Checkpoint payloads embedded in the footer (may be empty)."""
        return list(self.read_footer().checkpoints)

    def read_footer(self) -> TraceFooter:
        """Footer without streaming events (located from the file end)."""
        if self.footer is not None:
            return self.footer
        handle = self._handle
        size = os.path.getsize(self.path)
        suffix = 4 + len(TRAILER)
        if size < self._events_start + suffix:
            raise TraceTruncatedError(f"{self.path}: missing footer")
        handle.seek(size - suffix)
        length = unpack_length(handle.read(4))
        if handle.read(len(TRAILER)) != TRAILER:
            raise TraceTruncatedError(
                f"{self.path}: missing end-of-trace trailer "
                "(recording did not finish cleanly)")
        start = size - suffix - length
        if start < self._events_start:
            raise TraceTruncatedError(f"{self.path}: footer length "
                                      "exceeds the file")
        handle.seek(start)
        self.footer = TraceFooter.from_bytes(handle.read(length))
        return self.footer

    # -- cleanup -----------------------------------------------------------

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
