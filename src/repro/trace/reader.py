"""Lazy trace reading: stream events without loading the file.

:class:`TraceReader` parses the header eagerly (it is small) and then
yields events chunk by chunk, so a trace larger than memory replays in
constant space. Each yielded event is a plain tuple
``(etype, a, b, timestamp)`` with the *absolute* timestamp already
reconstructed from the stored deltas.

Error handling contract (exercised by the format tests):

* wrong magic or a header that fails to parse → :class:`TraceError`;
* a version other than :data:`TRACE_VERSION` → :class:`TraceVersionError`;
* EOF before the FINISH event, a record cut mid-way, or a missing
  footer/trailer → :class:`TraceTruncatedError`.
"""

from __future__ import annotations

import os
from typing import BinaryIO, Iterator

from repro.trace.events import (EV_FINISH, MAGIC, RECORD, RECORD_SIZE,
                                TRACE_VERSION, TRAILER, TraceError,
                                TraceFooter, TraceHeader,
                                TraceTruncatedError, TraceVersionError,
                                source_digest, unpack_length, unpack_version)

#: Records per read() call while streaming (the chunk is a multiple of
#: the record size, so iter_unpack never sees a partial record).
_CHUNK_RECORDS = 16384
_CHUNK_BYTES = _CHUNK_RECORDS * RECORD_SIZE

Event = tuple[int, int, int, int]


class TraceReader:
    """Streams one trace file; each ``events()`` call restarts from the
    first record, so a reader can replay the same trace repeatedly."""

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        self._handle: BinaryIO = open(self.path, "rb")
        self.header = self._read_header()
        self._events_start = self._handle.tell()
        #: Populated once ``events()`` has been fully consumed.
        self.footer: TraceFooter | None = None

    # -- setup -------------------------------------------------------------

    def _read_header(self) -> TraceHeader:
        magic = self._handle.read(len(MAGIC))
        if len(magic) < len(MAGIC):
            raise TraceTruncatedError(f"{self.path}: shorter than the magic")
        if magic != MAGIC:
            raise TraceError(f"{self.path}: not an Alchemist trace "
                             f"(bad magic {magic!r})")
        version = unpack_version(self._handle.read(2))
        if version != TRACE_VERSION:
            raise TraceVersionError(
                f"{self.path}: trace schema version {version}, this "
                f"reader understands only {TRACE_VERSION}")
        length = unpack_length(self._handle.read(4))
        blob = self._handle.read(length)
        if len(blob) < length:
            raise TraceTruncatedError(f"{self.path}: truncated header")
        return TraceHeader.from_bytes(blob)

    def verify_source(self, source: str) -> bool:
        """Does ``source`` match the program this trace recorded?"""
        return source_digest(source) == self.header.digest

    # -- streaming ---------------------------------------------------------

    def events(self) -> Iterator[Event]:
        """Yield ``(etype, a, b, timestamp)`` for every recorded event.

        The FINISH event is yielded too (consumers map it to
        ``on_finish``); afterwards the footer is parsed and exposed as
        :attr:`footer`.
        """
        handle = self._handle
        handle.seek(self._events_start)
        unpack_chunk = RECORD.iter_unpack
        time = 0
        records = 0
        while True:
            # A chunk near the end of the file may contain footer bytes
            # after the FINISH record; alignment is only meaningful for
            # the records before FINISH, so trim and check afterwards.
            chunk = handle.read(_CHUNK_BYTES)
            if not chunk:
                raise TraceTruncatedError(
                    f"{self.path}: event stream ends without FINISH")
            remainder = len(chunk) % RECORD_SIZE
            for etype, a, b, delta in unpack_chunk(chunk[:len(chunk)
                                                         - remainder]):
                time += delta
                records += 1
                yield (etype, a, b, time)
                if etype == EV_FINISH:
                    self._read_footer(records)
                    return
            if remainder:
                raise TraceTruncatedError(
                    f"{self.path}: trace ends mid-record "
                    f"({remainder} trailing bytes)")

    def _read_footer(self, records: int) -> None:
        """Parse ``[blob][len][trailer]``, right after the records."""
        handle = self._handle
        handle.seek(self._events_start + records * RECORD_SIZE)
        tail = handle.read()
        if len(tail) < 4 + len(TRAILER):
            raise TraceTruncatedError(f"{self.path}: missing footer")
        if tail[-len(TRAILER):] != TRAILER:
            raise TraceTruncatedError(
                f"{self.path}: missing end-of-trace trailer "
                "(recording did not finish cleanly)")
        blob = tail[:-4 - len(TRAILER)]
        length = unpack_length(tail[-4 - len(TRAILER):-len(TRAILER)])
        if length != len(blob):
            raise TraceTruncatedError(
                f"{self.path}: footer length mismatch "
                f"({length} recorded, {len(blob)} present)")
        self.footer = TraceFooter.from_bytes(blob)

    def read_footer(self) -> TraceFooter:
        """Footer without streaming events (located from the file end)."""
        if self.footer is not None:
            return self.footer
        handle = self._handle
        size = os.path.getsize(self.path)
        suffix = 4 + len(TRAILER)
        if size < self._events_start + suffix:
            raise TraceTruncatedError(f"{self.path}: missing footer")
        handle.seek(size - suffix)
        length = unpack_length(handle.read(4))
        if handle.read(len(TRAILER)) != TRAILER:
            raise TraceTruncatedError(
                f"{self.path}: missing end-of-trace trailer "
                "(recording did not finish cleanly)")
        start = size - suffix - length
        if start < self._events_start:
            raise TraceTruncatedError(f"{self.path}: footer length "
                                      "exceeds the file")
        handle.seek(start)
        self.footer = TraceFooter.from_bytes(handle.read(length))
        return self.footer

    # -- cleanup -----------------------------------------------------------

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
