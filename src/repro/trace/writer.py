"""Trace recording: a tracer that streams events to a file.

:class:`TraceWriter` plugs into the interpreter exactly like the live
profiler does — it is a :class:`~repro.runtime.tracing.Tracer` — but
instead of analyzing events it appends encoded records to a buffered
file. Recording is therefore far cheaper than profiling (no shadow
memory, no index tree), and the resulting trace can be replayed through
any number of analyses without touching the interpreter again.

The on-disk encoding is pluggable by version (see
:mod:`repro.trace.codec`): v1 writes fixed 13-byte records, v2 —
the default — writes delta/varint records in zlib-compressed blocks,
18-78x smaller on the bundled workloads (measured in
``BENCH_sampling.json``). Recording can also run under a sampling
policy (:mod:`repro.sampling`): the policy gates which READ/WRITE
events reach the file while every structural event (enter/exit, block,
branch, alloc, free, finish) is always kept, so a sampled trace still
replays with exact memory reconstruction — only the memory-access
stream is thinned. The policy's spec string is embedded in the header
so consumers can label sampled results as lower-confidence.

The header is written from :meth:`TraceWriter.on_start` (which is the
first moment the program — and with it the function-name table and
memory geometry — is known); the footer is written by :meth:`close`,
which the record helpers call with the run's exit value and output.
"""

from __future__ import annotations

import os
import time as _time
from dataclasses import dataclass

from repro.ir.cfg import ProgramIR
from repro.ir.lowering import compile_source
from repro.runtime.interpreter import DEFAULT_MAX_STEPS, Interpreter
from repro.runtime.memory import Memory
from repro.runtime.tracing import Tracer
from repro.trace.codec import DEFAULT_BLOCK_BYTES, make_encoder
from repro.trace.events import (DEFAULT_TRACE_VERSION, EV_ALLOC, EV_BLOCK,
                                EV_BRANCH, EV_CHECKPOINT, EV_ENTER,
                                EV_EXIT, EV_FINISH, EV_FREE, EV_READ,
                                EV_WRITE, MAGIC, TRACE_VERSION_V2, TRAILER,
                                TraceFooter, TraceHeader, check_u32,
                                pack_length, pack_version, source_digest)
from repro.trace.shards import (DEFAULT_CHECKPOINT_INTERVAL,
                                CheckpointBuilder)


class TraceWriter(Tracer):
    """Records one execution into a trace file; single use.

    Parameters
    ----------
    path:
        Destination file (created/truncated).
    source:
        The program source being run; embedded (compressed) in the
        header together with its digest so the trace is self-contained.
    filename:
        Reported in the header for provenance only.
    version:
        Trace schema version to write (1 or 2; default v2).
    sampling:
        Spec string recorded in the header (``"full"`` unless the run
        is gated by a sampling policy — the *gating* itself is the
        policy's job, via :class:`repro.sampling.SampledTracer`).
    block_bytes:
        v2 only: uncompressed bytes buffered per compressed block.
    checkpoint_interval:
        v2 only: emit a CHECKPOINT shard seam roughly every this many
        events (``repro.trace.shards``). 0 disables checkpointing;
        ``None`` uses :data:`DEFAULT_CHECKPOINT_INTERVAL`. Maintaining
        the snapshot mirror costs roughly one extra dict operation per
        event; v1 recordings never checkpoint (the scan builder covers
        them after the fact).
    """

    def __init__(self, path: str | os.PathLike, source: str,
                 filename: str = "<input>", *,
                 version: int = DEFAULT_TRACE_VERSION,
                 sampling: str = "full",
                 block_bytes: int = DEFAULT_BLOCK_BYTES,
                 checkpoint_interval: int | None = None):
        self.path = os.fspath(path)
        self.source = source
        self.filename = filename
        self.version = version
        self.sampling = sampling
        self.events = 0
        self.final_time = 0
        self.closed = False
        if checkpoint_interval is None:
            checkpoint_interval = DEFAULT_CHECKPOINT_INTERVAL
        if checkpoint_interval < 0:
            raise ValueError(f"checkpoint_interval must be >= 0, "
                             f"got {checkpoint_interval}")
        self.checkpoint_interval = (checkpoint_interval
                                    if version == TRACE_VERSION_V2 else 0)
        self._builder: CheckpointBuilder | None = None
        self._checkpoints: list[dict] = []
        self._last_checkpoint_index = 0
        self._encoder = make_encoder(version, block_bytes)
        self._handle = open(self.path, "wb")
        self._last_time = 0
        self._fn_index: dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------

    def on_start(self, program: ProgramIR, memory: Memory) -> None:
        functions = list(program.functions)
        self._fn_index = {name: i for i, name in enumerate(functions)}
        header = TraceHeader(
            digest=source_digest(self.source),
            filename=self.filename,
            source=self.source,
            globals_size=program.globals_size,
            stack_limit=memory.stack_limit,
            heap_base=memory.heap_base,
            functions=functions,
            sampling=self.sampling,
        )
        blob = header.to_bytes()
        self._handle.write(MAGIC)
        self._handle.write(pack_version(self.version))
        self._handle.write(pack_length(len(blob)))
        self._handle.write(blob)
        if self.checkpoint_interval:
            self._builder = CheckpointBuilder(program, functions,
                                              memory.heap_base)

    def on_finish(self, timestamp: int) -> None:
        self.final_time = timestamp
        self._emit(EV_FINISH, 0, 0, timestamp)

    def close(self, exit_value: int = 0,
              output: list[tuple[int, ...]] | None = None) -> None:
        """Write the footer and close the file (idempotent)."""
        if self.closed:
            return
        self.closed = True
        handle = self._handle
        handle.write(self._encoder.take())
        footer = TraceFooter(
            exit_value=exit_value,
            output=[list(values) for values in (output or [])],
            events=self.events,
            final_time=self.final_time,
            checkpoints=self._checkpoints,
        )
        blob = footer.to_bytes()
        handle.write(blob)
        handle.write(pack_length(len(blob)))
        handle.write(TRAILER)
        handle.close()

    def abort(self) -> None:
        """Close the handle without a footer (the file stays truncated)."""
        if not self.closed:
            self.closed = True
            self._handle.close()

    # -- event hooks -------------------------------------------------------

    def on_enter_function(self, fn_name: str, entry_pc: int,
                          timestamp: int) -> None:
        self._emit(EV_ENTER, self._fn_index[fn_name], entry_pc, timestamp)

    def on_exit_function(self, fn_name: str, timestamp: int) -> None:
        self._emit(EV_EXIT, self._fn_index[fn_name], 0, timestamp)

    def on_block_enter(self, block_id: int, timestamp: int) -> None:
        self._emit(EV_BLOCK, block_id, 0, timestamp)

    def on_branch(self, pc: int, target_block: int, timestamp: int) -> None:
        self._emit(EV_BRANCH, pc, target_block, timestamp)

    def on_read(self, addr: int, pc: int, timestamp: int) -> None:
        self._emit(EV_READ, addr, pc, timestamp)

    def on_write(self, addr: int, pc: int, timestamp: int) -> None:
        self._emit(EV_WRITE, addr, pc, timestamp)

    def on_heap_alloc(self, base: int, size: int, timestamp: int) -> None:
        self._emit(EV_ALLOC, base, size, timestamp)

    def on_frame_free(self, lo: int, hi: int) -> None:
        # No timestamp on this hook; deltas of 0 keep the clock in place.
        self._emit(EV_FREE, lo, hi - lo, self._last_time)

    # -- encoding ----------------------------------------------------------

    def _emit(self, etype: int, a: int, b: int, timestamp: int) -> None:
        delta = timestamp - self._last_time
        if delta < 0 or a > 0xFFFFFFFF or b > 0xFFFFFFFF \
                or delta > 0xFFFFFFFF:
            check_u32(a, "operand")
            check_u32(b, "operand")
            check_u32(delta, "timestamp delta")
        self._last_time = timestamp
        encoder = self._encoder
        encoder.add(etype, a, b, delta)
        self.events += 1
        builder = self._builder
        if builder is not None:
            builder.apply(etype, a, b, timestamp)
            if (builder.index - self._last_checkpoint_index
                    >= self.checkpoint_interval and etype != EV_FINISH):
                self._take_checkpoint()
                return
        if encoder.pending() >= encoder.flush_bytes:
            self._handle.write(encoder.take())

    def _take_checkpoint(self) -> None:
        """Emit a CHECKPOINT marker, seal the block, snapshot the seam.

        The marker is the last record of the flushed block, so the
        stored offset (taken after the flush) is exactly where the
        next block — the first record of the next segment — begins.
        """
        builder = self._builder
        encoder = self._encoder
        ordinal = len(self._checkpoints)
        encoder.add(EV_CHECKPOINT, ordinal, 0, 0)
        self.events += 1
        builder.apply(EV_CHECKPOINT, ordinal, 0, self._last_time)
        self._handle.write(encoder.take())
        checkpoint = builder.snapshot(self._handle.tell(), encoder.state())
        self._checkpoints.append(checkpoint.to_payload())
        self._last_checkpoint_index = builder.index


@dataclass
class RecordResult:
    """Outcome of one recording run."""

    path: str
    exit_value: int
    events: int
    final_time: int
    trace_bytes: int
    wall_seconds: float
    #: Schema version written and the sampling spec the run recorded
    #: under ("full" = unsampled).
    version: int = DEFAULT_TRACE_VERSION
    sampling: str = "full"
    #: Checkpoint shard seams embedded in the trace.
    checkpoints: int = 0


def record_program(program: ProgramIR, path: str | os.PathLike, *,
                   source: str, filename: str = "<input>",
                   max_steps: int = DEFAULT_MAX_STEPS,
                   version: int = DEFAULT_TRACE_VERSION,
                   sampling=None,
                   checkpoint_interval: int | None = None,
                   telemetry=None) -> RecordResult:
    """Run ``program`` under a :class:`TraceWriter`; returns the summary.

    ``source`` must be the text ``program`` was compiled from — it is
    embedded in the trace and recompiled at replay time. ``sampling``
    accepts a spec string (``"interval:100"``) or an instantiated
    :class:`repro.sampling.SamplingPolicy`; memory events the policy
    drops never reach the file. ``checkpoint_interval`` embeds shard
    seams for parallel replay (v2; 0 disables, None = default).
    ``telemetry`` wraps the run in a ``record`` span with writer and
    sampling-gate counters (tallies the stage keeps anyway — nothing
    is added per event).
    """
    from repro.sampling import SampledTracer, as_policy
    from repro.telemetry import as_telemetry, get_logger

    tm = as_telemetry(telemetry)
    policy = as_policy(sampling)
    writer = TraceWriter(path, source, filename, version=version,
                         sampling=policy.spec,
                         checkpoint_interval=checkpoint_interval)
    tracer = (writer if policy.is_full
              else SampledTracer(policy, writer, telemetry=tm))
    with tm.span("record", file=filename, version=version,
                 sampling=policy.spec) as span:
        try:
            interp = Interpreter(program, tracer, max_steps)
            exit_value = interp.run()
        except BaseException:
            writer.abort()
            raise
        writer.close(exit_value, interp.output)
    trace_bytes = os.path.getsize(writer.path)
    span.set(events=writer.events, checkpoints=len(writer._checkpoints))
    tm.count("trace.events_written", writer.events)
    tm.count("trace.bytes_written", trace_bytes)
    tm.count("trace.checkpoint_seams_written", len(writer._checkpoints))
    if not policy.is_full and tm.enabled:
        tm.count("sampling.memory_events_kept", tracer.kept)
        tm.count("sampling.memory_events_dropped", tracer.dropped)
    get_logger(__name__).info(
        "recorded trace", extra={
            "trace": writer.path, "events": writer.events,
            "bytes": trace_bytes, "version": version,
            "sampling": policy.spec,
            "wall_seconds": round(span.wall_seconds, 6)})
    return RecordResult(
        path=writer.path,
        exit_value=exit_value,
        events=writer.events,
        final_time=writer.final_time,
        trace_bytes=trace_bytes,
        wall_seconds=span.wall_seconds,
        version=version,
        sampling=policy.spec,
        checkpoints=len(writer._checkpoints),
    )


def record_source(source: str, path: str | os.PathLike, *,
                  filename: str = "<input>",
                  max_steps: int = DEFAULT_MAX_STEPS,
                  version: int = DEFAULT_TRACE_VERSION,
                  sampling=None,
                  checkpoint_interval: int | None = None,
                  telemetry=None) -> RecordResult:
    """Compile and record MiniC ``source`` into a trace at ``path``."""
    from repro.telemetry import as_telemetry

    tm = as_telemetry(telemetry)
    with tm.span("compile", file=filename):
        program = compile_source(source, filename)
    return record_program(program, path, source=source, filename=filename,
                          max_steps=max_steps, version=version,
                          sampling=sampling,
                          checkpoint_interval=checkpoint_interval,
                          telemetry=tm)
