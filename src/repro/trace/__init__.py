"""Trace capture/replay: record one execution, analyze it many times.

The live profiler (``repro.core.tracer``) couples dependence analysis to
an instrumented interpreter run, so every new question about a program
costs a full re-execution. This package decouples the two:

``repro.trace.writer``
    :class:`TraceWriter`, a :class:`~repro.runtime.tracing.Tracer` that
    streams every interpreter event into a compact, versioned binary
    trace file, plus :func:`record_source` / :func:`record_program`.
    Recording optionally runs under a sampling policy
    (:mod:`repro.sampling`) that thins the memory-event stream.
``repro.trace.codec``
    The version-specific event encodings: v1 fixed 13-byte records,
    v2 delta/varint records in zlib-compressed blocks (the default;
    18-78x smaller on the bundled workloads).
``repro.trace.reader``
    :class:`TraceReader`, a lazy streaming reader — traces larger than
    memory replay fine because events are decoded chunk by chunk. The
    schema version is auto-detected, so v1 and v2 files read alike.
``repro.trace.replay``
    :class:`ReplayEngine` drives :class:`repro.analyses.Analysis`
    plugins over a recorded trace without re-running the interpreter.
    Analyses resolve through the shared registry (``dep``,
    ``locality``, ``hot``, ``counts``, ``flat``, ``context``, plus
    anything registered with ``@repro.analyses.register``).
``repro.trace.batch``
    A ``multiprocessing`` batch driver that records and replays many
    workloads / analyses concurrently with deterministic result order.

Typical use::

    from repro.trace import record_source, replay_trace

    record_source(source, "prog.trace")
    outcome = replay_trace("prog.trace", analyses=("dep", "locality"))
    report = outcome.results["dep"]          # a ProfileReport
    print(report.to_text())
"""

from repro.trace.events import (DEFAULT_TRACE_VERSION,
                                SUPPORTED_TRACE_VERSIONS, TRACE_VERSION,
                                TRACE_VERSION_V1, TRACE_VERSION_V2,
                                TraceError, TraceHeader,
                                TraceTruncatedError, TraceVersionError)
from repro.trace.reader import TraceReader
from repro.trace.replay import (CONSUMERS, DependenceConsumer,
                                HotAddressConsumer, LocalityConsumer,
                                ReplayEngine, TraceConsumer, make_consumers,
                                replay_trace, replay_with)
from repro.trace.writer import TraceWriter, record_program, record_source

__all__ = [
    "TRACE_VERSION",
    "TRACE_VERSION_V1",
    "TRACE_VERSION_V2",
    "SUPPORTED_TRACE_VERSIONS",
    "DEFAULT_TRACE_VERSION",
    "TraceError",
    "TraceHeader",
    "TraceTruncatedError",
    "TraceVersionError",
    "TraceReader",
    "TraceWriter",
    "record_program",
    "record_source",
    "ReplayEngine",
    "TraceConsumer",
    "DependenceConsumer",
    "LocalityConsumer",
    "HotAddressConsumer",
    "CONSUMERS",
    "make_consumers",
    "replay_trace",
    "replay_with",
]
