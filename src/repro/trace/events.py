"""The trace file format: layout constants, header/footer, errors.

A trace file is::

    magic      8 bytes   b"ALCHTRC\\0"
    version    u16 LE    1 or 2 (readers reject anything else)
    hdr_len    u32 LE
    header     hdr_len bytes of zlib-compressed JSON (TraceHeader)
    events     the version-specific event stream, ended by FINISH
    footer     zlib-compressed JSON (TraceFooter)
    ftr_len    u32 LE    footer length (trailing, so the footer can be
                         located from the end of the file too)
    trailer    8 bytes   b"ALCHEND\\0"

Only the *events* section differs between versions (the codecs live in
:mod:`repro.trace.codec`; the wire spec is ``docs/trace-format.md``):

* **v1** — fixed 13-byte ``struct`` records ``<BIII``: a type byte, two
  32-bit operands ``a``/``b``, and the timestamp *delta* since the
  previous event (timestamps are instruction counts, monotone within a
  run, so deltas are small and non-negative). Fixed-width records
  decode an entire chunk with one :func:`struct.iter_unpack` call.
* **v2** — delta-encoded, varint-packed records grouped into
  zlib-compressed blocks: per record a type byte, the zigzag-varint
  deltas of ``a`` and ``b`` against the previous record *of the same
  type*, and the uvarint timestamp delta. 18-78x smaller than v1 on
  the bundled workloads; the default for new recordings.

The header embeds the program source (compressed) plus its SHA-256
digest, so a trace is self-contained: replay recompiles the embedded
source and verifies the digest rather than trusting a separate file.
The function-name table is fixed at record time (compilation order), so
ENTER/EXIT events carry a small index instead of a string. The header
also names the sampling policy the recording ran under (``"full"``
when every memory event was kept), so consumers can label sampled
results as lower-confidence hints.

Operands and deltas must fit 32 bits in either version; the writer
raises :class:`TraceError` otherwise (addresses are word indices, so
this bounds traced memory at 4G words — far beyond any bundled
workload).
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass, field
from struct import Struct

MAGIC = b"ALCHTRC\0"
TRAILER = b"ALCHEND\0"

TRACE_VERSION_V1 = 1
TRACE_VERSION_V2 = 2
#: Versions the reader auto-detects.
SUPPORTED_TRACE_VERSIONS = (TRACE_VERSION_V1, TRACE_VERSION_V2)
#: What new recordings are written as unless told otherwise.
DEFAULT_TRACE_VERSION = TRACE_VERSION_V2
#: Deprecated alias (the schema number before v2 existed); kept so
#: pre-v2 callers comparing against it keep meaning "v1".
TRACE_VERSION = TRACE_VERSION_V1

#: One event record: type byte, operand a, operand b, timestamp delta.
RECORD = Struct("<BIII")
RECORD_SIZE = RECORD.size

_VERSION_STRUCT = Struct("<H")
_LEN_STRUCT = Struct("<I")

# -- event type bytes -------------------------------------------------------

EV_ENTER = 1    #: a = function index, b = entry pc
EV_EXIT = 2     #: a = function index
EV_BLOCK = 3    #: a = block id
EV_BRANCH = 4   #: a = branch pc, b = chosen target block
EV_READ = 5     #: a = address, b = pc
EV_WRITE = 6    #: a = address, b = pc
EV_ALLOC = 7    #: a = block base, b = size
EV_FREE = 8     #: a = range lo, b = range length (hi - lo); no timestamp
EV_FINISH = 9   #: end of event stream
#: Shard seam marker (v2 only): a = checkpoint ordinal. The marker is
#: the last record of its compressed block; the matching snapshot —
#: frame stack, construct stack, shadow memory, heap layout, codec
#: deltas, and the absolute file offset of the next block — rides in
#: the footer's ``checkpoints`` table so parallel replay can seek
#: straight to the seam and resume decoding mid-file. Replay dispatch
#: ignores the marker; it carries no analysis-visible information.
EV_CHECKPOINT = 10

EVENT_NAMES = {
    EV_ENTER: "enter",
    EV_EXIT: "exit",
    EV_BLOCK: "block",
    EV_BRANCH: "branch",
    EV_READ: "read",
    EV_WRITE: "write",
    EV_ALLOC: "alloc",
    EV_FREE: "free",
    EV_FINISH: "finish",
    EV_CHECKPOINT: "checkpoint",
}

_U32_MAX = (1 << 32) - 1


class TraceError(Exception):
    """A malformed, unwritable, or out-of-range trace."""


class TraceVersionError(TraceError):
    """The trace was written by an incompatible schema version."""


class TraceTruncatedError(TraceError):
    """The trace ends mid-stream (crash or partial copy)."""


def source_digest(source: str) -> str:
    """SHA-256 of the program source, the trace's identity check."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass
class TraceHeader:
    """Everything replay needs before the first event."""

    digest: str
    filename: str
    source: str
    globals_size: int
    stack_limit: int
    heap_base: int
    #: Function names in compilation order; ENTER/EXIT events index this.
    functions: list[str] = field(default_factory=list)
    #: Sampling policy spec the recording ran under ("full" = every
    #: memory event kept). Pre-sampling v1 traces lack the key and
    #: default here.
    sampling: str = "full"

    def to_bytes(self) -> bytes:
        payload = json.dumps(self.__dict__, separators=(",", ":"))
        return zlib.compress(payload.encode("utf-8"), 6)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "TraceHeader":
        try:
            data = json.loads(zlib.decompress(blob))
            return cls(**data)
        except (zlib.error, ValueError, TypeError) as exc:
            raise TraceError(f"corrupt trace header: {exc}") from exc


@dataclass
class TraceFooter:
    """Run outcome, written after the last event."""

    exit_value: int
    #: ``print()`` output, one tuple of ints per statement.
    output: list[list[int]] = field(default_factory=list)
    events: int = 0
    final_time: int = 0
    #: Checkpoint snapshots (JSON payloads, one per CHECKPOINT marker
    #: in the event stream, in stream order) — see
    #: :mod:`repro.trace.shards` for the payload schema. Empty for
    #: traces recorded without checkpointing and for v1 traces.
    checkpoints: list[dict] = field(default_factory=list)

    def to_bytes(self) -> bytes:
        payload = json.dumps(self.__dict__, separators=(",", ":"))
        return zlib.compress(payload.encode("utf-8"), 6)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "TraceFooter":
        try:
            data = json.loads(zlib.decompress(blob))
            return cls(**data)
        except (zlib.error, ValueError, TypeError) as exc:
            raise TraceError(f"corrupt trace footer: {exc}") from exc


def pack_version(version: int = TRACE_VERSION) -> bytes:
    return _VERSION_STRUCT.pack(version)


def unpack_version(blob: bytes) -> int:
    if len(blob) != _VERSION_STRUCT.size:
        raise TraceTruncatedError("trace ends inside the version field")
    return _VERSION_STRUCT.unpack(blob)[0]


def pack_length(length: int) -> bytes:
    return _LEN_STRUCT.pack(length)


def unpack_length(blob: bytes) -> int:
    if len(blob) != _LEN_STRUCT.size:
        raise TraceTruncatedError("trace ends inside a length field")
    return _LEN_STRUCT.unpack(blob)[0]


def check_u32(value: int, what: str) -> int:
    """Writer-side range check for record operands and deltas."""
    if 0 <= value <= _U32_MAX:
        return value
    raise TraceError(f"{what} {value} does not fit the 32-bit "
                     f"trace record format")
