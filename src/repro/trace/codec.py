"""Event-stream codecs: the version-specific wire formats.

The file envelope (magic, header, footer, trailer) is shared by every
trace version and lives in :mod:`repro.trace.events`; this module owns
only the *events* section in between. Both sides of each version are
here so the writer and reader cannot drift apart, and so the round-trip
fuzz tests can drive a codec directly without building a whole file.

**v1** packs each event as a fixed 13-byte ``<BIII`` record — type
byte, operands ``a``/``b``, timestamp delta. Simple and decodable with
one :func:`struct.iter_unpack` per chunk.

**v2** packs each event as::

    type      1 byte
    zz(Δa)    uvarint   zigzag delta of ``a`` vs the previous record
                        of the SAME type
    zz(Δb)    uvarint   likewise for ``b``
    Δt        uvarint   timestamp delta vs the previous record (any
                        type; timestamps are globally monotone)

and groups records into independently zlib-compressed blocks framed
as ``<II`` (compressed length, uncompressed length). Per-type deltas
make sequential address sweeps and repeated PCs collapse to one or two
bytes before compression; zlib then squeezes the remaining structure.
A block boundary never splits a record, and the per-type delta state
deliberately carries *across* blocks (blocks are primarily a framing
unit — traces stream start to end). Block boundaries double as shard
seams, though: both sides expose their delta state (``state()`` on the
encoder, the ``state`` constructor argument on the decoder), so a
checkpoint can capture the deltas at a boundary and a later reader can
seek to that block and resume decoding mid-file
(:mod:`repro.trace.shards`).

Decoding errors follow the reader's contract: a file that ends inside
a block frame or whose decompressed payload stops mid-record raises
:class:`TraceTruncatedError`; a block that fails to decompress or
whose length field lies raises :class:`TraceError`.
"""

from __future__ import annotations

import zlib
from struct import Struct
from typing import BinaryIO, Iterator

from repro.trace.columnar import (HAVE_NUMPY, EventBatch,
                                  decode_block_columns)
from repro.trace.events import (EV_FINISH, RECORD, RECORD_SIZE, TraceError,
                                TraceTruncatedError)

#: v2 block frame: compressed payload length, uncompressed length.
BLOCK_HEADER = Struct("<II")
BLOCK_HEADER_SIZE = BLOCK_HEADER.size

#: Flush a v2 block once this much uncompressed record data buffered.
DEFAULT_BLOCK_BYTES = 1 << 16

#: v1 writer flush threshold (bytes of packed records).
V1_FLUSH_BYTES = 1 << 20

#: Records per read() while streaming v1 (chunk is a multiple of the
#: record size, so iter_unpack never sees a partial record).
_V1_CHUNK_RECORDS = 16384
V1_CHUNK_BYTES = _V1_CHUNK_RECORDS * RECORD_SIZE

Event = tuple[int, int, int, int]


# ---------------------------------------------------------------------------
# varint primitives (LEB128 + zigzag)
# ---------------------------------------------------------------------------

def zigzag(n: int) -> int:
    """Map a signed int to an unsigned one with small-magnitude bias.

    Reference implementation: the encoder/decoder hot loops inline
    this transform, and the codec fuzz tests pin the inlined copies
    against these functions.
    """
    return n * 2 if n >= 0 else -n * 2 - 1


def unzigzag(z: int) -> int:
    """Inverse of :func:`zigzag` (same reference-implementation role)."""
    return z >> 1 if not z & 1 else -(z >> 1) - 1


def append_uvarint(buf: bytearray, n: int) -> None:
    while n > 0x7F:
        buf.append((n & 0x7F) | 0x80)
        n >>= 7
    buf.append(n)


#: Hard length cap for one varint: 10 x 7-bit groups cover the full
#: 64-bit range. A longer run of continuation bytes cannot be data —
#: only corruption — and without the cap a corrupt block decodes into
#: an arbitrarily huge int (unbounded shift = CPU/memory blowup).
MAX_VARINT_BYTES = 10


def read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    """Decode one uvarint at ``pos``; returns (value, new pos).

    Bounded: raises ``TraceError("overlong varint ...")`` after
    :data:`MAX_VARINT_BYTES` bytes instead of shifting forever.
    """
    result = 0
    shift = 0
    end = len(data)
    limit = pos + MAX_VARINT_BYTES
    while True:
        if pos >= end:
            raise TraceTruncatedError(
                "event record cut mid-way (varint runs past the block)")
        if pos >= limit:
            raise TraceError(
                f"overlong varint: runs past {MAX_VARINT_BYTES} bytes "
                "(the 64-bit cap) — corrupt block")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


# ---------------------------------------------------------------------------
# Encoders: writer-side, one per version
# ---------------------------------------------------------------------------

class V1Encoder:
    """Fixed-record encoder; ``take()`` hands back raw packed bytes."""

    version = 1
    flush_bytes = V1_FLUSH_BYTES

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._pack = RECORD.pack

    def add(self, etype: int, a: int, b: int, delta: int) -> None:
        self._buffer += self._pack(etype, a, b, delta)

    def pending(self) -> int:
        return len(self._buffer)

    def take(self) -> bytes:
        """Everything buffered, ready to append to the file."""
        out = bytes(self._buffer)
        self._buffer.clear()
        return out

    def state(self) -> dict:
        """v1 records are stateless; only the clock carries across a
        seam (the checkpoint stores it separately)."""
        return {}


class V2Encoder:
    """Delta/varint encoder; ``take()`` hands back one framed block."""

    version = 2

    def __init__(self, block_bytes: int = DEFAULT_BLOCK_BYTES) -> None:
        if block_bytes <= 0:
            raise ValueError(
                f"block_bytes must be positive, got {block_bytes}")
        self.flush_bytes = block_bytes
        self._raw = bytearray()
        # Per-event-type previous operands (256 slots: the type byte's
        # whole range, so a corrupt type can never index out of bounds).
        self._prev_a = [0] * 256
        self._prev_b = [0] * 256
        #: Events encoded so far (all blocks) — names the offender when
        #: a non-monotone clock is rejected below.
        self._events = 0

    def add(self, etype: int, a: int, b: int, delta: int) -> None:
        if delta < 0:
            # An injected non-monotone clock used to fall through to
            # bytearray.append(-1) — a bare ValueError. Timestamp
            # deltas are unsigned on the wire; reject with context.
            raise TraceError(
                f"event {self._events}: clock went backwards "
                f"(timestamp delta {delta}); v2 encodes unsigned "
                "time deltas")
        self._events += 1
        prev_a = self._prev_a
        da = a - prev_a[etype]
        prev_a[etype] = a
        za = da + da if da >= 0 else -da - da - 1
        prev_b = self._prev_b
        db = b - prev_b[etype]
        prev_b[etype] = b
        zb = db + db if db >= 0 else -db - db - 1
        buf = self._raw
        if za < 0x80 and zb < 0x80 and delta < 0x80:
            # The overwhelmingly common record: three single-byte
            # varints (small per-type deltas), appended inline.
            buf.append(etype)
            buf.append(za)
            buf.append(zb)
            buf.append(delta)
            return
        buf.append(etype)
        append_uvarint(buf, za)
        append_uvarint(buf, zb)
        append_uvarint(buf, delta)

    def pending(self) -> int:
        return len(self._raw)

    def take(self) -> bytes:
        """One framed, compressed block (empty bytes if nothing pends)."""
        raw = self._raw
        if not raw:
            return b""
        payload = zlib.compress(bytes(raw), 6)
        frame = BLOCK_HEADER.pack(len(payload), len(raw)) + payload
        raw.clear()
        return frame

    def state(self) -> dict:
        """Sparse snapshot of the per-type delta state, JSON-able.

        Meaningful only when nothing is pending (i.e. right after
        ``take()``): the checkpoint machinery captures it at a block
        boundary and hands it to a decoder's ``state`` argument so
        decoding can resume at that boundary.
        """
        prev = {}
        prev_a, prev_b = self._prev_a, self._prev_b
        for etype in range(256):
            if prev_a[etype] or prev_b[etype]:
                prev[str(etype)] = [prev_a[etype], prev_b[etype]]
        return {"prev": prev}


def make_encoder(version: int,
                 block_bytes: int = DEFAULT_BLOCK_BYTES):
    if version == 1:
        return V1Encoder()
    if version == 2:
        return V2Encoder(block_bytes)
    raise TraceError(f"cannot write trace schema version {version}")


# ---------------------------------------------------------------------------
# Decoders: reader-side
# ---------------------------------------------------------------------------

class V1Decoder:
    """Streams fixed 13-byte records until FINISH.

    Exposes :attr:`records` (count consumed) afterwards so the caller
    can compute the footer's file offset — v1 has no framing, so the
    offset is arithmetic over the record count. ``state`` (from a
    checkpoint) seeds the clock when decoding resumes mid-file.
    """

    def __init__(self, handle: BinaryIO, path: str,
                 state: dict | None = None) -> None:
        self._handle = handle
        self.path = path
        self.records = 0
        self._time0 = state.get("time", 0) if state else 0

    def events(self) -> Iterator[Event]:
        handle = self._handle
        unpack_chunk = RECORD.iter_unpack
        time = self._time0
        records = 0
        while True:
            # A chunk near the end of the file may contain footer bytes
            # after the FINISH record; alignment is only meaningful for
            # the records before FINISH, so trim and check afterwards.
            chunk = handle.read(V1_CHUNK_BYTES)
            if not chunk:
                raise TraceTruncatedError(
                    f"{self.path}: event stream ends without FINISH")
            remainder = len(chunk) % RECORD_SIZE
            for etype, a, b, delta in unpack_chunk(chunk[:len(chunk)
                                                         - remainder]):
                time += delta
                records += 1
                yield (etype, a, b, time)
                if etype == EV_FINISH:
                    self.records = records
                    return
            if remainder:
                raise TraceTruncatedError(
                    f"{self.path}: trace ends mid-record "
                    f"({remainder} trailing bytes)")


class V2Decoder:
    """Streams block-framed varint records until FINISH.

    Tracks :attr:`blocks`, :attr:`compressed_bytes` and
    :attr:`raw_bytes` for the ``info`` verb's size accounting.

    ``state`` seeds the per-type deltas and the clock so decoding can
    start at a mid-file block boundary (parallel segment replay).
    ``block_hook``, if set, is called right before each block header is
    read as ``hook(offset, records, time, prev_a, prev_b)`` — the exact
    state a checkpoint at that boundary must capture; the shard scanner
    uses it to checkpoint traces that were recorded without embedded
    checkpoints.
    """

    def __init__(self, handle: BinaryIO, path: str,
                 state: dict | None = None,
                 block_hook=None) -> None:
        self._handle = handle
        self.path = path
        self.records = 0
        self.blocks = 0
        self.compressed_bytes = 0
        self.raw_bytes = 0
        self.block_hook = block_hook
        self._time0 = state.get("time", 0) if state else 0
        self._prev0 = dict(state.get("prev", {})) if state else {}

    def events(self) -> Iterator[Event]:
        handle = self._handle
        prev_a = [0] * 256
        prev_b = [0] * 256
        for etype, (a, b) in self._prev0.items():
            prev_a[int(etype)] = a
            prev_b[int(etype)] = b
        time = self._time0
        while True:
            if self.block_hook is not None:
                self.block_hook(handle.tell(), self.records, time,
                                prev_a, prev_b)
            frame = handle.read(BLOCK_HEADER_SIZE)
            if not frame:
                raise TraceTruncatedError(
                    f"{self.path}: event stream ends without FINISH")
            if len(frame) < BLOCK_HEADER_SIZE:
                raise TraceTruncatedError(
                    f"{self.path}: trace ends inside a block header")
            comp_len, raw_len = BLOCK_HEADER.unpack(frame)
            payload = handle.read(comp_len)
            if len(payload) < comp_len:
                raise TraceTruncatedError(
                    f"{self.path}: trace ends mid-block "
                    f"({len(payload)} of {comp_len} payload bytes)")
            try:
                data = zlib.decompress(payload)
            except zlib.error as exc:
                raise TraceError(
                    f"{self.path}: corrupt trace block: {exc}") from exc
            if len(data) != raw_len:
                raise TraceError(
                    f"{self.path}: block length mismatch "
                    f"({raw_len} declared, {len(data)} decompressed)")
            self.blocks += 1
            self.compressed_bytes += comp_len
            self.raw_bytes += raw_len
            pos = 0
            end = len(data)
            records = self.records
            try:
                while pos < end:
                    etype = data[pos]
                    # Inline uvarint fast path: single-byte fields
                    # dominate (the encoder's fast path is their twin).
                    # IndexError from a record cut by block truncation
                    # is mapped to TraceTruncatedError below.
                    za = data[pos + 1]
                    if za < 0x80:
                        pos += 2
                    else:
                        za, pos = read_uvarint(data, pos + 1)
                    a = prev_a[etype] + (za >> 1 if not za & 1
                                         else -(za >> 1) - 1)
                    prev_a[etype] = a
                    zb = data[pos]
                    if zb < 0x80:
                        pos += 1
                    else:
                        zb, pos = read_uvarint(data, pos)
                    b = prev_b[etype] + (zb >> 1 if not zb & 1
                                         else -(zb >> 1) - 1)
                    prev_b[etype] = b
                    delta = data[pos]
                    if delta < 0x80:
                        pos += 1
                    else:
                        delta, pos = read_uvarint(data, pos)
                    time += delta
                    records += 1
                    yield (etype, a, b, time)
                    if etype == EV_FINISH:
                        self.records = records
                        return
            except IndexError:
                raise TraceTruncatedError(
                    f"{self.path}: block ends mid-record") from None
            finally:
                self.records = records


class V2BatchDecoder:
    """Columnar twin of :class:`V2Decoder`: one ``EventBatch`` per block.

    Same constructor surface and stats (:attr:`records`,
    :attr:`blocks`, :attr:`compressed_bytes`, :attr:`raw_bytes`), same
    ``state`` resume semantics, same ``block_hook`` contract — and, by
    construction, the same events and the same typed errors:
    :meth:`events` is pinned against ``V2Decoder.events()`` by the
    property-based equivalence suite. Blocks the vectorized kernel
    cannot prove well-formed (corruption, truncation, varints past the
    legitimate 5-byte maximum) are re-decoded by an exact scalar copy
    of the reference loop, which then stays in charge for the rest of
    the stream — a corrupt trace costs speed, never fidelity.

    :attr:`blocks_vectorized` / :attr:`blocks_fallback` feed the
    replay engine's decode telemetry counters.
    """

    def __init__(self, handle: BinaryIO, path: str,
                 state: dict | None = None,
                 block_hook=None) -> None:
        self._handle = handle
        self.path = path
        self.records = 0
        self.blocks = 0
        self.compressed_bytes = 0
        self.raw_bytes = 0
        self.blocks_vectorized = 0
        self.blocks_fallback = 0
        self.block_hook = block_hook
        self._time = state.get("time", 0) if state else 0
        # Kept as plain-int lists: the vector kernel reads/writes them
        # in place, the scalar fallback shares them, and block_hook
        # consumers JSON-serialize them (numpy ints would not round-trip).
        self._prev_a = [0] * 256
        self._prev_b = [0] * 256
        if state:
            for etype, (a, b) in dict(state.get("prev", {})).items():
                self._prev_a[int(etype)] = a
                self._prev_b[int(etype)] = b
        self._finished = False
        self._scalar_only = not HAVE_NUMPY

    def batches(self) -> Iterator[EventBatch]:
        """Yield one :class:`EventBatch` per block until FINISH."""
        handle = self._handle
        while not self._finished:
            if self.block_hook is not None:
                self.block_hook(handle.tell(), self.records, self._time,
                                self._prev_a, self._prev_b)
            frame = handle.read(BLOCK_HEADER_SIZE)
            if not frame:
                raise TraceTruncatedError(
                    f"{self.path}: event stream ends without FINISH")
            if len(frame) < BLOCK_HEADER_SIZE:
                raise TraceTruncatedError(
                    f"{self.path}: trace ends inside a block header")
            comp_len, raw_len = BLOCK_HEADER.unpack(frame)
            payload = handle.read(comp_len)
            if len(payload) < comp_len:
                raise TraceTruncatedError(
                    f"{self.path}: trace ends mid-block "
                    f"({len(payload)} of {comp_len} payload bytes)")
            try:
                data = zlib.decompress(payload)
            except zlib.error as exc:
                raise TraceError(
                    f"{self.path}: corrupt trace block: {exc}") from exc
            if len(data) != raw_len:
                raise TraceError(
                    f"{self.path}: block length mismatch "
                    f"({raw_len} declared, {len(data)} decompressed)")
            self.blocks += 1
            self.compressed_bytes += comp_len
            self.raw_bytes += raw_len
            if not data:
                continue
            batch = None
            if not self._scalar_only:
                batch = self._decode_vector(data)
            if batch is not None:
                self.blocks_vectorized += 1
                self.records += len(batch)
                yield batch
                continue
            # Exact scalar re-decode; corruption rarely stops at one
            # block, so stay scalar for the rest of the stream (the
            # delta state may now hold values the kernel cannot carry).
            self._scalar_only = True
            self.blocks_fallback += 1
            batch, error = self._decode_scalar(data)
            if batch is not None:
                self.records += len(batch)
                yield batch
            if error is not None:
                raise error

    def events(self) -> Iterator[Event]:
        """Scalar view: yields exactly what ``V2Decoder.events()`` does."""
        for batch in self.batches():
            yield from batch.rows()

    def _decode_vector(self, data: bytes) -> EventBatch | None:
        decoded = decode_block_columns(data, self._prev_a, self._prev_b,
                                       self._time)
        if decoded is None:
            return None
        etypes, a, b, t, finished = decoded
        self._finished = finished
        self._time = int(t[-1])
        return EventBatch(etypes, a, b, t)

    def _decode_scalar(self, data: bytes
                       ) -> tuple[EventBatch | None, Exception | None]:
        """Reference per-record decode of one block into columns.

        Mirrors ``V2Decoder.events()`` exactly — including which
        events precede an error: the partial batch is returned first
        and the error raised after it is consumed, so downstream sees
        the same prefix-then-raise order as the scalar generator.
        """
        prev_a = self._prev_a
        prev_b = self._prev_b
        time = self._time
        etypes: list[int] = []
        col_a: list[int] = []
        col_b: list[int] = []
        col_t: list[int] = []
        pos = 0
        end = len(data)
        error: Exception | None = None
        try:
            while pos < end:
                etype = data[pos]
                za = data[pos + 1]
                if za < 0x80:
                    pos += 2
                else:
                    za, pos = read_uvarint(data, pos + 1)
                a = prev_a[etype] + (za >> 1 if not za & 1
                                     else -(za >> 1) - 1)
                prev_a[etype] = a
                zb = data[pos]
                if zb < 0x80:
                    pos += 1
                else:
                    zb, pos = read_uvarint(data, pos)
                b = prev_b[etype] + (zb >> 1 if not zb & 1
                                     else -(zb >> 1) - 1)
                prev_b[etype] = b
                delta = data[pos]
                if delta < 0x80:
                    pos += 1
                else:
                    delta, pos = read_uvarint(data, pos)
                time += delta
                etypes.append(etype)
                col_a.append(a)
                col_b.append(b)
                col_t.append(time)
                if etype == EV_FINISH:
                    self._finished = True
                    break
        except IndexError:
            error = TraceTruncatedError(
                f"{self.path}: block ends mid-record")
        except TraceError as exc:  # truncated or overlong varint
            error = exc
        self._time = time
        if not etypes:
            return None, error
        return EventBatch.from_lists(etypes, col_a, col_b, col_t), error


def make_decoder(version: int, handle: BinaryIO, path: str,
                 state: dict | None = None, block_hook=None,
                 columnar: bool = False):
    if version == 1:
        return V1Decoder(handle, path, state)
    if version == 2:
        if columnar:
            return V2BatchDecoder(handle, path, state, block_hook)
        return V2Decoder(handle, path, state, block_hook)
    raise TraceError(f"cannot decode trace schema version {version}")


def encode_events(events: list[Event], version: int,
                  block_bytes: int = DEFAULT_BLOCK_BYTES) -> bytes:
    """Encode absolute-timestamp events into one event-stream blob.

    Test/fuzz helper: the exact bytes a writer would put between the
    header and the footer, without building either.
    """
    encoder = make_encoder(version, block_bytes)
    out = bytearray()
    last = 0
    for etype, a, b, t in events:
        encoder.add(etype, a, b, t - last)
        last = t
        if encoder.pending() >= encoder.flush_bytes:
            out += encoder.take()
    out += encoder.take()
    return bytes(out)


def decode_events(blob: bytes, version: int,
                  path: str = "<blob>") -> list[Event]:
    """Inverse of :func:`encode_events` (stops after FINISH)."""
    import io

    return list(make_decoder(version, io.BytesIO(blob), path).events())
