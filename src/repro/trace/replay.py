"""Replay: drive registered analyses over a recorded trace.

The engine re-derives everything an analysis needs *without* running
the interpreter again:

* the program is recompiled from the source embedded in the trace
  header (digest-checked), giving back the construct table, function
  layouts and global names;
* a :class:`~repro.runtime.memory.Memory` is reconstructed by applying
  the recorded ENTER/EXIT/ALLOC/FREE events, so symbolic address names
  (``fn.local``, ``heap#3[7]``, ``retval(f)``) resolve at replay time
  exactly as they did live — frame pushes, pops and heap recycling are
  deterministic given the same event sequence;
* events are then dispatched to every requested analysis in recorded
  order, so one pass over the trace feeds N analyses.

Analyses are :class:`repro.analyses.Analysis` plugins resolved through
the shared registry — the same objects that attach to a live
interpreter run and that the batch driver spawns, which is exactly the
symmetry the bench harness uses for its replay-vs-rerun comparison.

Deprecated aliases (``TraceConsumer``, ``DependenceConsumer``,
``LocalityConsumer``, ``HotAddressConsumer``, ``CountingConsumer``,
``CONSUMERS``, ``make_consumers``) are kept so pre-registry callers
continue to work; new code should import from :mod:`repro.analyses`.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from dataclasses import dataclass
from typing import Any, Iterable

from repro.analyses import (Analysis, AnalysisContext, AnalysisError,
                            AnalysisResult, get_analysis, live_hooks,
                            make_analyses, register, registry, unregister)
from repro.analyses.builtin import (ContextDependenceAnalysis,
                                    CountingAnalysis, DependenceAnalysis,
                                    FlatDependenceAnalysis, HotAddress,
                                    HotAddressAnalysis, LocalityAnalysis,
                                    LocalityResult)
from repro.ir.cfg import ProgramIR
from repro.ir.lowering import compile_source
from repro.runtime.memory import Memory
from repro.trace.columnar import columnar_enabled
from repro.trace.events import (EV_ALLOC, EV_BLOCK, EV_BRANCH,
                                EV_CHECKPOINT, EV_ENTER, EV_EXIT,
                                EV_FINISH, EV_FREE, EV_READ, EV_WRITE,
                                TRACE_VERSION_V1, TraceError,
                                source_digest)
from repro.trace.reader import TraceReader

# -- deprecated pre-registry names (thin shims) -----------------------------

#: Deprecated alias: a "trace consumer" is now any registered Analysis.
TraceConsumer = Analysis
#: Deprecated alias for :class:`repro.analyses.AnalysisContext`.
ReplayContext = AnalysisContext
DependenceConsumer = DependenceAnalysis
LocalityConsumer = LocalityAnalysis
HotAddressConsumer = HotAddressAnalysis
CountingConsumer = CountingAnalysis
FlatConsumer = FlatDependenceAnalysis
ContextConsumer = ContextDependenceAnalysis

class _ConsumerRegistry(MutableMapping):
    """Deprecated writable view of the shared analysis registry.

    Pre-registry code registered plugins with ``CONSUMERS[name] = cls``
    (plain dict semantics, overwrite allowed); this shim forwards those
    writes to :func:`repro.analyses.register` so both worlds stay in
    sync. New code should use the ``@register`` decorator.
    """

    def __getitem__(self, name: str) -> type[Analysis]:
        try:
            return get_analysis(name)
        except AnalysisError:
            raise KeyError(name) from None

    def __setitem__(self, name: str, cls: type[Analysis]) -> None:
        # Validate before touching the registry: a bad assignment must
        # not evict whatever `name` currently maps to.
        if not (isinstance(cls, type) and issubclass(cls, Analysis)):
            raise AnalysisError(
                f"CONSUMERS[{name!r}] expects an Analysis subclass, "
                f"got {cls!r}")
        if not getattr(cls, "name", ""):
            cls.name = name
        if cls.name != name:
            raise AnalysisError(
                f"cannot register {cls.__qualname__} as {name!r}: its "
                f"name is {cls.name!r}")
        previous = registry().get(name)
        unregister(name)  # dict semantics: assignment overwrites
        try:
            register(cls)
        except AnalysisError:
            if previous is not None:
                register(previous)
            raise

    def __delitem__(self, name: str) -> None:
        if name not in registry():
            raise KeyError(name)
        unregister(name)

    def __iter__(self):
        return iter(registry())

    def __len__(self) -> int:
        return len(registry())


#: Deprecated: a live writable view of the shared analysis registry
#: (new plugins registered via ``@register`` appear here automatically,
#: and ``CONSUMERS[name] = cls`` still registers like the old dict did).
CONSUMERS = _ConsumerRegistry()


def make_consumers(analyses: Iterable[str] | str) -> list[Analysis]:
    """Deprecated alias for :func:`repro.analyses.make_analyses`;
    raises :class:`TraceError` for unknown names (pre-registry
    behaviour)."""
    try:
        return make_analyses(analyses)
    except AnalysisError as exc:
        raise TraceError(str(exc)) from None


#: Hooks the engine dispatches from trace events. Must cover every
#: Tracer event hook (``repro.runtime.tracing.TRACER_HOOKS``) — a hook
#: added to Tracer without a trace event is a live/replay divergence;
#: the hook-coverage test asserts the two sets stay equal.
DISPATCHED_HOOKS = ("on_enter_function", "on_exit_function",
                    "on_block_enter", "on_branch", "on_read", "on_write",
                    "on_heap_alloc", "on_frame_free", "on_finish")


def _batch_mode(consumer) -> str | None:
    """How a consumer wants its events: ``"block"``/``"span"`` if it
    declared a usable ``consume_batch``, else ``None`` (per-event
    hooks). Non-Analysis tracers without the attributes land on the
    scalar path automatically."""
    kind = getattr(consumer, "batch_kind", None)
    if kind not in ("block", "span"):
        return None
    if getattr(consumer, "consume_batch", None) is None:
        return None
    return kind


def dispatch_batches(batches, consumers: list, memory: Memory,
                     functions: list, check_allocs: bool = True,
                     budget: int | None = None,
                     segment: bool = False) -> tuple[int, int]:
    """Columnar twin of the scalar dispatch loops: drive decoded
    :class:`~repro.trace.columnar.EventBatch` blocks through the
    consumers, replaying memory reconstruction at the structural seams.

    Consumers split three ways by :func:`_batch_mode`:

    * ``"block"`` — ``consume_batch`` sees each whole block once and
      no per-event hooks fire for it (valid only for analyses that
      never consult :class:`Memory`);
    * ``"span"`` — ``consume_batch`` sees the maximal memory-quiet
      sub-batches between structural events; the structural events
      themselves (ENTER/EXIT/ALLOC/FREE/FINISH) still arrive through
      the scalar hooks with memory synchronized exactly as the scalar
      engine would have it;
    * ``None`` — every event is dispatched per-hook, exactly like the
      scalar loop (custom plugins keep working unmodified).

    ``budget`` caps the number of events consumed (the parallel
    segment driver's slice discipline); ``segment`` selects the
    segment-flavored heap-divergence message. Returns
    ``(final_time, events_consumed)``.
    """
    block_consumers = [c for c in consumers if _batch_mode(c) == "block"]
    span_consumers = [c for c in consumers if _batch_mode(c) == "span"]
    scalar_consumers = [c for c in consumers if _batch_mode(c) is None]

    # Structural hooks fire for span + scalar consumers (block
    # consumers already saw those events inside their batch); interior
    # hooks fire for scalar consumers only.
    hooked = span_consumers + scalar_consumers
    on_enter = live_hooks(hooked, "on_enter_function")
    on_exit = live_hooks(hooked, "on_exit_function")
    on_alloc = live_hooks(hooked, "on_heap_alloc")
    on_free = live_hooks(hooked, "on_frame_free")
    on_finish = live_hooks(hooked, "on_finish")
    on_block = live_hooks(scalar_consumers, "on_block_enter")
    on_branch = live_hooks(scalar_consumers, "on_branch")
    on_read = live_hooks(scalar_consumers, "on_read")
    on_write = live_hooks(scalar_consumers, "on_write")
    block_feeds = [c.consume_batch for c in block_consumers]
    span_feeds = [c.consume_batch for c in span_consumers]
    scalar_spans = bool(on_read or on_write or on_block or on_branch)
    feed_spans = bool(span_feeds) or scalar_spans

    push_frame = memory.push_frame
    pop_frame = memory.pop_frame
    heap_alloc = memory.heap_alloc
    heap_free = memory.heap_free
    heap_base = memory.heap_base
    where = " in segment" if segment else ""

    final_time = 0
    consumed = 0

    def run_span(span) -> None:
        for feed in span_feeds:
            feed(span)
        if not scalar_spans:
            return
        for etype, a, b, t in span.rows():
            if etype == EV_READ:
                for hook in on_read:
                    hook(a, b, t)
            elif etype == EV_WRITE:
                for hook in on_write:
                    hook(a, b, t)
            elif etype == EV_BLOCK:
                for hook in on_block:
                    hook(a, t)
            elif etype == EV_BRANCH:
                for hook in on_branch:
                    hook(a, b, t)
            # EV_CHECKPOINT: shard seam marker, nothing to dispatch.

    for batch in batches:
        if budget is not None and len(batch) > budget - consumed:
            batch = batch.slice(0, budget - consumed)
        unknown = batch.first_unknown_etype()
        if unknown is not None:
            raise TraceError(f"unknown event type {unknown}")
        for feed in block_feeds:
            feed(batch)
        seams = batch.structural_indices()
        pos = 0
        s_et, s_a, s_b, s_t = batch.gather(seams)
        for idx, etype, a, b, t in zip(seams, s_et, s_a, s_b, s_t):
            if feed_spans and idx > pos:
                run_span(batch.slice(pos, idx))
            pos = idx + 1
            if etype == EV_ENTER:
                push_frame(functions[a])
                name = functions[a].name
                for hook in on_enter:
                    hook(name, b, t)
            elif etype == EV_EXIT:
                name = functions[a].name
                for hook in on_exit:
                    hook(name, t)
                pop_frame()
            elif etype == EV_FREE:
                # Heap blocks always have size > 0; an empty range is
                # a degenerate stack-frame free (and could sit exactly
                # at heap_base when the stack region is full).
                if b and a >= heap_base:
                    heap_free(a)
                hi = a + b
                for hook in on_free:
                    hook(a, hi)
            elif etype == EV_ALLOC:
                base = heap_alloc(b)
                if check_allocs and base != a:
                    raise TraceError(
                        f"heap replay diverged{where}: alloc returned "
                        f"{base}, trace recorded {a}")
                for hook in on_alloc:
                    hook(a, b, t)
            else:  # EV_FINISH (the decoder never puts it mid-block)
                final_time = t
                for hook in on_finish:
                    hook(t)
        if feed_spans and pos < len(batch):
            run_span(batch.slice(pos, len(batch)))
        consumed += len(batch)
        if budget is not None and consumed >= budget:
            break
    return final_time, consumed


class ReplayEngine:
    """Streams a trace once through any number of analyses.

    The engine mirrors the interpreter's event discipline exactly:
    frames are pushed before ``on_enter_function`` fires and popped
    after ``on_exit_function`` (matching ``Interpreter.run``), and heap
    blocks are allocated/freed at their events, so every analysis
    observes memory state identical to a live run.
    """

    def __init__(self, reader: TraceReader, program: ProgramIR | None = None,
                 check_allocs: bool = True, telemetry=None,
                 columnar: bool | None = None):
        from repro.telemetry import as_telemetry

        self.telemetry = as_telemetry(telemetry)
        #: Tri-state batch-path switch: ``None`` defers to
        #: :func:`repro.trace.columnar.columnar_enabled` (env override,
        #: then numpy availability); True/False force it — the bench
        #: harness pins both sides this way.
        self.columnar = columnar
        self.reader = reader
        header = reader.header
        if program is None:
            if source_digest(header.source) != header.digest:
                raise TraceError(
                    f"{reader.path}: embedded source does not match the "
                    "header digest (corrupt trace)")
            with self.telemetry.span("compile", file=header.filename):
                program = compile_source(header.source, header.filename)
        # An explicitly passed program is trusted (the caller compiled
        # it); mismatches surface via the function table or the alloc
        # divergence check below.
        self.program = program
        self.check_allocs = check_allocs

    def run(self, consumers: list[Analysis]) -> AnalysisContext:
        """Dispatch every event; returns the context each analysis's
        ``finish`` receives."""
        reader = self.reader
        header = reader.header
        program = self.program
        memory = Memory(program, header.stack_limit)
        functions = []
        for name in header.functions:
            try:
                functions.append(program.functions[name])
            except KeyError:
                raise TraceError(
                    f"trace names function {name!r} missing from the "
                    "program (source/trace mismatch)") from None

        tm = self.telemetry
        # Consumers are usually Analysis plugins, but anything with the
        # tracer hook surface replays fine (e.g. task-graph tracers) —
        # fall back to the class name for the span attribute.
        names = [getattr(c, "name", None) or type(c).__name__
                 for c in consumers]
        with tm.span("replay", trace=reader.path,
                     analyses=names) as span:
            for consumer in consumers:
                consumer.on_start(program, memory)
            final_time = self._dispatch(consumers, memory, functions)
        wall = span.wall_seconds
        footer = reader.footer
        if tm.enabled:
            events = footer.events if footer is not None else 0
            span.set(events=events)
            tm.count("trace.events_decoded", events)
            decoder = reader.decoder
            compressed = getattr(decoder, "compressed_bytes", 0)
            if compressed:
                tm.count("trace.bytes_read", compressed)
                tm.count("trace.blocks_read",
                         getattr(decoder, "blocks", 0))
            else:  # v1: fixed records, no compression layer
                tm.count("trace.bytes_read",
                         getattr(decoder, "records", 0) * 13)
            vectorized = getattr(decoder, "blocks_vectorized", 0)
            fallback = getattr(decoder, "blocks_fallback", 0)
            if vectorized or fallback:
                tm.count("trace.blocks_batched", vectorized)
                tm.count("trace.blocks_scalar_fallback", fallback)
            from repro.telemetry import get_logger

            get_logger(__name__).info(
                "replayed trace", extra={
                    "trace": reader.path, "events": events,
                    "analyses": names,
                    "wall_seconds": round(wall, 6)})
        sampling = getattr(header, "sampling", "full")
        return AnalysisContext(
            program=program,
            memory=memory,
            final_time=final_time,
            exit_value=footer.exit_value if footer is not None else 0,
            output=([tuple(v) for v in footer.output]
                    if footer is not None else []),
            events=footer.events if footer is not None else 0,
            wall_seconds=wall,
            mode="replay",
            sampling=None if sampling in (None, "", "full") else sampling,
            trace_path=reader.path,
            telemetry=tm,
        )

    def _dispatch(self, consumers: list[Analysis], memory: Memory,
                  functions: list) -> int:
        """Stream every event through the bound hooks; returns the
        final timestamp. Hook lists are bound here — after ``on_start``
        (analyses may rebind hooks there) — dropping inherited no-op
        hooks from the dispatch.

        v2 traces ride the columnar batch path when enabled (see
        :func:`repro.trace.columnar.columnar_enabled`); v1 traces and
        disabled runs use the per-event loop below, which stays the
        reference semantics the batch path is tested against."""
        reader = self.reader
        if (reader.version != TRACE_VERSION_V1
                and columnar_enabled(self.columnar)):
            final_time, _ = dispatch_batches(
                reader.batches(), consumers, memory, functions,
                check_allocs=self.check_allocs)
            return final_time
        on_enter = live_hooks(consumers, "on_enter_function")
        on_exit = live_hooks(consumers, "on_exit_function")
        on_block = live_hooks(consumers, "on_block_enter")
        on_branch = live_hooks(consumers, "on_branch")
        on_read = live_hooks(consumers, "on_read")
        on_write = live_hooks(consumers, "on_write")
        on_alloc = live_hooks(consumers, "on_heap_alloc")
        on_free = live_hooks(consumers, "on_frame_free")
        on_finish = live_hooks(consumers, "on_finish")

        push_frame = memory.push_frame
        pop_frame = memory.pop_frame
        heap_alloc = memory.heap_alloc
        heap_free = memory.heap_free
        heap_base = memory.heap_base
        check_allocs = self.check_allocs

        final_time = 0
        for etype, a, b, t in reader.events(columnar=False):
            if etype == EV_READ:
                for hook in on_read:
                    hook(a, b, t)
            elif etype == EV_WRITE:
                for hook in on_write:
                    hook(a, b, t)
            elif etype == EV_BLOCK:
                for hook in on_block:
                    hook(a, t)
            elif etype == EV_BRANCH:
                for hook in on_branch:
                    hook(a, b, t)
            elif etype == EV_ENTER:
                push_frame(functions[a])
                name = functions[a].name
                for hook in on_enter:
                    hook(name, b, t)
            elif etype == EV_EXIT:
                name = functions[a].name
                for hook in on_exit:
                    hook(name, t)
                pop_frame()
            elif etype == EV_FREE:
                # Heap blocks always have size > 0; an empty range is a
                # degenerate stack-frame free (and could sit exactly at
                # heap_base when the stack region is full).
                if b and a >= heap_base:
                    heap_free(a)
                hi = a + b
                for hook in on_free:
                    hook(a, hi)
            elif etype == EV_ALLOC:
                base = heap_alloc(b)
                if check_allocs and base != a:
                    raise TraceError(
                        f"heap replay diverged: alloc returned {base}, "
                        f"trace recorded {a}")
                for hook in on_alloc:
                    hook(a, b, t)
            elif etype == EV_FINISH:
                final_time = t
                for hook in on_finish:
                    hook(t)
            elif etype == EV_CHECKPOINT:
                pass  # shard seam marker: no analysis-visible content
            else:
                raise TraceError(f"unknown event type {etype}")
        return final_time


@dataclass
class ReplayOutcome:
    """All results of one replay pass.

    ``reports`` holds the structured :class:`AnalysisResult` per
    analysis; ``results`` keeps the pre-registry raw-payload shape
    (``ProfileReport`` for ``dep``, ``LocalityResult`` for
    ``locality``, ...) for existing callers.
    """

    reports: dict[str, AnalysisResult]
    context: AnalysisContext
    consumers: list[Analysis]

    @property
    def results(self) -> dict[str, Any]:
        return {name: report.payload if report.payload is not None
                else report.data
                for name, report in self.reports.items()}

    def describe(self) -> str:
        return "\n\n".join(report.text for report in self.reports.values())


def replay_trace(path: str, analyses: Iterable[str] | str = ("dep",),
                 program: ProgramIR | None = None,
                 telemetry=None,
                 columnar: bool | None = None) -> ReplayOutcome:
    """Replay ``path`` through the named analyses in one pass."""
    consumers = make_consumers(analyses)
    return replay_with(path, consumers, program, telemetry=telemetry,
                       columnar=columnar)


def replay_with(path: str, consumers: list[Analysis],
                program: ProgramIR | None = None,
                telemetry=None,
                columnar: bool | None = None) -> ReplayOutcome:
    """Replay ``path`` through already-instantiated analyses."""
    from repro.telemetry import as_telemetry

    tm = as_telemetry(telemetry)
    with TraceReader(path) as reader:
        engine = ReplayEngine(reader, program, telemetry=tm,
                              columnar=columnar)
        ctx = engine.run(consumers)
    reports = {}
    for consumer in consumers:
        with tm.span("analysis.finish", analysis=consumer.name):
            report = consumer.finish(ctx)
        consumer.last_result = report  # deprecated describe() surface
        reports[consumer.name] = report
    return ReplayOutcome(reports=reports, context=ctx, consumers=consumers)
