"""Replay: drive pluggable analyses over a recorded trace.

The engine re-derives everything an analysis needs *without* running
the interpreter again:

* the program is recompiled from the source embedded in the trace
  header (digest-checked), giving back the construct table, function
  layouts and global names;
* a :class:`~repro.runtime.memory.Memory` is reconstructed by applying
  the recorded ENTER/EXIT/ALLOC/FREE events, so symbolic address names
  (``fn.local``, ``heap#3[7]``, ``retval(f)``) resolve at replay time
  exactly as they did live — frame pushes, pops and heap recycling are
  deterministic given the same event sequence;
* events are then dispatched to every registered consumer in recorded
  order, so one pass over the trace feeds N analyses.

Consumers are ordinary :class:`~repro.runtime.tracing.Tracer` subclasses
(plus a ``result()`` method), which means every consumer can also be
attached to a live interpreter run unchanged — the bench harness uses
exactly that symmetry for its replay-vs-rerun comparison.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.analysis.constructs import ConstructTable
from repro.core.profile_data import DepKind
from repro.core.report import ProfileReport, RunStats
from repro.core.tracer import AlchemistTracer
from repro.ir.cfg import ProgramIR
from repro.ir.lowering import compile_source
from repro.runtime.memory import Memory
from repro.runtime.tracing import Tracer
from repro.trace.events import (EV_ALLOC, EV_BLOCK, EV_BRANCH, EV_ENTER,
                                EV_EXIT, EV_FINISH, EV_FREE, EV_READ,
                                EV_WRITE, TraceError, TraceFooter,
                                source_digest)
from repro.trace.reader import TraceReader


@dataclass
class ReplayContext:
    """What the engine hands to ``result()`` after the last event."""

    program: ProgramIR
    memory: Memory
    footer: TraceFooter | None
    final_time: int
    events: int
    wall_seconds: float


class TraceConsumer(Tracer):
    """A replayable analysis: tracer hooks plus a named result.

    ``on_start`` receives the (re)compiled program and a memory whose
    layout evolves with the event stream; hooks then fire in recorded
    order. ``result`` turns the accumulated state into the analysis
    output once the stream is exhausted.
    """

    #: Registry key and result-dict key.
    name = "consumer"

    def result(self, ctx: ReplayContext) -> Any:
        raise NotImplementedError

    def describe(self, outcome: Any) -> str:
        """Human-readable rendering for the CLI."""
        return repr(outcome)


class DependenceConsumer(TraceConsumer):
    """The Alchemist dependence profiler, ported to replay.

    Wraps the unmodified live :class:`AlchemistTracer`, so a replayed
    profile is *identical* — per-construct edges, min-Tdep distances,
    durations, instance counts — to a live instrumented run of the same
    program (the equivalence tests assert this workload by workload).
    """

    name = "dep"

    def __init__(self, pool_size: int = 4096, track_war_waw: bool = True):
        self.pool_size = pool_size
        self.track_war_waw = track_war_waw
        self.table: ConstructTable | None = None
        self.tracer: AlchemistTracer | None = None

    def on_start(self, program: ProgramIR, memory: Memory) -> None:
        self.table = ConstructTable(program)
        tracer = AlchemistTracer(self.table, self.pool_size,
                                 self.track_war_waw)
        tracer.on_start(program, memory)
        self.tracer = tracer
        # Rebind the hot hooks straight to the inner tracer: the engine
        # looks methods up after on_start, so dispatch skips this shim.
        self.on_enter_function = tracer.on_enter_function
        self.on_exit_function = tracer.on_exit_function
        self.on_block_enter = tracer.on_block_enter
        self.on_branch = tracer.on_branch
        self.on_read = tracer.on_read
        self.on_write = tracer.on_write
        self.on_frame_free = tracer.on_frame_free
        self.on_finish = tracer.on_finish

    def result(self, ctx: ReplayContext) -> ProfileReport:
        tracer = self.tracer
        stats = RunStats(
            wall_seconds=ctx.wall_seconds,
            baseline_seconds=None,
            instructions=ctx.final_time,
            dynamic_instances=tracer.store.dynamic_instances,
            static_constructs=self.table.static_count(),
            max_index_depth=tracer.stack.max_depth,
            raw_events=tracer.raw_events,
            war_events=tracer.war_events,
            waw_events=tracer.waw_events,
            edges_profiled=tracer.profiler.edges_profiled,
            pool=tracer.pool.stats,
        )
        footer = ctx.footer
        exit_value = footer.exit_value if footer is not None else 0
        output = ([tuple(v) for v in footer.output]
                  if footer is not None else [])
        return ProfileReport(ctx.program, self.table, tracer.store, stats,
                             exit_value, output)

    def describe(self, outcome: ProfileReport) -> str:
        # Same presentation as the `profile` verb: all three kinds.
        kinds = ((DepKind.RAW, DepKind.WAW, DepKind.WAR)
                 if self.track_war_waw else (DepKind.RAW,))
        return outcome.to_text(kinds=kinds)


@dataclass
class LocalityResult:
    """Reuse-distance summary of one trace."""

    accesses: int = 0
    distinct_addresses: int = 0
    cold_misses: int = 0
    #: log2 bucket -> access count; bucket k holds distances in
    #: [2^(k-1), 2^k), bucket 0 holds distance 0 (back-to-back reuse).
    histogram: dict[int, int] = field(default_factory=dict)

    def hit_fraction(self, capacity: int) -> float:
        """Fraction of reuses that fit a ``capacity``-word LRU cache."""
        reuses = self.accesses - self.cold_misses
        if reuses <= 0:
            return 0.0
        hits = sum(count for bucket, count in self.histogram.items()
                   if (1 << bucket) <= capacity)
        return hits / reuses


class LocalityConsumer(TraceConsumer):
    """Exact LRU reuse-distance histogram (a PROMPT-style analysis).

    For every memory access, the reuse distance is the number of
    *distinct* addresses touched since the previous access to the same
    address — i.e. the minimal LRU cache size (in words) that would hit.
    Computed exactly with a Fenwick tree over access sequence numbers
    (O(log n) per access). Distances are bucketed by powers of two.

    Addresses are physical interpreter words; stack reuse across frames
    therefore counts as reuse of the same word, which is exactly the
    cache behaviour a hardware-level locality profile would see.
    """

    name = "locality"

    def __init__(self) -> None:
        self._seq = 0
        self._last: dict[int, int] = {}
        self._tree: list[int] = [0]
        self._live = 0
        self.stats = LocalityResult()

    def _access(self, addr: int, pc: int = 0, timestamp: int = 0) -> None:
        stats = self.stats
        stats.accesses += 1
        seq = self._seq + 1
        self._seq = seq
        tree = self._tree
        # Fenwick append: node ``seq`` covers ``(seq - lowbit, seq]``, so
        # its initial value is the live count over that range (the new
        # position itself contributes 1 — it is now `addr`'s last
        # access).
        before = self._prefix(seq - 1)
        tree.append(1 + before - self._prefix(seq - (seq & -seq)))
        last = self._last.get(addr)
        self._last[addr] = seq
        self._live += 1
        if last is None:
            stats.cold_misses += 1
            return
        # distance = live addresses whose last access falls strictly
        # between `last` and `seq` = prefix(seq - 1) - prefix(last).
        distance = before - self._prefix(last)
        bucket = distance.bit_length()  # 0 -> 0, [2^(k-1), 2^k) -> k
        stats.histogram[bucket] = stats.histogram.get(bucket, 0) + 1
        # The superseded position stops representing a live address.
        i = last
        size = seq
        while i <= size:
            tree[i] -= 1
            i += i & (-i)
        self._live -= 1

    # Both reads and writes are accesses (pc/timestamp unused).
    on_read = _access
    on_write = _access

    def _prefix(self, i: int) -> int:
        tree = self._tree
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    def result(self, ctx: ReplayContext) -> LocalityResult:
        self.stats.distinct_addresses = len(self._last)
        return self.stats

    def describe(self, outcome: LocalityResult) -> str:
        lines = [
            "Reuse-distance profile:",
            f"  accesses           {outcome.accesses}",
            f"  distinct addresses {outcome.distinct_addresses}",
            f"  cold misses        {outcome.cold_misses}",
        ]
        for capacity in (64, 1024, 16384):
            lines.append(f"  LRU({capacity:>5}) hit rate "
                         f"{outcome.hit_fraction(capacity):6.1%}")
        lines.append("  distance histogram (log2 buckets):")
        for bucket in sorted(outcome.histogram):
            lo = 0 if bucket == 0 else 1 << (bucket - 1)
            lines.append(f"    >= {lo:>8}: {outcome.histogram[bucket]}")
        return "\n".join(lines)


@dataclass
class HotAddress:
    """One row of the hot-address histogram."""

    addr: int
    name: str
    reads: int
    writes: int

    @property
    def total(self) -> int:
        return self.reads + self.writes


class HotAddressConsumer(TraceConsumer):
    """Access-count histogram over addresses (contention spotting).

    Names are resolved best-effort from the reconstructed memory at the
    *end* of the stream: globals and live heap blocks name exactly;
    long-dead stack frames fall back to ``stack+addr``.
    """

    name = "hot"

    def __init__(self, top: int = 20):
        self.top = top
        self._reads: dict[int, int] = {}
        self._writes: dict[int, int] = {}

    def on_read(self, addr: int, pc: int, timestamp: int) -> None:
        reads = self._reads
        reads[addr] = reads.get(addr, 0) + 1

    def on_write(self, addr: int, pc: int, timestamp: int) -> None:
        writes = self._writes
        writes[addr] = writes.get(addr, 0) + 1

    def result(self, ctx: ReplayContext) -> list[HotAddress]:
        totals: dict[int, int] = dict(self._reads)
        for addr, count in self._writes.items():
            totals[addr] = totals.get(addr, 0) + count
        ranked = sorted(totals, key=lambda a: (-totals[a], a))[:self.top]
        return [HotAddress(addr=addr,
                           name=ctx.memory.addr_to_name(addr),
                           reads=self._reads.get(addr, 0),
                           writes=self._writes.get(addr, 0))
                for addr in ranked]

    def describe(self, outcome: list[HotAddress]) -> str:
        lines = ["Hottest addresses (reads+writes):"]
        for row in outcome:
            lines.append(f"  {row.total:>10}  {row.name:<28} "
                         f"(r={row.reads}, w={row.writes}, "
                         f"addr={row.addr})")
        return "\n".join(lines)


class CountingConsumer(TraceConsumer):
    """Event counts; the replay twin of ``CountingTracer``."""

    name = "counts"

    def __init__(self) -> None:
        self.counts = {"reads": 0, "writes": 0, "calls": 0,
                       "branches": 0, "blocks": 0, "allocs": 0,
                       "frees": 0}

    def on_enter_function(self, fn_name, entry_pc, timestamp) -> None:
        self.counts["calls"] += 1

    def on_block_enter(self, block_id, timestamp) -> None:
        self.counts["blocks"] += 1

    def on_branch(self, pc, target_block, timestamp) -> None:
        self.counts["branches"] += 1

    def on_read(self, addr, pc, timestamp) -> None:
        self.counts["reads"] += 1

    def on_write(self, addr, pc, timestamp) -> None:
        self.counts["writes"] += 1

    def on_heap_alloc(self, base, size, timestamp) -> None:
        self.counts["allocs"] += 1

    def on_frame_free(self, lo, hi) -> None:
        self.counts["frees"] += 1

    def result(self, ctx: ReplayContext) -> dict[str, int]:
        return dict(self.counts)

    def describe(self, outcome: dict[str, int]) -> str:
        return "Event counts: " + ", ".join(
            f"{k}={v}" for k, v in sorted(outcome.items()))


#: Analysis registry for the CLI / batch driver.
CONSUMERS: dict[str, type[TraceConsumer]] = {
    DependenceConsumer.name: DependenceConsumer,
    LocalityConsumer.name: LocalityConsumer,
    HotAddressConsumer.name: HotAddressConsumer,
    CountingConsumer.name: CountingConsumer,
}


def make_consumers(analyses: Iterable[str] | str) -> list[TraceConsumer]:
    """Instantiate consumers from names (``"dep,locality"`` or a list)."""
    if isinstance(analyses, str):
        analyses = [name.strip() for name in analyses.split(",")
                    if name.strip()]
    consumers = []
    for name in analyses:
        try:
            consumers.append(CONSUMERS[name]())
        except KeyError:
            known = ", ".join(sorted(CONSUMERS))
            raise TraceError(f"unknown analysis {name!r} "
                             f"(known: {known})") from None
    if not consumers:
        raise TraceError("no analyses requested")
    return consumers


def _hooks(consumers: list[TraceConsumer], name: str) -> list:
    """Bound hooks for ``name``, skipping base-class no-ops.

    A consumer that never overrides ``on_block_enter`` (say) should cost
    nothing on block events; comparing each bound method's underlying
    function against :class:`Tracer`'s keeps it out of the hot loop.
    """
    base = getattr(Tracer, name)
    hooks = []
    for consumer in consumers:
        hook = getattr(consumer, name)
        if getattr(hook, "__func__", None) is not base:
            hooks.append(hook)
    return hooks


class ReplayEngine:
    """Streams a trace once through any number of consumers.

    The engine mirrors the interpreter's event discipline exactly:
    frames are pushed before ``on_enter_function`` fires and popped
    after ``on_exit_function`` (matching ``Interpreter.run``), and heap
    blocks are allocated/freed at their events, so every consumer
    observes memory state identical to a live run.
    """

    def __init__(self, reader: TraceReader, program: ProgramIR | None = None,
                 check_allocs: bool = True):
        self.reader = reader
        header = reader.header
        if program is None:
            if source_digest(header.source) != header.digest:
                raise TraceError(
                    f"{reader.path}: embedded source does not match the "
                    "header digest (corrupt trace)")
            program = compile_source(header.source, header.filename)
        # An explicitly passed program is trusted (the caller compiled
        # it); mismatches surface via the function table or the alloc
        # divergence check below.
        self.program = program
        self.check_allocs = check_allocs

    def run(self, consumers: list[TraceConsumer]) -> ReplayContext:
        """Dispatch every event; returns the context (results are pulled
        from each consumer by :func:`replay_trace`)."""
        reader = self.reader
        header = reader.header
        program = self.program
        memory = Memory(program, header.stack_limit)
        functions = []
        for name in header.functions:
            try:
                functions.append(program.functions[name])
            except KeyError:
                raise TraceError(
                    f"trace names function {name!r} missing from the "
                    "program (source/trace mismatch)") from None

        start = _time.perf_counter()
        for consumer in consumers:
            consumer.on_start(program, memory)
        # Bind hook lists after on_start (consumers may rebind hooks
        # there), dropping inherited no-op hooks from the dispatch.
        on_enter = _hooks(consumers, "on_enter_function")
        on_exit = _hooks(consumers, "on_exit_function")
        on_block = _hooks(consumers, "on_block_enter")
        on_branch = _hooks(consumers, "on_branch")
        on_read = _hooks(consumers, "on_read")
        on_write = _hooks(consumers, "on_write")
        on_alloc = _hooks(consumers, "on_heap_alloc")
        on_free = _hooks(consumers, "on_frame_free")
        on_finish = _hooks(consumers, "on_finish")

        push_frame = memory.push_frame
        pop_frame = memory.pop_frame
        heap_alloc = memory.heap_alloc
        heap_free = memory.heap_free
        heap_base = memory.heap_base
        check_allocs = self.check_allocs

        final_time = 0
        for etype, a, b, t in reader.events():
            if etype == EV_READ:
                for hook in on_read:
                    hook(a, b, t)
            elif etype == EV_WRITE:
                for hook in on_write:
                    hook(a, b, t)
            elif etype == EV_BLOCK:
                for hook in on_block:
                    hook(a, t)
            elif etype == EV_BRANCH:
                for hook in on_branch:
                    hook(a, b, t)
            elif etype == EV_ENTER:
                push_frame(functions[a])
                name = functions[a].name
                for hook in on_enter:
                    hook(name, b, t)
            elif etype == EV_EXIT:
                name = functions[a].name
                for hook in on_exit:
                    hook(name, t)
                pop_frame()
            elif etype == EV_FREE:
                # Heap blocks always have size > 0; an empty range is a
                # degenerate stack-frame free (and could sit exactly at
                # heap_base when the stack region is full).
                if b and a >= heap_base:
                    heap_free(a)
                hi = a + b
                for hook in on_free:
                    hook(a, hi)
            elif etype == EV_ALLOC:
                base = heap_alloc(b)
                if check_allocs and base != a:
                    raise TraceError(
                        f"heap replay diverged: alloc returned {base}, "
                        f"trace recorded {a}")
                for hook in on_alloc:
                    hook(a, b, t)
            elif etype == EV_FINISH:
                final_time = t
                for hook in on_finish:
                    hook(t)
            else:
                raise TraceError(f"unknown event type {etype}")
        wall = _time.perf_counter() - start
        footer = reader.footer
        return ReplayContext(program=program, memory=memory,
                             footer=footer, final_time=final_time,
                             events=footer.events if footer else 0,
                             wall_seconds=wall)


@dataclass
class ReplayOutcome:
    """All results of one replay pass."""

    results: dict[str, Any]
    context: ReplayContext
    consumers: list[TraceConsumer]

    def describe(self) -> str:
        parts = []
        for consumer in self.consumers:
            parts.append(consumer.describe(self.results[consumer.name]))
        return "\n\n".join(parts)


def replay_trace(path: str, analyses: Iterable[str] | str = ("dep",),
                 program: ProgramIR | None = None) -> ReplayOutcome:
    """Replay ``path`` through the named analyses in one pass."""
    consumers = make_consumers(analyses)
    with TraceReader(path) as reader:
        engine = ReplayEngine(reader, program)
        ctx = engine.run(consumers)
    results = {c.name: c.result(ctx) for c in consumers}
    return ReplayOutcome(results=results, context=ctx, consumers=consumers)
