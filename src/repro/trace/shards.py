"""Checkpointed traces: shard seams for parallel replay.

A CHECKPOINT is a compact snapshot of everything a replay needs to
*start mid-trace* and still behave exactly like a serial pass that
streamed every earlier event:

* **frame stack** — function indices bottom-to-top (plus the
  popped-frame marker), so a reconstructed
  :class:`~repro.runtime.memory.Memory` resolves symbolic names and
  pops frames identically;
* **heap layout** — live blocks with their ``heap#N`` ids, the
  free-by-size recycling lists in order, bump pointer and id counter,
  so in-segment ``heap_alloc`` returns exactly the recorded bases;
* **construct stack** — ``(head pc, Tenter)`` pairs for the execution
  index, so constructs that span the seam keep true durations and the
  dependence walk sees real ancestor chains;
* **shadow memory** — last write ``(pc, t)`` and last read per static
  pc since that write, per tracked address, so dependence analyses
  pair cross-seam accesses exactly (attribution of those pairs is
  deferred to the merge — see ``repro.analyses.merging``);
* **codec state** — the v2 per-type deltas and the clock at the block
  boundary, plus the absolute file offset of the next block, so a
  reader seeks straight to the seam (`TraceReader.events_from`).

The writer embeds checkpoints while recording (every
``checkpoint_interval`` events it emits an ``EV_CHECKPOINT`` marker,
flushes the current block and snapshots its mirror; payloads ride in
the footer's ``checkpoints`` table). Traces recorded without them — v1
traces, or v2 with ``--checkpoints 0`` — are checkpointed after the
fact by :func:`build_checkpoints`, one serial scan that drives the
same :class:`CheckpointBuilder` from the decoded stream (cached in a
``.ckpt`` sidecar so repeated parallel replays pay it once).

:func:`plan_shards` turns a trace plus a worker count into a list of
:class:`Segment`\\ s — (checkpoint, end index) pairs that partition the
event stream — which :mod:`repro.trace.parallel` fans out across a
process pool.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.trace.events import (EV_ALLOC, EV_BLOCK, EV_BRANCH,
                                EV_CHECKPOINT, EV_ENTER, EV_EXIT,
                                EV_FINISH, EV_FREE, EV_READ, EV_WRITE,
                                RECORD_SIZE, TRACE_VERSION_V2, TraceError)
from repro.trace.reader import TraceReader

#: Events between writer-embedded checkpoints (and the scan default).
DEFAULT_CHECKPOINT_INTERVAL = 50_000

#: Sidecar filename suffix for scan-built checkpoints.
SIDECAR_SUFFIX = ".ckpt"

#: Schema tag inside sidecar files (bump when the payload changes).
_SIDECAR_SCHEMA = 1


# ---------------------------------------------------------------------------
# Checkpoint payload
# ---------------------------------------------------------------------------

@dataclass
class Checkpoint:
    """One shard seam; see the module docstring for field semantics."""

    index: int                      #: events consumed before this seam
    time: int                       #: clock after those events
    offset: int                     #: file offset of the next record/block
    codec: dict = field(default_factory=dict)
    frames: list = field(default_factory=list)
    last_popped: list | None = None
    heap: dict = field(default_factory=dict)
    cstack: list = field(default_factory=list)
    #: ``[[addr, wpc, wt, [[rpc, rt], ...]], ...]`` sorted by address;
    #: ``wpc == -1`` means no write recorded (reads only).
    shadow: list = field(default_factory=list)

    def to_payload(self) -> dict:
        return {
            "index": self.index, "time": self.time, "offset": self.offset,
            "codec": self.codec, "frames": self.frames,
            "last_popped": self.last_popped, "heap": self.heap,
            "cstack": self.cstack, "shadow": self.shadow,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Checkpoint":
        try:
            return cls(**payload)
        except TypeError as exc:
            raise TraceError(f"corrupt checkpoint payload: {exc}") from exc

    def decoder_state(self) -> dict:
        """What ``TraceReader.events_from`` needs at this seam."""
        return {"time": self.time, **self.codec}

    def shadow_entries(self):
        """Yield ``(addr, write | None, reads)`` from the snapshot,
        with ``write = (pc, t)`` and ``reads = {pc: t}``."""
        for addr, wpc, wt, reads in self.shadow:
            write = None if wpc < 0 else (wpc, wt)
            yield addr, write, {pc: t for pc, t in reads}


def genesis_checkpoint(events_start: int) -> Checkpoint:
    """The implicit seam before the first event (segment 0 starts from
    pristine state, exactly like a serial replay)."""
    return Checkpoint(index=0, time=0, offset=events_start)


# ---------------------------------------------------------------------------
# Writer/scanner-side state mirror
# ---------------------------------------------------------------------------

class MemoryMirror:
    """Frame and heap bookkeeping of :class:`Memory`, minus the cells.

    The writer cannot afford a full Memory (push_frame zeroes cells),
    and a checkpoint never needs values — only layout. The allocation
    decisions here must match ``Memory.heap_alloc``/``heap_free``
    *bit-for-bit* (same-size recycling pops the most recent free, else
    bump), because in-segment replay re-runs the real allocator from
    the restored state and verifies recorded bases; the checkpoint
    fuzz tests pin the two against each other on every workload.
    """

    __slots__ = ("frame_sizes", "globals_size", "stack_top", "frames",
                 "last_popped", "heap_base", "heap_top", "blocks",
                 "free_by_size", "next_id", "allocs", "frees")

    def __init__(self, globals_size: int, heap_base: int,
                 frame_sizes: list[int]):
        self.frame_sizes = frame_sizes          # by function index
        self.globals_size = globals_size
        self.stack_top = globals_size
        self.frames: list[tuple[int, int]] = []  # (fn_index, base)
        self.last_popped: tuple[int, int] | None = None
        self.heap_base = heap_base
        self.heap_top = heap_base
        self.blocks: dict[int, tuple[int, int]] = {}  # base -> (size, id)
        self.free_by_size: dict[int, list[int]] = {}
        self.next_id = 1
        self.allocs = 0
        self.frees = 0

    def push(self, fn_index: int) -> None:
        base = self.stack_top
        self.stack_top = base + self.frame_sizes[fn_index]
        self.frames.append((fn_index, base))

    def pop(self) -> None:
        fn_index, base = self.frames.pop()
        self.stack_top = base
        self.last_popped = (fn_index, base)

    def heap_alloc(self, size: int) -> int:
        bucket = self.free_by_size.get(size)
        if bucket:
            base = bucket.pop()
        else:
            base = self.heap_top
            self.heap_top += size
        self.blocks[base] = (size, self.next_id)
        self.next_id += 1
        self.allocs += 1
        return base

    def heap_free(self, base: int) -> None:
        size, _ = self.blocks.pop(base)
        self.free_by_size.setdefault(size, []).append(base)
        self.frees += 1

    def snapshot(self) -> tuple[list, list | None, dict]:
        heap = {
            "top": self.heap_top,
            "next_id": self.next_id,
            "blocks": sorted([base, size, bid]
                             for base, (size, bid) in self.blocks.items()),
            "free": {str(size): list(bases)
                     for size, bases in sorted(self.free_by_size.items())
                     if bases},
            "allocs": self.allocs,
            "frees": self.frees,
        }
        frames = [fn_index for fn_index, _ in self.frames]
        popped = list(self.last_popped) if self.last_popped else None
        return frames, popped, heap


class CheckpointBuilder:
    """Replays the event stream into checkpointable state.

    Fed one event at a time — by the :class:`TraceWriter` as it
    records, or by :func:`build_checkpoints` as it scans — and mirrors
    exactly what :class:`repro.trace.replay.ReplayEngine` would do with
    the same events: frames push before / pop after their events, heap
    blocks allocate and recycle deterministically, the execution index
    follows the five instrumentation rules, and shadow memory keeps
    the last write plus the per-pc reads since it (with frees
    forgetting their ranges).
    """

    def __init__(self, program, functions: list[str], heap_base: int):
        from repro.analysis.constructs import ConstructTable
        from repro.core.indexing import IndexingStack
        from repro.core.pool import NodeAllocator
        from repro.core.profile_data import ProfileStore
        from repro.core.shadow import ShadowMemory

        fn_irs = []
        for name in functions:
            try:
                fn_irs.append(program.functions[name])
            except KeyError:
                raise TraceError(
                    f"trace names function {name!r} missing from the "
                    "program (source/trace mismatch)") from None
        self.stack = IndexingStack(ConstructTable(program),
                                   NodeAllocator(64), ProfileStore())
        self.shadow = ShadowMemory()
        self.mirror = MemoryMirror(
            program.globals_size, heap_base,
            [fn.frame_size for fn in fn_irs])
        self._entry_pcs = [fn.entry_pc for fn in fn_irs]
        self.heap_base = heap_base
        self.index = 0
        self.time = 0

    def apply(self, etype: int, a: int, b: int, t: int) -> None:
        if etype == EV_READ:
            self.shadow.on_read(a, b, None, t)
        elif etype == EV_WRITE:
            self.shadow.on_write(a, b, None, t)
        elif etype == EV_BLOCK:
            self.stack.on_block_enter(a, t)
        elif etype == EV_BRANCH:
            self.stack.on_branch(a, b, t)
        elif etype == EV_ENTER:
            self.mirror.push(a)
            self.stack.enter_procedure(self._entry_pcs[a], t)
        elif etype == EV_EXIT:
            self.stack.exit_procedure(t)
            self.mirror.pop()
        elif etype == EV_FREE:
            if b and a >= self.heap_base:
                self.mirror.heap_free(a)
            self.shadow.clear_range(a, a + b)
        elif etype == EV_ALLOC:
            base = self.mirror.heap_alloc(b)
            if base != a:
                raise TraceError(
                    f"checkpoint heap mirror diverged: alloc returned "
                    f"{base}, trace recorded {a}")
        elif etype not in (EV_FINISH, EV_CHECKPOINT):
            raise TraceError(f"unknown event type {etype}")
        self.index += 1
        self.time = t

    def _shadow_snapshot(self) -> list:
        entries = []
        for addr in sorted(self.shadow._entries):
            write, reads = self.shadow._entries[addr]
            wpc, wt = (-1, 0) if write is None else (write[0], write[2])
            entries.append([addr, wpc, wt,
                            sorted([pc, t] for pc, (_n, t)
                                   in reads.items())])
        return entries

    def snapshot(self, offset: int, codec_state: dict) -> Checkpoint:
        frames, popped, heap = self.mirror.snapshot()
        return Checkpoint(
            index=self.index,
            time=self.time,
            offset=offset,
            codec=codec_state,
            frames=frames,
            last_popped=popped,
            heap=heap,
            cstack=[[node.static.pc, node.t_enter]
                    for node in self.stack.stack],
            shadow=self._shadow_snapshot(),
        )


# ---------------------------------------------------------------------------
# Restoring checkpointed state
# ---------------------------------------------------------------------------

def restore_memory(program, header, checkpoint: Checkpoint):
    """Reconstruct a :class:`Memory` as of ``checkpoint``.

    Frames are re-pushed through the real ``push_frame`` (so the
    locals/array registry is rebuilt), then the heap adopts the
    checkpointed layout; from here the in-segment replay drives the
    instance exactly like the serial engine drives a fresh one.
    """
    from repro.runtime.memory import Memory

    memory = Memory(program, header.stack_limit)
    fns = [program.functions[name] for name in header.functions]
    for fn_index in checkpoint.frames:
        memory.push_frame(fns[fn_index])
    heap = checkpoint.heap
    if heap:
        memory.restore_heap(
            top=heap["top"], next_id=heap["next_id"],
            blocks=heap["blocks"], free_by_size=heap["free"],
            allocs=heap.get("allocs", 0), frees=heap.get("frees", 0))
    if checkpoint.last_popped:
        fn_index, base = checkpoint.last_popped
        memory.set_last_popped(fns[fn_index], base)
    return memory


def snapshot_memory(memory, header) -> Checkpoint:
    """Capture a live :class:`Memory`'s layout as a checkpoint.

    The inverse of :func:`restore_memory` (codec/shadow/stack fields
    stay empty): the final parallel segment exports its end-of-run
    memory this way so the parent can rebuild the exact memory the
    analyses' ``finalize`` needs for symbolic names.
    """
    fn_index = {name: i for i, name in enumerate(header.functions)}
    frames = [fn_index[region.fn.name] for region in memory.frames]
    popped = None
    if memory.last_popped is not None:
        popped = [fn_index[memory.last_popped.fn.name],
                  memory.last_popped.base]
    blocks = sorted(
        [base, size, int(memory.allocations[base][1][5:])]
        for base, size in memory._heap_blocks.items())
    heap = {
        "top": memory.heap_top,
        "next_id": memory._next_heap_id,
        "blocks": blocks,
        "free": {str(size): list(bases)
                 for size, bases in sorted(memory._free_by_size.items())
                 if bases},
        "allocs": memory.heap_allocs,
        "frees": memory.heap_frees,
    }
    return Checkpoint(index=0, time=0, offset=0, frames=frames,
                      last_popped=popped, heap=heap)


# ---------------------------------------------------------------------------
# Scan-building checkpoints for traces recorded without them
# ---------------------------------------------------------------------------

def _sparse_prev(prev_a: list[int], prev_b: list[int]) -> dict:
    return {str(etype): [prev_a[etype], prev_b[etype]]
            for etype in range(256) if prev_a[etype] or prev_b[etype]}


def build_checkpoints(path: str | os.PathLike,
                      interval: int = DEFAULT_CHECKPOINT_INTERVAL
                      ) -> list[Checkpoint]:
    """One serial scan producing checkpoints roughly every ``interval``
    events: at block boundaries for v2, at exact record boundaries for
    v1 (fixed records make every index seekable)."""
    from repro.ir.lowering import compile_source

    if interval <= 0:
        raise ValueError(f"checkpoint interval must be positive, "
                         f"got {interval}")
    checkpoints: list[Checkpoint] = []
    with TraceReader(path) as reader:
        header = reader.header
        program = compile_source(header.source, header.filename)
        builder = CheckpointBuilder(program, header.functions,
                                    header.heap_base)
        last_index = 0
        if reader.version == TRACE_VERSION_V2:
            pending: dict = {}

            def hook(offset, records, time, prev_a, prev_b):
                pending["offset"] = offset
                pending["records"] = records
                pending["prev"] = _sparse_prev(prev_a, prev_b)

            # The scan rides the batch decoder: a checkpoint is only
            # ever eligible at a block boundary (``pending["records"]``
            # can equal ``builder.index`` nowhere else), so checking
            # once per batch is exactly the per-event check.
            apply = builder.apply
            for batch in reader.batches(block_hook=hook):
                if (pending and pending["records"] == builder.index
                        and builder.index - last_index >= interval):
                    checkpoints.append(builder.snapshot(
                        pending["offset"], {"prev": pending["prev"]}))
                    last_index = builder.index
                for etype, a, b, t in batch.rows():
                    apply(etype, a, b, t)
        else:
            start = reader.events_start
            for etype, a, b, t in reader.events():
                if builder.index - last_index >= interval:
                    checkpoints.append(builder.snapshot(
                        start + builder.index * RECORD_SIZE, {}))
                    last_index = builder.index
                builder.apply(etype, a, b, t)
    return checkpoints


def _sidecar_path(path: str) -> str:
    return path + SIDECAR_SUFFIX


def probe_sidecar(path: str | os.PathLike) -> dict | None:
    """Non-destructively inspect the ``.ckpt`` sidecar of ``path``.

    Returns ``{"checkpoints": N, "interval": I}`` when a sidecar exists
    and still matches the trace (same schema, size, digest and sampling
    — any ``interval`` is accepted, since ``info`` reports what is
    cached rather than demanding a particular stride), else ``None``:
    missing, stale or torn sidecars all read as "no cached seams",
    exactly as the loader would treat them.
    """
    path = os.fspath(path)
    side = _sidecar_path(path)
    if not os.path.exists(side):
        return None
    try:
        size = os.path.getsize(path)
        with TraceReader(path) as reader:
            digest = reader.header.digest
            sampling = reader.header.sampling
        with open(side) as handle:
            data = json.load(handle)
        key = {"schema": _SIDECAR_SCHEMA, "size": size,
               "digest": digest, "sampling": sampling}
        if not all(data.get(k) == v for k, v in key.items()):
            return None
        return {"checkpoints": len(data["checkpoints"]),
                "interval": data.get("interval")}
    except (OSError, ValueError, KeyError, TraceError):
        return None


def load_or_build_checkpoints(path: str | os.PathLike,
                              interval: int = DEFAULT_CHECKPOINT_INTERVAL,
                              sidecar: bool = True) -> list[Checkpoint]:
    """Scan-built checkpoints with a ``.ckpt`` sidecar cache.

    The cache is keyed on the trace's size and header digest (plus the
    interval), so a re-recorded file never resurrects stale seams.
    Sidecar I/O failures degrade to scanning — never to an error.
    """
    path = os.fspath(path)
    size = os.path.getsize(path)
    with TraceReader(path) as reader:
        digest = reader.header.digest
        sampling = reader.header.sampling
    key = {"schema": _SIDECAR_SCHEMA, "size": size, "digest": digest,
           "sampling": sampling, "interval": interval}
    side = _sidecar_path(path)
    if sidecar and os.path.exists(side):
        try:
            with open(side) as handle:
                data = json.load(handle)
            if all(data.get(k) == v for k, v in key.items()):
                return [Checkpoint.from_payload(p)
                        for p in data["checkpoints"]]
        except (OSError, ValueError, KeyError, TraceError):
            pass
    checkpoints = build_checkpoints(path, interval)
    if sidecar:
        _write_sidecar(side, dict(key, checkpoints=[c.to_payload()
                                                    for c in checkpoints]))
    return checkpoints


def _write_sidecar(side: str, payload: dict) -> None:
    """Atomically publish the sidecar (see
    :func:`repro.util.atomic_write_json`) so a crash mid-dump or a
    concurrent parallel replay never observes a torn file — readers see
    either the old complete sidecar or the new one (a torn sidecar
    would silently force a rescan on every later replay). I/O failures
    degrade to not caching, never to an error."""
    from repro.util import atomic_write_json

    try:
        atomic_write_json(side, payload, indent=None)
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------

@dataclass
class Segment:
    """One independently replayable slice: start from ``checkpoint``,
    consume events up to ``end_index`` (exclusive; None = to FINISH)."""

    ordinal: int
    checkpoint: Checkpoint
    end_index: int | None

    def event_budget(self) -> int | None:
        if self.end_index is None:
            return None
        return self.end_index - self.checkpoint.index


@dataclass
class ShardPlan:
    """How one trace splits across workers."""

    path: str
    version: int
    segments: list[Segment]
    #: Where the seams came from: "embedded" (written by the recorder),
    #: "scan" (built after the fact), or "serial" (no seams usable).
    source: str
    total_events: int = 0

    @property
    def is_parallel(self) -> bool:
        return len(self.segments) > 1


def plan_shards(path: str | os.PathLike, jobs: int,
                interval: int = DEFAULT_CHECKPOINT_INTERVAL,
                allow_scan: bool = True,
                oversubscribe: int = 2) -> ShardPlan:
    """Choose the seams for a ``jobs``-worker replay of ``path``.

    Prefers checkpoints embedded at record time; otherwise scans (and
    sidecar-caches) unless ``allow_scan`` is off. With more seams than
    needed, every ``stride``-th one is kept, targeting about
    ``jobs * oversubscribe`` segments so the pool stays busy when
    segments finish unevenly; fewer seams than workers degrades
    gracefully to fewer (possibly one) segments.
    """
    path = os.fspath(path)
    with TraceReader(path) as reader:
        version = reader.version
        events_start = reader.events_start
        payloads = reader.checkpoints()
        total = reader.read_footer().events
    source = "embedded"
    checkpoints = [Checkpoint.from_payload(p) for p in payloads]
    if not checkpoints and allow_scan and jobs > 1:
        checkpoints = load_or_build_checkpoints(path, interval)
        source = "scan"
    if not checkpoints or jobs <= 1:
        return ShardPlan(
            path=path, version=version, source=(source if checkpoints
                                                else "serial"),
            total_events=total,
            segments=[Segment(0, genesis_checkpoint(events_start), None)])
    target = max(2, jobs * max(1, oversubscribe))
    stride = max(1, (len(checkpoints) + 1) // target)
    chosen = checkpoints[stride - 1::stride]
    starts = [genesis_checkpoint(events_start)] + chosen
    segments = []
    for ordinal, start in enumerate(starts):
        end = (starts[ordinal + 1].index
               if ordinal + 1 < len(starts) else None)
        segments.append(Segment(ordinal, start, end))
    return ShardPlan(path=path, version=version, segments=segments,
                     source=source, total_events=total)
