"""Small shared utilities that would otherwise be re-invented per module.

Currently: atomic artifact publication. Several subsystems publish
JSON artifacts that other processes read concurrently — the ``.ckpt``
checkpoint sidecars (:mod:`repro.trace.shards`), ``--metrics`` span
dumps (:mod:`repro.telemetry`), and the ``BENCH_*.json`` benchmark
artifacts. All of them share one failure mode: a crash (or a parallel
writer) mid-``json.dump`` leaves a torn file that readers then either
reject or, worse, half-parse. The fix is the same everywhere, so it
lives here once: write a temp file *in the destination directory*
(``os.replace`` is only atomic within one filesystem) and rename it
into place.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any


def atomic_write_text(path: str | os.PathLike, text: str) -> None:
    """Publish ``text`` at ``path`` atomically.

    Readers observe either the previous complete file or the new one,
    never a prefix. Raises ``OSError`` on failure (callers that prefer
    to degrade — e.g. best-effort caches — catch it themselves); the
    temp file is cleaned up on every failure path.
    """
    path = os.fspath(path)
    fd = None
    tmp = None
    try:
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path) or ".",
            prefix=os.path.basename(path) + ".", suffix=".tmp")
        with os.fdopen(fd, "w") as handle:
            fd = None  # os.fdopen owns the descriptor now
            handle.write(text)
        os.replace(tmp, path)
        tmp = None
    finally:
        if fd is not None:
            os.close(fd)
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass


def atomic_write_json(path: str | os.PathLike, payload: Any, *,
                      indent: int | None = 2,
                      sort_keys: bool = False) -> None:
    """Serialize ``payload`` and publish it atomically at ``path``.

    The serialization happens *before* the destination is touched, so a
    non-JSON-able payload can never truncate an existing artifact.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    if indent is not None:
        text += "\n"
    atomic_write_text(path, text)
