"""Alchemist: a transparent dependence distance profiling infrastructure.

Reproduction of Zhang, Navabi & Jagannathan (CGO 2009). The package
profiles MiniC programs (a C subset executed by an instruction-level
interpreter) and reports, for every program construct (procedure, loop,
conditional), the minimum time-ordered distance of every RAW/WAR/WAW
dependence edge that crosses from the construct into its continuation.

Typical use::

    from repro import Alchemist

    report = Alchemist().profile(source_code)
    for construct in report.top_constructs(10):
        print(construct.describe())

Subpackages
-----------
``repro.lang``
    MiniC lexer, parser and AST.
``repro.ir``
    Register IR, basic blocks, AST lowering.
``repro.analysis``
    Dominance, natural loops and the static construct table.
``repro.runtime``
    Addressable memory model and the tracing interpreter.
``repro.core``
    The Alchemist profiler: execution indexing, construct pool,
    shadow-memory dependence detection, profiles, reports and the
    parallelization advisor.
``repro.parallel``
    Future-execution simulator used to estimate parallel speedups.
``repro.workloads``
    MiniC ports of the paper's eight evaluation benchmarks.
``repro.bench``
    Harness that regenerates every table and figure of the paper.
``repro.trace``
    Record/replay: capture one execution as a compact trace, then
    replay it through many analyses without re-running the interpreter.
``repro.analyses``
    The unified plugin registry: every analysis (dependence profile,
    reuse distance, hot addresses, event counts, flat/context
    baselines, user plugins) as a drop-in module over one event stream.
``repro.api``
    :class:`Session`, the single entry point that runs any registered
    analysis live, from a cached recording, or in batch.

Typical use of the unified API::

    from repro import Session

    with Session() as session:
        report = session.analyze(source_code, ["dep", "locality"])
        print(report.to_text())
"""

from repro.version import __version__

__all__ = [
    "Alchemist",
    "ProfileOptions",
    "ProfileReport",
    "Advisor",
    "Session",
    "analyze",
    "Analysis",
    "AnalysisResult",
    "register_analysis",
    "record_index_tree",
    "record_source",
    "replay_trace",
    "__version__",
]

# Lazy imports (PEP 562) keep `import repro` cheap and let subpackages be
# imported directly without pulling in the whole profiler.
_LAZY = {
    "Alchemist": ("repro.core.alchemist", "Alchemist"),
    "ProfileOptions": ("repro.core.alchemist", "ProfileOptions"),
    "ProfileReport": ("repro.core.report", "ProfileReport"),
    "Advisor": ("repro.core.advisor", "Advisor"),
    "Session": ("repro.api", "Session"),
    "analyze": ("repro.api", "analyze"),
    "Analysis": ("repro.analyses", "Analysis"),
    "AnalysisResult": ("repro.analyses", "AnalysisResult"),
    "register_analysis": ("repro.analyses", "register"),
    "record_index_tree": ("repro.core.treedump", "record_index_tree"),
    "record_source": ("repro.trace.writer", "record_source"),
    "replay_trace": ("repro.trace.replay", "replay_trace"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attr)
