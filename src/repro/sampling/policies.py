"""Sampling controllers: which memory events survive recording.

Every policy implements the same tiny protocol — :meth:`reset` once
per run, then :meth:`keep` per READ/WRITE event — and self-describes
with a canonical ``spec`` string that round-trips through
:func:`parse_sample_spec`, rides in ``ProfileOptions.sample`` and the
``--sample`` CLI flag, and is embedded in the trace header so replay
consumers know what they are looking at.

Policies are deterministic: the same program sampled twice yields the
same trace (the reservoir policy draws from a seeded PRNG whose seed is
part of its spec). ``expected_rate`` is the fraction of memory events
the policy keeps in expectation — the scaling factor the accuracy
module uses to correct sampled counts — and is ``None`` for the
reservoir policy, whose rate depends on the address mix rather than a
fixed schedule.
"""

from __future__ import annotations

import random


class SamplingPolicy:
    """Base policy: keep everything (full fidelity).

    Subclasses override :meth:`keep` (and :meth:`reset` if they carry
    run state) and set :attr:`spec` to their canonical spec string.
    """

    #: Canonical spec string; ``parse_sample_spec(p.spec)`` rebuilds
    #: an equivalent policy.
    spec = "full"

    def reset(self) -> None:
        """Forget run state; called once before each recording."""

    def keep(self, addr: int, is_write: bool) -> bool:
        """Should this memory event reach the wrapped tracer?"""
        return True

    def expected_rate(self) -> float | None:
        """Expected fraction of memory events kept (None: data-driven)."""
        return 1.0

    @property
    def is_full(self) -> bool:
        return self.spec == "full"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec!r})"


class FullSampling(SamplingPolicy):
    """The identity policy; recording under it equals no sampling."""


class IntervalSampling(SamplingPolicy):
    """Keep every Nth memory event (reads and writes share the clock).

    The classic systematic sampler: cheap (one counter), uniform in
    *time*, and with expected rate exactly ``1/n``. Periodic access
    patterns whose period divides ``n`` can alias; the burst policy
    trades a little locality bias for robustness against that.
    """

    def __init__(self, every: int):
        if every < 1:
            raise ValueError(
                f"interval sampling needs every >= 1, got {every}")
        self.every = every
        self.spec = f"interval:{every}"
        self._count = 0

    def reset(self) -> None:
        self._count = 0

    def keep(self, addr: int, is_write: bool) -> bool:
        count = self._count
        self._count = count + 1
        return count % self.every == 0

    def expected_rate(self) -> float | None:
        return 1.0 / self.every


class BurstSampling(SamplingPolicy):
    """Keep the first K events of every N-event window (PROMPT-style
    periodic bursts).

    Bursts preserve *local* structure — short reuse distances and
    tight dependence chains inside a burst are observed exactly — at
    the same expected rate ``K/N`` as an interval sampler with the
    matching ratio.
    """

    def __init__(self, keep_events: int, period: int):
        if keep_events < 1:
            raise ValueError(
                f"burst sampling needs keep >= 1, got {keep_events}")
        if period < keep_events:
            raise ValueError(
                f"burst sampling needs period >= keep, got "
                f"{keep_events}/{period}")
        self.keep_events = keep_events
        self.period = period
        self.spec = f"burst:{keep_events}/{period}"
        self._count = 0

    def reset(self) -> None:
        self._count = 0

    def keep(self, addr: int, is_write: bool) -> bool:
        count = self._count
        self._count = count + 1
        return count % self.period < self.keep_events

    def expected_rate(self) -> float | None:
        return self.keep_events / self.period


class ReservoirSampling(SamplingPolicy):
    """Keep every event to a uniform reservoir of at most K addresses.

    Algorithm R over the stream of *distinct* addresses: each address
    draws exactly once, on first encounter. The first K distinct
    addresses fill the reservoir; the nth distinct address thereafter
    displaces a uniformly random resident with probability K/n. Events
    to resident addresses are kept, all others dropped; a displaced
    address never re-enters. Addresses that survive to the end of the
    run were admitted at their *first* event, so their counts are
    exact — displaced addresses retain the partial counts they
    accumulated while resident (the accuracy module words its flags
    accordingly). This suits contention analyses (``hot``), where
    interval sampling merely scales everything down.

    Deterministic for a given seed; the seed is part of the spec.
    Keeps one set entry per distinct address seen (bounded by the
    interpreter's address space, like the analyses themselves).
    """

    def __init__(self, size: int, seed: int = 0):
        if size < 1:
            raise ValueError(
                f"reservoir sampling needs size >= 1, got {size}")
        self.size = size
        self.seed = seed
        self.spec = (f"reservoir:{size}" if seed == 0
                     else f"reservoir:{size}@{seed}")
        self.reset()

    def reset(self) -> None:
        self._rng = random.Random(self.seed)
        self._members: set[int] = set()
        self._seen: set[int] = set()
        self._slots: list[int] = []
        self._distinct = 0

    def keep(self, addr: int, is_write: bool) -> bool:
        if addr in self._members:
            return True
        seen = self._seen
        if addr in seen:  # already drew (and lost, or was displaced)
            return False
        seen.add(addr)
        self._distinct += 1
        slots = self._slots
        members = self._members
        if len(slots) < self.size:
            members.add(addr)
            slots.append(addr)
            return True
        j = self._rng.randrange(self._distinct)
        if j < self.size:
            members.discard(slots[j])
            slots[j] = addr
            members.add(addr)
            return True
        return False

    def expected_rate(self) -> float | None:
        return None  # depends on the address mix, not a schedule


def parse_sample_spec(spec: str | None) -> SamplingPolicy:
    """Build a policy from a spec string.

    Accepted forms (all validated; errors are ``ValueError`` with the
    full menu, so the CLI surfaces them as one-line diagnostics)::

        full                  keep everything (also: None, "")
        interval:N            every Nth memory event
        burst:K/N             first K events of every N-event window
        reservoir:K           all events to K uniformly-chosen addresses
        reservoir:K@SEED      same, explicit PRNG seed
    """
    if spec is None:
        return FullSampling()
    text = spec.strip().lower()
    if text in ("", "full", "none", "off"):
        return FullSampling()
    kind, sep, arg = text.partition(":")
    try:
        if kind == "interval" and sep:
            return IntervalSampling(int(arg))
        if kind == "burst" and sep:
            keep_text, slash, period_text = arg.partition("/")
            if not slash:
                raise ValueError(arg)
            return BurstSampling(int(keep_text), int(period_text))
        if kind == "reservoir" and sep:
            size_text, at, seed_text = arg.partition("@")
            return ReservoirSampling(int(size_text),
                                     int(seed_text) if at else 0)
    except ValueError as exc:
        # Distinguish our own range errors (keep their message) from
        # int() parse failures (explain the grammar).
        message = str(exc)
        if "sampling needs" in message:
            raise
        raise ValueError(
            f"bad sampling spec {spec!r}: expected full, interval:N, "
            f"burst:K/N, or reservoir:K[@SEED]") from None
    raise ValueError(
        f"unknown sampling policy {spec!r}: expected full, interval:N, "
        f"burst:K/N, or reservoir:K[@SEED]")


def as_policy(sampling) -> SamplingPolicy:
    """Coerce a spec string / policy / None into a policy instance."""
    if isinstance(sampling, SamplingPolicy):
        return sampling
    return parse_sample_spec(sampling)
