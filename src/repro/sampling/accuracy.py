"""Accuracy bounds: what did sampling cost each analysis?

:func:`compare_traces` replays a *full* trace and a *sampled* trace of
the same program through fresh analysis instances and quantifies the
gap, applying the policy's expected rate as a correction first:

``hot``
    Sampled per-address counts are scaled by ``1/rate`` and compared
    against the true counts over the full run's hottest addresses
    (``count_error``, a weighted relative L1), plus the top-set overlap
    (``top_overlap``). The reservoir policy counts covered addresses
    unscaled (complete for never-displaced residents, partial for
    displaced ones), so it is scored on the covered intersection.
``locality``
    Reuse distances in an interval/burst-sampled stream shrink by
    roughly the sampling rate, so the corrected estimate of the true
    LRU hit rate at capacity C is the sampled hit fraction at C*rate.
    ``hit_rate_error`` is the worst absolute gap across the standard
    capacities.
``dep``
    Sampling distorts dependence profiles in *both* directions:
    dropped events hide edges (violation counts under-approximated),
    and a dropped WRITE re-pairs later reads with a stale writer,
    inventing edges or shifting distances. We report both sides —
    ``missed_edges`` / ``missed_fraction``, ``spurious_edges``, and
    min-distance over/under-estimate counts — and always flag the
    under-approximation. Sampled dependence results are hints, never
    proof.

The report is JSON-able (it feeds ``BENCH_sampling.json``) and renders
as text for the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.sampling.policies import as_policy

#: Capacities (words) the locality comparison probes, matching the
#: LocalityAnalysis report rows.
LOCALITY_CAPACITIES = (64, 1024, 16384)

#: Hottest-address rows the hot comparison scores.
HOT_TOP = 20


@dataclass
class AnalysisAccuracy:
    """Error metrics for one analysis, sampled vs. full."""

    analysis: str
    #: Metric name -> value; ``None`` marks a metric the sample could
    #: not measure (reported as undefined rather than as 0).
    metrics: dict[str, float | None] = field(default_factory=dict)
    flags: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {"analysis": self.analysis,
                "metrics": dict(self.metrics),
                "flags": list(self.flags)}


@dataclass
class AccuracyReport:
    """Per-analysis error bounds of one sampled trace."""

    full_path: str
    sampled_path: str
    sampling: str
    #: Expected fraction of memory events kept (None: data-driven
    #: policy, no global correction factor exists).
    rate: float | None
    rows: dict[str, AnalysisAccuracy]
    #: Wall time of the one-pass replay over each trace (same analysis
    #: set) — the sampled stream's analysis-time win.
    full_replay_seconds: float = 0.0
    sampled_replay_seconds: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "full_trace": self.full_path,
            "sampled_trace": self.sampled_path,
            "sampling": self.sampling,
            "rate": self.rate,
            "full_replay_seconds": self.full_replay_seconds,
            "sampled_replay_seconds": self.sampled_replay_seconds,
            "analyses": {name: row.to_dict()
                         for name, row in self.rows.items()},
        }

    def to_text(self) -> str:
        lines = [f"Sampling accuracy ({self.sampling}, expected rate "
                 f"{self.rate if self.rate is not None else 'data-driven'}):"]
        for name, row in self.rows.items():
            metrics = ", ".join(
                f"{k}={'n/a' if v is None else format(v, '.4g')}"
                for k, v in sorted(row.metrics.items()))
            lines.append(f"  {name:10s} {metrics}")
            for flag in row.flags:
                lines.append(f"  {'':10s} ! {flag}")
        return "\n".join(lines)


def _hot_accuracy(full, sampled, rate: float | None) -> AnalysisAccuracy:
    row = AnalysisAccuracy("hot")
    full_totals = full.address_totals()
    sampled_totals = sampled.address_totals()
    ranked = sorted(full_totals, key=lambda a: (-full_totals[a], a))
    top = ranked[:HOT_TOP]
    if rate is None:
        # Reservoir: counts are exact per covered address; score the
        # covered intersection unscaled and report coverage.
        scale = 1.0
        covered = [a for a in top if a in sampled_totals]
        row.metrics["top_coverage"] = (len(covered) / len(top)
                                       if top else 1.0)
        row.flags.append(
            "address-reservoir sampling: counts are complete for "
            "addresses resident at run end, partial for displaced "
            "ones, and uncovered addresses are invisible")
        scored = covered
    else:
        scale = 1.0 / rate
        scored = top
    true_mass = sum(full_totals[a] for a in scored)
    if true_mass:
        err_mass = sum(abs(sampled_totals.get(a, 0) * scale
                           - full_totals[a]) for a in scored)
        row.metrics["count_error"] = err_mass / true_mass
    elif not top:
        row.metrics["count_error"] = 0.0  # no memory events at all
    else:
        # Nothing measurable (e.g. a reservoir that covers none of the
        # hot set): report the metric as undefined, not as perfect.
        row.metrics["count_error"] = None
        row.flags.append(
            "no hot address was covered by the sample; count_error is "
            "undefined")
    sampled_ranked = sorted(sampled_totals,
                            key=lambda a: (-sampled_totals[a], a))[:HOT_TOP]
    overlap = len(set(top) & set(sampled_ranked))
    row.metrics["top_overlap"] = overlap / len(top) if top else 1.0
    return row


def _locality_accuracy(full, sampled, policy) -> AnalysisAccuracy:
    from repro.sampling.policies import IntervalSampling

    row = AnalysisAccuracy("locality")
    # replay_with already ran finish(), so the stats are complete.
    full_stats = full.stats
    sampled_stats = sampled.stats
    rate = policy.expected_rate()
    scale_capacity = isinstance(policy, IntervalSampling)
    worst = 0.0
    for capacity in LOCALITY_CAPACITIES:
        truth = full_stats.hit_fraction(capacity)
        if scale_capacity and rate is not None:
            # Interval sampling thins the stream uniformly, so reuse
            # distances shrink ~linearly with the rate: a distance-d
            # reuse keeps ~d*rate intervening accesses.
            estimate = sampled_stats.hit_fraction(
                max(1, int(capacity * rate)))
        else:
            # Burst sampling observes distances *inside* a burst
            # exactly (a burst is a contiguous full-fidelity window),
            # so short-distance structure needs no correction — the
            # PROMPT argument for bursts over intervals. Reservoir
            # distances are likewise reported uncorrected.
            estimate = sampled_stats.hit_fraction(capacity)
        error = abs(truth - estimate)
        row.metrics[f"hit_rate_error_{capacity}"] = error
        worst = max(worst, error)
    row.metrics["hit_rate_error"] = worst
    if rate is None:
        row.flags.append(
            "address-reservoir sampling skews reuse distances "
            "(uncovered addresses vanish from the stack); hit rates "
            "are uncorrected")
    return row


def _dep_edges(data: dict[str, Any]) -> dict[tuple[str, str], int]:
    edges = {}
    for pc, construct in data["constructs"].items():
        for key, (min_tdep, _count, _hint) in construct["edges"].items():
            edges[(pc, key)] = min_tdep
    return edges


def _dep_accuracy(full_data: dict[str, Any],
                  sampled_data: dict[str, Any]) -> AnalysisAccuracy:
    row = AnalysisAccuracy("dep")
    full_edges = _dep_edges(full_data)
    sampled_edges = _dep_edges(sampled_data)
    missed = [key for key in full_edges if key not in sampled_edges]
    spurious = [key for key in sampled_edges if key not in full_edges]
    over = under = 0
    for key, min_tdep in sampled_edges.items():
        truth = full_edges.get(key)
        if truth is None:
            continue
        if min_tdep > truth:
            over += 1
        elif min_tdep < truth:
            under += 1
    row.metrics["edges_full"] = float(len(full_edges))
    row.metrics["edges_sampled"] = float(len(sampled_edges))
    row.metrics["missed_edges"] = float(len(missed))
    row.metrics["missed_fraction"] = (len(missed) / len(full_edges)
                                      if full_edges else 0.0)
    row.metrics["spurious_edges"] = float(len(spurious))
    row.metrics["min_distance_overestimates"] = float(over)
    row.metrics["min_distance_underestimates"] = float(under)
    row.flags.append(
        "min-distance under-approximation: dropped events hide "
        "dependences, so violation counts are under-approximated and "
        "most min distances over-estimated — and a dropped WRITE can "
        "also re-pair later reads with a stale writer, inventing "
        "spurious edges or shifting distances. Sampled dependence "
        "profiles are lower-confidence hints, not proof of "
        "parallelizability")
    return row


def compare_traces(full_path: str, sampled_path: str,
                   analyses: Iterable[str] = ("hot", "locality", "dep"),
                   ) -> AccuracyReport:
    """Replay both traces and report per-analysis error bounds.

    ``full_path`` must be a full-fidelity recording of the same program
    ``sampled_path`` sampled (same source digest; checked).
    """
    # Imported here: repro.trace imports this package's policies via
    # the writer, so a module-level import would be circular.
    from repro.trace.events import TraceError
    from repro.trace.reader import TraceReader
    from repro.trace.replay import make_consumers, replay_with

    with TraceReader(full_path) as full_reader, \
            TraceReader(sampled_path) as sampled_reader:
        if full_reader.header.digest != sampled_reader.header.digest:
            raise TraceError(
                f"{sampled_path} samples digest "
                f"{sampled_reader.header.digest[:12]}..., but "
                f"{full_path} records "
                f"{full_reader.header.digest[:12]}... — not the same "
                "program")
        full_spec = getattr(full_reader.header, "sampling", "full")
        if full_spec not in (None, "", "full"):
            raise TraceError(
                f"{full_path}: the reference trace is itself sampled "
                f"({full_spec}); accuracy needs a full recording")
        spec = getattr(sampled_reader.header, "sampling", "full")

    policy = as_policy(spec)
    rate = policy.expected_rate()
    names = list(analyses)
    full_instances = make_consumers(names)
    sampled_instances = make_consumers(names)
    full_outcome = replay_with(full_path, full_instances)
    sampled_outcome = replay_with(sampled_path, sampled_instances)

    rows: dict[str, AnalysisAccuracy] = {}
    for name, full_inst, sampled_inst in zip(names, full_instances,
                                             sampled_instances):
        if name == "hot":
            rows[name] = _hot_accuracy(full_inst, sampled_inst, rate)
        elif name == "locality":
            rows[name] = _locality_accuracy(full_inst, sampled_inst,
                                            policy)
        elif name == "dep":
            rows[name] = _dep_accuracy(
                full_outcome.reports["dep"].data,
                sampled_outcome.reports["dep"].data)
        else:
            # Generic fallback: structural comparison of the JSON data.
            row = AnalysisAccuracy(name)
            row.metrics["exact_match"] = float(
                full_outcome.reports[name].data
                == sampled_outcome.reports[name].data)
            rows[name] = row
    return AccuracyReport(
        full_path=full_path,
        sampled_path=sampled_path,
        sampling=spec,
        rate=rate,
        rows=rows,
        full_replay_seconds=full_outcome.context.wall_seconds,
        sampled_replay_seconds=sampled_outcome.context.wall_seconds,
    )
