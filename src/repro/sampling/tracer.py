"""The sampling gate: a tracer wrapper that thins memory events.

:class:`SampledTracer` sits between an event source (the interpreter,
or :class:`~repro.runtime.tracing.TeeTracer`) and any child tracer —
most usefully a :class:`~repro.trace.writer.TraceWriter`, which is how
``alchemist record --sample interval:100`` produces small traces, but
a live analysis can be wrapped just the same for sampled in-process
profiling.

Only READ/WRITE events are gated (``MEMORY_HOOKS``); structural events
forward unconditionally so a sampled trace still reconstructs frames
and the heap exactly on replay. Like the other dispatchers in this
codebase, the wrapper rebinds its hooks in ``on_start``: structural
hooks become direct references to the child's bound methods (zero
per-event overhead), and the two memory hooks become closures that ask
the policy first. Hooks the child never overrides stay as base-class
no-ops, so both engines drop them from dispatch entirely.
"""

from __future__ import annotations

from repro.ir.cfg import ProgramIR
from repro.runtime.memory import Memory
from repro.runtime.tracing import (MEMORY_HOOKS, TRACER_HOOKS, Tracer,
                                   overridden_hooks)
from repro.sampling.policies import SamplingPolicy


class SampledTracer(Tracer):
    """Forward events to ``child``, dropping memory events the
    ``policy`` rejects.

    With an *enabled* ``telemetry`` handle the gate also tallies
    kept/dropped memory events (``self.kept`` / ``self.dropped``);
    without one the original zero-bookkeeping closures are installed,
    so the default path pays nothing for observability.
    """

    def __init__(self, policy: SamplingPolicy, child: Tracer,
                 telemetry=None):
        self.policy = policy
        self.child = child
        self._counted = bool(telemetry is not None
                             and getattr(telemetry, "enabled", False))
        self.kept = 0
        self.dropped = 0

    def on_start(self, program: ProgramIR, memory: Memory) -> None:
        child = self.child
        child.on_start(program, memory)
        self.policy.reset()
        self.kept = 0
        self.dropped = 0
        # Bind after the child's on_start: children (e.g. analyses)
        # may rebind their own hooks there.
        for name in TRACER_HOOKS:
            if name in MEMORY_HOOKS:
                continue
            hooks = overridden_hooks([child], name)
            if hooks:
                setattr(self, name, hooks[0])
        keep = self.policy.keep
        counted = self._counted
        if overridden_hooks([child], "on_read"):
            child_read = child.on_read

            if counted:
                def on_read(addr: int, pc: int, timestamp: int) -> None:
                    if keep(addr, False):
                        self.kept += 1
                        child_read(addr, pc, timestamp)
                    else:
                        self.dropped += 1
            else:
                def on_read(addr: int, pc: int, timestamp: int) -> None:
                    if keep(addr, False):
                        child_read(addr, pc, timestamp)

            self.on_read = on_read
        if overridden_hooks([child], "on_write"):
            child_write = child.on_write

            if counted:
                def on_write(addr: int, pc: int, timestamp: int) -> None:
                    if keep(addr, True):
                        self.kept += 1
                        child_write(addr, pc, timestamp)
                    else:
                        self.dropped += 1
            else:
                def on_write(addr: int, pc: int, timestamp: int) -> None:
                    if keep(addr, True):
                        child_write(addr, pc, timestamp)

            self.on_write = on_write

    # -- recorder lifecycle pass-through ----------------------------------
    # A gated TraceWriter is still "the recorder" to Session._run_live;
    # forward its close/abort so callers need not unwrap. (Wrapping a
    # tracer without these methods is fine as long as nobody calls
    # them.)

    def close(self, exit_value: int = 0, output=None) -> None:
        self.child.close(exit_value, output)

    def abort(self) -> None:
        self.child.abort()
