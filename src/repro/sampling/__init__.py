"""Low-overhead profiling: sampling policies for the event stream.

Full-fidelity tracing pays for every memory access twice — once to
emit it, once per analysis that replays it. This package recovers most
of the analysis accuracy at a fraction of that cost by *gating* which
READ/WRITE events a tracer sees, behind a small pluggable protocol:

``repro.sampling.policies``
    :class:`SamplingPolicy` and the bundled controllers —
    ``interval:N`` (every Nth memory event), ``burst:K/N`` (the first
    K events of every N-event window), ``reservoir:K[@seed]`` (all
    events to a uniform reservoir of K addresses) — plus
    :func:`parse_sample_spec` for the CLI/ProfileOptions spec strings.
``repro.sampling.tracer``
    :class:`SampledTracer`, the gate itself: wraps any
    :class:`~repro.runtime.tracing.Tracer` and forwards structural
    events untouched while asking the policy about each memory event.
``repro.sampling.accuracy``
    Replays a sampled trace against its full-fidelity twin and reports
    per-analysis error bounds (imported lazily — pull it in as
    ``from repro.sampling.accuracy import compare_traces``).

Sampled dependence distances deserve a warning that the rest of this
package keeps repeating: dropped events hide dependences (violation
counts are under-approximated), and a dropped WRITE re-pairs later
reads with a stale writer, inventing spurious edges or shifting min
distances. Sampled dependence profiles are lower-confidence hints,
never proof a construct is parallelizable.
"""

from repro.sampling.policies import (BurstSampling, FullSampling,
                                     IntervalSampling, ReservoirSampling,
                                     SamplingPolicy, as_policy,
                                     parse_sample_spec)
from repro.sampling.tracer import SampledTracer

__all__ = [
    "SamplingPolicy",
    "FullSampling",
    "IntervalSampling",
    "BurstSampling",
    "ReservoirSampling",
    "parse_sample_spec",
    "as_policy",
    "SampledTracer",
]
