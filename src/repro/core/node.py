"""Construct instance nodes of the execution index tree.

A node is one dynamic instance of a static construct (one call, one loop
iteration, one execution of a conditional). Nodes form the index tree
through their ``parent`` pointers; completed nodes stay reachable until
the pool recycles them (lazy retirement), exactly as in the paper's
Table I.
"""

from __future__ import annotations

from repro.analysis.constructs import StaticConstruct


class ConstructNode:
    """One construct instance; pooled and recycled.

    ``prev``/``next`` are intrusive links used by the construct pool's
    free list; they are meaningless while the node is on the indexing
    stack.
    """

    __slots__ = ("static", "t_enter", "t_exit", "parent", "prev", "next")

    def __init__(self) -> None:
        self.static: StaticConstruct | None = None
        self.t_enter = 0
        self.t_exit = 0
        self.parent: ConstructNode | None = None
        self.prev: ConstructNode | None = None
        self.next: ConstructNode | None = None

    @property
    def label(self) -> int:
        """The construct's head pc (the paper's ``c.label``)."""
        return self.static.pc if self.static is not None else -1

    @property
    def duration(self) -> int:
        """Instance duration; only meaningful once completed."""
        return self.t_exit - self.t_enter

    def is_active(self) -> bool:
        """True while the instance has not completed (Texit is reset to 0
        on entry, per the paper's footnote to Table II)."""
        return self.t_exit == 0

    def covers(self, timestamp: int) -> bool:
        """The validity test of Table II line 7: ``Tenter <= t <= Texit``.

        The upper bound is inclusive because an access can occur at the
        very timestamp its construct completes (a return-value write and
        the following procedure pops share the timestamp of the ``ret``).
        Soundness against recycling is preserved: a recycled node has
        ``t_enter`` greater than any timestamp observed before its reuse.
        """
        return self.t_enter <= timestamp <= self.t_exit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self.static.name if self.static else "?"
        return (f"ConstructNode({name}, enter={self.t_enter}, "
                f"exit={self.t_exit})")
