"""Per-construct profiles: durations, instance counts, min-Tdep edges.

``PROFILE`` in the paper is an array indexed by the construct's head pc;
here it is :class:`ProfileStore`, a dict keyed the same way. Each profile
accumulates

* ``total_duration`` / ``instances`` — the paper's ``Ttotal`` and
  ``inst`` (aggregated with a nesting counter so recursion is not double
  counted, §III-B "Recursion");
* ``max_duration`` — largest single instance, used as the construct's
  ``Tdur`` in the violation test ``Tdep > Tdur`` (a profile aggregates
  many instances; using the maximum is the conservative choice);
* ``edges`` — per static dependence edge ``(head pc, tail pc, kind)``,
  the minimum observed ``Tdep`` and a hit count. The paper keeps the
  minimum because it bounds the exploitable concurrency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.constructs import StaticConstruct
from repro.core.node import ConstructNode


class DepKind(enum.Enum):
    """Dependence flavours (paper §I): read-after-write, write-after-read,
    write-after-write."""

    RAW = "RAW"
    WAR = "WAR"
    WAW = "WAW"


@dataclass
class EdgeStats:
    """Aggregate for one static dependence edge within one construct."""

    head_pc: int
    tail_pc: int
    kind: DepKind
    min_tdep: int
    count: int = 1
    #: Symbolic name of the first conflicting address observed (reports).
    var_hint: str = ""
    #: Tail timestamp of the first observation. Never serialized; the
    #: parallel-replay merge uses it to keep ``var_hint`` at the
    #: serially-first observation when partial profiles fold (tail
    #: timestamps are unique per edge, so "smallest first_t" is exactly
    #: "observed first").
    first_t: int = 0

    def observe(self, tdep: int) -> None:
        self.count += 1
        if tdep < self.min_tdep:
            self.min_tdep = tdep


@dataclass
class ConstructProfile:
    """Everything profiled about one static construct."""

    static: StaticConstruct
    total_duration: int = 0
    instances: int = 0
    max_duration: int = 0
    edges: dict[tuple[int, int, DepKind], EdgeStats] = field(
        default_factory=dict)

    @property
    def pc(self) -> int:
        return self.static.pc

    @property
    def tdur(self) -> int:
        """The construct's duration for the violation test (max instance)."""
        return self.max_duration

    @property
    def mean_duration(self) -> float:
        return self.total_duration / self.instances if self.instances else 0.0

    # -- queries -------------------------------------------------------------

    def edges_of(self, kind: DepKind) -> list[EdgeStats]:
        return [e for e in self.edges.values() if e.kind is kind]

    def violating_edges(self, kind: DepKind,
                        tdur: int | None = None,
                        include_induction: bool = False
                        ) -> list[EdgeStats]:
        """Static edges failing the paper's condition ``Tdep > Tdur``.

        Edges on the loop's own control variables are excluded by
        default: a compiled binary keeps loop counters in registers, so
        the paper's valgrind-based profiler never observes them (and
        iteration-distributing transformations rewrite them anyway).
        """
        bound = self.tdur if tdur is None else tdur
        induction = self.static.induction_vars
        edges = []
        for e in self.edges_of(kind):
            if e.min_tdep > bound:
                continue
            if (not include_induction and induction
                    and e.var_hint.split("[")[0] in induction):
                continue
            edges.append(e)
        return edges

    def violating_count(self, kind: DepKind) -> int:
        return len(self.violating_edges(kind))


class ProfileStore:
    """All construct profiles of a run, plus recursion nesting counters."""

    def __init__(self) -> None:
        self.profiles: dict[int, ConstructProfile] = {}
        self._nesting: dict[int, int] = {}
        #: Dynamic construct instances (the paper's Table III 'Dynamic').
        self.dynamic_instances = 0

    def get_or_create(self, static: StaticConstruct) -> ConstructProfile:
        profile = self.profiles.get(static.pc)
        if profile is None:
            profile = ConstructProfile(static)
            self.profiles[static.pc] = profile
        return profile

    # -- called by the indexing stack ------------------------------------------

    def on_construct_enter(self, static: StaticConstruct) -> None:
        self.dynamic_instances += 1
        self._nesting[static.pc] = self._nesting.get(static.pc, 0) + 1

    def on_construct_complete(self, node: ConstructNode) -> None:
        """Table I lines 19-21, guarded by the recursion nesting counter:
        only the outermost same-pc instance aggregates its duration."""
        static = node.static
        depth = self._nesting[static.pc] - 1
        self._nesting[static.pc] = depth
        if depth > 0:
            return
        profile = self.get_or_create(static)
        duration = node.t_exit - node.t_enter
        profile.total_duration += duration
        profile.instances += 1
        if duration > profile.max_duration:
            profile.max_duration = duration
