"""The execution-indexing stack (paper §III-A, Fig. 5).

The stack state is the index of the current execution point; nodes are
pushed at procedure entries and predicates and popped at construct ends.
This implementation generalizes the paper's five rules so that compiled
control flow — multi-branch loop conditions (``while (a && b)``),
``break``/``continue`` past unclosed conditionals, early ``return`` —
is handled uniformly:

* rule 1/2 (procedures): push at entry; at exit pop every entry down to
  and including the procedure's own node (predicates whose post-dominator
  is the function exit close here);
* rule 3 (non-loop predicate): push, unless the branch jumps straight to
  the predicate's immediate post-dominator (the construct would be empty
  — this keeps instance counts meaningful, e.g. a not-taken ``if``);
* rule 4 (loop predicate): before pushing, pop every predicate entry
  whose block lies in the loop's body — the previous iteration's entry
  and anything it left open — making iterations siblings; push only if
  the branch actually enters the loop body (the final false test does
  not create an empty iteration);
* rule 5 (construct end): on entry to block ``B``, pop predicate entries
  whose *region* (blocks reachable without crossing their post-dominator)
  does not contain ``B``. When ``B`` is exactly the post-dominator this
  is the paper's rule; the region test also closes constructs abandoned
  through ``break``.

Pops stop at procedure nodes, so entries of the caller (or of an outer
recursive activation) are never touched.
"""

from __future__ import annotations

from repro.analysis.constructs import ConstructKind, ConstructTable
from repro.core.node import ConstructNode
from repro.core.pool import ConstructPool
from repro.core.profile_data import ProfileStore


class IndexingStack:
    """Maintains the current execution index and the index tree."""

    def __init__(self, table: ConstructTable, pool: ConstructPool,
                 store: ProfileStore):
        self.table = table
        self.pool = pool
        self.store = store
        self.stack: list[ConstructNode] = []
        self.max_depth = 0
        #: Optional observers called as (static, timestamp) on push and
        #: (node, timestamp) on pop; used by the task-graph tracer.
        self.push_observer = None
        self.pop_observer = None

    # -- node plumbing ---------------------------------------------------------

    def top(self) -> ConstructNode | None:
        return self.stack[-1] if self.stack else None

    def depth(self) -> int:
        return len(self.stack)

    def _push(self, static, timestamp: int) -> ConstructNode:
        node = self.pool.acquire(timestamp)
        node.static = static
        node.t_enter = timestamp
        node.t_exit = 0  # reset on entry (Table I line 10)
        node.parent = self.stack[-1] if self.stack else None
        self.stack.append(node)
        if len(self.stack) > self.max_depth:
            self.max_depth = len(self.stack)
        self.store.on_construct_enter(static)
        if self.push_observer is not None:
            self.push_observer(static, timestamp)
        return node

    def _pop(self, timestamp: int) -> ConstructNode:
        node = self.stack.pop()
        node.t_exit = timestamp
        self.store.on_construct_complete(node)
        if self.pop_observer is not None:
            self.pop_observer(node, timestamp)
        self.pool.release(node)
        return node

    def seed(self, entries: list[tuple[int, int]]) -> None:
        """Rebuild the stack mid-trace (parallel segment replay).

        ``entries`` is the checkpointed stack bottom-to-top as
        ``(construct head pc, Tenter)``. Nodes are pushed with their
        original entry timestamps so durations of constructs that span
        the seam stay exact, and the recursion nesting counters are
        seeded so aggregation stays outermost-only — but neither
        ``dynamic_instances`` nor the push observer fires: the segment
        that actually entered the construct already counted it.
        """
        if self.stack:
            raise RuntimeError("seed() requires an empty indexing stack")
        store = self.store
        for pc, t_enter in entries:
            node = self.pool.adopt()
            node.static = self.table.by_pc[pc]
            node.t_enter = t_enter
            node.t_exit = 0
            node.parent = self.stack[-1] if self.stack else None
            self.stack.append(node)
            store._nesting[pc] = store._nesting.get(pc, 0) + 1
        self.max_depth = len(self.stack)

    # -- instrumentation rules ---------------------------------------------------

    def enter_procedure(self, entry_pc: int, timestamp: int) -> None:
        """Rule 1."""
        self._push(self.table.by_pc[entry_pc], timestamp)

    def exit_procedure(self, timestamp: int) -> None:
        """Rule 2, generalized: close every construct still open in this
        activation (early returns leave predicates on the stack)."""
        while self.stack:
            node = self._pop(timestamp)
            if node.static.kind is ConstructKind.PROCEDURE:
                return
        raise RuntimeError("procedure exit with no procedure on the stack")

    def on_branch(self, pc: int, target_block: int, timestamp: int) -> None:
        """Rules 3 and 4."""
        static = self.table.by_pc[pc]
        loop_body = static.loop_body
        if loop_body is not None:
            # Rule 4: close the previous iteration (and whatever it left
            # open) so iterations become siblings, then start the next one
            # if the branch actually re-enters the body.
            stack = self.stack
            while stack:
                node = stack[-1]
                node_static = node.static
                if (node_static.kind is ConstructKind.PROCEDURE
                        or node_static.block_id not in loop_body):
                    break
                self._pop(timestamp)
            if target_block in loop_body:
                self._push(static, timestamp)
        else:
            # Rule 3: a branch straight to the post-dominator means the
            # construct body is empty — no instance.
            if target_block != static.ipostdom_block:
                self._push(static, timestamp)

    def on_block_enter(self, block_id: int, timestamp: int) -> None:
        """Rule 5, generalized to regions."""
        stack = self.stack
        while stack:
            node = stack[-1]
            static = node.static
            if static.kind is ConstructKind.PROCEDURE:
                return
            if block_id in static.region:
                return
            self._pop(timestamp)

    # -- diagnostics ------------------------------------------------------------

    def index_of_top(self) -> list[str]:
        """The execution index of the current point (root to leaf), as
        construct names — Fig. 4's bracket notation."""
        return [node.static.name for node in self.stack]
