"""The construct pool with lazy retirement (paper §III-A, Table I).

Completed construct instances are appended to the tail of a doubly
linked free list; allocation scans from the head for the first node
satisfying the retirement condition

    ``timestamp - c.Texit >= c.Texit - c.Tenter``

i.e. the node has been dead for at least its own duration, so any future
dependence into it would have ``Tdep > Tdur`` and cannot change the
profile (the argument behind the paper's Theorem 1). Scanning from the
head while appending at the tail maximizes how long completed instances
stay addressable ("lazy retiring").

The paper pre-allocates a fixed pool of one million entries; this
implementation starts smaller and grows on demand, reporting the high
water mark, which is equivalent in behaviour and friendlier as a
library default. Pass a larger ``initial_size`` to reproduce the
paper's fixed-budget setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.node import ConstructNode


@dataclass
class PoolStats:
    """Allocation statistics reported alongside profiles."""

    capacity: int = 0
    acquires: int = 0
    reuses: int = 0
    grows: int = 0
    scan_steps: int = 0
    max_scan: int = 0

    @property
    def mean_scan(self) -> float:
        return self.scan_steps / self.acquires if self.acquires else 0.0


class ConstructPool:
    """Free list of recyclable :class:`ConstructNode` objects."""

    def __init__(self, initial_size: int = 4096):
        if initial_size < 1:
            raise ValueError("pool needs at least one node")
        self._head = ConstructNode()  # sentinel
        self._tail = ConstructNode()  # sentinel
        self._head.next = self._tail
        self._tail.prev = self._head
        self.stats = PoolStats()
        for _ in range(initial_size):
            self._link_tail(ConstructNode())
        self.stats.capacity = initial_size

    # -- free-list plumbing -------------------------------------------------

    def _link_tail(self, node: ConstructNode) -> None:
        last = self._tail.prev
        last.next = node
        node.prev = last
        node.next = self._tail
        self._tail.prev = node

    def _unlink(self, node: ConstructNode) -> None:
        node.prev.next = node.next
        node.next.prev = node.prev
        node.prev = None
        node.next = None

    # -- paper's pool interface ----------------------------------------------

    def acquire(self, timestamp: int) -> ConstructNode:
        """Table I lines 3-7: first retireable node from the head, or a
        freshly allocated node if nothing can retire yet."""
        self.stats.acquires += 1
        scanned = 0
        node = self._head.next
        while node is not self._tail:
            scanned += 1
            # Retirement condition: dead for at least its own duration.
            if timestamp - node.t_exit >= node.t_exit - node.t_enter:
                self._unlink(node)
                self.stats.reuses += 1
                self._note_scan(scanned)
                return node
            node = node.next
        self.stats.grows += 1
        self.stats.capacity += 1
        self._note_scan(scanned)
        return ConstructNode()

    def release(self, node: ConstructNode) -> None:
        """Table I line 22: append the completed instance at the tail."""
        self._link_tail(node)

    def _note_scan(self, scanned: int) -> None:
        self.stats.scan_steps += scanned
        if scanned > self.stats.max_scan:
            self.stats.max_scan = scanned

    # -- introspection ---------------------------------------------------------

    def free_count(self) -> int:
        """Number of nodes currently in the free list (O(n); tests only)."""
        count = 0
        node = self._head.next
        while node is not self._tail:
            count += 1
            node = node.next
        return count
