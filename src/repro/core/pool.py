"""The construct pool with lazy retirement (paper §III-A, Table I).

Completed construct instances are appended to the tail of a doubly
linked free list; allocation scans from the head for the first node
satisfying the retirement condition

    ``timestamp - c.Texit >= c.Texit - c.Tenter``

i.e. the node has been dead for at least its own duration, so any future
dependence into it would have ``Tdep > Tdur`` and cannot change the
profile (the argument behind the paper's Theorem 1). Scanning from the
head while appending at the tail maximizes how long completed instances
stay addressable ("lazy retiring").

The paper pre-allocates a fixed pool of one million entries; this
implementation starts smaller and grows on demand, reporting the high
water mark, which is equivalent in behaviour and friendlier as a
library default. Drive :class:`ConstructPool` through an
:class:`~repro.core.indexing.IndexingStack` directly to study the
paper's fixed-budget recycling (the tracer itself no longer does —
see below).

The pool exists because the paper's C implementation cannot reclaim
construct instances that shadow memory might still reference; lazy
retirement is its safe approximation of "free when provably
unobservable". A garbage-collected runtime gets the exact semantics
for free: :class:`NodeAllocator` hands out a fresh node per acquire
and lets the interpreter reclaim nodes once the indexing stack, the
shadow and the index tree drop their references. Under it a node's
``Tenter``/``Texit`` are never overwritten by reuse, so dependence
attribution is a pure function of the event stream — the property the
sharded parallel replay merge (``repro.trace.parallel``) relies on —
and the profile equals what an infinitely large ConstructPool would
produce. :class:`ConstructPool` is kept as the faithful reproduction
of Table I (and remains drivable through the same interface).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.node import ConstructNode


@dataclass
class PoolStats:
    """Allocation statistics reported alongside profiles."""

    capacity: int = 0
    acquires: int = 0
    reuses: int = 0
    grows: int = 0
    scan_steps: int = 0
    max_scan: int = 0

    @property
    def mean_scan(self) -> float:
        return self.scan_steps / self.acquires if self.acquires else 0.0


class ConstructPool:
    """Free list of recyclable :class:`ConstructNode` objects."""

    def __init__(self, initial_size: int = 4096):
        if initial_size < 1:
            raise ValueError("pool needs at least one node")
        self._head = ConstructNode()  # sentinel
        self._tail = ConstructNode()  # sentinel
        self._head.next = self._tail
        self._tail.prev = self._head
        self.stats = PoolStats()
        for _ in range(initial_size):
            self._link_tail(ConstructNode())
        self.stats.capacity = initial_size

    # -- free-list plumbing -------------------------------------------------

    def _link_tail(self, node: ConstructNode) -> None:
        last = self._tail.prev
        last.next = node
        node.prev = last
        node.next = self._tail
        self._tail.prev = node

    def _unlink(self, node: ConstructNode) -> None:
        node.prev.next = node.next
        node.next.prev = node.prev
        node.prev = None
        node.next = None

    # -- paper's pool interface ----------------------------------------------

    def acquire(self, timestamp: int) -> ConstructNode:
        """Table I lines 3-7: first retireable node from the head, or a
        freshly allocated node if nothing can retire yet."""
        self.stats.acquires += 1
        scanned = 0
        node = self._head.next
        while node is not self._tail:
            scanned += 1
            # Retirement condition: dead for at least its own duration.
            if timestamp - node.t_exit >= node.t_exit - node.t_enter:
                self._unlink(node)
                self.stats.reuses += 1
                self._note_scan(scanned)
                return node
            node = node.next
        self.stats.grows += 1
        self.stats.capacity += 1
        self._note_scan(scanned)
        return ConstructNode()

    def release(self, node: ConstructNode) -> None:
        """Table I line 22: append the completed instance at the tail."""
        self._link_tail(node)

    def adopt(self) -> ConstructNode:
        """A node for a *reconstructed* construct instance (parallel
        segment replay seeding a checkpointed stack). Not an acquire:
        the instance was counted by the segment that entered it, so
        only capacity grows — per-run allocation stats must match a
        serial pass."""
        self.stats.capacity += 1
        return ConstructNode()

    def _note_scan(self, scanned: int) -> None:
        self.stats.scan_steps += scanned
        if scanned > self.stats.max_scan:
            self.stats.max_scan = scanned

    # -- introspection ---------------------------------------------------------

    def free_count(self) -> int:
        """Number of nodes currently in the free list (O(n); tests only)."""
        count = 0
        node = self._head.next
        while node is not self._tail:
            count += 1
            node = node.next
        return count


class NodeAllocator:
    """Garbage-collected "infinite pool": a fresh node per acquire.

    Interface-compatible with :class:`ConstructPool` (the indexing
    stack drives either). ``release`` only updates accounting — the
    node is reclaimed by the runtime once nothing references it, so a
    completed instance stays addressable exactly as long as shadow
    memory or the index tree can still reach it. Stats map onto
    :class:`PoolStats`: ``capacity`` is the peak number of
    simultaneously live (acquired, not yet released) nodes, ``grows``
    counts allocations, and ``reuses``/scan figures are zero by
    construction.
    """

    def __init__(self, initial_size: int = 4096):
        if initial_size < 1:
            raise ValueError("pool needs at least one node")
        self.stats = PoolStats()
        self._live = 0

    def acquire(self, timestamp: int) -> ConstructNode:
        stats = self.stats
        stats.acquires += 1
        stats.grows += 1
        self._live += 1
        if self._live > stats.capacity:
            stats.capacity = self._live
        return ConstructNode()

    def release(self, node: ConstructNode) -> None:
        self._live -= 1

    def adopt(self) -> ConstructNode:
        """See :meth:`ConstructPool.adopt`: a reconstructed instance —
        live (its pop will release it) but not a new acquisition."""
        self._live += 1
        if self._live > self.stats.capacity:
            self.stats.capacity = self._live
        return ConstructNode()

    def live_count(self) -> int:
        """Nodes acquired and not yet released (the indexing stack)."""
        return self._live
