"""The profiling algorithm (paper §III-B, Table II).

Given a detected dependence edge — head access ``(pc_h, node_h, t_h)``
and tail access ``(pc_t, t_t)`` — walk the index tree bottom-up from the
head's enclosing construct, updating the min-Tdep profile of every
ancestor that has *completed* and has not been recycled, and stop at the
first still-active ancestor (for which the edge is an intra-construct
dependence).

The validity test ``Tenter <= Th <= Texit`` simultaneously rejects
active constructs (``Texit`` is reset to 0 on entry) and recycled nodes
(a recycled node's ``Tenter`` exceeds every timestamp observed before
its reuse — the argument of the paper's Theorem 1).

Since the tracer moved to garbage-collected node allocation
(:class:`repro.core.pool.NodeAllocator`), recycling never actually
happens: a node referenced by shadow memory keeps its true
``Tenter``/``Texit`` forever, so the walk sees exactly the completed
ancestors covering the head access and the profile is a pure function
of the event stream — the determinism sharded parallel replay
(:mod:`repro.trace.parallel`) relies on to merge per-segment profiles
bit-identically to a serial pass. The validity test is kept in its
recycling-tolerant form because the paper's fixed-pool discipline
(:class:`repro.core.pool.ConstructPool`) remains a supported
allocator and Theorem 1 still bounds what recycling under it can
change: only edges whose ``Tdep`` already exceeds the head construct's
duration.
"""

from __future__ import annotations

from typing import Callable

from repro.core.node import ConstructNode
from repro.core.profile_data import DepKind, EdgeStats, ProfileStore


class DependenceProfiler:
    """Applies Table II to each detected dependence."""

    __slots__ = ("store", "edges_profiled", "updates")

    def __init__(self, store: ProfileStore):
        self.store = store
        #: Dependence events processed (dynamic edges).
        self.edges_profiled = 0
        #: Construct profiles touched (tree-walk steps that updated).
        self.updates = 0

    def profile_edge(self, head_pc: int, head_node: ConstructNode,
                     head_time: int, tail_pc: int, tail_time: int,
                     kind: DepKind,
                     name_of: Callable[[], str]) -> int:
        """Record one dynamic dependence; returns #profiles updated.

        ``name_of`` lazily resolves the conflicting address to a symbol —
        it is only called when a static edge is seen for the first time.
        """
        self.edges_profiled += 1
        tdep = tail_time - head_time
        profiles = self.store.profiles
        updated = 0
        node = head_node
        while node is not None and node.t_enter <= head_time <= node.t_exit:
            profile = profiles.get(node.static.pc)
            if profile is None:
                profile = self.store.get_or_create(node.static)
            key = (head_pc, tail_pc, kind)
            stats = profile.edges.get(key)
            if stats is None:
                profile.edges[key] = EdgeStats(head_pc, tail_pc, kind,
                                               tdep, 1, name_of(),
                                               first_t=tail_time)
            else:
                stats.observe(tdep)
            updated += 1
            node = node.parent
        self.updates += updated
        return updated
