"""Glue between the interpreter's tracing interface and the profiler.

``AlchemistTracer`` owns the four runtime structures — indexing stack,
construct pool, shadow memory, dependence profiler — and routes each
interpreter event to them. This is the whole of Alchemist's runtime; the
interpreter below it stands in for valgrind.
"""

from __future__ import annotations

from repro.analysis.constructs import ConstructTable
from repro.core.indexing import IndexingStack
from repro.core.pool import NodeAllocator
from repro.core.profile_data import DepKind, ProfileStore
from repro.core.profiler import DependenceProfiler
from repro.core.shadow import ShadowMemory
from repro.runtime.memory import Memory
from repro.runtime.tracing import Tracer


class AlchemistTracer(Tracer):
    """Profiles one execution; single use."""

    def __init__(self, table: ConstructTable, pool_size: int = 4096,
                 track_war_waw: bool = True):
        self.table = table
        # GC-backed allocation: nodes stay addressable while referenced,
        # so profiles equal the infinite-pool semantics and are a pure
        # function of the event stream (see repro.core.pool docstring).
        # ``pool_size`` is accepted for compatibility; the allocator is
        # unbounded and the runtime reclaims unreferenced instances.
        self.pool = NodeAllocator(pool_size)
        self.store = ProfileStore()
        self.stack = IndexingStack(table, self.pool, self.store)
        self.shadow = ShadowMemory()
        self.profiler = DependenceProfiler(self.store)
        self.track_war_waw = track_war_waw
        self.memory: Memory | None = None
        self.raw_events = 0
        self.war_events = 0
        self.waw_events = 0
        self.final_time = 0

    # -- lifecycle ---------------------------------------------------------

    def on_start(self, program, memory: Memory) -> None:
        self.memory = memory

    def on_finish(self, timestamp: int) -> None:
        self.final_time = timestamp

    # -- indexing events -----------------------------------------------------

    def on_enter_function(self, fn_name: str, entry_pc: int,
                          timestamp: int) -> None:
        self.stack.enter_procedure(entry_pc, timestamp)

    def on_exit_function(self, fn_name: str, timestamp: int) -> None:
        self.stack.exit_procedure(timestamp)

    def on_branch(self, pc: int, target_block: int, timestamp: int) -> None:
        self.stack.on_branch(pc, target_block, timestamp)

    def on_block_enter(self, block_id: int, timestamp: int) -> None:
        self.stack.on_block_enter(block_id, timestamp)

    # -- memory events ----------------------------------------------------------

    def on_read(self, addr: int, pc: int, timestamp: int) -> None:
        node = self.stack.stack[-1]
        write = self.shadow.on_read(addr, pc, node, timestamp)
        if write is not None:
            self.raw_events += 1
            memory = self.memory
            self.profiler.profile_edge(
                write[0], write[1], write[2], pc, timestamp, DepKind.RAW,
                lambda: memory.addr_to_name(addr))

    def on_write(self, addr: int, pc: int, timestamp: int) -> None:
        node = self.stack.stack[-1]
        waw_head, war_heads = self.shadow.on_write(addr, pc, node, timestamp)
        if not self.track_war_waw:
            return
        memory = self.memory
        if war_heads:
            for read_pc, (read_node, read_time) in war_heads.items():
                self.war_events += 1
                self.profiler.profile_edge(
                    read_pc, read_node, read_time, pc, timestamp,
                    DepKind.WAR, lambda: memory.addr_to_name(addr))
        if waw_head is not None:
            self.waw_events += 1
            self.profiler.profile_edge(
                waw_head[0], waw_head[1], waw_head[2], pc, timestamp,
                DepKind.WAW, lambda: memory.addr_to_name(addr))

    def on_frame_free(self, lo: int, hi: int) -> None:
        self.shadow.clear_range(lo, hi)
