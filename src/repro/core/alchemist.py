"""The user-facing facade: compile, run, profile.

    from repro import Alchemist, ProfileOptions

    report = Alchemist().profile(source)
    print(report.to_text())

One ``Alchemist`` instance is reusable across programs; each call to
:meth:`Alchemist.profile` performs a fresh instrumented execution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.constructs import ConstructTable
from repro.core.report import ProfileReport, RunStats
from repro.core.tracer import AlchemistTracer
from repro.ir.cfg import ProgramIR
from repro.ir.lowering import compile_source
from repro.runtime.interpreter import DEFAULT_MAX_STEPS, Interpreter
from repro.runtime.tracing import NullTracer


@dataclass
class ProfileOptions:
    """Tuning knobs for a profiling run."""

    #: Accepted for compatibility; since the tracer moved to
    #: GC-backed node allocation (``repro.core.pool.NodeAllocator``,
    #: unbounded, reclaimed by the runtime) this no longer bounds
    #: anything — profiles always get the paper's infinite-pool
    #: semantics.
    pool_size: int = 4096
    #: Also profile WAR/WAW dependences (paper default). Disabling gives
    #: the RAW-only ablation used in the benchmarks.
    track_war_waw: bool = True
    #: Instruction budget for the run.
    max_steps: int = DEFAULT_MAX_STEPS
    #: Also time an uninstrumented run to report the slowdown factor
    #: (Table III's Orig. column).
    measure_baseline: bool = False
    #: Sampling policy spec for recordings ("full"/None keeps every
    #: memory event; e.g. "interval:100", "burst:1000/10000",
    #: "reservoir:256"). Applies to trace recording only — live
    #: analyses always see the complete stream.
    sample: str | None = None
    #: Trace schema version new recordings are written as (1 or 2).
    trace_format: int | None = None
    #: Parallel replay worker count. ``None``/1 = serial; 0 = one per
    #: CPU; N > 1 = that many processes. Replayed analyses that
    #: implement the segment protocol then run as a sharded parallel
    #: pass with results identical to serial (live runs are never
    #: parallelized — there is only one execution).
    jobs: int | None = None
    #: Events between checkpoint shard seams in new recordings
    #: (v2 only). ``None`` = the writer default, 0 = no checkpoints.
    checkpoints: int | None = None

    def __post_init__(self) -> None:
        # Fail at construction: a non-positive pool size used to surface
        # as an opaque failure deep inside the construct pool, and a
        # non-positive step budget as a run that executes nothing.
        if self.pool_size <= 0:
            raise ValueError(
                f"pool_size must be positive, got {self.pool_size}")
        if self.max_steps <= 0:
            raise ValueError(
                f"max_steps must be positive, got {self.max_steps}")
        from repro.sampling.policies import parse_sample_spec
        from repro.trace.events import (DEFAULT_TRACE_VERSION,
                                        SUPPORTED_TRACE_VERSIONS)

        if self.jobs is not None and self.jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {self.jobs}")
        if self.checkpoints is not None and self.checkpoints < 0:
            raise ValueError(
                f"checkpoints must be >= 0, got {self.checkpoints}")
        # Normalize the spec early so equal configs cache-key equally
        # ("INTERVAL:100 " and "interval:100" are one policy).
        self.sample = parse_sample_spec(self.sample).spec
        if self.trace_format is None:
            self.trace_format = DEFAULT_TRACE_VERSION
        elif self.trace_format not in SUPPORTED_TRACE_VERSIONS:
            known = ", ".join(str(v) for v in SUPPORTED_TRACE_VERSIONS)
            raise ValueError(
                f"trace_format must be one of {known}, "
                f"got {self.trace_format}")


class Alchemist:
    """Transparent dependence-distance profiler for MiniC programs."""

    def __init__(self, options: ProfileOptions | None = None):
        self.options = options if options is not None else ProfileOptions()

    # -- compilation ---------------------------------------------------------

    def compile(self, source: str,
                filename: str = "<input>") -> ProgramIR:
        """Compile MiniC source to IR (reusable across profile runs)."""
        return compile_source(source, filename)

    # -- profiling --------------------------------------------------------------

    def profile(self, source: str | None = None, *,
                program: ProgramIR | None = None,
                filename: str = "<input>") -> ProfileReport:
        """Run the program under the profiler and return the report."""
        if program is None:
            if source is None:
                raise ValueError("need source or program")
            program = self.compile(source, filename)
        table = ConstructTable(program)
        tracer = AlchemistTracer(table, self.options.pool_size,
                                 self.options.track_war_waw)
        interp = Interpreter(program, tracer, self.options.max_steps)
        start = time.perf_counter()
        exit_value = interp.run()
        wall = time.perf_counter() - start

        baseline = None
        if self.options.measure_baseline:
            baseline = self.baseline_seconds(program)

        stats = RunStats(
            wall_seconds=wall,
            baseline_seconds=baseline,
            instructions=interp.time,
            dynamic_instances=tracer.store.dynamic_instances,
            static_constructs=table.static_count(),
            max_index_depth=tracer.stack.max_depth,
            raw_events=tracer.raw_events,
            war_events=tracer.war_events,
            waw_events=tracer.waw_events,
            edges_profiled=tracer.profiler.edges_profiled,
            pool=tracer.pool.stats,
        )
        return ProfileReport(program, table, tracer.store, stats,
                             exit_value, interp.output)

    def baseline_seconds(self, program: ProgramIR) -> float:
        """Wall time of an uninstrumented run (Table III 'Orig.')."""
        interp = Interpreter(program, NullTracer(), self.options.max_steps)
        start = time.perf_counter()
        interp.run()
        return time.perf_counter() - start
