"""Parallelization advisor: turns profiles into actionable guidance.

Implements the decision procedure of paper §II:

* a construct whose RAW dependences all satisfy ``Tdep > Tdur`` can be
  spawned as a future and joined at the first conflicting read
  (``READY``);
* violating WAR/WAW dependences call for privatization or hoisting of
  the conflicting variables (``TRANSFORM``), as the paper does for
  gzip's ``flag_buf``/``last_flags`` and bzip2's ``bzf``;
* violating RAW dependences block asynchronous execution (``BLOCKED``)
  — the Delaunay benchmark is the paper's example of a program whose
  hot constructs are all blocked.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.profile_data import DepKind, EdgeStats
from repro.core.report import ConstructView, ProfileReport

if TYPE_CHECKING:
    from repro.staticdep.report import StaticDepReport

#: Confidence tiers for a recommendation, from static/dynamic agreement:
#: ``must`` — the static pass proves the dynamic verdict (every blocking
#: RAW edge is a MUST_DEP, or no loop-carried RAW class survives
#: statically); ``may`` — static analysis leaves room for the dynamic
#: picture to be incomplete (aliasing, arrays, sampling); ``dynamic-only``
#: — no static report was supplied.
CONFIDENCE_MUST = "must"
CONFIDENCE_MAY = "may"
CONFIDENCE_DYNAMIC = "dynamic-only"


class Verdict(enum.Enum):
    """How ready a construct is for asynchronous execution."""

    READY = "ready"           # future annotation suffices
    TRANSFORM = "transform"   # privatize WAR/WAW conflicts first
    BLOCKED = "blocked"       # violating RAW dependences remain

    def order(self) -> int:
        return {"ready": 0, "transform": 1, "blocked": 2}[self.value]


@dataclass
class Recommendation:
    """Guidance for one construct."""

    view: ConstructView
    verdict: Verdict
    score: float
    blocking_raw: list[EdgeStats] = field(default_factory=list)
    privatize: list[str] = field(default_factory=list)
    join_hints: list[EdgeStats] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    confidence: str = CONFIDENCE_DYNAMIC

    @property
    def blocked_reason(self) -> str | None:
        """Why this construct must be skipped by a what-if sweep, or
        ``None`` when it is simulatable. The what-if advisor reports
        this verbatim instead of fabricating a speedup for a construct
        the paper's transformations cannot unlock."""
        if self.verdict is not Verdict.BLOCKED:
            return None
        edges = self.blocking_raw
        sites = sorted({e.var_hint or f"pc{e.head_pc}" for e in edges})
        shown = ", ".join(sites[:4]) + (", ..." if len(sites) > 4 else "")
        return (f"{len(edges)} violating RAW edge(s) between instances "
                f"({shown}); continuation reads values produced too "
                "late")

    def summary(self) -> dict:
        """Deterministic, JSON-able digest of this recommendation."""
        return {
            "name": self.view.name,
            "pc": self.view.pc,
            "line": self.view.line,
            "fn": self.view.fn_name,
            "kind": self.view.kind.value,
            "verdict": self.verdict.value,
            "score": round(self.score, 6),
            "size_fraction": round(self.view.size_fraction(), 6),
            "instances": self.view.instances,
            "privatize": list(self.privatize),
            "blocking_raw": len(self.blocking_raw),
            "join_hints": len(self.join_hints),
            "notes": list(self.notes),
            "confidence": self.confidence,
        }

    def describe(self) -> str:
        lines = [f"{self.view.describe()} -> {self.verdict.value.upper()}"
                 f" (score {self.score:.3f})"]
        if self.blocking_raw:
            lines.append(f"  blocking RAW edges: {len(self.blocking_raw)}")
        if self.privatize:
            lines.append("  privatize: " + ", ".join(self.privatize))
        if self.join_hints:
            lines.append(f"  join before {len(self.join_hints)} "
                         "read site(s) to respect remaining RAW edges")
        if self.confidence != CONFIDENCE_DYNAMIC:
            lines.append(f"  confidence: {self.confidence} "
                         "(static dependence pass)")
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)


class Advisor:
    """Ranks constructs and derives the required transformations."""

    def __init__(self, report: ProfileReport,
                 min_size_fraction: float = 0.005,
                 static_report: "StaticDepReport | None" = None):
        self.report = report
        self.min_size_fraction = min_size_fraction
        self.static_report = static_report

    def recommend(self, top: int = 10) -> list[Recommendation]:
        """Ranked recommendations: parallelizable first, largest first."""
        recs = []
        for view in self.report.constructs():
            if view.size_fraction() < self.min_size_fraction:
                continue
            recs.append(self.assess(view))
        recs.sort(key=lambda r: (r.verdict.order(), -r.score))
        return recs[:top]

    def assess(self, view: ConstructView) -> Recommendation:
        """Build the recommendation for one construct.

        Violating RAW edges *between instances* block parallelization;
        violating RAW edges into the *continuation* are deferrable by
        joining the future before the conflicting read (paper §II), so
        they become join hints rather than blockers.
        """
        blocking = view.violating_internal(DepKind.RAW)
        deferrable = view.violating_continuation(DepKind.RAW)
        safe_raw = deferrable + [e for e in view.edges(DepKind.RAW)
                                 if e.min_tdep > view.tdur]
        # Order by the serially-first conflicting write (EdgeStats
        # pins first_t to the first observation), name as tie-break: a
        # total order, so serial and merged-parallel profiles — whose
        # edge dicts iterate differently — advise identically.
        first_seen: dict[str, int] = {}
        for kind in (DepKind.WAW, DepKind.WAR):
            for edge in view.violating(kind):
                hint = edge.var_hint or f"pc{edge.head_pc}"
                base = hint.split("[")[0]
                if base not in first_seen or edge.first_t < first_seen[base]:
                    first_seen[base] = edge.first_t
        privatize = sorted(first_seen, key=lambda b: (first_seen[b], b))

        if blocking:
            verdict = Verdict.BLOCKED
        elif privatize:
            verdict = Verdict.TRANSFORM
        else:
            verdict = Verdict.READY

        notes = []
        if verdict is Verdict.READY and deferrable:
            notes.append("annotate as future; join before the listed "
                         "reads to respect the remaining RAW edges")
        elif verdict is Verdict.READY and safe_raw:
            notes.append("annotate as future; all RAW distances exceed "
                         "the construct duration")
        if verdict is Verdict.TRANSFORM:
            notes.append("make private copies of the listed variables "
                         "(or hoist their updates into the continuation)")
        if verdict is Verdict.BLOCKED:
            notes.append("continuation reads values produced too late; "
                         "restructure or pick another construct")

        score = view.size_fraction() * (
            1.0 / (1.0 + len(blocking)))
        return Recommendation(
            view=view,
            verdict=verdict,
            score=score,
            blocking_raw=blocking,
            privatize=privatize,
            join_hints=safe_raw,
            notes=notes,
            confidence=self._confidence(view, verdict, blocking),
        )

    def _confidence(self, view: ConstructView, verdict: Verdict,
                    blocking: list[EdgeStats]) -> str:
        """Agreement tier between the dynamic verdict and the static
        pass. ``BLOCKED`` is *must*-confident when every blocking RAW
        edge is statically certain (MUST_DEP); ``READY``/``TRANSFORM``
        are *must*-confident when the static pass finds no loop-carried
        RAW class at all — nothing a different input or a sampling gap
        could reveal. Anything the static pass cannot pin down stays
        ``may``.
        """
        static = self.static_report
        if static is None:
            return CONFIDENCE_DYNAMIC
        from repro.staticdep.model import StaticVerdict
        if verdict is Verdict.BLOCKED:
            certain = all(
                static.classify_edge(view.pc, e.head_pc, e.tail_pc,
                                     DepKind.RAW) is StaticVerdict.MUST_DEP
                for e in blocking)
            return CONFIDENCE_MUST if certain else CONFIDENCE_MAY
        if static.raw_classes(view.pc):
            return CONFIDENCE_MAY
        return CONFIDENCE_MUST
